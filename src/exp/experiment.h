// Experiment harness shared by every bench binary: dataset preparation,
// imputation/repair trial runners (N trials, averaged — the paper runs each
// experiment five times), and timing.

#ifndef SMFL_EXP_EXPERIMENT_H_
#define SMFL_EXP_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/generators.h"
#include "src/data/normalize.h"
#include "src/impute/imputer.h"
#include "src/repair/repairer.h"

namespace smfl::exp {

using data::Mask;
using la::Index;
using la::Matrix;

// A dataset ready for experiments: generated, ground truth normalized to
// [0, 1] column-wise.
struct PreparedDataset {
  std::string name;
  // Normalized ground truth (N x M, first `spatial_cols` columns spatial).
  Matrix truth;
  Index spatial_cols = 0;
  // Cluster labels from the generator (clustering app ground truth).
  std::vector<Index> cluster_labels;
  // Inverse transform back to original units (route app needs real km/L).
  data::MinMaxNormalizer normalizer;
  // Original-unit values.
  Matrix raw;
};

// Generates and normalizes one of the named synthetic datasets
// ("economic" | "farm" | "lake" | "vehicle") at the given row count.
Result<PreparedDataset> PrepareDataset(const std::string& name, Index rows,
                                       uint64_t seed = 7);

// Default experiment sizes (scaled-down stand-ins for Table III; see
// DESIGN.md). Used by the bench binaries unless overridden.
Index DefaultRowsFor(const std::string& name);

struct TrialOptions {
  // Trials averaged per measurement (paper: 5).
  int trials = 3;
  double missing_rate = 0.1;
  // Whether SI columns also lose values (Table V setting).
  bool missing_in_spatial = false;
  double error_rate = 0.1;
  uint64_t seed = 1234;
};

struct TrialResult {
  double mean_rms = 0.0;
  double mean_seconds = 0.0;
  int failures = 0;  // trials where the method returned an error
};

// Runs `imputer` on `dataset` across `options.trials` independent missing-
// value injections. Unobserved entries are scrubbed (zeroed) before the
// imputer sees the matrix, so methods cannot leak ground truth.
Result<TrialResult> RunImputationTrials(const PreparedDataset& dataset,
                                        const impute::Imputer& imputer,
                                        const TrialOptions& options);

// Repair counterpart: error injection + Repair() + RMS over dirty cells.
Result<TrialResult> RunRepairTrials(const PreparedDataset& dataset,
                                    const repair::Repairer& repairer,
                                    const TrialOptions& options);

}  // namespace smfl::exp

#endif  // SMFL_EXP_EXPERIMENT_H_
