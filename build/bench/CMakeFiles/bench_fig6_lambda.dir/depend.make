# Empty dependencies file for bench_fig6_lambda.
# This may be replaced when dependencies are built.
