#include "src/core/training_guard.h"

#include <cmath>

#include "src/common/strings.h"

namespace smfl::core {

TrainingGuard::TrainingGuard(const GuardOptions& options, bool check_monotonic,
                             uint64_t seed, double div_eps)
    : options_(options),
      check_monotonic_(check_monotonic),
      div_eps_(div_eps),
      // Distinct stream from the fit's init Rng so recovery draws never
      // alias the initialization sequence.
      rng_(seed ^ 0xf00dfeedULL) {}

bool TrainingGuard::IsViolation(double objective) const {
  if (!std::isfinite(objective)) return true;
  if (!check_monotonic_ || !have_checkpoint_ || rebaseline_) return false;
  const double slack =
      options_.objective_slack * std::max(1.0, std::fabs(prev_objective_));
  return objective > prev_objective_ + slack;
}

Result<TrainingGuard::Action> TrainingGuard::Observe(int iteration,
                                                     double objective,
                                                     la::Matrix* u,
                                                     la::Matrix* v) {
  if (!options_.enabled) return Action::kProceed;

  bool violation = IsViolation(objective);
  const bool due_for_checkpoint =
      !have_checkpoint_ || rebaseline_ ||
      iteration - checkpoint_iteration_ >= options_.checkpoint_interval;
  if (!violation && due_for_checkpoint) {
    // Never snapshot a state with hidden non-finite factor entries (they
    // can evade the objective through the observation mask).
    if (u->HasNonFinite() || v->HasNonFinite()) {
      violation = true;
    } else {
      checkpoint_u_ = *u;
      checkpoint_v_ = *v;
      checkpoint_objective_ = objective;
      checkpoint_iteration_ = iteration;
      have_checkpoint_ = true;
      rebaseline_ = false;
    }
  }
  if (!violation) {
    prev_objective_ = objective;
    return Action::kProceed;
  }

  ++recovery_attempts_;
  if (recovery_attempts_ > options_.max_recovery_attempts || !have_checkpoint_) {
    return Status::NumericError(StrFormat(
        "invariant violation at iteration %d (objective %g, last good "
        "objective %g at iteration %d) after %d recovery attempt(s)",
        iteration, objective, checkpoint_objective_, checkpoint_iteration_,
        recovery_attempts_ - 1));
  }

  // Roll back to the last good checkpoint.
  *u = checkpoint_u_;
  *v = checkpoint_v_;
  ++rollbacks_;

  // Escalate: every recovery widens the denominator floor; from the second
  // attempt on, also jitter U to leave the bad basin. V stays at the
  // checkpoint exactly — its leading columns may be frozen landmarks.
  div_eps_ *= options_.eps_bump;
  if (recovery_attempts_ >= 2) {
    for (la::Index i = 0; i < u->size(); ++i) {
      u->data()[i] *= 1.0 + options_.perturbation * rng_.Uniform();
    }
  }
  // The restored (possibly perturbed) state becomes the new baseline on the
  // next healthy Observe.
  rebaseline_ = true;
  prev_objective_ = checkpoint_objective_;
  return Action::kRolledBack;
}

TrainingGuard::State TrainingGuard::SaveState() const {
  State state;
  state.div_eps = div_eps_;
  state.prev_objective = prev_objective_;
  state.checkpoint_objective = checkpoint_objective_;
  state.checkpoint_iteration = checkpoint_iteration_;
  state.have_checkpoint = have_checkpoint_;
  state.rebaseline = rebaseline_;
  state.rollbacks = rollbacks_;
  state.recovery_attempts = recovery_attempts_;
  state.rng = rng_.GetState();
  state.checkpoint_u = checkpoint_u_;
  state.checkpoint_v = checkpoint_v_;
  return state;
}

void TrainingGuard::RestoreState(const State& state) {
  div_eps_ = state.div_eps;
  prev_objective_ = state.prev_objective;
  checkpoint_objective_ = state.checkpoint_objective;
  checkpoint_iteration_ = state.checkpoint_iteration;
  have_checkpoint_ = state.have_checkpoint;
  rebaseline_ = state.rebaseline;
  rollbacks_ = state.rollbacks;
  recovery_attempts_ = state.recovery_attempts;
  rng_.SetState(state.rng);
  checkpoint_u_ = state.checkpoint_u;
  checkpoint_v_ = state.checkpoint_v;
}

}  // namespace smfl::core
