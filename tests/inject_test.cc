#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/la/ops.h"

namespace smfl::data {
namespace {

Table MakeTestTable(Index rows) {
  auto dataset = MakeLakeLike(rows, /*seed=*/99);
  return dataset->table;
}

// ---------------------------------------------------------- missing values

TEST(InjectMissingTest, RateIsApproximatelyRespected) {
  Table table = MakeTestTable(1000);
  MissingInjectionOptions options;
  options.missing_rate = 0.2;
  options.preserve_complete_rows = 0;
  options.seed = 5;
  auto injection = InjectMissing(table, options);
  ASSERT_TRUE(injection.ok());
  const Index eligible =
      table.NumRows() * (table.NumCols() - table.SpatialCols());
  const Index removed =
      eligible - (injection->observed.Count() -
                  table.NumRows() * table.SpatialCols());
  const double rate = static_cast<double>(removed) /
                      static_cast<double>(eligible);
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(InjectMissingTest, SpatialColumnsIntactByDefault) {
  Table table = MakeTestTable(200);
  MissingInjectionOptions options;
  options.missing_rate = 0.5;
  options.seed = 6;
  auto injection = InjectMissing(table, options);
  ASSERT_TRUE(injection.ok());
  for (Index i = 0; i < table.NumRows(); ++i) {
    for (Index j = 0; j < table.SpatialCols(); ++j) {
      EXPECT_TRUE(injection->observed.Contains(i, j));
    }
  }
}

TEST(InjectMissingTest, SpatialColumnsEligibleWhenRequested) {
  Table table = MakeTestTable(500);
  MissingInjectionOptions options;
  options.missing_rate = 0.3;
  options.include_spatial_cols = true;
  options.preserve_complete_rows = 0;
  options.seed = 7;
  auto injection = InjectMissing(table, options);
  ASSERT_TRUE(injection.ok());
  Index missing_spatial = 0;
  for (Index i = 0; i < table.NumRows(); ++i) {
    for (Index j = 0; j < table.SpatialCols(); ++j) {
      missing_spatial += !injection->observed.Contains(i, j);
    }
  }
  EXPECT_GT(missing_spatial, 0);
}

TEST(InjectMissingTest, PreservesCompleteRowPool) {
  Table table = MakeTestTable(300);
  MissingInjectionOptions options;
  options.missing_rate = 0.4;
  options.preserve_complete_rows = 100;
  options.seed = 8;
  auto injection = InjectMissing(table, options);
  ASSERT_TRUE(injection.ok());
  EXPECT_GE(injection->observed.FullySetRows().size(), 100u);
}

TEST(InjectMissingTest, NoRowLosesEverything) {
  Table table = MakeTestTable(400);
  MissingInjectionOptions options;
  options.missing_rate = 0.9;  // extreme rate
  options.preserve_complete_rows = 0;
  options.seed = 9;
  auto injection = InjectMissing(table, options);
  ASSERT_TRUE(injection.ok());
  for (Index i = 0; i < table.NumRows(); ++i) {
    bool any = false;
    for (Index j = table.SpatialCols(); j < table.NumCols(); ++j) {
      any = any || injection->observed.Contains(i, j);
    }
    EXPECT_TRUE(any) << "row " << i << " lost all attribute values";
  }
}

TEST(InjectMissingTest, DeterministicPerSeed) {
  Table table = MakeTestTable(100);
  MissingInjectionOptions options;
  options.preserve_complete_rows = 0;
  options.seed = 11;
  auto a = InjectMissing(table, options);
  auto b = InjectMissing(table, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->observed == b->observed);
  options.seed = 12;
  auto c = InjectMissing(table, options);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->observed == c->observed);
}

TEST(InjectMissingTest, RejectsBadRate) {
  Table table = MakeTestTable(10);
  MissingInjectionOptions options;
  options.missing_rate = 1.0;
  EXPECT_FALSE(InjectMissing(table, options).ok());
  options.missing_rate = -0.1;
  EXPECT_FALSE(InjectMissing(table, options).ok());
}

TEST(InjectMissingTest, ZeroRateLeavesEverythingObserved) {
  Table table = MakeTestTable(50);
  MissingInjectionOptions options;
  options.missing_rate = 0.0;
  auto injection = InjectMissing(table, options);
  ASSERT_TRUE(injection.ok());
  EXPECT_EQ(injection->observed.Count(), table.NumRows() * table.NumCols());
}

// ---------------------------------------------------------- errors

TEST(InjectErrorsTest, DirtyCellsDifferAndComeFromDomain) {
  Table table = MakeTestTable(500);
  ErrorInjectionOptions options;
  options.error_rate = 0.1;
  options.preserve_complete_rows = 0;
  options.seed = 13;
  auto injection = InjectErrors(table, options);
  ASSERT_TRUE(injection.ok());
  const auto dirty_entries = injection->dirty_cells.Entries();
  EXPECT_GT(dirty_entries.size(), 0u);
  for (const Entry& e : dirty_entries) {
    const double dirty_value = injection->dirty(e.row, e.col);
    // The dirty value must exist somewhere in the column's domain.
    bool found = false;
    for (Index i = 0; i < table.NumRows() && !found; ++i) {
      found = table.values()(i, e.col) == dirty_value;
    }
    EXPECT_TRUE(found);
  }
}

TEST(InjectErrorsTest, CleanCellsUntouched) {
  Table table = MakeTestTable(200);
  ErrorInjectionOptions options;
  options.error_rate = 0.2;
  options.seed = 14;
  auto injection = InjectErrors(table, options);
  ASSERT_TRUE(injection.ok());
  for (Index i = 0; i < table.NumRows(); ++i) {
    for (Index j = 0; j < table.NumCols(); ++j) {
      if (!injection->dirty_cells.Contains(i, j)) {
        EXPECT_DOUBLE_EQ(injection->dirty(i, j), table.values()(i, j));
      }
    }
  }
}

TEST(InjectErrorsTest, RateApproximatelyRespected) {
  Table table = MakeTestTable(1000);
  ErrorInjectionOptions options;
  options.error_rate = 0.15;
  options.preserve_complete_rows = 0;
  options.seed = 15;
  auto injection = InjectErrors(table, options);
  ASSERT_TRUE(injection.ok());
  const double rate =
      static_cast<double>(injection->dirty_cells.Count()) /
      static_cast<double>(table.NumRows() * table.NumCols());
  EXPECT_NEAR(rate, 0.15, 0.03);
}

TEST(InjectErrorsTest, Deterministic) {
  Table table = MakeTestTable(100);
  ErrorInjectionOptions options;
  options.seed = 16;
  auto a = InjectErrors(table, options);
  auto b = InjectErrors(table, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->dirty_cells == b->dirty_cells);
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(a->dirty, b->dirty), 0.0);
}

TEST(InjectErrorsTest, SingleRowProducesNoErrors) {
  Table table = MakeTestTable(10).Head(1);
  ErrorInjectionOptions options;
  options.error_rate = 0.5;
  options.preserve_complete_rows = 0;
  auto injection = InjectErrors(table, options);
  ASSERT_TRUE(injection.ok());
  EXPECT_EQ(injection->dirty_cells.Count(), 0);
}

}  // namespace
}  // namespace smfl::data
