#include "src/exp/report.h"

#include <algorithm>
#include <cstdio>

#include "src/common/strings.h"

namespace smfl::exp {

ReportTable::ReportTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ReportTable::BeginRow(const std::string& label) {
  rows_.emplace_back();
  rows_.back().push_back(label);
}

void ReportTable::AddCell(const std::string& value) {
  rows_.back().push_back(value);
}

void ReportTable::AddNumber(double value, int precision) {
  rows_.back().push_back(StrFormat("%.*f", precision, value));
}

std::string ReportTable::ToText() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += "\n";
    return line;
  };
  std::string out = render_row(columns_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string ReportTable::ToCsv() const {
  std::string out = Join(columns_, ",") + "\n";
  for (const auto& row : rows_) out += Join(row, ",") + "\n";
  return out;
}

std::string ReportTable::ToMarkdown() const {
  std::string out = "| " + Join(columns_, " | ") + " |\n|";
  for (size_t c = 0; c < columns_.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& row : rows_) {
    out += "| " + Join(row, " | ") + " |\n";
  }
  return out;
}

void ReportTable::Print(const std::string& title) const {
  std::printf("=== %s ===\n%s\n", title.c_str(), ToText().c_str());
  std::fflush(stdout);
}

}  // namespace smfl::exp
