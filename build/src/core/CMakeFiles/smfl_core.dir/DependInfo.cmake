
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feature_geometry.cc" "src/core/CMakeFiles/smfl_core.dir/feature_geometry.cc.o" "gcc" "src/core/CMakeFiles/smfl_core.dir/feature_geometry.cc.o.d"
  "/root/repo/src/core/fold_in.cc" "src/core/CMakeFiles/smfl_core.dir/fold_in.cc.o" "gcc" "src/core/CMakeFiles/smfl_core.dir/fold_in.cc.o.d"
  "/root/repo/src/core/landmarks.cc" "src/core/CMakeFiles/smfl_core.dir/landmarks.cc.o" "gcc" "src/core/CMakeFiles/smfl_core.dir/landmarks.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/smfl_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/smfl_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/model_selection.cc" "src/core/CMakeFiles/smfl_core.dir/model_selection.cc.o" "gcc" "src/core/CMakeFiles/smfl_core.dir/model_selection.cc.o.d"
  "/root/repo/src/core/smfl.cc" "src/core/CMakeFiles/smfl_core.dir/smfl.cc.o" "gcc" "src/core/CMakeFiles/smfl_core.dir/smfl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mf/CMakeFiles/smfl_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/smfl_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/smfl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/smfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/smfl_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
