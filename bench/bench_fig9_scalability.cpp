// Reproduces Fig 9: wall-clock time of the imputation methods as the
// number of tuples grows, on the Lake and Economic datasets. Built on
// google-benchmark with manual timing around the full Impute() call.
//
// Expected shape (paper): kNNE / DLM / GAIN / CAMF scale worst; the MF
// family and Iterative are fastest; SMFL slightly faster than SMF (frozen
// landmark columns skip part of every V update).

#include <benchmark/benchmark.h>

#include "src/data/inject.h"
#include "src/exp/experiment.h"
#include "src/impute/registry.h"

using namespace smfl;
using la::Index;
using la::Matrix;

namespace {

// Methods plotted in Fig 9 (IIM excluded: the paper reports it OOT).
const char* kMethods[] = {"kNNE", "DLM",        "GAIN",      "CAMF",
                          "MC",   "SoftImpute", "Iterative", "NMF",
                          "SMF",  "SMFL"};

struct PreparedCase {
  Matrix input;
  data::Mask observed;
};

PreparedCase PrepareCase(const std::string& dataset, Index rows) {
  auto prepared = *exp::PrepareDataset(dataset, rows, /*seed=*/7);
  std::vector<std::string> names;
  for (Index j = 0; j < prepared.truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table = *data::Table::Create(names, prepared.truth, 2);
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = 11;
  auto injection = *data::InjectMissing(table, inject);
  return {data::ApplyMask(prepared.truth, injection.observed),
          std::move(injection.observed)};
}

void BM_Impute(benchmark::State& state, const std::string& dataset,
               const std::string& method) {
  const Index rows = state.range(0);
  PreparedCase c = PrepareCase(dataset, rows);
  auto imputer_result = impute::MakeImputer(method);
  auto imputer = std::move(imputer_result).value();
  for (auto _ : state) {
    auto imputed = imputer->Impute(c.input, c.observed, 2);
    if (!imputed.ok()) {
      state.SkipWithError(imputed.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(imputed);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* dataset : {"lake", "economic"}) {
    for (const char* method : kMethods) {
      auto* bench = benchmark::RegisterBenchmark(
          (std::string("Fig9/") + dataset + "/" + method).c_str(),
          [dataset = std::string(dataset),
           method = std::string(method)](benchmark::State& state) {
            BM_Impute(state, dataset, method);
          });
      bench->Arg(250)->Arg(500)->Arg(1000)->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
