#include "src/exp/sweep.h"

#include "src/impute/mf_imputers.h"

namespace smfl::exp {

Result<ReportTable> RunSmflSweep(const SweepSpec& spec) {
  if (spec.datasets.empty() || spec.value_labels.empty()) {
    return Status::InvalidArgument("RunSmflSweep: empty datasets or values");
  }
  if (!spec.apply) {
    return Status::InvalidArgument("RunSmflSweep: missing apply function");
  }
  if (!spec.include_smf && !spec.include_smfl) {
    return Status::InvalidArgument("RunSmflSweep: no methods selected");
  }
  std::vector<std::string> columns = {"Dataset", "Method"};
  columns.insert(columns.end(), spec.value_labels.begin(),
                 spec.value_labels.end());
  ReportTable table(std::move(columns));

  for (const std::string& dataset_name : spec.datasets) {
    const Index rows = spec.rows_override > 0 ? spec.rows_override
                                              : DefaultRowsFor(dataset_name);
    ASSIGN_OR_RETURN(PreparedDataset prepared,
                     PrepareDataset(dataset_name, rows));
    std::vector<bool> landmark_variants;
    if (spec.include_smf) landmark_variants.push_back(false);
    if (spec.include_smfl) landmark_variants.push_back(true);
    for (bool landmarks : landmark_variants) {
      table.BeginRow(dataset_name);
      table.AddCell(landmarks ? "SMFL" : "SMF");
      for (size_t v = 0; v < spec.value_labels.size(); ++v) {
        core::SmflOptions options;
        options.use_landmarks = landmarks;
        spec.apply(v, &options);
        auto result =
            landmarks
                ? RunImputationTrials(prepared,
                                      impute::SmflImputer(options),
                                      spec.trial)
                : RunImputationTrials(prepared, impute::SmfImputer(options),
                                      spec.trial);
        if (result.ok()) {
          table.AddNumber(result->mean_rms);
        } else {
          table.AddCell("ERR");
        }
      }
    }
  }
  return table;
}

}  // namespace smfl::exp
