#include "src/core/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "src/common/durable_io.h"
#include "src/common/fit_progress.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/common/telemetry.h"

namespace smfl::core {

uint64_t Fnv1a64(std::string_view bytes, uint64_t h) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

constexpr const char* kCheckpointMagic = "smfl-checkpoint";
constexpr int kCheckpointVersion = 1;

// Same hostile-header bounds as model_io: reject implausible dimensions
// before any allocation.
constexpr long long kMaxDim = 1LL << 24;
constexpr long long kMaxElems = 1LL << 27;
constexpr long long kMaxTraceLen = 1LL << 24;

// Section order of the checkpoint container.
constexpr const char* kSectionOrder[] = {
    "meta",  "u",       "v",       "landmarks",  "trace",
    "guard", "guard_u", "guard_v", "normalizer", "best_model"};
constexpr size_t kNumSections = sizeof(kSectionOrder) / sizeof(kSectionOrder[0]);

// Doubles travel as the hex of their IEEE-754 bit pattern: exact by
// construction (no decimal round-trip), fixed width, text-diffable.
std::string HexU64(uint64_t v) {
  return StrFormat("%016llx", static_cast<unsigned long long>(v));
}

bool ParseHexU64(std::istream& is, uint64_t* out) {
  std::string tok;
  if (!(is >> tok) || tok.empty() || tok.size() > 16) return false;
  uint64_t v = 0;
  for (char c : tok) {
    int d = 0;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

std::string HexDouble(double v) { return HexU64(std::bit_cast<uint64_t>(v)); }

bool ParseHexDouble(std::istream& is, double* out) {
  uint64_t bits = 0;
  if (!ParseHexU64(is, &bits)) return false;
  *out = std::bit_cast<double>(bits);
  return true;
}

// Reads "tag" and verifies it matches.
bool ExpectTag(std::istream& is, const char* tag) {
  std::string tok;
  return (is >> tok) && tok == tag;
}

std::string EncodeMatrix(const la::Matrix& m) {
  std::string out = StrFormat("%lld %lld\n", static_cast<long long>(m.rows()),
                              static_cast<long long>(m.cols()));
  for (la::Index i = 0; i < m.rows(); ++i) {
    auto row = m.Row(i);
    for (la::Index j = 0; j < m.cols(); ++j) {
      out += HexDouble(row[static_cast<size_t>(j)]);
      out += (j + 1 < m.cols()) ? ' ' : '\n';
    }
  }
  return out;
}

Result<la::Matrix> DecodeMatrix(const std::string& payload, const char* name) {
  std::istringstream is(payload);
  long long rows = -1, cols = -1;
  if (!(is >> rows >> cols) || rows < 0 || cols < 0) {
    return Status::DataError(
        StrFormat("checkpoint: bad dimension header for '%s'", name));
  }
  if (rows > kMaxDim || cols > kMaxDim ||
      (rows > 0 && cols > kMaxElems / rows)) {
    return Status::DataError(StrFormat(
        "checkpoint: implausible dimensions %lldx%lld for '%s'", rows, cols,
        name));
  }
  la::Matrix m(static_cast<la::Index>(rows), static_cast<la::Index>(cols));
  for (la::Index i = 0; i < m.size(); ++i) {
    if (!ParseHexDouble(is, &m.data()[i])) {
      return Status::DataError(
          StrFormat("checkpoint: truncated matrix '%s'", name));
    }
  }
  return m;
}

std::string EncodeMeta(const FitCheckpoint& cp) {
  std::string out = StrFormat("%s %d\n", kCheckpointMagic, kCheckpointVersion);
  out += "seed " + HexU64(cp.seed) + "\n";
  out += "input_fingerprint " + HexU64(cp.input_fingerprint) + "\n";
  out += "options_fingerprint " + HexU64(cp.options_fingerprint) + "\n";
  out += StrFormat("restart %d\n", cp.restart);
  out += StrFormat("attempt %d\n", cp.attempt);
  out += StrFormat("retries_used %d\n", cp.retries_used);
  out += StrFormat("iteration %d\n", cp.iteration);
  out += "div_eps " + HexDouble(cp.div_eps) + "\n";
  out += StrFormat("spatial_cols %lld\n",
                   static_cast<long long>(cp.spatial_cols));
  return out;
}

Status DecodeMeta(const std::string& payload, FitCheckpoint* cp) {
  std::istringstream is(payload);
  std::string magic;
  int version = -1;
  if (!(is >> magic >> version) || magic != kCheckpointMagic) {
    return Status::DataError("checkpoint: bad magic");
  }
  if (version != kCheckpointVersion) {
    return Status::DataError(
        StrFormat("checkpoint: unsupported version %d", version));
  }
  long long spatial_cols = -1;
  if (!ExpectTag(is, "seed") || !ParseHexU64(is, &cp->seed) ||
      !ExpectTag(is, "input_fingerprint") ||
      !ParseHexU64(is, &cp->input_fingerprint) ||
      !ExpectTag(is, "options_fingerprint") ||
      !ParseHexU64(is, &cp->options_fingerprint) ||
      !ExpectTag(is, "restart") || !(is >> cp->restart) ||
      !ExpectTag(is, "attempt") || !(is >> cp->attempt) ||
      !ExpectTag(is, "retries_used") || !(is >> cp->retries_used) ||
      !ExpectTag(is, "iteration") || !(is >> cp->iteration) ||
      !ExpectTag(is, "div_eps") || !ParseHexDouble(is, &cp->div_eps) ||
      !ExpectTag(is, "spatial_cols") || !(is >> spatial_cols)) {
    return Status::DataError("checkpoint: malformed meta section");
  }
  if (cp->restart < 0 || cp->attempt < 0 || cp->retries_used < 0 ||
      cp->iteration < 0 || spatial_cols < 0 || spatial_cols > kMaxDim) {
    return Status::DataError("checkpoint: meta fields out of range");
  }
  cp->spatial_cols = static_cast<la::Index>(spatial_cols);
  return Status::OK();
}

std::string EncodeTrace(const std::vector<double>& trace) {
  std::string out = StrFormat("%zu\n", trace.size());
  for (double v : trace) {
    out += HexDouble(v);
    out += '\n';
  }
  return out;
}

Status DecodeTrace(const std::string& payload, std::vector<double>* trace) {
  std::istringstream is(payload);
  long long n = -1;
  if (!(is >> n) || n < 0 || n > kMaxTraceLen) {
    return Status::DataError("checkpoint: bad trace header");
  }
  trace->resize(static_cast<size_t>(n));
  for (double& v : *trace) {
    if (!ParseHexDouble(is, &v)) {
      return Status::DataError("checkpoint: truncated trace");
    }
  }
  return Status::OK();
}

// Guard scalars; the guard's snapshot matrices ride in their own
// sections (guard_u / guard_v).
std::string EncodeGuard(const TrainingGuard::State& g) {
  std::string out;
  out += "div_eps " + HexDouble(g.div_eps) + "\n";
  out += "prev_objective " + HexDouble(g.prev_objective) + "\n";
  out += "checkpoint_objective " + HexDouble(g.checkpoint_objective) + "\n";
  out += StrFormat("checkpoint_iteration %d\n", g.checkpoint_iteration);
  out += StrFormat("flags %d %d %d %d\n", g.have_checkpoint ? 1 : 0,
                   g.rebaseline ? 1 : 0, g.rollbacks, g.recovery_attempts);
  out += "rng " + HexU64(g.rng.s[0]) + " " + HexU64(g.rng.s[1]) + " " +
         HexU64(g.rng.s[2]) + " " + HexU64(g.rng.s[3]) +
         StrFormat(" %d ", g.rng.have_cached_normal ? 1 : 0) +
         HexU64(g.rng.cached_normal_bits) + "\n";
  return out;
}

Status DecodeGuard(const std::string& payload, TrainingGuard::State* g) {
  std::istringstream is(payload);
  int have_checkpoint = 0, rebaseline = 0, have_cached = 0;
  if (!ExpectTag(is, "div_eps") || !ParseHexDouble(is, &g->div_eps) ||
      !ExpectTag(is, "prev_objective") ||
      !ParseHexDouble(is, &g->prev_objective) ||
      !ExpectTag(is, "checkpoint_objective") ||
      !ParseHexDouble(is, &g->checkpoint_objective) ||
      !ExpectTag(is, "checkpoint_iteration") ||
      !(is >> g->checkpoint_iteration) || !ExpectTag(is, "flags") ||
      !(is >> have_checkpoint >> rebaseline >> g->rollbacks >>
        g->recovery_attempts) ||
      !ExpectTag(is, "rng") || !ParseHexU64(is, &g->rng.s[0]) ||
      !ParseHexU64(is, &g->rng.s[1]) || !ParseHexU64(is, &g->rng.s[2]) ||
      !ParseHexU64(is, &g->rng.s[3]) || !(is >> have_cached) ||
      !ParseHexU64(is, &g->rng.cached_normal_bits)) {
    return Status::DataError("checkpoint: malformed guard section");
  }
  g->have_checkpoint = have_checkpoint != 0;
  g->rebaseline = rebaseline != 0;
  g->rng.have_cached_normal = have_cached != 0;
  return Status::OK();
}

std::string EncodeNormalizer(
    const std::optional<data::MinMaxNormalizer>& normalizer) {
  if (!normalizer.has_value()) return "cols 0\n";
  std::string out = StrFormat(
      "cols %lld\n", static_cast<long long>(normalizer->NumCols()));
  for (la::Index j = 0; j < normalizer->NumCols(); ++j) {
    out += HexDouble(normalizer->ColMin(j)) + " " +
           HexDouble(normalizer->ColMax(j)) + "\n";
  }
  return out;
}

Status DecodeNormalizer(const std::string& payload,
                        std::optional<data::MinMaxNormalizer>* normalizer) {
  std::istringstream is(payload);
  long long cols = -1;
  if (!ExpectTag(is, "cols") || !(is >> cols) || cols < 0 || cols > kMaxDim) {
    return Status::DataError("checkpoint: bad normalizer header");
  }
  if (cols == 0) {
    normalizer->reset();
    return Status::OK();
  }
  std::vector<double> mins(static_cast<size_t>(cols));
  std::vector<double> maxs(static_cast<size_t>(cols));
  for (long long j = 0; j < cols; ++j) {
    if (!ParseHexDouble(is, &mins[static_cast<size_t>(j)]) ||
        !ParseHexDouble(is, &maxs[static_cast<size_t>(j)])) {
      return Status::DataError("checkpoint: truncated normalizer bounds");
    }
  }
  auto fitted =
      data::MinMaxNormalizer::FromBounds(std::move(mins), std::move(maxs));
  if (!fitted.ok()) {
    Status st = fitted.status();
    return st.WithContext("checkpoint normalizer");
  }
  *normalizer = std::move(fitted).value();
  return Status::OK();
}

}  // namespace

std::string SerializeCheckpoint(const FitCheckpoint& checkpoint) {
  SectionWriter writer;
  writer.Add("meta", EncodeMeta(checkpoint));
  writer.Add("u", EncodeMatrix(checkpoint.u));
  writer.Add("v", EncodeMatrix(checkpoint.v));
  writer.Add("landmarks", EncodeMatrix(checkpoint.landmarks));
  writer.Add("trace", EncodeTrace(checkpoint.objective_trace));
  writer.Add("guard", EncodeGuard(checkpoint.guard));
  writer.Add("guard_u", EncodeMatrix(checkpoint.guard.checkpoint_u));
  writer.Add("guard_v", EncodeMatrix(checkpoint.guard.checkpoint_v));
  writer.Add("normalizer", EncodeNormalizer(checkpoint.normalizer));
  writer.Add("best_model", checkpoint.best_model);
  return writer.Finish();
}

Result<FitCheckpoint> DeserializeCheckpoint(const std::string& content) {
  ASSIGN_OR_RETURN(std::vector<Section> sections, ParseSections(content));
  if (sections.size() != kNumSections) {
    return Status::DataError(StrFormat(
        "checkpoint: expected %zu sections, found %zu", kNumSections,
        sections.size()));
  }
  for (size_t i = 0; i < kNumSections; ++i) {
    if (sections[i].name != kSectionOrder[i]) {
      return Status::DataError(StrFormat(
          "checkpoint: expected section '%s' at position %zu, found '%s'",
          kSectionOrder[i], i, sections[i].name.c_str()));
    }
  }
  FitCheckpoint cp;
  RETURN_NOT_OK(DecodeMeta(sections[0].payload, &cp));
  ASSIGN_OR_RETURN(cp.u, DecodeMatrix(sections[1].payload, "u"));
  ASSIGN_OR_RETURN(cp.v, DecodeMatrix(sections[2].payload, "v"));
  ASSIGN_OR_RETURN(cp.landmarks,
                   DecodeMatrix(sections[3].payload, "landmarks"));
  RETURN_NOT_OK(DecodeTrace(sections[4].payload, &cp.objective_trace));
  RETURN_NOT_OK(DecodeGuard(sections[5].payload, &cp.guard));
  ASSIGN_OR_RETURN(cp.guard.checkpoint_u,
                   DecodeMatrix(sections[6].payload, "guard_u"));
  ASSIGN_OR_RETURN(cp.guard.checkpoint_v,
                   DecodeMatrix(sections[7].payload, "guard_v"));
  RETURN_NOT_OK(DecodeNormalizer(sections[8].payload, &cp.normalizer));
  cp.best_model = std::move(sections[9].payload);
  // Structural consistency (the CRCs already vouch for integrity; these
  // catch a logically inconsistent writer).
  if (cp.u.cols() != cp.v.rows()) {
    return Status::DataError("checkpoint: U/V rank mismatch");
  }
  if (cp.spatial_cols > cp.v.cols()) {
    return Status::DataError("checkpoint: spatial_cols exceeds columns");
  }
  if (cp.objective_trace.empty()) {
    return Status::DataError("checkpoint: empty objective trace");
  }
  return cp;
}

// ---------------------------------------------------------------------------
// CheckpointManager

namespace {

std::string GenerationPath(const std::string& dir, long long generation) {
  return StrFormat("%s/checkpoint-%08lld.smfl", dir.c_str(), generation);
}

// Generation numbers present in `dir`, sorted ascending. A missing or
// unreadable directory is just "no generations".
std::vector<long long> ListGenerations(const std::string& dir) {
  std::vector<long long> generations;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return generations;
  constexpr std::string_view kPrefix = "checkpoint-";
  constexpr std::string_view kSuffix = ".smfl";
  while (dirent* entry = ::readdir(d)) {
    std::string_view name = entry->d_name;
    if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    if (name.substr(name.size() - kSuffix.size()) != kSuffix) continue;
    std::string_view digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    long long generation = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9' || generation > kMaxDim) {
        numeric = false;
        break;
      }
      generation = generation * 10 + (c - '0');
    }
    if (numeric) generations.push_back(generation);
  }
  ::closedir(d);
  std::sort(generations.begin(), generations.end());
  return generations;
}

// mkdir -p: creates every missing component of `dir`.
Status EnsureDirExists(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("checkpoint directory is empty");
  }
  for (size_t pos = 1; pos <= dir.size(); ++pos) {
    if (pos != dir.size() && dir[pos] != '/') continue;
    const std::string prefix = dir.substr(0, pos);
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return Status::IoError(StrFormat("mkdir('%s'): %s", prefix.c_str(),
                                       std::strerror(errno)));
    }
  }
  return Status::OK();
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointConfig config)
    : config_(std::move(config)) {}

Status CheckpointManager::Save(const FitCheckpoint& checkpoint) {
  SMFL_TRACE_SPAN("checkpoint.write");
  const int64_t start_us = telemetry::NowMicros();
  if (next_generation_ < 0) {
    RETURN_NOT_OK(EnsureDirExists(config_.dir));
    const auto generations = ListGenerations(config_.dir);
    next_generation_ = generations.empty() ? 0 : generations.back() + 1;
  }
  // Stamp the training normalizer in unless the caller carried its own.
  const FitCheckpoint* to_write = &checkpoint;
  FitCheckpoint stamped;
  if (normalizer_ != nullptr && !checkpoint.normalizer.has_value()) {
    stamped = checkpoint;
    stamped.normalizer = *normalizer_;
    to_write = &stamped;
  }
  const std::string bytes = SerializeCheckpoint(*to_write);
  const long long generation = next_generation_;
  Status st = WriteFileDurable(GenerationPath(config_.dir, generation), bytes);
  if (!st.ok()) {
    SMFL_COUNTER_INC("smfl.checkpoint.failures");
    return st;
  }
  ++next_generation_;
  ++writes_;
  // /statusz reports the generation a --resume would restart from.
  GlobalFitProgress().checkpoint_generation.store(generation,
                                                  std::memory_order_relaxed);
  SMFL_COUNTER_INC("smfl.checkpoint.writes");
  SMFL_HISTOGRAM_RECORD("smfl.checkpoint.bytes",
                        static_cast<double>(bytes.size()));
  SMFL_HISTOGRAM_RECORD(
      "smfl.checkpoint.write_us",
      static_cast<double>(telemetry::NowMicros() - start_us));
  if (config_.keep > 0) {
    for (long long old : ListGenerations(config_.dir)) {
      if (old > generation - config_.keep) continue;
      const std::string path = GenerationPath(config_.dir, old);
      if (::unlink(path.c_str()) != 0) {
        SMFL_LOG(Warning) << "checkpoint rotation: cannot remove '" << path
                          << "': " << std::strerror(errno);
      }
    }
  }
  // Periodic telemetry flush: the trace and metrics observed so far
  // survive the same crash the checkpoint protects against.
  if (telemetry::Enabled()) {
    if (!config_.trace_flush_path.empty()) {
      Status flush = telemetry::TraceRecorder::Global().WriteChromeTrace(
          config_.trace_flush_path);
      if (!flush.ok()) {
        SMFL_LOG(Warning) << "checkpoint trace flush: " << flush.ToString();
      }
    }
    if (!config_.metrics_flush_path.empty()) {
      Status flush = telemetry::MetricsRegistry::Global().WriteMetricsJsonl(
          config_.metrics_flush_path);
      if (!flush.ok()) {
        SMFL_LOG(Warning) << "checkpoint metrics flush: " << flush.ToString();
      }
    }
  }
  if (post_write_hook_) post_write_hook_(writes_);
  return Status::OK();
}

Result<FitCheckpoint> CheckpointManager::LoadLatest() {
  SMFL_TRACE_SPAN("checkpoint.restore");
  const auto generations = ListGenerations(config_.dir);
  if (generations.empty()) {
    return Status::NotFound("no checkpoints in '" + config_.dir + "'");
  }
  Status last_error = Status::OK();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string path = GenerationPath(config_.dir, *it);
    Result<FitCheckpoint> cp = Status::Internal("unread");
    auto content = ReadFileToString(path);
    cp = content.ok() ? DeserializeCheckpoint(content.value())
                      : Result<FitCheckpoint>(content.status());
    if (cp.ok()) {
      next_generation_ = *it + 1;
      SMFL_COUNTER_INC("smfl.checkpoint.restores");
      return cp;
    }
    SMFL_COUNTER_INC("smfl.checkpoint.corrupt_skipped");
    SMFL_LOG(Warning) << "skipping unreadable checkpoint '" << path
                      << "': " << cp.status().ToString();
    last_error = cp.status();
  }
  Status st = last_error;
  st.WithContext(StrFormat("all %zu checkpoint generation(s) in '%s' are "
                           "unreadable",
                           generations.size(), config_.dir.c_str()));
  return st;
}

}  // namespace smfl::core
