file(REMOVE_RECURSE
  "CMakeFiles/smfl_exp.dir/experiment.cc.o"
  "CMakeFiles/smfl_exp.dir/experiment.cc.o.d"
  "CMakeFiles/smfl_exp.dir/metrics.cc.o"
  "CMakeFiles/smfl_exp.dir/metrics.cc.o.d"
  "CMakeFiles/smfl_exp.dir/report.cc.o"
  "CMakeFiles/smfl_exp.dir/report.cc.o.d"
  "CMakeFiles/smfl_exp.dir/sweep.cc.o"
  "CMakeFiles/smfl_exp.dir/sweep.cc.o.d"
  "libsmfl_exp.a"
  "libsmfl_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
