file(REMOVE_RECURSE
  "libsmfl_common.a"
)
