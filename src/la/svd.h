// Singular value decomposition via one-sided Jacobi rotations.
//
// One-sided Jacobi is simple, numerically robust, and accurate for the
// moderate sizes this library handles (N up to ~1e5 rows but with small
// column counts, where the cost is dominated by column sweeps over m^2
// pairs). It underpins the MC (SVT), SoftImpute, and PCA baselines.

#ifndef SMFL_LA_SVD_H_
#define SMFL_LA_SVD_H_

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::la {

// A = U * diag(s) * V^T with U: n x r, V: m x r, r = min(n, m).
// Singular values are sorted in non-increasing order.
struct SvdDecomposition {
  Matrix u;
  Vector s;
  Matrix v;
};

struct SvdOptions {
  // Convergence threshold on the off-diagonal orthogonality measure.
  double tolerance = 1e-12;
  // Max full sweeps over all column pairs.
  int max_sweeps = 60;
};

// Full (thin) SVD. Fails with NumericError on non-finite input or if the
// sweep budget is exhausted before convergence.
Result<SvdDecomposition> Svd(const Matrix& a, const SvdOptions& options = {});

// Reconstructs U * diag(s) * V^T.
Matrix SvdReconstruct(const SvdDecomposition& svd);

// Rank-k truncation of an SVD (keeps the k largest singular values).
SvdDecomposition TruncateSvd(const SvdDecomposition& svd, Index k);

// Soft-thresholding operator S_tau(A): shrink singular values by tau and
// drop the ones that hit zero. The core step of SoftImpute and SVT.
Result<Matrix> SoftThresholdSvd(const Matrix& a, double tau,
                                const SvdOptions& options = {});

// Nuclear norm ||A||_* = sum of singular values.
Result<double> NuclearNorm(const Matrix& a, const SvdOptions& options = {});

}  // namespace smfl::la

#endif  // SMFL_LA_SVD_H_
