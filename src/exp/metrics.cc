#include "src/exp/metrics.h"

#include <cmath>

namespace smfl::exp {

Result<double> RmsOverMask(const Matrix& estimate, const Matrix& truth,
                           const Mask& mask) {
  if (!estimate.SameShape(truth)) {
    return Status::InvalidArgument("RmsOverMask: shape mismatch");
  }
  if (mask.rows() != truth.rows() || mask.cols() != truth.cols()) {
    return Status::InvalidArgument("RmsOverMask: mask shape mismatch");
  }
  double acc = 0.0;
  Index count = 0;
  for (Index i = 0; i < truth.rows(); ++i) {
    for (Index j = 0; j < truth.cols(); ++j) {
      if (!mask.Contains(i, j)) continue;
      const double d = estimate(i, j) - truth(i, j);
      acc += d * d;
      ++count;
    }
  }
  if (count == 0) {
    return Status::InvalidArgument("RmsOverMask: empty evaluation mask");
  }
  return std::sqrt(acc / static_cast<double>(count));
}

}  // namespace smfl::exp
