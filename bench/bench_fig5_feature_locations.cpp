// Reproduces Figs 1 and 5 as numbers: where do the learned feature
// locations (first L columns of V) land relative to the data observations?
//
// For NMF, SMF with gradient descent (SMF-GD), SMF with multiplicative
// updates (SMF-Multi), and SMFL, reports:
//   * the feature coordinates themselves (the Fig 5 scatter),
//   * fraction inside the observations' bounding box (Fig 5's dashed box),
//   * mean/max distance to the nearest observation.
//
// Expected shape (paper): SMF-GD and SMF-Multi features stray far outside
// the box ("points in the ocean"); SMFL landmarks are always inside and at
// essentially zero distance from the data.

#include "bench/bench_util.h"
#include "src/core/feature_geometry.h"
#include "src/core/smfl.h"
#include "src/data/inject.h"
#include "src/mf/nmf.h"

using namespace smfl;
using la::Index;
using la::Matrix;

int main() {
  auto prepared = bench::ValueOrDie(
      exp::PrepareDataset("vehicle", 1000, /*seed=*/7));
  std::vector<std::string> names;
  for (Index j = 0; j < prepared.truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table =
      bench::ValueOrDie(data::Table::Create(names, prepared.truth, 2));
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = 5;
  auto injection = bench::ValueOrDie(data::InjectMissing(table, inject));
  Matrix input = data::ApplyMask(prepared.truth, injection.observed);
  Matrix si = prepared.truth.Block(0, 0, prepared.truth.rows(), 2);

  exp::ReportTable report(
      {"Method", "InBoundingBox", "MeanDistToData", "MaxDistToData"});

  auto add_row = [&](const std::string& name, const Matrix& features) {
    auto stats =
        bench::ValueOrDie(core::ComputeFeatureGeometry(si, features));
    report.BeginRow(name);
    report.AddNumber(stats.fraction_in_bounding_box, 2);
    report.AddNumber(stats.mean_distance_to_nearest_observation, 4);
    report.AddNumber(stats.max_distance_to_nearest_observation, 4);
    std::printf("%s feature locations (normalized lat, lon):\n",
                name.c_str());
    for (Index k = 0; k < features.rows(); ++k) {
      std::printf("  (%.3f, %.3f)\n", features(k, 0), features(k, 1));
    }
  };

  const Index rank = 5;  // matches the paper's Fig 5 (K = 5)
  {
    mf::NmfOptions options;
    options.rank = rank;
    auto model =
        bench::ValueOrDie(mf::FitNmf(input, injection.observed, options));
    add_row("NMF", model.v.Block(0, 0, rank, 2));
  }
  {
    core::SmflOptions options;
    options.rank = rank;
    options.use_landmarks = false;
    options.update = core::UpdateMethod::kGradientDescent;
    options.learning_rate = 1e-3;
    auto model = bench::ValueOrDie(
        core::FitSmfl(input, injection.observed, 2, options));
    add_row("SMF-GD", model.FeatureLocations());
  }
  {
    core::SmflOptions options;
    options.rank = rank;
    options.use_landmarks = false;
    auto model = bench::ValueOrDie(
        core::FitSmfl(input, injection.observed, 2, options));
    add_row("SMF-Multi", model.FeatureLocations());
  }
  {
    core::SmflOptions options;
    options.rank = rank;
    options.use_landmarks = true;
    auto model = bench::ValueOrDie(
        core::FitSmfl(input, injection.observed, 2, options));
    add_row("SMFL", model.FeatureLocations());
  }
  report.Print("Fig 5: learned feature locations vs data observations");
  std::printf("%s", report.ToCsv().c_str());
  return 0;
}
