// Vehicle route planning application (paper §IV-B3, Fig 4a).
//
// A route is a sequence of observation rows; its accumulated fuel
// consumption is Σ over consecutive pairs of (segment distance in km) ×
// (average fuel consumption rate of the segment endpoints, per km).
// An imputation method is scored by the absolute difference between the
// accumulated consumption computed on its imputed fuel column and on the
// ground truth.

#ifndef SMFL_APPS_ROUTE_H_
#define SMFL_APPS_ROUTE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::apps {

using la::Index;
using la::Matrix;

struct Route {
  // Row indices of consecutive waypoints.
  std::vector<Index> waypoints;
};

// Samples a plausible route: starts at a random row and repeatedly hops to
// the nearest not-yet-visited row (a greedy spatial walk), for `length`
// waypoints. `si` is the N x 2 (lat, lon) block.
Result<Route> SampleRoute(const Matrix& si, Index length, uint64_t seed);

// Accumulated fuel use of `route` using `fuel_rate[i]` (consumption per km
// at row i, in original units) and haversine segment lengths.
Result<double> AccumulatedFuel(const Matrix& si,
                               const std::vector<double>& fuel_rate,
                               const Route& route);

// Convenience: |AccumulatedFuel(imputed) − AccumulatedFuel(truth)| averaged
// over `routes`.
Result<double> MeanRouteFuelError(const Matrix& si,
                                  const std::vector<double>& fuel_truth,
                                  const std::vector<double>& fuel_imputed,
                                  const std::vector<Route>& routes);

struct RoutePlan {
  // Index into the candidate list of the cheapest route.
  size_t chosen = 0;
  // Fuel cost of every candidate under the given rates.
  std::vector<double> costs;
};

// The paper's application: given a fuel map (possibly imputed), pick the
// cheapest of the candidate routes. Fails if `candidates` is empty or any
// route is invalid.
Result<RoutePlan> PlanRoute(const Matrix& si,
                            const std::vector<double>& fuel_rate,
                            const std::vector<Route>& candidates);

}  // namespace smfl::apps

#endif  // SMFL_APPS_ROUTE_H_
