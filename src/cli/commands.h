// The smfl command-line tool's subcommands, as testable library functions.
// The binary (tools/smfl_main.cpp) only dispatches to these.
//
//   smfl impute --in=data.csv --out=completed.csv [--method=SMFL]
//               [--spatial=2] [--rank=10] [--lambda=0.5] [--neighbors=3]
//               [--fallback=SMFL,SMF,NMF,Mean]
//   smfl repair --in=data.csv --out=repaired.csv [--method=SMFL]
//               [--spatial=2] (detects errors statistically, then repairs)
//
// Robustness flags shared by the CSV-reading commands (docs/robustness.md):
//   --lenient          quarantine malformed rows instead of failing the file
//   --fallback=a,b,c   graceful degradation chain; the report names the
//                      tier that served
//   smfl stats  --in=data.csv [--spatial=2]
//   smfl fit    --in=train.csv --model=model.txt [--spatial=2] [--rank=10]
//               [--lambda=0.5] [--neighbors=3]
//   smfl apply  --in=fresh.csv --model=model.txt --out=completed.csv
//               (fold-in: impute fresh rows against a saved model)
//   smfl select --in=data.csv [--spatial=2]
//               (grid-search lambda/K on a validation holdout)
//
// CSV contract: header row; empty cells = missing values; the first
// --spatial columns are coordinates. Imputation fills the empty cells and
// writes a complete CSV in the original units.

#ifndef SMFL_CLI_COMMANDS_H_
#define SMFL_CLI_COMMANDS_H_

#include <string>

#include "src/common/flags.h"
#include "src/common/status.h"

namespace smfl::cli {

// Dispatches on flags.positional()[0] ("impute" | "repair" | "stats");
// the report (tables, summaries) is appended to *output. Returns
// InvalidArgument with a usage string for unknown/missing subcommands.
Status Run(const Flags& flags, std::string* output);

// Individual subcommands (exposed for tests).
Status RunImputeCommand(const Flags& flags, std::string* output);
Status RunRepairCommand(const Flags& flags, std::string* output);
Status RunStatsCommand(const Flags& flags, std::string* output);
Status RunFitCommand(const Flags& flags, std::string* output);
Status RunApplyCommand(const Flags& flags, std::string* output);
Status RunSelectCommand(const Flags& flags, std::string* output);

// The usage/help text.
std::string UsageText();

}  // namespace smfl::cli

#endif  // SMFL_CLI_COMMANDS_H_
