#include "src/obs/prometheus.h"

#include <cstddef>

#include "src/common/strings.h"

namespace smfl::obs {

namespace {

using telemetry::Histogram;

bool ValidNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

void AppendHeader(const std::string& mangled, const std::string& original,
                  const char* type, std::string* out) {
  *out += StrFormat("# HELP %s smfl metric %s\n", mangled.c_str(),
                    EscapeHelpText(original).c_str());
  *out += StrFormat("# TYPE %s %s\n", mangled.c_str(), type);
}

}  // namespace

std::string MangleMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (ValidNameChar(c, /*first=*/out.empty())) {
      out += c;
    } else if (out.empty() && c >= '0' && c <= '9') {
      // A digit may not lead a metric name; keep it, prefixed.
      out += '_';
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string EscapeHelpText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderPrometheusText(
    const telemetry::MetricsRegistry::MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string mangled = MangleMetricName(name) + "_total";
    AppendHeader(mangled, name, "counter", &out);
    out += StrFormat("%s %lld\n", mangled.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string mangled = MangleMetricName(name);
    AppendHeader(mangled, name, "gauge", &out);
    out += StrFormat("%s %.17g\n", mangled.c_str(), value);
  }
  for (const auto& [name, snap] : snapshot.histograms) {
    const std::string mangled = MangleMetricName(name);
    AppendHeader(mangled, name, "histogram", &out);
    // Cumulative buckets from the exact per-bucket counts. Buckets above
    // the highest non-empty one add no information below +Inf, so the
    // page stays small for low-magnitude histograms.
    int highest = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (snap.bucket_counts[static_cast<size_t>(b)] > 0) highest = b;
    }
    int64_t cumulative = 0;
    for (int b = 0; b <= highest && b < Histogram::kNumBuckets - 1; ++b) {
      cumulative += snap.bucket_counts[static_cast<size_t>(b)];
      out += StrFormat("%s_bucket{le=\"%g\"} %lld\n", mangled.c_str(),
                       Histogram::BucketLowerBound(b + 1),
                       static_cast<long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", mangled.c_str(),
                     static_cast<long long>(snap.count));
    out += StrFormat("%s_sum %.17g\n", mangled.c_str(), snap.sum);
    out += StrFormat("%s_count %lld\n", mangled.c_str(),
                     static_cast<long long>(snap.count));
  }
  return out;
}

std::string RenderGlobalPrometheusText() {
  return RenderPrometheusText(
      telemetry::MetricsRegistry::Global().SnapshotAll());
}

}  // namespace smfl::obs
