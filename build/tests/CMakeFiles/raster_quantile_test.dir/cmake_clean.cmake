file(REMOVE_RECURSE
  "CMakeFiles/raster_quantile_test.dir/raster_quantile_test.cc.o"
  "CMakeFiles/raster_quantile_test.dir/raster_quantile_test.cc.o.d"
  "raster_quantile_test"
  "raster_quantile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raster_quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
