// Reproduces Fig 1 as data artifacts: the fuel-consumption-rate map of the
// Vehicle dataset (rasterized field, CSV), the SMFL landmark locations, and
// the free feature locations learned by NMF — the three point sets the
// figure overlays. Also prints the quantitative Fig 1 claims: the planted
// east-west fuel gradient and how far each method's features sit from the
// observations.

#include "bench/bench_util.h"
#include "src/apps/field_raster.h"
#include "src/core/feature_geometry.h"
#include "src/core/smfl.h"
#include "src/data/inject.h"
#include "src/data/stats.h"
#include "src/mf/nmf.h"

using namespace smfl;
using la::Index;
using la::Matrix;

int main() {
  auto prepared =
      bench::ValueOrDie(exp::PrepareDataset("vehicle", 2000, /*seed=*/7));
  const Index fuel_col = prepared.truth.cols() - 1;
  Matrix si_raw = prepared.raw.Block(0, 0, prepared.raw.rows(), 2);

  // --- The fuel map (Fig 1's blue field), written as CSV.
  std::vector<double> fuel(static_cast<size_t>(prepared.raw.rows()));
  for (Index i = 0; i < prepared.raw.rows(); ++i) {
    fuel[static_cast<size_t>(i)] = prepared.raw(i, fuel_col);
  }
  auto raster = bench::ValueOrDie(apps::RasterizeField(si_raw, fuel));
  const std::string map_path = "/tmp/smfl_fig1_fuel_map.csv";
  if (auto st = apps::WriteRasterCsv(raster, map_path); st.ok()) {
    std::printf("fuel map raster (%lldx%lld cells) -> %s\n",
                static_cast<long long>(raster.grid.rows()),
                static_cast<long long>(raster.grid.cols()), map_path.c_str());
  }
  // East-west gradient check: mean of the eastern third vs western third.
  double west = 0.0, east = 0.0;
  Index third = raster.grid.cols() / 3;
  for (Index r = 0; r < raster.grid.rows(); ++r) {
    for (Index c = 0; c < third; ++c) west += raster.grid(r, c);
    for (Index c = raster.grid.cols() - third; c < raster.grid.cols(); ++c) {
      east += raster.grid(r, c);
    }
  }
  west /= static_cast<double>(raster.grid.rows() * third);
  east /= static_cast<double>(raster.grid.rows() * third);
  std::printf("mean fuel rate, west third %.3f vs east third %.3f "
              "(east higher, as in Fig 1: %s)\n\n",
              west, east, east > west ? "yes" : "NO");

  // --- Feature locations (Fig 1's purple NMF points vs red landmarks),
  // learned from the 10%-missing normalized matrix.
  std::vector<std::string> names;
  for (Index j = 0; j < prepared.truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table =
      bench::ValueOrDie(data::Table::Create(names, prepared.truth, 2));
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = 5;
  auto injection = bench::ValueOrDie(data::InjectMissing(table, inject));
  Matrix input = data::ApplyMask(prepared.truth, injection.observed);
  Matrix si_norm = prepared.truth.Block(0, 0, prepared.truth.rows(), 2);

  exp::ReportTable report({"Method", "InBoundingBox", "MeanDistToData"});
  {
    mf::NmfOptions options;
    options.rank = 5;
    auto model =
        bench::ValueOrDie(mf::FitNmf(input, injection.observed, options));
    auto stats = bench::ValueOrDie(core::ComputeFeatureGeometry(
        si_norm, model.v.Block(0, 0, 5, 2)));
    report.BeginRow("NMF");
    report.AddNumber(stats.fraction_in_bounding_box, 2);
    report.AddNumber(stats.mean_distance_to_nearest_observation, 4);
  }
  {
    core::SmflOptions options;
    options.rank = 5;
    auto model = bench::ValueOrDie(
        core::FitSmfl(input, injection.observed, 2, options));
    auto stats = bench::ValueOrDie(
        core::ComputeFeatureGeometry(si_norm, model.FeatureLocations()));
    report.BeginRow("SMFL");
    report.AddNumber(stats.fraction_in_bounding_box, 2);
    report.AddNumber(stats.mean_distance_to_nearest_observation, 4);
    std::printf("SMFL landmarks (normalized lat, lon):\n");
    for (Index k = 0; k < model.landmarks.rows(); ++k) {
      std::printf("  (%.3f, %.3f)\n", model.landmarks(k, 0),
                  model.landmarks(k, 1));
    }
  }
  report.Print("Fig 1: where the learned features live");
  std::printf("%s", report.ToCsv().c_str());
  return 0;
}
