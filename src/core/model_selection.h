// Hyper-parameter selection for SMF/SMFL by validation holdout.
//
// The paper's sensitivity study (Figs 6–8) shows λ, p, and K matter; a
// downstream user needs a principled way to pick them for a new dataset.
// SelectSmflOptions hides a fraction of the observed cells, scores each
// candidate configuration by validation RMS on the hidden cells, and
// returns the best configuration (ties: earliest candidate). The neighbor
// graph is rebuilt per (p) but shared across (λ, K) candidates.

#ifndef SMFL_CORE_MODEL_SELECTION_H_
#define SMFL_CORE_MODEL_SELECTION_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/smfl.h"

namespace smfl::core {

struct SelectionGrid {
  std::vector<double> lambdas = {0.05, 0.1, 0.5, 1.0};
  std::vector<Index> ranks = {6, 10, 16};
  std::vector<Index> neighbor_counts = {3};
  // Fraction of observed cells hidden for validation, in (0, 1).
  double validation_fraction = 0.15;
  // Template for all non-swept options (iterations, seeds, updater, ...).
  SmflOptions base;
  uint64_t seed = 97;
};

struct SelectionResult {
  SmflOptions best;
  double best_validation_rms = 0.0;
  // One entry per evaluated candidate, in evaluation order.
  struct Candidate {
    double lambda;
    Index rank;
    Index num_neighbors;
    double validation_rms;
  };
  std::vector<Candidate> candidates;
};

// Evaluates the grid on (x, observed) and returns the winning options.
// The returned options are ready to pass to FitSmfl on the FULL observed
// set. Fails if the grid is empty or the validation split would leave a
// row with no observed data.
Result<SelectionResult> SelectSmflOptions(const Matrix& x,
                                          const Mask& observed,
                                          Index spatial_cols,
                                          const SelectionGrid& grid);

}  // namespace smfl::core

#endif  // SMFL_CORE_MODEL_SELECTION_H_
