# Empty dependencies file for smfl_repair.
# This may be replaced when dependencies are built.
