#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/data/inject.h"
#include "src/la/ops.h"
#include "src/mf/nmf.h"
#include "src/mf/pca.h"
#include "src/mf/softimpute.h"
#include "src/mf/svt.h"

namespace smfl::mf {
namespace {

using data::Mask;

// Nonnegative rank-r matrix UV with uniform factors.
Matrix LowRankNonnegative(Index n, Index m, Index r, uint64_t seed) {
  Rng rng(seed);
  Matrix u(n, r), v(r, m);
  for (Index i = 0; i < u.size(); ++i) u.data()[i] = rng.Uniform(0.0, 1.0);
  for (Index i = 0; i < v.size(); ++i) v.data()[i] = rng.Uniform(0.0, 1.0);
  return u * v;
}

Mask RandomMask(Index n, Index m, double observed_rate, uint64_t seed) {
  Rng rng(seed);
  Mask mask(n, m);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < m; ++j) {
      if (rng.Bernoulli(observed_rate)) mask.Set(i, j);
    }
  }
  // Guarantee at least one observation per row and column.
  for (Index i = 0; i < n; ++i) mask.Set(i, static_cast<Index>(i % m));
  return mask;
}

// ---------------------------------------------------------------- NMF

TEST(NmfTest, ReconstructsFullyObservedLowRank) {
  Matrix x = LowRankNonnegative(30, 8, 3, 1);
  NmfOptions options;
  options.rank = 3;
  options.max_iterations = 2000;
  options.tolerance = 1e-12;
  auto model = FitNmf(x, Mask::AllSet(30, 8), options);
  ASSERT_TRUE(model.ok());
  const double rel = la::FrobeniusNorm(x - model->Reconstruct()) /
                     la::FrobeniusNorm(x);
  EXPECT_LT(rel, 0.02);
}

// The paper's convergence theorem specialized to plain NMF: the objective
// must never increase across iterations, for any rank / density / seed.
class NmfMonotoneTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(NmfMonotoneTest, ObjectiveNonIncreasing) {
  const auto [rank, density, seed] = GetParam();
  Matrix x = LowRankNonnegative(25, 7, 4, 100 + seed);
  Mask mask = RandomMask(25, 7, density, 200 + seed);
  NmfOptions options;
  options.rank = rank;
  options.max_iterations = 150;
  options.tolerance = 0.0;  // run every iteration
  options.seed = static_cast<uint64_t>(seed);
  auto model = FitNmf(x, mask, options);
  ASSERT_TRUE(model.ok());
  const auto& trace = model->report.objective_trace;
  ASSERT_GT(trace.size(), 2u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-9))
        << "objective increased at iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NmfMonotoneTest,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(0.5, 0.8, 1.0),
                       ::testing::Values(1, 2)));

TEST(NmfTest, FactorsStayNonnegative) {
  Matrix x = LowRankNonnegative(20, 6, 3, 3);
  auto model = FitNmf(x, RandomMask(20, 6, 0.7, 5), NmfOptions{});
  ASSERT_TRUE(model.ok());
  for (Index i = 0; i < model->u.size(); ++i) {
    EXPECT_GE(model->u.data()[i], 0.0);
  }
  for (Index i = 0; i < model->v.size(); ++i) {
    EXPECT_GE(model->v.data()[i], 0.0);
  }
}

TEST(NmfTest, ImputePreservesObserved) {
  Matrix x = LowRankNonnegative(15, 5, 2, 7);
  Mask mask = RandomMask(15, 5, 0.6, 9);
  auto model = FitNmf(x, mask, NmfOptions{});
  ASSERT_TRUE(model.ok());
  Matrix imputed = ImputeWithModel(x, mask, *model);
  for (Index i = 0; i < 15; ++i) {
    for (Index j = 0; j < 5; ++j) {
      if (mask.Contains(i, j)) {
        EXPECT_DOUBLE_EQ(imputed(i, j), x(i, j));
      }
    }
  }
}

TEST(NmfTest, RejectsBadInput) {
  Matrix x(3, 3, 1.0);
  EXPECT_FALSE(FitNmf(Matrix(), Mask(), NmfOptions{}).ok());
  NmfOptions options;
  options.rank = 0;
  EXPECT_FALSE(FitNmf(x, Mask::AllSet(3, 3), options).ok());
  // Negative observed entry.
  Matrix neg = x;
  neg(0, 0) = -1.0;
  EXPECT_FALSE(FitNmf(neg, Mask::AllSet(3, 3), NmfOptions{}).ok());
  // Negative value hidden by the mask is fine.
  Mask partial = Mask::AllSet(3, 3);
  partial.Set(0, 0, false);
  EXPECT_TRUE(FitNmf(neg, partial, NmfOptions{}).ok());
  // NaN rejected.
  Matrix nan_x = x;
  nan_x(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(FitNmf(nan_x, Mask::AllSet(3, 3), NmfOptions{}).ok());
}

TEST(NmfTest, HandlesAllZeroColumn) {
  Matrix x = LowRankNonnegative(10, 4, 2, 11);
  for (Index i = 0; i < 10; ++i) x(i, 2) = 0.0;
  auto model = FitNmf(x, Mask::AllSet(10, 4), NmfOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Reconstruct().HasNonFinite());
}

TEST(NmfTest, EarlyStopReportsConvergence) {
  // Under-ranked fit: the objective floors at a positive value, so the
  // relative-improvement criterion must trigger well before the budget.
  // (Exactly factorizable data decays geometrically forever and is the
  // documented case where early stop cannot fire.)
  Matrix x = LowRankNonnegative(20, 5, 4, 13);
  NmfOptions options;
  options.rank = 2;
  options.max_iterations = 5000;
  options.tolerance = 1e-7;
  auto model = FitNmf(x, Mask::AllSet(20, 5), options);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->report.converged);
  EXPECT_LT(model->report.iterations, 5000);
}

// ---------------------------------------------------------------- SVT

TEST(SvtTest, CompletesLowRankMatrix) {
  Matrix x = LowRankNonnegative(40, 10, 2, 17);
  Mask mask = RandomMask(40, 10, 0.7, 19);
  SvtOptions options;
  options.max_iterations = 500;
  auto result = CompleteSvt(x, mask, options);
  ASSERT_TRUE(result.ok());
  // Error on the HIDDEN entries must be small relative to the data scale.
  double err = 0.0, scale = 0.0;
  Index count = 0;
  for (Index i = 0; i < 40; ++i) {
    for (Index j = 0; j < 10; ++j) {
      if (mask.Contains(i, j)) continue;
      err += std::pow(result->completed(i, j) - x(i, j), 2);
      scale += x(i, j) * x(i, j);
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_LT(std::sqrt(err / scale), 0.35);
}

TEST(SvtTest, RejectsDegenerateInput) {
  EXPECT_FALSE(CompleteSvt(Matrix(), Mask(), SvtOptions{}).ok());
  Matrix x(3, 3, 1.0);
  EXPECT_FALSE(CompleteSvt(x, Mask(3, 3), SvtOptions{}).ok());  // empty Ω
}

// ---------------------------------------------------------------- SoftImpute

TEST(SoftImputeTest, CompletesLowRankMatrix) {
  Matrix x = LowRankNonnegative(40, 10, 2, 23);
  Mask mask = RandomMask(40, 10, 0.7, 29);
  auto result = CompleteSoftImpute(x, mask, SoftImputeOptions{});
  ASSERT_TRUE(result.ok());
  double err = 0.0, scale = 0.0;
  for (Index i = 0; i < 40; ++i) {
    for (Index j = 0; j < 10; ++j) {
      if (mask.Contains(i, j)) continue;
      err += std::pow(result->completed(i, j) - x(i, j), 2);
      scale += x(i, j) * x(i, j);
    }
  }
  EXPECT_LT(std::sqrt(err / scale), 0.35);
}

TEST(SoftImputeTest, ConvergesAndReports) {
  Matrix x = LowRankNonnegative(20, 6, 2, 31);
  auto result = CompleteSoftImpute(x, RandomMask(20, 6, 0.8, 37),
                                   SoftImputeOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->report.iterations, 0);
  EXPECT_FALSE(result->completed.HasNonFinite());
}

// ---------------------------------------------------------------- PCA

TEST(PcaTest, RecoversVarianceDirections) {
  // Points stretched along (1, 1): first component must align with it.
  Rng rng(41);
  Matrix x(200, 2);
  for (Index i = 0; i < 200; ++i) {
    const double t = rng.Normal(0.0, 3.0);
    const double s = rng.Normal(0.0, 0.1);
    x(i, 0) = t + s + 5.0;
    x(i, 1) = t - s - 2.0;
  }
  auto pca = FitPca(x, 1);
  ASSERT_TRUE(pca.ok());
  const double c0 = pca->components(0, 0);
  const double c1 = pca->components(1, 0);
  EXPECT_NEAR(std::fabs(c0), std::sqrt(0.5), 0.05);
  EXPECT_NEAR(c0, c1, 0.05);  // same sign, equal magnitude
}

TEST(PcaTest, TransformShape) {
  Matrix x = LowRankNonnegative(30, 6, 3, 43);
  auto pca = FitPca(x, 2);
  ASSERT_TRUE(pca.ok());
  Matrix scores = pca->Transform(x);
  EXPECT_EQ(scores.rows(), 30);
  EXPECT_EQ(scores.cols(), 2);
}

TEST(PcaTest, ScoresAreCentered) {
  Matrix x = LowRankNonnegative(50, 4, 2, 47);
  auto pca = FitPca(x, 2);
  ASSERT_TRUE(pca.ok());
  la::Vector mean = la::ColMeans(pca->Transform(x));
  EXPECT_NEAR(mean[0], 0.0, 1e-8);
  EXPECT_NEAR(mean[1], 0.0, 1e-8);
}

TEST(PcaTest, ClampsKAndValidates) {
  Matrix x = LowRankNonnegative(5, 3, 2, 53);
  auto pca = FitPca(x, 100);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca->components.cols(), 3);
  EXPECT_FALSE(FitPca(Matrix(), 2).ok());
  EXPECT_FALSE(FitPca(x, 0).ok());
}

}  // namespace
}  // namespace smfl::mf
