// ERACER-style relational-statistics imputer (Mayfield et al., SIGMOD'10;
// the paper's §V-B3 statistics-based family).
//
// ERACER learns probabilistic dependencies between attributes and the
// attributes of related (here: spatially neighboring) tuples, then
// iteratively re-estimates missing values until convergence — a
// belief-propagation-flavored cousin of IterativeImputer. This
// implementation models each column as a linear function of (a) the
// tuple's other columns and (b) the neighborhood means of the SAME column,
// refit each round on the current completion. The neighbor term is what
// distinguishes it from IterativeImputer and lets it exploit spatial
// relations the way the original exploits relational links.

#ifndef SMFL_IMPUTE_ERACER_H_
#define SMFL_IMPUTE_ERACER_H_

#include "src/impute/imputer.h"

namespace smfl::impute {

struct EracerOptions {
  // Spatial neighbors feeding the relational term.
  Index neighbors = 4;
  // Re-estimation rounds.
  int rounds = 8;
  double ridge = 1e-3;
  double tolerance = 1e-4;
};

class EracerImputer : public Imputer {
 public:
  explicit EracerImputer(EracerOptions options = {}) : options_(options) {}
  std::string name() const override { return "ERACER"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  EracerOptions options_;
};

}  // namespace smfl::impute

#endif  // SMFL_IMPUTE_ERACER_H_
