// Reproduces Table VII: imputation RMS of NMF / SMF / SMFL as the missing
// rate grows from 10% to 50%, on the Economic, Farm, and Lake datasets.
//
// Expected shape (paper): RMS grows with the missing rate for SMF/SMFL
// (NMF is flat-bad); SMFL <= SMF <= NMF at every rate.

#include "bench/bench_util.h"
#include "src/impute/mf_imputers.h"

using namespace smfl;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  const std::vector<double> rates = {0.1, 0.2, 0.3, 0.4, 0.5};
  std::vector<std::string> columns = {"Dataset", "Algorithm"};
  for (double r : rates) {
    columns.push_back(std::to_string(static_cast<int>(r * 100)) + "%");
  }
  exp::ReportTable table(columns);

  for (const char* dataset_name : {"economic", "farm", "lake"}) {
    auto prepared = bench::ValueOrDie(
        exp::PrepareDataset(dataset_name, bench::RowsFor(config, dataset_name)));
    const impute::NmfImputer nmf;
    const impute::SmfImputer smf;
    const impute::SmflImputer smfl;
    const impute::Imputer* methods[] = {&nmf, &smf, &smfl};
    for (const impute::Imputer* imputer : methods) {
      table.BeginRow(dataset_name);
      table.AddCell(imputer->name());
      for (double rate : rates) {
        exp::TrialOptions options;
        options.trials = config.trials;
        options.missing_rate = rate;
        auto result = exp::RunImputationTrials(prepared, *imputer, options);
        if (result.ok()) {
          table.AddNumber(result->mean_rms);
        } else {
          table.AddCell("ERR");
        }
      }
    }
  }
  table.Print("Table VII: imputation RMS vs missing rate (NMF/SMF/SMFL)");
  std::printf("%s", table.ToCsv().c_str());
  return 0;
}
