#include <gtest/gtest.h>

#include <cmath>

#include "src/core/feature_geometry.h"
#include "src/core/landmarks.h"
#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/exp/metrics.h"
#include "src/la/ops.h"

namespace smfl::core {
namespace {

using data::Mask;

struct Scenario {
  Matrix truth;      // normalized ground truth
  Mask observed;     // Ω
  Matrix input;      // scrubbed input (zeros in Ψ)
  Index spatial_cols = 2;
};

Scenario MakeScenario(Index rows, double missing_rate, uint64_t seed) {
  auto dataset = data::MakeVehicleLike(rows, seed);
  SMFL_CHECK(dataset.ok());
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Scenario s;
  s.truth = normalizer->Transform(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = missing_rate;
  inject.preserve_complete_rows = 20;
  inject.seed = seed + 1;
  auto injection = data::InjectMissing(dataset->table, inject);
  SMFL_CHECK(injection.ok());
  s.observed = injection->observed;
  s.input = data::ApplyMask(s.truth, s.observed);
  return s;
}

// ---------------------------------------------------------------- landmarks

TEST(LandmarkTest, GeneratesRankCenters) {
  auto dataset = data::MakeLakeLike(300, 3);
  Matrix si = dataset->table.SpatialInfo();
  auto landmarks = GenerateLandmarks(si, 5);
  ASSERT_TRUE(landmarks.ok());
  EXPECT_EQ(landmarks->rows(), 5);
  EXPECT_EQ(landmarks->cols(), 2);
}

TEST(LandmarkTest, CentersInsideDataRange) {
  auto dataset = data::MakeLakeLike(300, 5);
  Matrix si = dataset->table.SpatialInfo();
  auto landmarks = GenerateLandmarks(si, 4);
  ASSERT_TRUE(landmarks.ok());
  double lat_lo = 1e300, lat_hi = -1e300, lon_lo = 1e300, lon_hi = -1e300;
  for (Index i = 0; i < si.rows(); ++i) {
    lat_lo = std::min(lat_lo, si(i, 0));
    lat_hi = std::max(lat_hi, si(i, 0));
    lon_lo = std::min(lon_lo, si(i, 1));
    lon_hi = std::max(lon_hi, si(i, 1));
  }
  for (Index k = 0; k < 4; ++k) {
    EXPECT_GE((*landmarks)(k, 0), lat_lo);
    EXPECT_LE((*landmarks)(k, 0), lat_hi);
    EXPECT_GE((*landmarks)(k, 1), lon_lo);
    EXPECT_LE((*landmarks)(k, 1), lon_hi);
  }
}

TEST(LandmarkTest, InjectAndVerify) {
  Matrix v(3, 5, 9.0);
  Matrix c{{1, 2}, {3, 4}, {5, 6}};
  InjectLandmarks(v, c);
  EXPECT_DOUBLE_EQ(v(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(v(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(v(0, 2), 9.0);  // non-landmark columns untouched
  EXPECT_TRUE(LandmarksIntact(v, c));
  v(0, 0) += 1e-9;
  EXPECT_FALSE(LandmarksIntact(v, c));
}

TEST(LandmarkTest, RejectsBadRank) {
  Matrix si(10, 2, 0.5);
  EXPECT_FALSE(GenerateLandmarks(si, 0).ok());
  EXPECT_FALSE(GenerateLandmarks(si, 11).ok());
  EXPECT_FALSE(GenerateLandmarks(Matrix(), 2).ok());
}

// ---------------------------------------------------------------- SMFL fit

TEST(SmflTest, InputValidation) {
  Scenario s = MakeScenario(60, 0.1, 1);
  SmflOptions options;
  EXPECT_FALSE(FitSmfl(Matrix(), Mask(), 2, options).ok());
  EXPECT_FALSE(FitSmfl(s.input, Mask(3, 3), 2, options).ok());  // shape
  options.rank = 0;
  EXPECT_FALSE(FitSmfl(s.input, s.observed, 2, options).ok());
  options.rank = 5;
  options.lambda = -1.0;
  EXPECT_FALSE(FitSmfl(s.input, s.observed, 2, options).ok());
  options.lambda = 0.05;
  EXPECT_FALSE(FitSmfl(s.input, s.observed, 0, options).ok());  // L < 1
  EXPECT_FALSE(
      FitSmfl(s.input, s.observed, s.input.cols() + 1, options).ok());
}

TEST(SmflTest, LandmarksFrozenThroughTraining) {
  Scenario s = MakeScenario(150, 0.15, 2);
  SmflOptions options;
  options.rank = 5;
  options.max_iterations = 60;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  // The first L columns of V must equal the landmark matrix bit-for-bit.
  EXPECT_TRUE(LandmarksIntact(model->v, model->landmarks));
}

TEST(SmflTest, SmfHasNoLandmarks) {
  Scenario s = MakeScenario(100, 0.1, 3);
  SmflOptions options;
  options.use_landmarks = false;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->landmarks.size(), 0);
}

// The paper's Propositions 5 and 7: multiplicative updates never increase
// the objective. Swept over λ, rank, and landmarks on/off.
class SmflMonotoneTest
    : public ::testing::TestWithParam<std::tuple<double, int, bool>> {};

TEST_P(SmflMonotoneTest, ObjectiveNonIncreasing) {
  const auto [lambda, rank, use_landmarks] = GetParam();
  Scenario s = MakeScenario(80, 0.2, 11);
  SmflOptions options;
  options.lambda = lambda;
  options.rank = rank;
  options.use_landmarks = use_landmarks;
  options.max_iterations = 80;
  options.tolerance = 0.0;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  const auto& trace = model->report.objective_trace;
  ASSERT_GT(trace.size(), 2u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-9))
        << "lambda=" << lambda << " rank=" << rank
        << " landmarks=" << use_landmarks << " iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmflMonotoneTest,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.1, 1.0),
                       ::testing::Values(3, 6),
                       ::testing::Bool()));

TEST(SmflTest, FactorsNonnegative) {
  Scenario s = MakeScenario(90, 0.1, 13);
  auto model = FitSmfl(s.input, s.observed, 2, SmflOptions{});
  ASSERT_TRUE(model.ok());
  for (Index i = 0; i < model->u.size(); ++i) {
    EXPECT_GE(model->u.data()[i], 0.0);
  }
  for (Index i = 0; i < model->v.size(); ++i) {
    EXPECT_GE(model->v.data()[i], 0.0);
  }
}

TEST(SmflTest, DeterministicPerSeed) {
  Scenario s = MakeScenario(70, 0.1, 17);
  SmflOptions options;
  options.max_iterations = 40;
  auto a = FitSmfl(s.input, s.observed, 2, options);
  auto b = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(a->u, b->u), 0.0);
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(a->v, b->v), 0.0);
}

TEST(SmflTest, GradientDescentVariantRuns) {
  Scenario s = MakeScenario(80, 0.1, 19);
  SmflOptions options;
  options.update = UpdateMethod::kGradientDescent;
  options.learning_rate = 1e-3;
  options.max_iterations = 100;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->u.HasNonFinite());
  // GD must also make progress from the random initialization.
  const auto& trace = model->report.objective_trace;
  EXPECT_LT(trace.back(), trace.front());
}

TEST(SmflTest, GradientDescentRejectsBadLearningRate) {
  Scenario s = MakeScenario(30, 0.1, 23);
  SmflOptions options;
  options.update = UpdateMethod::kGradientDescent;
  options.learning_rate = 0.0;
  EXPECT_FALSE(FitSmfl(s.input, s.observed, 2, options).ok());
}

// The headline claim, as a statistical property on synthetic data:
// SMFL <= SMF <= NMF-ish in imputation RMS (allow small slack for noise).
TEST(SmflTest, LandmarksAndRegularizationImproveImputation) {
  // Averaged over seeds at the library defaults; single draws put SMFL and
  // SMF within each other's noise bands.
  double nmf_like = 0.0, smf = 0.0, smfl = 0.0;
  for (uint64_t seed : {29u, 57u, 83u}) {
    Scenario s = MakeScenario(800, 0.1, seed);
    auto run = [&](bool landmarks, double lambda) {
      SmflOptions options;
      options.lambda = lambda;
      options.use_landmarks = landmarks;
      auto imputed = SmflImpute(s.input, s.observed, 2, options);
      SMFL_CHECK(imputed.ok());
      auto rms = exp::RmsOverMask(*imputed, s.truth, s.observed.Complement());
      SMFL_CHECK(rms.ok());
      return *rms;
    };
    const SmflOptions defaults;
    nmf_like += run(false, 0.0);  // no spatial term at all
    smf += run(false, defaults.lambda);
    smfl += run(true, defaults.lambda);
  }
  EXPECT_LT(smf, nmf_like);
  EXPECT_LT(smfl, smf * 1.10);  // SMFL at least matches SMF
  EXPECT_LT(smfl, nmf_like);
}

TEST(SmflTest, ImputePreservesObservedEntries) {
  Scenario s = MakeScenario(100, 0.2, 31);
  auto imputed = SmflImpute(s.input, s.observed, 2, SmflOptions{});
  ASSERT_TRUE(imputed.ok());
  for (Index i = 0; i < s.input.rows(); ++i) {
    for (Index j = 0; j < s.input.cols(); ++j) {
      if (s.observed.Contains(i, j)) {
        EXPECT_DOUBLE_EQ((*imputed)(i, j), s.input(i, j));
      }
    }
  }
}

TEST(SmflTest, RepairReplacesExactlyDirtyCells) {
  auto dataset = data::MakeLakeLike(120, 37);
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Matrix truth = normalizer->Transform(dataset->table.values());
  std::vector<std::string> names;
  for (Index j = 0; j < truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table = data::Table::Create(names, truth, 2);
  data::ErrorInjectionOptions inject;
  inject.error_rate = 0.1;
  inject.preserve_complete_rows = 10;
  auto injection = data::InjectErrors(*table, inject);
  ASSERT_TRUE(injection.ok());
  auto repaired =
      SmflRepair(injection->dirty, injection->dirty_cells, 2, SmflOptions{});
  ASSERT_TRUE(repaired.ok());
  for (Index i = 0; i < truth.rows(); ++i) {
    for (Index j = 0; j < truth.cols(); ++j) {
      if (!injection->dirty_cells.Contains(i, j)) {
        EXPECT_DOUBLE_EQ((*repaired)(i, j), injection->dirty(i, j));
      }
    }
  }
  // Repair must beat leaving the dirty values in place.
  auto rms_repaired =
      exp::RmsOverMask(*repaired, truth, injection->dirty_cells);
  auto rms_dirty =
      exp::RmsOverMask(injection->dirty, truth, injection->dirty_cells);
  ASSERT_TRUE(rms_repaired.ok());
  ASSERT_TRUE(rms_dirty.ok());
  EXPECT_LT(*rms_repaired, *rms_dirty);
}

TEST(SmflTest, WithGraphReusesCallerGraph) {
  Scenario s = MakeScenario(80, 0.1, 41);
  Matrix si = s.input.Block(0, 0, s.input.rows(), 2);
  auto graph = spatial::NeighborGraph::Build(si, 3);
  ASSERT_TRUE(graph.ok());
  SmflOptions options;
  options.max_iterations = 30;
  auto via_graph = FitSmflWithGraph(s.input, s.observed, 2, *graph, options);
  ASSERT_TRUE(via_graph.ok());
  auto direct = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(direct.ok());
  // SI is fully observed in this scenario, so both paths build the same
  // graph and must produce identical factors.
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(via_graph->u, direct->u), 0.0);
}

TEST(SmflTest, HandlesRowsWithNoObservedAttributes) {
  // A row observed only in its spatial columns must not break the fit.
  Scenario s = MakeScenario(50, 0.1, 43);
  for (Index j = 2; j < s.input.cols(); ++j) {
    s.observed.Set(5, j, false);
    s.input(5, j) = 0.0;
  }
  auto model = FitSmfl(s.input, s.observed, 2, SmflOptions{});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Reconstruct().HasNonFinite());
}

// ---------------------------------------------------------- feature geometry

TEST(FeatureGeometryTest, AllInsideBox) {
  Matrix obs{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  Matrix feats{{0.5, 0.5}, {0.2, 0.8}};
  auto stats = ComputeFeatureGeometry(obs, feats);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->fraction_in_bounding_box, 1.0);
}

TEST(FeatureGeometryTest, OutsidePointDetected) {
  Matrix obs{{0, 0}, {1, 1}};
  Matrix feats{{0.5, 0.5}, {5.0, 5.0}};
  auto stats = ComputeFeatureGeometry(obs, feats);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->fraction_in_bounding_box, 0.5);
  EXPECT_NEAR(stats->max_distance_to_nearest_observation,
              std::sqrt(2.0) * 4.0, 1e-9);
}

TEST(FeatureGeometryTest, SmflFeaturesCloserThanFreeFeatures) {
  // The Fig 5 claim quantified: landmarked feature locations sit closer to
  // the data than SMF's free feature locations.
  Scenario s = MakeScenario(250, 0.1, 47);
  Matrix si = s.truth.Block(0, 0, s.truth.rows(), 2);
  SmflOptions options;
  options.rank = 5;
  options.max_iterations = 120;
  options.use_landmarks = true;
  auto smfl = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(smfl.ok());
  options.use_landmarks = false;
  auto smf = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(smf.ok());
  auto g_smfl = ComputeFeatureGeometry(si, smfl->FeatureLocations());
  auto g_smf = ComputeFeatureGeometry(si, smf->FeatureLocations());
  ASSERT_TRUE(g_smfl.ok());
  ASSERT_TRUE(g_smf.ok());
  EXPECT_LE(g_smfl->mean_distance_to_nearest_observation,
            g_smf->mean_distance_to_nearest_observation);
  EXPECT_DOUBLE_EQ(g_smfl->fraction_in_bounding_box, 1.0);
}

TEST(FeatureGeometryTest, RejectsBadInput) {
  EXPECT_FALSE(ComputeFeatureGeometry(Matrix(), Matrix(1, 2)).ok());
  EXPECT_FALSE(ComputeFeatureGeometry(Matrix(2, 2), Matrix(1, 3)).ok());
}

}  // namespace
}  // namespace smfl::core
