// ObservedIndex contract tests: the CSR layout must reproduce the Mask's
// set exactly, and the masked kernels consuming it must be bitwise
// identical to their Mask-scanning twins (and to the unfused
// ApplyMask(MatMul) form) across observed rates, thread counts, and SIMD
// tiers. Full fits must walk byte-identical trajectories with the index
// enabled vs disabled (SMFL_OBSERVED_INDEX=0) — the index is a pure
// re-layout, never a numeric change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/core/model_io.h"
#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/mask.h"
#include "src/data/normalize.h"
#include "src/data/observed_index.h"
#include "src/la/ops.h"
#include "src/la/simd.h"

namespace smfl {
namespace {

using data::Mask;
using data::ObservedIndex;
using la::Index;
using la::Matrix;

Matrix RandomMatrix(Index rows, Index cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (Index i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Uniform(-1.0, 1.0);
  }
  return m;
}

Mask RandomMask(Index rows, Index cols, uint64_t seed, double set_rate) {
  Rng rng(seed);
  Mask mask(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      mask.Set(i, j, rng.Uniform() < set_rate);
    }
  }
  return mask;
}

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b,
                        const std::string& label) {
  ASSERT_EQ(a.rows(), b.rows()) << label;
  ASSERT_EQ(a.cols(), b.cols()) << label;
  for (Index i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i])
        << label << " differs at flat index " << i;
  }
}

// RAII toggle for the SMFL_OBSERVED_INDEX escape hatch (the env is
// re-read per fit attempt precisely so this works in-process).
class ScopedObservedIndexEnv {
 public:
  explicit ScopedObservedIndexEnv(const char* value) {
    setenv("SMFL_OBSERVED_INDEX", value, /*overwrite=*/1);
  }
  ~ScopedObservedIndexEnv() { unsetenv("SMFL_OBSERVED_INDEX"); }
};

TEST(ObservedIndexTest, LayoutMatchesMask) {
  for (double rate : {0.0, 0.05, 0.5, 1.0}) {
    const Mask mask = RandomMask(37, 23, 17, rate);
    const ObservedIndex index = ObservedIndex::FromMask(mask);
    ASSERT_EQ(index.rows(), mask.rows());
    ASSERT_EQ(index.cols(), mask.cols());
    ASSERT_EQ(index.Count(), mask.Count());
    EXPECT_FALSE(index.HasValues());
    for (Index i = 0; i < mask.rows(); ++i) {
      ASSERT_EQ(index.RowCount(i), mask.RowCount(i)) << "row " << i;
      const auto cols = index.RowCols(i);
      size_t c = 0;
      for (Index j = 0; j < mask.cols(); ++j) {
        if (!mask.Contains(i, j)) continue;
        ASSERT_LT(c, cols.size()) << "row " << i;
        ASSERT_EQ(cols[c], j) << "row " << i;
        ++c;
      }
      ASSERT_EQ(c, cols.size()) << "row " << i;
      EXPECT_TRUE(index.RowValues(i).empty());
    }
  }
}

TEST(ObservedIndexTest, FromRowMajorBytesMatchesFromMask) {
  const Mask mask = RandomMask(19, 31, 5, 0.3);
  std::vector<uint8_t> bytes(
      static_cast<size_t>(mask.rows()) * static_cast<size_t>(mask.cols()), 0);
  for (Index i = 0; i < mask.rows(); ++i) {
    for (Index j = 0; j < mask.cols(); ++j) {
      // Any nonzero byte counts as observed (fold-in's usable vector uses
      // values other than 1).
      bytes[static_cast<size_t>(i * mask.cols() + j)] =
          mask.Contains(i, j) ? 2 : 0;
    }
  }
  const ObservedIndex from_mask = ObservedIndex::FromMask(mask);
  const ObservedIndex from_bytes =
      ObservedIndex::FromRowMajorBytes(mask.rows(), mask.cols(), bytes.data());
  ASSERT_EQ(from_bytes.Count(), from_mask.Count());
  for (Index i = 0; i < mask.rows(); ++i) {
    const auto a = from_mask.RowCols(i);
    const auto b = from_bytes.RowCols(i);
    ASSERT_EQ(a.size(), b.size()) << "row " << i;
    for (size_t c = 0; c < a.size(); ++c) {
      ASSERT_EQ(a[c], b[c]) << "row " << i << " slot " << c;
    }
  }
}

TEST(ObservedIndexTest, PackedValuesMirrorObservedEntries) {
  const Mask mask = RandomMask(11, 13, 9, 0.4);
  const Matrix x = RandomMatrix(11, 13, 21);
  const ObservedIndex index = ObservedIndex::FromMask(mask, x);
  EXPECT_TRUE(index.HasValues());
  for (Index i = 0; i < mask.rows(); ++i) {
    const auto cols = index.RowCols(i);
    const auto vals = index.RowValues(i);
    ASSERT_EQ(cols.size(), vals.size()) << "row " << i;
    for (size_t c = 0; c < cols.size(); ++c) {
      ASSERT_EQ(vals[c], x(i, cols[c])) << "row " << i << " slot " << c;
    }
  }
}

TEST(ObservedIndexTest, EmptyShapes) {
  const ObservedIndex zero = ObservedIndex::FromMask(Mask(0, 0));
  EXPECT_EQ(zero.rows(), 0);
  EXPECT_EQ(zero.cols(), 0);
  EXPECT_EQ(zero.Count(), 0);

  const ObservedIndex no_cols = ObservedIndex::FromMask(Mask(4, 0));
  EXPECT_EQ(no_cols.rows(), 4);
  EXPECT_EQ(no_cols.Count(), 0);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_EQ(no_cols.RowCount(i), 0);
    EXPECT_TRUE(no_cols.RowCols(i).empty());
  }

  const ObservedIndex unobserved = ObservedIndex::FromMask(Mask(3, 5));
  EXPECT_EQ(unobserved.Count(), 0);
  for (Index i = 0; i < 3; ++i) {
    EXPECT_TRUE(unobserved.RowCols(i).empty());
  }
}

// The masked kernels consuming the index must match the mask-scanning
// twins and the unfused ApplyMask(MatMul) form bit for bit, at every
// observed rate (exercising both sides of the per-tier density
// crossover), thread count, and SIMD tier.
TEST(ObservedIndexTest, MaskedKernelsBitwiseEqualMaskPath) {
  const Index n = 83, m = 57, k = 7;
  for (double rate : {0.01, 0.1, 0.5, 1.0}) {
    const uint64_t seed = static_cast<uint64_t>(rate * 1000);
    const Matrix u = RandomMatrix(n, k, seed + 1);
    const Matrix v = RandomMatrix(k, m, seed + 2);
    const Matrix x = RandomMatrix(n, m, seed + 3);
    const Mask mask = RandomMask(n, m, seed + 4, rate);
    const ObservedIndex index = ObservedIndex::FromMask(mask);
    const ObservedIndex index_packed = ObservedIndex::FromMask(mask, x);

    for (int threads : {1, 4}) {
      parallel::ScopedParallelism scoped_threads(threads);
      for (int simd_mode : {0, 1}) {
        la::simd::ScopedSimd scoped_simd(simd_mode);
        const std::string label = "rate " + std::to_string(rate) + " threads " +
                                  std::to_string(threads) + " simd " +
                                  std::to_string(simd_mode);
        const Matrix unfused = data::ApplyMask(la::MatMul(u, v), mask);
        const Matrix via_mask = data::MaskedReconstruct(u, v, mask);
        const Matrix via_index = data::MaskedReconstruct(u, v, index);
        ExpectBitwiseEqual(via_mask, unfused, label + " mask-vs-unfused");
        ExpectBitwiseEqual(via_index, via_mask, label + " index-vs-mask");

        const double err_mask = data::MaskedSquaredError(x, mask, via_mask);
        const double err_index =
            data::MaskedSquaredError(x, index, via_index);
        const double err_packed =
            data::MaskedSquaredError(x, index_packed, via_index);
        ASSERT_EQ(err_mask, err_index) << label;
        ASSERT_EQ(err_mask, err_packed) << label << " (packed values)";
      }
    }
  }
}

// Full-fit equivalence: SerializeModel output (factor bytes and report)
// must be identical with the ObservedIndex path enabled vs disabled, across
// seeds x thread counts x SIMD tiers.
TEST(ObservedIndexTest, FitTrajectoriesIdenticalWithIndexOnVsOff) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    auto dataset = data::MakeVehicleLike(50, 900 + seed);
    ASSERT_TRUE(dataset.ok());
    auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
    ASSERT_TRUE(normalizer.ok());
    const Matrix truth = normalizer->Transform(dataset->table.values());
    data::MissingInjectionOptions inject;
    inject.missing_rate = 0.5;
    inject.seed = seed * 13 + 2;
    auto injection = data::InjectMissing(dataset->table, inject);
    ASSERT_TRUE(injection.ok());
    const Matrix x_in = data::ApplyMask(truth, injection->observed);

    core::SmflOptions options;
    options.rank = 4;
    options.max_iterations = 25;
    options.tolerance = 0.0;
    options.seed = seed * 101 + 7;

    for (int threads : {1, 4}) {
      options.threads = threads;
      for (int simd_mode : {0, 1}) {
        la::simd::ScopedSimd scoped_simd(simd_mode);
        std::string with_index, without_index;
        {
          ScopedObservedIndexEnv env("1");
          auto fit = core::FitSmfl(x_in, injection->observed, 2, options);
          ASSERT_TRUE(fit.ok()) << fit.status().ToString();
          with_index = core::SerializeModel(*fit);
        }
        {
          ScopedObservedIndexEnv env("0");
          auto fit = core::FitSmfl(x_in, injection->observed, 2, options);
          ASSERT_TRUE(fit.ok()) << fit.status().ToString();
          without_index = core::SerializeModel(*fit);
        }
        ASSERT_EQ(with_index, without_index)
            << "seed " << seed << " threads " << threads << " simd "
            << simd_mode;
      }
    }
  }
}

}  // namespace
}  // namespace smfl
