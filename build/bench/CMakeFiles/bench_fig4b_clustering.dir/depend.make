# Empty dependencies file for bench_fig4b_clustering.
# This may be replaced when dependencies are built.
