// Masked Nonnegative Matrix Factorization (paper §II-B, baseline "NMF").
//
// Minimizes ||R_Ω(X − U V)||_F² over nonnegative U (N x K), V (K x M) with
// Lee–Seung multiplicative updates restricted to observed entries. This is
// the [41]-style NMF imputation baseline and the foundation SMF/SMFL build
// on (they add the Laplacian term and landmarks in src/core).

#ifndef SMFL_MF_NMF_H_
#define SMFL_MF_NMF_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/data/mask.h"
#include "src/mf/factorization.h"

namespace smfl::mf {

using data::Mask;

struct NmfOptions {
  // Latent rank K; must satisfy 0 < K.
  Index rank = 10;
  // Paper default t1 = 500 with early stop.
  int max_iterations = 500;
  // Early-stop threshold on relative objective improvement.
  double tolerance = 1e-6;
  uint64_t seed = 3;
  // Worker threads for the fit's parallel kernels. 0 inherits the process
  // default (--threads / SMFL_THREADS / hardware concurrency). Results are
  // bitwise identical at any setting.
  int threads = 0;
};

struct NmfModel {
  Matrix u;  // N x K coefficient matrix
  Matrix v;  // K x M feature matrix
  FitReport report;

  // Reconstruction U V.
  Matrix Reconstruct() const;
};

// Factorizes the observed entries of x. The mask marks Ω (true = observed).
Result<NmfModel> FitNmf(const Matrix& x, const Mask& observed,
                        const NmfOptions& options);

// Masked reconstruction objective ||R_Ω(X − U V)||_F².
double MaskedReconstructionError(const Matrix& x, const Mask& observed,
                                 const Matrix& u, const Matrix& v);

// Imputes x by Formula 8: observed entries kept, others from U V.
Matrix ImputeWithModel(const Matrix& x, const Mask& observed,
                       const NmfModel& model);

}  // namespace smfl::mf

#endif  // SMFL_MF_NMF_H_
