#include "src/cli/commands.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <optional>
#include <thread>

#include "src/core/checkpoint.h"
#include "src/core/fold_in.h"
#include "src/core/model_io.h"
#include "src/core/model_selection.h"

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/shutdown.h"
#include "src/common/strings.h"
#include "src/common/telemetry.h"
#include "src/obs/exporter.h"
#include "src/data/csv.h"
#include "src/data/normalize.h"
#include "src/data/quantile_normalize.h"
#include "src/data/stats.h"
#include "src/impute/fallback.h"
#include "src/impute/mf_imputers.h"
#include "src/impute/registry.h"
#include "src/la/simd.h"
#include "src/repair/detector.h"
#include "src/repair/fallback.h"
#include "src/repair/repairer.h"

namespace smfl::cli {

namespace {

using data::Mask;
using la::Index;
using la::Matrix;

std::string MethodList(const std::vector<std::string>& names) {
  return Join(names, ", ");
}

struct LoadedCsv {
  data::Table table;
  Mask observed;
  Index spatial_cols = 0;
};

// Shared --in / --spatial / --lenient handling. With --lenient, malformed
// rows are quarantined instead of failing the file; the quarantine summary
// is appended to *output. `default_spatial` is used when --spatial is
// absent (`apply` passes the loaded model's spatial column count).
Result<LoadedCsv> LoadInput(const Flags& flags, std::string* output,
                            int64_t default_spatial = 2) {
  const std::string in_path = flags.GetString("in", "");
  if (in_path.empty()) {
    return Status::InvalidArgument("--in=<file.csv> is required");
  }
  ASSIGN_OR_RETURN(int64_t spatial, flags.GetInt("spatial", default_spatial));
  if (spatial < 1) {
    return Status::InvalidArgument("--spatial must be >= 1");
  }
  ASSIGN_OR_RETURN(bool lenient, flags.GetBool("lenient", false));
  data::CsvReadOptions read_options;
  read_options.spatial_cols = static_cast<Index>(spatial);
  read_options.mode =
      lenient ? data::CsvMode::kLenient : data::CsvMode::kStrict;
  ASSIGN_OR_RETURN(data::CsvTable csv, data::ReadCsv(in_path, read_options));
  if (!csv.row_errors.empty()) {
    *output += StrFormat("quarantined %zu malformed row(s) of '%s':\n",
                         csv.row_errors.size(), in_path.c_str());
    *output += data::FormatRowErrors(csv.row_errors);
  }
  if (csv.table.NumCols() <= read_options.spatial_cols) {
    return Status::InvalidArgument(
        "--spatial leaves no attribute columns in '" + in_path + "'");
  }
  return LoadedCsv{std::move(csv.table), std::move(csv.observed),
                   read_options.spatial_cols};
}

// Parses --fallback=a,b,c into a degradation chain (empty flag = absent).
std::vector<std::string> FallbackChainFromFlags(const Flags& flags,
                                                std::vector<std::string> dflt) {
  const std::string spec = flags.GetString("fallback", "");
  if (spec.empty()) return dflt;
  std::vector<std::string> chain;
  for (const std::string& tier : Split(spec, ',')) {
    std::string trimmed(Trim(tier));
    if (!trimmed.empty()) chain.push_back(std::move(trimmed));
  }
  return chain;
}

// Appends the degradation-chain outcome to the report.
void AppendDegradation(const mf::DegradationReport& report,
                       std::string* output) {
  if (report.attempts.empty()) return;
  *output += StrFormat("degradation chain: %s\n", report.ToString().c_str());
  if (report.degraded()) {
    *output += StrFormat(
        "WARNING: primary method failed; result served by fallback tier "
        "'%s'\n",
        report.served_by.c_str());
  }
}

// Applies the SMFL-family tuning flags to an imputer choice. Non-SMFL
// methods ignore them (they are registry defaults).
Result<std::unique_ptr<impute::Imputer>> MakeTunedImputer(
    const Flags& flags) {
  const std::string method = flags.GetString("method", "SMFL");
  const std::string key = ToLower(method);
  if (key == "fallback" || flags.Has("fallback")) {
    return std::unique_ptr<impute::Imputer>(new impute::FallbackImputer(
        FallbackChainFromFlags(flags, impute::DefaultFallbackChain())));
  }
  if (key == "smfl" || key == "smf") {
    core::SmflOptions options;
    ASSIGN_OR_RETURN(int64_t rank, flags.GetInt("rank", options.rank));
    ASSIGN_OR_RETURN(double lambda,
                     flags.GetDouble("lambda", options.lambda));
    ASSIGN_OR_RETURN(int64_t neighbors,
                     flags.GetInt("neighbors", options.num_neighbors));
    ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 0));
    ASSIGN_OR_RETURN(int64_t simd, flags.GetInt("simd", -1));
    options.rank = static_cast<Index>(rank);
    options.lambda = lambda;
    options.num_neighbors = static_cast<Index>(neighbors);
    options.threads = static_cast<int>(threads);
    options.simd = static_cast<int>(simd);
    if (key == "smf") {
      return std::unique_ptr<impute::Imputer>(
          new impute::SmfImputer(options));
    }
    return std::unique_ptr<impute::Imputer>(
        new impute::SmflImputer(options));
  }
  return impute::MakeImputer(method);
}

}  // namespace

std::string UsageText() {
  return
      "usage: smfl <command> [flags]\n"
      "\n"
      "commands:\n"
      "  impute  --in=data.csv --out=completed.csv [--method=SMFL]\n"
      "          [--spatial=2] [--rank=10] [--lambda=0.5] [--neighbors=3]\n"
      "          [--normalizer=minmax|quantile]\n"
      "          [--fallback=SMFL,SMF,NMF,Mean]\n"
      "          fill the empty cells of a CSV\n"
      "  repair  --in=data.csv --out=repaired.csv [--method=SMFL]\n"
      "          [--spatial=2] [--fallback=SMFL,SMF,NMF,HoloClean]\n"
      "          detect suspicious cells statistically and repair them\n"
      "  stats   --in=data.csv [--spatial=2]\n"
      "          print column statistics and missing-data summary\n"
      "  fit     --in=train.csv --model=model.txt [--spatial=2] [--rank=10]\n"
      "          [--lambda=0.5] [--neighbors=3] [--seed=23]\n"
      "          [--checkpoint-dir=ckpt/]\n"
      "          [--checkpoint-every=10] [--checkpoint-keep=3] [--resume]\n"
      "          train an SMFL model and save it; with --checkpoint-dir the\n"
      "          fit durably snapshots its full state every N iterations,\n"
      "          and --resume continues a killed fit to the bitwise-\n"
      "          identical final model (corrupt checkpoints are detected\n"
      "          by CRC and fall back to the previous generation)\n"
      "  apply   --in=fresh.csv --model=model.txt --out=completed.csv\n"
      "          impute fresh rows against a saved model (batched fold-in\n"
      "          in the model's training normalization space, with a\n"
      "          per-row serving-tier report)\n"
      "  select  --in=data.csv [--spatial=2]\n"
      "          grid-search lambda/K on a validation holdout and print\n"
      "          the recommended flags\n"
      "\n"
      "shared flags:\n"
      "  --threads=N worker threads for the numeric kernels (default:\n"
      "              SMFL_THREADS env, else hardware concurrency).\n"
      "              Results are bitwise identical at any setting\n"
      "  --simd=0|1  0 pins the numeric kernels to the scalar tier, 1\n"
      "              requests the vector tier (default: SMFL_SIMD env,\n"
      "              else the CPU probe — AVX2/NEON when available).\n"
      "              Results are bitwise identical at any setting\n"
      "  --lenient   quarantine malformed CSV rows instead of failing the\n"
      "              file; the quarantine report is printed per row\n"
      "  --fallback=a,b,c   graceful degradation: try each method in order\n"
      "              until one serves, and report the serving tier\n"
      "  --log-level=debug|info|warning|error   log threshold (default:\n"
      "              SMFL_LOG_LEVEL env, else info)\n"
      "  --trace-out=trace.json   write a Chrome trace-event file (open in\n"
      "              chrome://tracing or https://ui.perfetto.dev) with the\n"
      "              run's spans; implies telemetry collection\n"
      "  --metrics-out=metrics.jsonl   write the metrics snapshot (one JSON\n"
      "              object per line); implies telemetry collection\n"
      "              (SMFL_TELEMETRY=0 pins collection off; neither file is\n"
      "              written then)\n"
      "  --metrics-port=N   serve live observability over HTTP while the\n"
      "              command runs (default: SMFL_METRICS_PORT env; 0 picks\n"
      "              an ephemeral port, logged at startup): /metrics is\n"
      "              Prometheus text exposition, /healthz liveness, and\n"
      "              /statusz live fit progress JSON (iteration, objective,\n"
      "              convergence delta, checkpoint generation, ETA). Implies\n"
      "              telemetry collection; see docs/observability.md.\n"
      "              SMFL_METRICS_LINGER_MS=N keeps the endpoints up that\n"
      "              long after the command finishes (scrape race buffer)\n"
      "\n"
      "imputation methods: " +
      MethodList(impute::RegisteredImputers()) +
      "\n"
      "repair methods:     " +
      MethodList(repair::RegisteredRepairers()) + "\n";
}

Status RunImputeCommand(const Flags& flags, std::string* output) {
  ASSIGN_OR_RETURN(LoadedCsv input, LoadInput(flags, output));
  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    return Status::InvalidArgument("--out=<file.csv> is required");
  }
  const Index missing = input.observed.Complement().Count();
  if (missing == 0) {
    *output += "input has no missing cells; writing it back unchanged\n";
    return data::WriteCsv(out_path, input.table);
  }
  ASSIGN_OR_RETURN(auto imputer, MakeTunedImputer(flags));
  // Degradation chains report which tier actually served the result.
  mf::DegradationReport degradation;
  const auto* fallback =
      dynamic_cast<const impute::FallbackImputer*>(imputer.get());
  const auto run_imputer = [&](const Matrix& normalized) {
    return fallback ? fallback->ImputeWithReport(normalized, input.observed,
                                                 input.spatial_cols,
                                                 &degradation)
                    : imputer->Impute(normalized, input.observed,
                                      input.spatial_cols);
  };

  // Normalize from observed cells, impute, restore units. The quantile
  // normalizer is the robust choice when columns carry outliers.
  const std::string normalizer_name =
      ToLower(flags.GetString("normalizer", "minmax"));
  Matrix normalized;
  Matrix restored;
  if (normalizer_name == "quantile") {
    ASSIGN_OR_RETURN(data::QuantileNormalizer normalizer,
                     data::QuantileNormalizer::Fit(input.table.values(),
                                                   input.observed));
    normalized = data::ApplyMask(normalizer.Transform(input.table.values()),
                                 input.observed);
    ASSIGN_OR_RETURN(Matrix completed, run_imputer(normalized));
    restored = normalizer.InverseTransform(completed);
  } else if (normalizer_name == "minmax") {
    ASSIGN_OR_RETURN(
        data::MinMaxNormalizer normalizer,
        data::MinMaxNormalizer::Fit(input.table.values(), input.observed));
    normalized = data::ApplyMask(normalizer.Transform(input.table.values()),
                                 input.observed);
    ASSIGN_OR_RETURN(Matrix completed, run_imputer(normalized));
    restored = normalizer.InverseTransform(completed);
  } else {
    return Status::InvalidArgument(
        "--normalizer must be 'minmax' or 'quantile'");
  }
  // Observed cells keep their exact original values.
  restored = data::CombineByMask(input.table.values(), restored,
                                 input.observed);
  ASSIGN_OR_RETURN(
      data::Table out_table,
      data::Table::Create(input.table.column_names(), std::move(restored),
                          input.spatial_cols));
  RETURN_NOT_OK(data::WriteCsv(out_path, out_table));
  AppendDegradation(degradation, output);
  *output += StrFormat("imputed %lld cells with %s -> %s\n",
                       static_cast<long long>(missing),
                       imputer->name().c_str(), out_path.c_str());
  return Status::OK();
}

Status RunRepairCommand(const Flags& flags, std::string* output) {
  ASSIGN_OR_RETURN(LoadedCsv input, LoadInput(flags, output));
  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    return Status::InvalidArgument("--out=<file.csv> is required");
  }
  if (input.observed.Complement().Count() != 0) {
    return Status::FailedPrecondition(
        "repair expects a complete CSV (run `smfl impute` first)");
  }
  std::string method = flags.GetString("method", "SMFL");
  if (flags.Has("fallback")) method = "Fallback";
  std::unique_ptr<repair::Repairer> repairer;
  if (ToLower(method) == "fallback") {
    repairer = std::make_unique<repair::FallbackRepairer>(
        FallbackChainFromFlags(flags, repair::DefaultRepairFallbackChain()));
  } else {
    ASSIGN_OR_RETURN(repairer, repair::MakeRepairer(method));
  }

  ASSIGN_OR_RETURN(data::MinMaxNormalizer normalizer,
                   data::MinMaxNormalizer::Fit(input.table.values()));
  Matrix normalized = normalizer.Transform(input.table.values());
  ASSIGN_OR_RETURN(repair::DetectionResult detection,
                   repair::DetectErrors(normalized, input.spatial_cols));
  if (detection.flagged.Count() == 0) {
    *output += "no suspicious cells detected; writing input unchanged\n";
    return data::WriteCsv(out_path, input.table);
  }
  mf::DegradationReport degradation;
  const auto* fallback =
      dynamic_cast<const repair::FallbackRepairer*>(repairer.get());
  Matrix repaired;
  if (fallback) {
    ASSIGN_OR_RETURN(repaired, fallback->RepairWithReport(
                                   normalized, detection.flagged,
                                   input.spatial_cols, &degradation));
  } else {
    ASSIGN_OR_RETURN(repaired,
                     repairer->Repair(normalized, detection.flagged,
                                      input.spatial_cols));
  }
  AppendDegradation(degradation, output);
  Matrix restored = normalizer.InverseTransform(repaired);
  restored = data::CombineByMask(input.table.values(), restored,
                                 detection.flagged.Complement());
  ASSIGN_OR_RETURN(
      data::Table out_table,
      data::Table::Create(input.table.column_names(), std::move(restored),
                          input.spatial_cols));
  RETURN_NOT_OK(data::WriteCsv(out_path, out_table));
  *output += StrFormat(
      "flagged %lld suspicious cells (outlier %lld / cross-column %lld / "
      "spatial %lld signals); repaired with %s -> %s\n",
      static_cast<long long>(detection.flagged.Count()),
      static_cast<long long>(detection.outlier_flags),
      static_cast<long long>(detection.surprise_flags),
      static_cast<long long>(detection.spatial_flags),
      repairer->name().c_str(), out_path.c_str());
  return Status::OK();
}

Status RunStatsCommand(const Flags& flags, std::string* output) {
  ASSIGN_OR_RETURN(LoadedCsv input, LoadInput(flags, output));
  const Index total = input.table.NumRows() * input.table.NumCols();
  *output += StrFormat(
      "%lld rows x %lld columns (%lld spatial); %lld of %lld cells "
      "observed\n\n",
      static_cast<long long>(input.table.NumRows()),
      static_cast<long long>(input.table.NumCols()),
      static_cast<long long>(input.spatial_cols),
      static_cast<long long>(input.observed.Count()),
      static_cast<long long>(total));
  ASSIGN_OR_RETURN(
      auto stats,
      data::ComputeAllColumnStats(input.table.values(), input.observed));
  *output += data::FormatStatsTable(input.table.column_names(), stats);
  return Status::OK();
}

Status RunFitCommand(const Flags& flags, std::string* output) {
  ASSIGN_OR_RETURN(LoadedCsv input, LoadInput(flags, output));
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) {
    return Status::InvalidArgument("--model=<file> is required");
  }
  core::SmflOptions options;
  ASSIGN_OR_RETURN(int64_t rank, flags.GetInt("rank", options.rank));
  ASSIGN_OR_RETURN(double lambda, flags.GetDouble("lambda", options.lambda));
  ASSIGN_OR_RETURN(int64_t neighbors,
                   flags.GetInt("neighbors", options.num_neighbors));
  ASSIGN_OR_RETURN(int64_t fit_threads, flags.GetInt("threads", 0));
  ASSIGN_OR_RETURN(int64_t fit_simd, flags.GetInt("simd", -1));
  ASSIGN_OR_RETURN(int64_t seed,
                   flags.GetInt("seed", static_cast<int64_t>(options.seed)));
  if (seed < 0) {
    return Status::InvalidArgument("--seed must be >= 0");
  }
  options.rank = static_cast<Index>(rank);
  options.lambda = lambda;
  options.num_neighbors = static_cast<Index>(neighbors);
  options.threads = static_cast<int>(fit_threads);
  options.simd = static_cast<int>(fit_simd);
  options.seed = static_cast<uint64_t>(seed);

  // Crash-safe checkpointing (docs/robustness.md).
  const std::string checkpoint_dir = flags.GetString("checkpoint-dir", "");
  ASSIGN_OR_RETURN(int64_t checkpoint_every,
                   flags.GetInt("checkpoint-every", 10));
  ASSIGN_OR_RETURN(int64_t checkpoint_keep, flags.GetInt("checkpoint-keep", 3));
  ASSIGN_OR_RETURN(bool resume, flags.GetBool("resume", false));
  if (resume && checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint-dir=<dir>");
  }
  if (!checkpoint_dir.empty() &&
      (checkpoint_every < 1 || checkpoint_keep < 1)) {
    return Status::InvalidArgument(
        "--checkpoint-every and --checkpoint-keep must be >= 1");
  }

  // The saved model operates in normalized [0, 1] space. The fitted
  // normalizer is persisted inside the model (format v2+) so `apply`
  // transforms fresh rows with the TRAINING ranges — re-fitting the
  // ranges on a fresh batch would silently shift every reconstruction.
  ASSIGN_OR_RETURN(
      data::MinMaxNormalizer normalizer,
      data::MinMaxNormalizer::Fit(input.table.values(), input.observed));

  std::optional<core::CheckpointManager> manager;
  std::optional<core::FitCheckpoint> resume_state;
  if (!checkpoint_dir.empty()) {
    core::CheckpointConfig config;
    config.dir = checkpoint_dir;
    config.every = static_cast<int>(checkpoint_every);
    config.keep = static_cast<int>(checkpoint_keep);
    // Flush the telemetry sinks at every checkpoint so the trace/metrics
    // observed so far survive the same crashes the model state does.
    config.trace_flush_path = flags.GetString("trace-out", "");
    config.metrics_flush_path = flags.GetString("metrics-out", "");
    manager.emplace(std::move(config));
    manager->SetNormalizer(&normalizer);
    // Deterministic crash hook for the kill-mid-fit harness
    // (tests/crash_recovery_test.cc): SMFL_CRASH_AFTER_CHECKPOINTS=N
    // SIGKILLs the process right after the N-th durable checkpoint write.
    if (const char* crash_after =
            std::getenv("SMFL_CRASH_AFTER_CHECKPOINTS")) {
      const int crash_count = std::atoi(crash_after);
      if (crash_count > 0) {
        manager->SetPostWriteHook([crash_count](int writes) {
          if (writes >= crash_count) std::raise(SIGKILL);
        });
      }
    }
    options.checkpoint = &*manager;
    if (resume) {
      auto latest = manager->LoadLatest();
      if (latest.ok()) {
        resume_state = std::move(latest).value();
        // The checkpointed normalizer is the TRAINING one; the resumed
        // fit must keep normalizing into that exact space.
        if (resume_state->normalizer.has_value()) {
          normalizer = *resume_state->normalizer;
        }
        options.resume_from = &*resume_state;
        *output += StrFormat(
            "resuming from checkpoint in '%s' (restart %d, attempt %d, "
            "iteration %d)\n",
            checkpoint_dir.c_str(), resume_state->restart,
            resume_state->attempt, resume_state->iteration);
      } else if (latest.status().code() == StatusCode::kNotFound) {
        *output += StrFormat(
            "--resume: no checkpoint found in '%s'; starting fresh\n",
            checkpoint_dir.c_str());
      } else {
        // Every retained generation is corrupt/unreadable — surface it
        // rather than silently refitting from scratch.
        return latest.status();
      }
    }
  }

  Matrix normalized = data::ApplyMask(
      normalizer.Transform(input.table.values()), input.observed);
  ASSIGN_OR_RETURN(core::SmflModel model,
                   core::FitSmfl(normalized, input.observed,
                                 input.spatial_cols, options));
  model.normalizer = std::move(normalizer);
  RETURN_NOT_OK(core::SaveModel(model, model_path));
  *output += StrFormat(
      "fit SMFL (K=%lld, lambda=%g, p=%lld) on %lld rows in %d iterations; "
      "model -> %s\n",
      static_cast<long long>(options.rank), options.lambda,
      static_cast<long long>(options.num_neighbors),
      static_cast<long long>(input.table.NumRows()),
      model.report.iterations, model_path.c_str());
  return Status::OK();
}

Status RunApplyCommand(const Flags& flags, std::string* output) {
  const std::string model_path = flags.GetString("model", "");
  const std::string out_path = flags.GetString("out", "");
  if (model_path.empty() || out_path.empty()) {
    return Status::InvalidArgument(
        "--model=<file> and --out=<file.csv> are required");
  }
  // The model is loaded FIRST: it fixes both the spatial column count and
  // the normalization space the fresh rows must be transformed into.
  ASSIGN_OR_RETURN(core::SmflModel model, core::LoadModel(model_path));
  if (flags.Has("spatial")) {
    ASSIGN_OR_RETURN(int64_t spatial_flag, flags.GetInt("spatial", 2));
    if (spatial_flag != static_cast<int64_t>(model.spatial_cols)) {
      return Status::InvalidArgument(StrFormat(
          "--spatial=%lld contradicts the model's %lld spatial column(s); "
          "the model fixes which columns are coordinates — drop the flag "
          "or pass --spatial=%lld",
          static_cast<long long>(spatial_flag),
          static_cast<long long>(model.spatial_cols),
          static_cast<long long>(model.spatial_cols)));
    }
  }
  ASSIGN_OR_RETURN(
      LoadedCsv input,
      LoadInput(flags, output, static_cast<int64_t>(model.spatial_cols)));
  if (model.v.cols() != input.table.NumCols()) {
    return Status::InvalidArgument(StrFormat(
        "model has %lld columns but '%s' has %lld",
        static_cast<long long>(model.v.cols()),
        flags.GetString("in", "").c_str(),
        static_cast<long long>(input.table.NumCols())));
  }

  // Transform fresh rows into the model's normalization space. With a v2
  // model the TRAINING ranges are used; observed values outside them are
  // clamped into [0, 1] (fold-in would otherwise reject the negatives a
  // shifted batch produces). v1 models carry no ranges — fall back to
  // the old, deprecated per-batch re-fit with a loud warning.
  data::MinMaxNormalizer normalizer;
  if (model.normalizer.has_value()) {
    normalizer = *model.normalizer;
  } else {
    *output +=
        "WARNING: model file is v1 and stores no normalizer; re-fitting "
        "normalization ranges on this batch. Reconstructions are only "
        "correct when the batch spans the training ranges — re-save the "
        "model with `smfl fit` to fix this.\n";
    ASSIGN_OR_RETURN(
        normalizer,
        data::MinMaxNormalizer::Fit(input.table.values(), input.observed));
  }
  Matrix normalized = normalizer.Transform(input.table.values());
  long long clamped = 0;
  for (Index i = 0; i < normalized.rows(); ++i) {
    for (Index j = 0; j < normalized.cols(); ++j) {
      if (!input.observed.Contains(i, j)) continue;
      double& v = normalized(i, j);
      if (v < 0.0) {
        v = 0.0;
        ++clamped;
      } else if (v > 1.0) {
        v = 1.0;
        ++clamped;
      }
    }
  }
  if (clamped > 0) {
    SMFL_COUNTER_ADD("serving.clamped_cells", clamped);
    *output += StrFormat(
        "clamped %lld observed cell(s) outside the training ranges into "
        "[0, 1]\n",
        clamped);
  }
  normalized = data::ApplyMask(normalized, input.observed);

  core::FoldInReport report;
  ASSIGN_OR_RETURN(Matrix folded,
                   core::FoldIn(model, normalized, input.observed,
                                core::FoldInOptions{}, &report));
  Matrix restored = normalizer.InverseTransform(folded);
  restored = data::CombineByMask(input.table.values(), restored,
                                 input.observed);
  ASSIGN_OR_RETURN(
      data::Table out_table,
      data::Table::Create(input.table.column_names(), std::move(restored),
                          input.spatial_cols));
  RETURN_NOT_OK(data::WriteCsv(out_path, out_table));
  *output += StrFormat("folded %lld rows against %s -> %s\n",
                       static_cast<long long>(input.table.NumRows()),
                       model_path.c_str(), out_path.c_str());
  *output += "serving tiers: " + report.ToString() + "\n";
  constexpr Index kMaxDegradedLines = 8;
  Index printed = 0;
  for (const core::FoldInRowOutcome& outcome : report.rows) {
    if (outcome.status.ok()) continue;
    if (printed++ >= kMaxDegradedLines) continue;
    *output += StrFormat("  row %lld: %s (served by %s)\n",
                         static_cast<long long>(outcome.row),
                         outcome.status.message().c_str(),
                         core::FoldInTierName(outcome.served_by));
  }
  if (printed > kMaxDegradedLines) {
    *output += StrFormat("  ... and %lld more degraded row(s)\n",
                         static_cast<long long>(printed - kMaxDegradedLines));
  }
  return Status::OK();
}

Status RunSelectCommand(const Flags& flags, std::string* output) {
  ASSIGN_OR_RETURN(LoadedCsv input, LoadInput(flags, output));
  ASSIGN_OR_RETURN(
      data::MinMaxNormalizer normalizer,
      data::MinMaxNormalizer::Fit(input.table.values(), input.observed));
  Matrix normalized = data::ApplyMask(
      normalizer.Transform(input.table.values()), input.observed);
  core::SelectionGrid grid;
  auto selection = core::SelectSmflOptions(normalized, input.observed,
                                           input.spatial_cols, grid);
  if (!selection.ok()) return selection.status();
  *output += StrFormat("%-28s %s\n", "candidate", "validation RMS");
  for (const auto& c : selection->candidates) {
    *output += StrFormat("lambda=%-6g K=%-4lld p=%-3lld %10.4f%s\n",
                         c.lambda, static_cast<long long>(c.rank),
                         static_cast<long long>(c.num_neighbors),
                         c.validation_rms,
                         c.validation_rms == selection->best_validation_rms
                             ? "  <- best"
                             : "");
  }
  *output += StrFormat(
      "\nrecommended: --rank=%lld --lambda=%g --neighbors=%lld\n",
      static_cast<long long>(selection->best.rank), selection->best.lambda,
      static_cast<long long>(selection->best.num_neighbors));
  return Status::OK();
}

Status Run(const Flags& flags, std::string* output) {
  if (flags.positional().empty()) {
    return Status::InvalidArgument(UsageText());
  }
  // Log threshold: env first, then the flag, so --log-level wins when both
  // are present.
  InitLogLevelFromEnv();
  const std::string log_level = flags.GetString("log-level", "");
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      return Status::InvalidArgument(
          "--log-level must be debug, info, warning, or error");
    }
    SetLogLevel(level);
  }
  // Telemetry sinks. Asking for either file turns collection on — unless
  // SMFL_TELEMETRY=0 pinned it off, in which case SetEnabled is a no-op
  // and neither file is written (checked via Enabled() below).
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  if (!trace_out.empty() || !metrics_out.empty()) {
    telemetry::SetEnabled(true);
  }
  // Global thread count for every parallel kernel this invocation runs.
  // SMFL_THREADS (read by the parallel layer) supplies the default; the
  // flag wins when both are present.
  ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 0));
  if (threads < 0) {
    return Status::InvalidArgument("--threads must be >= 1 (or 0 for auto)");
  }
  if (threads > 0) parallel::SetParallelism(static_cast<int>(threads));
  // Global SIMD tier for every numeric kernel this invocation runs.
  // SMFL_SIMD=0 in the environment pins scalar and cannot be overridden by
  // the flag (mirrors the SMFL_TELEMETRY pin); either setting is bitwise
  // identical to the other.
  ASSIGN_OR_RETURN(int64_t simd, flags.GetInt("simd", -1));
  if (simd > 1 || simd < -1) {
    return Status::InvalidArgument("--simd must be 0 or 1");
  }
  if (simd >= 0) la::simd::SetEnabled(simd == 1);
  // Live observability endpoints (docs/observability.md). The flag wins
  // over the SMFL_METRICS_PORT env; port 0 asks the kernel for an
  // ephemeral port, logged below so a wrapper script can scrape it.
  int64_t metrics_port = -1;
  if (const char* env_port = std::getenv("SMFL_METRICS_PORT")) {
    if (env_port[0] != '\0') metrics_port = std::atoll(env_port);
  }
  ASSIGN_OR_RETURN(metrics_port, flags.GetInt("metrics-port", metrics_port));
  if (metrics_port > 65535) {
    return Status::InvalidArgument("--metrics-port must be <= 65535");
  }
  obs::MetricsExporter exporter;
  if (metrics_port >= 0) {
    // The live endpoints only carry data while instruments record, so a
    // port implies collection (the SMFL_TELEMETRY=0 pin still wins; the
    // server then serves the obs.http.* / process.* instruments only).
    telemetry::SetEnabled(true);
    obs::MetricsExporter::Options exporter_options;
    exporter_options.port = static_cast<int>(metrics_port);
    RETURN_NOT_OK(exporter.Start(exporter_options));
    SMFL_LOG(Info) << "observability endpoints on http://127.0.0.1:"
                   << exporter.port()
                   << " (/metrics /healthz /statusz)";
  }
  const std::string& command = flags.positional().front();
  Status status;
  if (command == "impute") {
    status = RunImputeCommand(flags, output);
  } else if (command == "repair") {
    status = RunRepairCommand(flags, output);
  } else if (command == "stats") {
    status = RunStatsCommand(flags, output);
  } else if (command == "fit") {
    status = RunFitCommand(flags, output);
  } else if (command == "apply") {
    status = RunApplyCommand(flags, output);
  } else if (command == "select") {
    status = RunSelectCommand(flags, output);
  } else {
    return Status::InvalidArgument("unknown command '" + command + "'\n" +
                                   UsageText());
  }
  // Export runs even when the command failed — a trace of a failed run is
  // exactly what post-mortems want. The command's status still wins over
  // an export error.
  if (telemetry::Enabled()) {
    if (!trace_out.empty()) {
      auto& recorder = telemetry::TraceRecorder::Global();
      Status write = recorder.WriteChromeTrace(trace_out);
      if (!write.ok()) return status.ok() ? write : status;
      *output += StrFormat("trace (%zu events) -> %s\n", recorder.size(),
                           trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      Status write =
          telemetry::MetricsRegistry::Global().WriteMetricsJsonl(metrics_out);
      if (!write.ok()) return status.ok() ? write : status;
      *output += StrFormat("metrics -> %s\n", metrics_out.c_str());
    }
  }
  if (exporter.running()) {
    // Optionally keep the endpoints up after the command finishes so a
    // wrapper scraping concurrently (tools/run_checks.sh obs-scrape) never
    // races process exit. A shutdown signal cuts the linger short.
    long long linger_ms = 0;
    if (const char* env = std::getenv("SMFL_METRICS_LINGER_MS")) {
      linger_ms = std::atoll(env);
    }
    const int64_t linger_deadline_us =
        telemetry::NowMicros() + linger_ms * 1000;
    while (linger_ms > 0 && telemetry::NowMicros() < linger_deadline_us &&
           !ShutdownRequested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    exporter.Stop();
  }
  return status;
}

}  // namespace smfl::cli
