#include "src/spatial/graph.h"

#include <algorithm>
#include <cmath>

#include "src/common/parallel.h"
#include "src/spatial/knn.h"
#include "src/la/ops.h"
#include "src/spatial/metrics.h"

namespace {
// Vertex-chunk grain for the parallel graph products: each output row is
// owned by one chunk, so the static partition keeps results bitwise
// identical at any thread count (see common/parallel.h).
constexpr smfl::la::Index kVertexGrain = 64;
}  // namespace

namespace smfl::spatial {

Result<NeighborGraph> NeighborGraph::Build(const Matrix& si, Index p) {
  return Build(si, p,
               std::vector<bool>(static_cast<size_t>(si.rows()), true));
}

Result<NeighborGraph> NeighborGraph::Build(const Matrix& si, Index p,
                                           const std::vector<bool>& valid_rows) {
  const Index n = si.rows();
  if (n == 0) return Status::InvalidArgument("NeighborGraph: empty input");
  if (static_cast<Index>(valid_rows.size()) != n) {
    return Status::InvalidArgument("NeighborGraph: valid_rows size mismatch");
  }
  std::vector<Index> valid;
  for (Index i = 0; i < n; ++i) {
    if (valid_rows[static_cast<size_t>(i)]) valid.push_back(i);
  }
  NeighborGraph g;
  g.adj_.assign(static_cast<size_t>(n), {});
  if (valid.size() < 2) {
    // Degenerate but legal: an edgeless graph (zero Laplacian term).
    g.degree_ = Vector(n);
    return g;
  }
  if (p < 1 || p >= static_cast<Index>(valid.size())) {
    return Status::InvalidArgument(
        "NeighborGraph: p must be in [1, #valid-1], got p=" +
        std::to_string(p) + " with " + std::to_string(valid.size()) +
        " valid rows");
  }
  // k-NN among the valid rows only, then map back to original indices.
  Matrix valid_si(static_cast<Index>(valid.size()), si.cols());
  for (size_t v = 0; v < valid.size(); ++v) {
    for (Index j = 0; j < si.cols(); ++j) {
      valid_si(static_cast<Index>(v), j) = si(valid[v], j);
    }
  }
  ASSIGN_OR_RETURN(auto knn, AllKnn(valid_si, p));
  // Symmetrize: edge if either direction is a p-NN relation (weight 1,
  // Formula 3).
  for (size_t v = 0; v < valid.size(); ++v) {
    const Index i = valid[v];
    for (const Neighbor& nb : knn[v]) {
      const Index j = valid[static_cast<size_t>(nb.index)];
      g.adj_[static_cast<size_t>(i)].push_back({j, 1.0});
      g.adj_[static_cast<size_t>(j)].push_back({i, 1.0});
    }
  }
  Index edges = 0;
  auto by_target = [](const Edge& a, const Edge& b) { return a.to < b.to; };
  auto same_target = [](const Edge& a, const Edge& b) { return a.to == b.to; };
  for (auto& list : g.adj_) {
    std::sort(list.begin(), list.end(), by_target);
    list.erase(std::unique(list.begin(), list.end(), same_target),
               list.end());
    edges += static_cast<Index>(list.size());
  }
  g.num_edges_ = edges / 2;
  g.RecomputeDegrees();
  return g;
}

void NeighborGraph::RecomputeDegrees() {
  const Index n = num_vertices();
  degree_ = Vector(n);
  for (Index i = 0; i < n; ++i) {
    double acc = 0.0;
    for (const Edge& e : adj_[static_cast<size_t>(i)]) acc += e.weight;
    degree_[i] = acc;
  }
}

Status NeighborGraph::ApplyHeatKernelWeights(const Matrix& points,
                                             double sigma) {
  const Index n = num_vertices();
  if (points.rows() != n) {
    return Status::InvalidArgument(
        "ApplyHeatKernelWeights: point count mismatch");
  }
  if (sigma <= 0.0) {
    // Mean edge length as the bandwidth.
    double total = 0.0;
    Index count = 0;
    for (Index i = 0; i < n; ++i) {
      for (const Edge& e : adj_[static_cast<size_t>(i)]) {
        if (e.to <= i) continue;
        total += std::sqrt(
            la::SquaredDistance(points.Row(i), points.Row(e.to)));
        ++count;
      }
    }
    if (count == 0) return Status::OK();  // edgeless graph: nothing to do
    sigma = std::max(total / static_cast<double>(count), 1e-12);
  }
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma * sigma);
  for (Index i = 0; i < n; ++i) {
    for (Edge& e : adj_[static_cast<size_t>(i)]) {
      const double d2 = la::SquaredDistance(points.Row(i), points.Row(e.to));
      e.weight = std::exp(-d2 * inv_two_sigma2);
    }
  }
  RecomputeDegrees();
  return Status::OK();
}

Result<NeighborGraph> NeighborGraph::BuildHaversine(const Matrix& si,
                                                    Index p) {
  if (si.cols() != 2) {
    return Status::InvalidArgument(
        "NeighborGraph::BuildHaversine: need N x 2 (lat, lon)");
  }
  // Chord distances on the sphere are monotone in great-circle distance,
  // so the Euclidean builder over the 3-D embedding produces exactly the
  // haversine p-NN graph.
  return Build(EmbedLatLonOnSphere(si), p);
}

void NeighborGraph::AddSymmetricEdge(Index a, Index b) {
  SMFL_CHECK(a >= 0 && a < num_vertices());
  SMFL_CHECK(b >= 0 && b < num_vertices());
  if (a == b) return;
  auto by_target = [](const Edge& e, Index target) { return e.to < target; };
  auto& list_a = adj_[static_cast<size_t>(a)];
  auto it = std::lower_bound(list_a.begin(), list_a.end(), b, by_target);
  if (it != list_a.end() && it->to == b) return;  // already present
  list_a.insert(it, {b, 1.0});
  auto& list_b = adj_[static_cast<size_t>(b)];
  list_b.insert(std::lower_bound(list_b.begin(), list_b.end(), a, by_target),
                {a, 1.0});
  degree_[a] += 1.0;
  degree_[b] += 1.0;
  ++num_edges_;
}

Matrix NeighborGraph::MultiplyD(const Matrix& u) const {
  SMFL_CHECK_EQ(u.rows(), num_vertices());
  Matrix out(u.rows(), u.cols());
  parallel::ParallelFor(0, u.rows(), kVertexGrain, [&](Index r0, Index r1) {
    for (Index i = r0; i < r1; ++i) {
      auto out_row = out.Row(i);
      for (const Edge& e : adj_[static_cast<size_t>(i)]) {
        auto u_row = u.Row(e.to);
        for (Index c = 0; c < u.cols(); ++c) {
          out_row[c] += e.weight * u_row[c];
        }
      }
    }
  });
  return out;
}

Matrix NeighborGraph::MultiplyW(const Matrix& u) const {
  SMFL_CHECK_EQ(u.rows(), num_vertices());
  Matrix out(u.rows(), u.cols());
  parallel::ParallelFor(0, u.rows(), kVertexGrain, [&](Index r0, Index r1) {
    for (Index i = r0; i < r1; ++i) {
      const double d = degree_[i];
      auto u_row = u.Row(i);
      auto out_row = out.Row(i);
      for (Index c = 0; c < u.cols(); ++c) out_row[c] = d * u_row[c];
    }
  });
  return out;
}

double NeighborGraph::LaplacianQuadraticForm(const Matrix& u) const {
  SMFL_CHECK_EQ(u.rows(), num_vertices());
  // Per-chunk partials combined in ascending chunk order: deterministic
  // at any thread count (though chunking may reorder sums vs. a single
  // serial accumulator, the order is fixed by the partition alone).
  return parallel::ParallelReduce(
      0, u.rows(), kVertexGrain, [&](Index r0, Index r1) {
        double acc = 0.0;
        for (Index i = r0; i < r1; ++i) {
          auto ui = u.Row(i);
          for (const Edge& e : adj_[static_cast<size_t>(i)]) {
            if (e.to <= i) continue;  // each undirected edge once
            auto uj = u.Row(e.to);
            double d2 = 0.0;
            for (Index c = 0; c < u.cols(); ++c) {
              const double diff = ui[c] - uj[c];
              d2 += diff * diff;
            }
            acc += e.weight * d2;
          }
        }
        return acc;
      });
}

Matrix NeighborGraph::DenseD() const {
  const Index n = num_vertices();
  Matrix d(n, n);
  for (Index i = 0; i < n; ++i) {
    for (const Edge& e : adj_[static_cast<size_t>(i)]) {
      d(i, e.to) = e.weight;
    }
  }
  return d;
}

Matrix NeighborGraph::DenseW() const {
  const Index n = num_vertices();
  Matrix w(n, n);
  for (Index i = 0; i < n; ++i) w(i, i) = degree_[i];
  return w;
}

Matrix NeighborGraph::DenseL() const {
  Matrix l = DenseW();
  l -= DenseD();
  return l;
}

la::SparseMatrix NeighborGraph::SparseD() const {
  const Index n = num_vertices();
  std::vector<la::Triplet> triplets;
  triplets.reserve(static_cast<size_t>(2 * num_edges_));
  for (Index i = 0; i < n; ++i) {
    for (const Edge& e : adj_[static_cast<size_t>(i)]) {
      triplets.push_back({i, e.to, e.weight});
    }
  }
  auto result = la::SparseMatrix::FromTriplets(n, n, std::move(triplets));
  SMFL_CHECK(result.ok());
  return std::move(result).value();
}

la::SparseMatrix NeighborGraph::SparseLaplacian() const {
  const Index n = num_vertices();
  std::vector<la::Triplet> triplets;
  triplets.reserve(static_cast<size_t>(2 * num_edges_ + n));
  for (Index i = 0; i < n; ++i) {
    // smfl-lint: allow(float-eq) structural zero: keep the diagonal sparse
    if (degree_[i] != 0.0) triplets.push_back({i, i, degree_[i]});
    for (const Edge& e : adj_[static_cast<size_t>(i)]) {
      triplets.push_back({i, e.to, -e.weight});
    }
  }
  auto result = la::SparseMatrix::FromTriplets(n, n, std::move(triplets));
  SMFL_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace smfl::spatial
