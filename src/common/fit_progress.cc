#include "src/common/fit_progress.h"

namespace smfl {

void FitProgress::Reset() {
  fit_active.store(false, std::memory_order_relaxed);
  restart.store(0, std::memory_order_relaxed);
  attempt.store(0, std::memory_order_relaxed);
  iteration.store(0, std::memory_order_relaxed);
  max_iterations.store(0, std::memory_order_relaxed);
  objective.store(0.0, std::memory_order_relaxed);
  convergence_delta.store(0.0, std::memory_order_relaxed);
  checkpoint_generation.store(-1, std::memory_order_relaxed);
  foldin_rows.store(0, std::memory_order_relaxed);
  foldin_batches.store(0, std::memory_order_relaxed);
  updates.store(0, std::memory_order_relaxed);
}

FitProgress& GlobalFitProgress() {
  static FitProgress* progress = new FitProgress();  // leaked: readable
  return *progress;  // during static teardown, like the metrics registry
}

void PublishFitIteration(int64_t iteration, double objective, double delta) {
  FitProgress& p = GlobalFitProgress();
  p.iteration.store(iteration, std::memory_order_relaxed);
  p.objective.store(objective, std::memory_order_relaxed);
  p.convergence_delta.store(delta, std::memory_order_relaxed);
  p.updates.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace smfl
