file(REMOVE_RECURSE
  "CMakeFiles/smfl_spatial.dir/graph.cc.o"
  "CMakeFiles/smfl_spatial.dir/graph.cc.o.d"
  "CMakeFiles/smfl_spatial.dir/grid_index.cc.o"
  "CMakeFiles/smfl_spatial.dir/grid_index.cc.o.d"
  "CMakeFiles/smfl_spatial.dir/knn.cc.o"
  "CMakeFiles/smfl_spatial.dir/knn.cc.o.d"
  "CMakeFiles/smfl_spatial.dir/metrics.cc.o"
  "CMakeFiles/smfl_spatial.dir/metrics.cc.o.d"
  "libsmfl_spatial.a"
  "libsmfl_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
