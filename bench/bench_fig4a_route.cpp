// Reproduces Fig 4(a): accumulated fuel-consumption error in the vehicle
// route-planning application, per imputation method.
//
// The fuel-consumption-rate column of the Vehicle dataset is knocked out at
// 10%, imputed by each method, and routes are costed on the imputed rates
// vs the ground truth (haversine segment length x mean endpoint rate).
//
// Expected shape (paper): SMFL lowest accumulated error; SMF next;
// neighbor/GAN methods worst.

#include "bench/bench_util.h"
#include "src/apps/route.h"
#include "src/data/inject.h"
#include "src/impute/registry.h"

using namespace smfl;
using la::Index;
using la::Matrix;

int main() {
  auto prepared =
      bench::ValueOrDie(exp::PrepareDataset("vehicle", 2000, /*seed=*/7));
  const Index fuel_col = prepared.truth.cols() - 1;
  Matrix si = prepared.raw.Block(0, 0, prepared.raw.rows(), 2);

  // Ground-truth fuel rates in original units.
  std::vector<double> fuel_truth(static_cast<size_t>(prepared.raw.rows()));
  for (Index i = 0; i < prepared.raw.rows(); ++i) {
    fuel_truth[static_cast<size_t>(i)] = prepared.raw(i, fuel_col);
  }

  // A fixed fleet of routes.
  std::vector<apps::Route> routes;
  for (uint64_t s = 0; s < 20; ++s) {
    routes.push_back(
        bench::ValueOrDie(apps::SampleRoute(si, 25, 9000 + s)));
  }

  // Missing values at 10%, averaged over several independent injections
  // (routes are long sums of one column, so a single injection is noisy).
  std::vector<std::string> names;
  for (Index j = 0; j < prepared.truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table_result = data::Table::Create(names, prepared.truth, 2);
  const int trials = 3;
  exp::ReportTable report({"Method", "FuelError(L)"});
  for (const std::string& method : impute::RegisteredImputers()) {
    auto imputer = bench::ValueOrDie(impute::MakeImputer(method));
    double total_error = 0.0;
    bool failed = false;
    for (int t = 0; t < trials && !failed; ++t) {
      data::MissingInjectionOptions inject;
      inject.missing_rate = 0.1;
      inject.seed = 77 + static_cast<uint64_t>(t);
      auto injection =
          bench::ValueOrDie(data::InjectMissing(*table_result, inject));
      Matrix input = data::ApplyMask(prepared.truth, injection.observed);
      auto imputed = imputer->Impute(input, injection.observed, 2);
      if (!imputed.ok()) {
        failed = true;
        break;
      }
      std::vector<double> fuel_imputed(fuel_truth.size());
      for (Index i = 0; i < prepared.truth.rows(); ++i) {
        fuel_imputed[static_cast<size_t>(i)] =
            prepared.normalizer.InverseTransformCell((*imputed)(i, fuel_col),
                                                     fuel_col);
      }
      auto error =
          apps::MeanRouteFuelError(si, fuel_truth, fuel_imputed, routes);
      if (!error.ok()) {
        failed = true;
        break;
      }
      total_error += *error;
    }
    report.BeginRow(method);
    if (failed) {
      report.AddCell("ERR");
    } else {
      report.AddNumber(total_error / trials, 4);
    }
  }
  report.Print("Fig 4(a): accumulated fuel consumption error per method");
  std::printf("%s", report.ToCsv().c_str());
  return 0;
}
