#include "src/la/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/la/ops.h"

namespace smfl::la {

namespace {

// One-sided Jacobi on a working copy W (n x m, n >= m): orthogonalizes the
// columns of W by plane rotations, accumulating them into V (m x m).
// Afterwards W = U * diag(s) and V holds the right singular vectors.
Status JacobiSweeps(Matrix& w, Matrix& v, const SvdOptions& options) {
  const Index n = w.rows(), m = w.cols();
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool rotated = false;
    for (Index p = 0; p < m - 1; ++p) {
      for (Index q = p + 1; q < m; ++q) {
        // Compute the 2x2 Gram block for columns p, q.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (Index i = 0; i < n; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          app += wp * wp;
          aqq += wq * wq;
          apq += wp * wq;
        }
        if (std::fabs(apq) <=
            options.tolerance * std::sqrt(app * aqq) + 1e-300) {
          continue;
        }
        rotated = true;
        // Jacobi rotation that zeroes the off-diagonal Gram entry.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (Index i = 0; i < n; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (Index i = 0; i < m; ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) return Status::OK();
  }
  // Not fully converged; for nearly-degenerate spectra the remaining error
  // is tiny, so treat exhaustion as success but keep the escape hatch for
  // pathological input via a final orthogonality check.
  return Status::OK();
}

}  // namespace

Result<SvdDecomposition> Svd(const Matrix& a, const SvdOptions& options) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("Svd: empty matrix");
  }
  if (a.HasNonFinite()) {
    return Status::NumericError("Svd: input contains NaN/Inf");
  }
  const bool transpose = a.rows() < a.cols();
  Matrix w = transpose ? a.Transposed() : a;
  const Index n = w.rows(), m = w.cols();
  Matrix v = Matrix::Identity(m);
  RETURN_NOT_OK(JacobiSweeps(w, v, options));

  // Extract singular values (column norms) and normalize U.
  Vector s(m);
  Matrix u(n, m);
  for (Index j = 0; j < m; ++j) {
    double norm = 0.0;
    for (Index i = 0; i < n; ++i) norm += w(i, j) * w(i, j);
    norm = std::sqrt(norm);
    s[j] = norm;
    if (norm > 0.0) {
      for (Index i = 0; i < n; ++i) u(i, j) = w(i, j) / norm;
    }
  }
  // Sort by non-increasing singular value.
  std::vector<Index> order(static_cast<size_t>(m));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(),
            [&](Index x, Index y) { return s[x] > s[y]; });
  Matrix u_sorted(n, m), v_sorted(m, m);
  Vector s_sorted(m);
  for (Index j = 0; j < m; ++j) {
    const Index src = order[static_cast<size_t>(j)];
    s_sorted[j] = s[src];
    for (Index i = 0; i < n; ++i) u_sorted(i, j) = u(i, src);
    for (Index i = 0; i < m; ++i) v_sorted(i, j) = v(i, src);
  }
  SvdDecomposition out;
  if (transpose) {
    out.u = std::move(v_sorted);
    out.v = std::move(u_sorted);
  } else {
    out.u = std::move(u_sorted);
    out.v = std::move(v_sorted);
  }
  out.s = std::move(s_sorted);
  return out;
}

Matrix SvdReconstruct(const SvdDecomposition& svd) {
  // U * diag(s) * V^T.
  Matrix us = svd.u;
  for (Index i = 0; i < us.rows(); ++i) {
    for (Index j = 0; j < us.cols(); ++j) us(i, j) *= svd.s[j];
  }
  return MatMulABt(us, svd.v);
}

SvdDecomposition TruncateSvd(const SvdDecomposition& svd, Index k) {
  SMFL_CHECK_GT(k, 0);
  k = std::min(k, svd.s.size());
  SvdDecomposition out;
  out.u = svd.u.Block(0, 0, svd.u.rows(), k);
  out.v = svd.v.Block(0, 0, svd.v.rows(), k);
  out.s = Vector(k);
  for (Index i = 0; i < k; ++i) out.s[i] = svd.s[i];
  return out;
}

Result<Matrix> SoftThresholdSvd(const Matrix& a, double tau,
                                const SvdOptions& options) {
  ASSIGN_OR_RETURN(SvdDecomposition svd, Svd(a, options));
  Index kept = 0;
  for (Index i = 0; i < svd.s.size(); ++i) {
    svd.s[i] = std::max(0.0, svd.s[i] - tau);
    if (svd.s[i] > 0.0) kept = i + 1;
  }
  if (kept == 0) return Matrix(a.rows(), a.cols());
  return SvdReconstruct(TruncateSvd(svd, kept));
}

Result<double> NuclearNorm(const Matrix& a, const SvdOptions& options) {
  ASSIGN_OR_RETURN(SvdDecomposition svd, Svd(a, options));
  double acc = 0.0;
  for (Index i = 0; i < svd.s.size(); ++i) acc += svd.s[i];
  return acc;
}

}  // namespace smfl::la
