// Runtime telemetry: a process-global metrics registry (monotonic
// counters, gauges, fixed-bucket histograms with percentile snapshots) and
// scoped tracing spans exported as Chrome trace-event JSON.
//
// Telemetry is OFF by default and is purely observational: instruments
// record timings and counts, never values that feed numeric code, so the
// bitwise-determinism contract of the parallel layer (common/parallel.h)
// is untouched — trajectories are identical with telemetry on or off
// (tests/kernel_equivalence_test.cc asserts this).
//
// Switching:
//   * SMFL_TELEMETRY=1 in the environment enables collection process-wide;
//     SMFL_TELEMETRY=0 pins it off (SetEnabled(true) becomes a no-op, so
//     `--trace-out` on the CLI cannot re-enable it).
//   * SetEnabled(true/false) toggles at runtime (the CLI calls it when
//     --trace-out / --metrics-out are passed).
//   * Compiling with -DSMFL_DISABLE_TELEMETRY turns every macro below into
//     nothing at all.
// When disabled at runtime every macro costs exactly one relaxed atomic
// load and a predictable untaken branch (the same pattern as
// SMFL_FAULT_FIRED); bench/bench_kernels.cpp's BM_TelemetryOverhead guards
// that the disabled path stays free.
//
// Naming convention (see docs/observability.md): dot-separated
// `component.operation`, e.g. "smfl.fit.iter", "parallel.chunk_us",
// "foldin.rows". Span names must be string literals (the trace recorder
// stores the pointer, not a copy).

#ifndef SMFL_COMMON_TELEMETRY_H_
#define SMFL_COMMON_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/stopwatch.h"

namespace smfl::telemetry {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// True when instruments record. One relaxed load — safe on any hot path.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

// Enables/disables collection. SetEnabled(true) is a no-op when the
// SMFL_TELEMETRY=0 environment override pinned telemetry off.
void SetEnabled(bool on);

// Re-reads SMFL_TELEMETRY. Tests use this to exercise the env override;
// production code never needs it (the env is read once at startup).
void RefreshEnvForTesting();

// Small sequential id for the calling thread (0 for the first thread that
// asks, 1 for the second, ...). Stable for the thread's lifetime; used as
// the `tid` of trace events and in log prefixes.
int SmallThreadId();

// Microseconds since the process epoch on the shared steady clock
// (src/common/stopwatch.h) — the timebase of every span and timestamp.
inline int64_t NowMicros() { return SteadyNowMicros(); }

// ---------------------------------------------------------------------------
// Instruments. All methods are thread-safe and lock-free; references
// returned by the registry stay valid for the process lifetime.

// Monotonic counter.
class Counter {
 public:
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void ResetForTesting() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Last-value gauge.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void ResetForTesting() { Set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram with power-of-two bucket boundaries: bucket 0 is
// [0, 1), bucket b >= 1 is [2^(b-1), 2^b), the last bucket absorbs the
// overflow. Percentiles are estimated by linear interpolation inside the
// bucket containing the rank, so the estimate is always within one bucket
// (a factor of 2) of the exact order statistic — tight enough for latency
// monitoring at any magnitude from sub-microsecond to hours.
class Histogram {
 public:
  static constexpr int kNumBuckets = 44;

  void Record(double value);

  struct Snapshot {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    // Exact per-bucket sample counts (bucket b covers [BucketLowerBound(b),
    // BucketLowerBound(b+1)); the last absorbs overflow). Exported so the
    // Prometheus serializer can emit exact cumulative `le` buckets instead
    // of interpolated percentiles.
    std::array<int64_t, kNumBuckets> bucket_counts{};
  };
  // A consistent-enough view under concurrent writers: counts are relaxed
  // loads, so a snapshot taken mid-Record may lag by in-flight updates.
  Snapshot GetSnapshot() const;

  // Lower edge of bucket b (0, 1, 2, 4, 8, ...).
  static double BucketLowerBound(int b);

  void ResetForTesting();

 private:
  double Percentile(const int64_t* buckets, int64_t count, double q,
                    double min_seen, double max_seen) const;

  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// ---------------------------------------------------------------------------
// Registry: name -> instrument, created on first use. Lookup takes a
// mutex; the SMFL_* macros cache the returned reference in a function-local
// static so steady-state cost is the instrument's atomic op alone.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Zeroes every instrument IN PLACE. References handed out earlier (and
  // cached inside macros) stay valid — essential for test isolation.
  void ResetForTesting();

  // A point-in-time copy of every instrument, sorted by name (std::map
  // order). This is the one API exporters build on: the JSONL writer below
  // and the Prometheus text serializer (src/obs/prometheus.h) both consume
  // it, so a scrape never holds the registry mutex longer than the copy.
  struct MetricsSnapshot {
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  MetricsSnapshot SnapshotAll() const;

  // One JSON object per line, sorted by name:
  //   {"name":"smfl.guard.rollbacks","type":"counter","value":3}
  //   {"name":"smfl.fit.objective","type":"gauge","value":12.25}
  //   {"name":"smfl.fit.update_u","type":"histogram","count":40,...,
  //    "buckets":[[1,0],[2,3],...]}  // [upper_edge, cumulative_count]
  std::string MetricsJsonl() const;
  Status WriteMetricsJsonl(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  // node-based maps: pointers stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// ---------------------------------------------------------------------------
// Tracing. Events accumulate in a bounded in-memory buffer and export in
// the Chrome trace-event format, loadable by chrome://tracing and Perfetto.

struct TraceEvent {
  const char* name;  // static-lifetime string (macros pass literals)
  char phase;        // 'X' = complete span, 'C' = counter sample
  int64_t ts_us;     // NowMicros() at event start
  int64_t dur_us;    // span duration ('X' only)
  int tid;           // SmallThreadId()
  double value;      // counter sample value ('C' only)
};

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  void RecordComplete(const char* name, int64_t ts_us, int64_t dur_us,
                      int tid);
  void RecordCounterSample(const char* name, double value);

  // Events currently buffered / dropped since the last Clear() (the buffer
  // caps at kMaxEvents so a runaway loop cannot exhaust memory; drops are
  // counted, not silently swallowed).
  size_t size() const;
  int64_t dropped() const;
  void Clear();

  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  static constexpr size_t kMaxEvents = 1u << 20;

 private:
  TraceRecorder() = default;

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  int64_t dropped_ = 0;
};

// RAII span: records start/duration/thread-id as a trace event AND the
// duration (µs) into the histogram of the same name, so phase timings show
// up both on the timeline and as percentile summaries in the metrics
// snapshot. When telemetry is disabled at construction the destructor does
// nothing, whatever the state at destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(name), enabled_(Enabled()) {
    if (enabled_) start_us_ = NowMicros();
  }
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  int64_t start_us_ = 0;
  bool enabled_;
};

namespace internal {
// Out-of-line slow paths for the macros below (called only when enabled).
void TraceCounterImpl(const char* name, double value);
}  // namespace internal

}  // namespace smfl::telemetry

#define SMFL_TELEMETRY_CONCAT_INNER(a, b) a##b
#define SMFL_TELEMETRY_CONCAT(a, b) SMFL_TELEMETRY_CONCAT_INNER(a, b)

#ifdef SMFL_DISABLE_TELEMETRY

#define SMFL_TRACE_SPAN(name)
#define SMFL_COUNTER_ADD(name, delta) do {} while (0)
#define SMFL_COUNTER_INC(name) do {} while (0)
#define SMFL_GAUGE_SET(name, value) do {} while (0)
#define SMFL_HISTOGRAM_RECORD(name, value) do {} while (0)
#define SMFL_TRACE_COUNTER(name, value) do {} while (0)

#else

// Scoped span named by a string literal: `SMFL_TRACE_SPAN("smfl.fit.iter");`
#define SMFL_TRACE_SPAN(name)                                      \
  ::smfl::telemetry::ScopedSpan SMFL_TELEMETRY_CONCAT(smfl_span_,  \
                                                      __LINE__)(name)

// Each macro expansion owns one block-scoped static caching the registry
// lookup, initialized (thread-safely) the first time telemetry is enabled
// at that call site.
#define SMFL_COUNTER_ADD(name, delta)                                      \
  do {                                                                     \
    if (::smfl::telemetry::Enabled()) {                                    \
      static ::smfl::telemetry::Counter& smfl_telemetry_instrument =       \
          ::smfl::telemetry::MetricsRegistry::Global().GetCounter(name);   \
      smfl_telemetry_instrument.Add(delta);                                \
    }                                                                      \
  } while (0)

#define SMFL_COUNTER_INC(name) SMFL_COUNTER_ADD(name, 1)

#define SMFL_GAUGE_SET(name, value)                                        \
  do {                                                                     \
    if (::smfl::telemetry::Enabled()) {                                    \
      static ::smfl::telemetry::Gauge& smfl_telemetry_instrument =         \
          ::smfl::telemetry::MetricsRegistry::Global().GetGauge(name);     \
      smfl_telemetry_instrument.Set(value);                                \
    }                                                                      \
  } while (0)

#define SMFL_HISTOGRAM_RECORD(name, value)                                 \
  do {                                                                     \
    if (::smfl::telemetry::Enabled()) {                                    \
      static ::smfl::telemetry::Histogram& smfl_telemetry_instrument =     \
          ::smfl::telemetry::MetricsRegistry::Global().GetHistogram(name); \
      smfl_telemetry_instrument.Record(value);                             \
    }                                                                      \
  } while (0)

// Time series sample: emits a Chrome counter event (plotted as a track in
// chrome://tracing — e.g. the objective trajectory over wall time) and
// sets the gauge of the same name so the last value lands in the metrics
// snapshot.
#define SMFL_TRACE_COUNTER(name, value)                                    \
  do {                                                                     \
    if (::smfl::telemetry::Enabled()) {                                    \
      ::smfl::telemetry::internal::TraceCounterImpl(name, value);          \
    }                                                                      \
  } while (0)

#endif  // SMFL_DISABLE_TELEMETRY

#endif  // SMFL_COMMON_TELEMETRY_H_
