// Great-circle k-NN machinery + randomized property ("fuzz") sweeps over
// the data-layer invariants that every pipeline leans on.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/data/csv.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/la/ops.h"
#include "src/spatial/graph.h"
#include "src/spatial/knn.h"
#include "src/spatial/metrics.h"

namespace smfl {
namespace {

using data::Mask;
using la::Index;
using la::Matrix;

// ------------------------------------------------------------- haversine

TEST(HaversineKnnTest, ChordConversionRoundTrip) {
  for (double km : {0.0, 1.0, 111.2, 5570.0, 20000.0}) {
    EXPECT_NEAR(spatial::ChordToKm(spatial::KmToChord(km)),
                std::min(km, M_PI * 6371.0088), km * 1e-9 + 1e-9);
  }
}

TEST(HaversineKnnTest, EmbeddingOnUnitSphere) {
  Rng rng(3);
  Matrix lat_lon(50, 2);
  for (Index i = 0; i < 50; ++i) {
    lat_lon(i, 0) = rng.Uniform(-90.0, 90.0);
    lat_lon(i, 1) = rng.Uniform(-180.0, 180.0);
  }
  Matrix embedded = spatial::EmbedLatLonOnSphere(lat_lon);
  ASSERT_EQ(embedded.cols(), 3);
  for (Index i = 0; i < 50; ++i) {
    const double norm = std::sqrt(embedded(i, 0) * embedded(i, 0) +
                                  embedded(i, 1) * embedded(i, 1) +
                                  embedded(i, 2) * embedded(i, 2));
    EXPECT_NEAR(norm, 1.0, 1e-12);
  }
}

TEST(HaversineKnnTest, ChordDistanceMatchesHaversine) {
  Rng rng(5);
  Matrix lat_lon(20, 2);
  for (Index i = 0; i < 20; ++i) {
    lat_lon(i, 0) = rng.Uniform(-80.0, 80.0);
    lat_lon(i, 1) = rng.Uniform(-179.0, 179.0);
  }
  Matrix embedded = spatial::EmbedLatLonOnSphere(lat_lon);
  for (Index a = 0; a < 20; ++a) {
    for (Index b = a + 1; b < 20; ++b) {
      const double via_chord = spatial::ChordToKm(
          spatial::EuclideanDistance(embedded.Row(a), embedded.Row(b)));
      const double direct = spatial::HaversineKm(
          lat_lon(a, 0), lat_lon(a, 1), lat_lon(b, 0), lat_lon(b, 1));
      EXPECT_NEAR(via_chord, direct, 1e-6 * std::max(direct, 1.0));
    }
  }
}

TEST(HaversineKnnTest, MatchesBruteForceHaversine) {
  Rng rng(7);
  Matrix lat_lon(120, 2);
  for (Index i = 0; i < 120; ++i) {
    lat_lon(i, 0) = rng.Uniform(30.0, 60.0);
    lat_lon(i, 1) = rng.Uniform(100.0, 140.0);
  }
  auto knn = spatial::AllKnnHaversine(lat_lon, 4);
  ASSERT_TRUE(knn.ok());
  for (Index q = 0; q < 15; ++q) {
    // Oracle: sort all rows by direct haversine distance.
    std::vector<std::pair<double, Index>> all;
    for (Index i = 0; i < 120; ++i) {
      if (i == q) continue;
      all.emplace_back(
          spatial::HaversineKm(lat_lon(q, 0), lat_lon(q, 1), lat_lon(i, 0),
                               lat_lon(i, 1)),
          i);
    }
    std::sort(all.begin(), all.end());
    const auto& actual = (*knn)[static_cast<size_t>(q)];
    ASSERT_EQ(actual.size(), 4u);
    for (size_t r = 0; r < 4; ++r) {
      EXPECT_NEAR(actual[r].distance, all[r].first,
                  1e-6 * std::max(all[r].first, 1.0))
          << "query " << q << " rank " << r;
    }
  }
}

TEST(HaversineKnnTest, AntimeridianNeighborsFound) {
  // Points on both sides of the ±180° meridian are geographically close;
  // a naive Euclidean treatment of longitude would put them ~360° apart.
  Matrix lat_lon{{0.0, 179.9}, {0.0, -179.9}, {0.0, 150.0}};
  auto knn = spatial::AllKnnHaversine(lat_lon, 1);
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ((*knn)[0][0].index, 1);  // across the antimeridian
  EXPECT_EQ((*knn)[1][0].index, 0);
  EXPECT_LT((*knn)[0][0].distance, 30.0);  // ~22 km, not half the planet
}

TEST(HaversineKnnTest, GraphBuilderAgreesWithEuclideanOnSmallRegions) {
  // Over a small region the metrics are nearly proportional, so the p-NN
  // graphs coincide.
  Rng rng(9);
  Matrix lat_lon(60, 2);
  for (Index i = 0; i < 60; ++i) {
    lat_lon(i, 0) = rng.Uniform(45.0, 45.3);
    lat_lon(i, 1) = rng.Uniform(130.0, 130.3);
  }
  auto haversine = spatial::NeighborGraph::BuildHaversine(lat_lon, 3);
  ASSERT_TRUE(haversine.ok());
  // Scale lon by cos(lat) for a fair local Euclidean comparison.
  Matrix scaled = lat_lon;
  const double c = std::cos(45.15 * M_PI / 180.0);
  for (Index i = 0; i < 60; ++i) scaled(i, 1) *= c;
  auto euclidean = spatial::NeighborGraph::Build(scaled, 3);
  ASSERT_TRUE(euclidean.ok());
  EXPECT_LT(la::MaxAbsDiff(haversine->DenseD(), euclidean->DenseD()), 0.5);
}

TEST(HaversineKnnTest, RejectsWrongWidth) {
  EXPECT_FALSE(spatial::AllKnnHaversine(Matrix(5, 3), 2).ok());
  EXPECT_FALSE(spatial::NeighborGraph::BuildHaversine(Matrix(5, 3), 2).ok());
}

// ------------------------------------------------- randomized properties

Matrix RandomTable(Rng& rng, Index rows, Index cols) {
  Matrix x(rows, cols);
  for (Index i = 0; i < x.size(); ++i) {
    x.data()[i] = rng.Uniform(-100.0, 100.0);
  }
  return x;
}

Mask RandomMask(Rng& rng, Index rows, Index cols, double density) {
  Mask mask(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      if (rng.Bernoulli(density)) mask.Set(i, j);
    }
  }
  return mask;
}

class RandomizedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedPropertyTest, MaskAlgebraLaws) {
  Rng rng(1000 + GetParam());
  const Index rows = 1 + static_cast<Index>(rng.UniformInt(20));
  const Index cols = 1 + static_cast<Index>(rng.UniformInt(10));
  Mask a = RandomMask(rng, rows, cols, 0.4);
  Mask b = RandomMask(rng, rows, cols, 0.6);
  // De Morgan: ~(a & b) == ~a | ~b.
  EXPECT_TRUE(a.And(b).Complement() == a.Complement().Or(b.Complement()));
  // Involution and partition.
  EXPECT_TRUE(a.Complement().Complement() == a);
  EXPECT_EQ(a.Count() + a.Complement().Count(), rows * cols);
  // Entries() agrees with Count().
  EXPECT_EQ(static_cast<Index>(a.Entries().size()), a.Count());
}

TEST_P(RandomizedPropertyTest, CombineApplyIdentities) {
  Rng rng(2000 + GetParam());
  const Index rows = 1 + static_cast<Index>(rng.UniformInt(15));
  const Index cols = 1 + static_cast<Index>(rng.UniformInt(8));
  Matrix x = RandomTable(rng, rows, cols);
  Matrix y = RandomTable(rng, rows, cols);
  Mask mask = RandomMask(rng, rows, cols, 0.5);
  // Combine(x, x) == x.
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(data::CombineByMask(x, x, mask), x), 0.0);
  // Combine respects the partition: masked cells from x, rest from y.
  Matrix combined = data::CombineByMask(x, y, mask);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      EXPECT_DOUBLE_EQ(combined(i, j),
                       mask.Contains(i, j) ? x(i, j) : y(i, j));
    }
  }
  // ApplyMask(x, all) == x; ApplyMask(x, none) == 0.
  EXPECT_DOUBLE_EQ(
      la::MaxAbsDiff(data::ApplyMask(x, Mask::AllSet(rows, cols)), x), 0.0);
  EXPECT_DOUBLE_EQ(la::FrobeniusNorm(data::ApplyMask(x, Mask(rows, cols))),
                   0.0);
}

TEST_P(RandomizedPropertyTest, NormalizerRoundTripOnRandomTables) {
  Rng rng(3000 + GetParam());
  const Index rows = 2 + static_cast<Index>(rng.UniformInt(30));
  const Index cols = 1 + static_cast<Index>(rng.UniformInt(10));
  Matrix x = RandomTable(rng, rows, cols);
  auto normalizer = data::MinMaxNormalizer::Fit(x);
  ASSERT_TRUE(normalizer.ok());
  Matrix y = normalizer->Transform(x);
  for (Index i = 0; i < y.size(); ++i) {
    EXPECT_GE(y.data()[i], -1e-12);
    EXPECT_LE(y.data()[i], 1.0 + 1e-12);
  }
  EXPECT_LT(la::MaxAbsDiff(normalizer->InverseTransform(y), x), 1e-9);
}

TEST_P(RandomizedPropertyTest, CsvRoundTripOnRandomTables) {
  Rng rng(4000 + GetParam());
  const Index rows = 1 + static_cast<Index>(rng.UniformInt(12));
  const Index cols = 2 + static_cast<Index>(rng.UniformInt(6));
  Matrix x = RandomTable(rng, rows, cols);
  Mask observed = RandomMask(rng, rows, cols, 0.8);
  std::vector<std::string> names;
  for (Index j = 0; j < cols; ++j) names.push_back("c" + std::to_string(j));
  auto table = data::Table::Create(names, x, std::min<Index>(2, cols));
  ASSERT_TRUE(table.ok());
  // Serialize through a string (WriteCsv writes files; ParseCsv is the
  // inverse of the same format).
  std::string csv_text = "c0";
  for (Index j = 1; j < cols; ++j) csv_text += ",c" + std::to_string(j);
  csv_text += "\n";
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      if (j > 0) csv_text += ",";
      if (observed.Contains(i, j)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", x(i, j));
        csv_text += buf;
      }
    }
    csv_text += "\n";
  }
  data::CsvReadOptions options;
  options.spatial_cols = std::min<Index>(2, cols);
  auto parsed = data::ParseCsv(csv_text, options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->observed == observed);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      if (observed.Contains(i, j)) {
        EXPECT_DOUBLE_EQ(parsed->table.values()(i, j), x(i, j));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace smfl
