// BLAS-like kernels on Matrix/Vector. All products use a cache-blocked
// i-k-j loop order; MatMulAtB / MatMulABt avoid materializing transposes.
//
// The matrix products are parallelized over row blocks through
// common/parallel.h. The partition is static (size-derived) and each
// output element is accumulated entirely within one chunk in the serial
// loop order, so results are bitwise identical at any thread count.

#ifndef SMFL_LA_OPS_H_
#define SMFL_LA_OPS_H_

#include "src/la/matrix.h"

namespace smfl::la {

// C = A * B.
[[nodiscard]] Matrix MatMul(const Matrix& a, const Matrix& b);

// C = A^T * B without forming A^T.
[[nodiscard]] Matrix MatMulAtB(const Matrix& a, const Matrix& b);

// C = A * B^T without forming B^T.
[[nodiscard]] Matrix MatMulABt(const Matrix& a, const Matrix& b);

// Element-wise (Hadamard) product.
[[nodiscard]] Matrix Hadamard(const Matrix& a, const Matrix& b);

// Element-wise quotient with denominator clamped at `eps` (used by
// multiplicative NMF updates; keeps entries finite and nonnegative).
[[nodiscard]] Matrix SafeDivide(const Matrix& num, const Matrix& den, double eps);

// ||A||_F.
[[nodiscard]] double FrobeniusNorm(const Matrix& a);

// ||A||_F^2 (avoids the sqrt).
[[nodiscard]] double FrobeniusNormSquared(const Matrix& a);

// Trace of a square matrix.
[[nodiscard]] double Trace(const Matrix& a);

// Tr(A^T * B) = sum_ij a_ij * b_ij, without forming the product.
[[nodiscard]] double TraceAtB(const Matrix& a, const Matrix& b);

// Dot product.
[[nodiscard]] double Dot(const Vector& a, const Vector& b);

// ||v||_2.
[[nodiscard]] double Norm2(const Vector& v);

// Squared Euclidean distance between two equal-length spans.
[[nodiscard]] double SquaredDistance(std::span<const double> a, std::span<const double> b);

// Max |a_ij - b_ij|.
[[nodiscard]] double MaxAbsDiff(const Matrix& a, const Matrix& b);

// Clamps all entries below `lo` to `lo` (projection onto the nonnegative
// orthant when lo = 0).
void ClampMin(Matrix& a, double lo);

// Column-wise mean of the rows.
[[nodiscard]] Vector ColMeans(const Matrix& a);

}  // namespace smfl::la

#endif  // SMFL_LA_OPS_H_
