# Empty dependencies file for bench_fig4a_route.
# This may be replaced when dependencies are built.
