// Clustering incomplete spatial data with SMFL (the paper's §IV-B4
// application, Fig 4b).
//
// The coefficient matrix U learned by SMFL gives every tuple a weight per
// latent feature; K-means over the rows of U clusters tuples even when a
// tenth of the table is missing. Accuracy is measured against the
// generator's planted cluster labels under the optimal label permutation
// (Kuhn–Munkres), exactly as in the paper.
//
//   ./build/examples/lake_clustering

#include <cstdio>

#include "src/apps/clustering_app.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"

using namespace smfl;
using la::Matrix;

int main() {
  auto dataset = data::MakeLakeLike(/*rows=*/1200, /*seed=*/5);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Matrix truth = normalizer->Transform(dataset->table.values());

  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = 11;
  auto injection = data::InjectMissing(dataset->table, inject);
  Matrix input = data::ApplyMask(truth, injection->observed);
  std::printf("clustering %lld lakes, %lld of %lld cells missing\n",
              static_cast<long long>(truth.rows()),
              static_cast<long long>(
                  injection->observed.Complement().Count()),
              static_cast<long long>(truth.size()));

  apps::ClusterAppOptions options;
  options.num_clusters = 5;  // the generator plants five lake districts
  options.rank = 10;         // latent rank need not equal the cluster count
  for (apps::ClusterMethod method :
       {apps::ClusterMethod::kPca, apps::ClusterMethod::kNmf,
        apps::ClusterMethod::kSmf, apps::ClusterMethod::kSmfl}) {
    auto accuracy = apps::ClusteringAccuracyOnIncomplete(
        method, input, injection->observed, 2, dataset->cluster_labels,
        options);
    if (accuracy.ok()) {
      std::printf("%-5s clustering accuracy: %.3f\n",
                  apps::ClusterMethodName(method), *accuracy);
    } else {
      std::printf("%-5s failed: %s\n", apps::ClusterMethodName(method),
                  accuracy.status().ToString().c_str());
    }
  }
  return 0;
}
