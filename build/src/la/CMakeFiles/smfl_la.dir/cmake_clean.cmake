file(REMOVE_RECURSE
  "CMakeFiles/smfl_la.dir/cholesky.cc.o"
  "CMakeFiles/smfl_la.dir/cholesky.cc.o.d"
  "CMakeFiles/smfl_la.dir/eigen.cc.o"
  "CMakeFiles/smfl_la.dir/eigen.cc.o.d"
  "CMakeFiles/smfl_la.dir/matrix.cc.o"
  "CMakeFiles/smfl_la.dir/matrix.cc.o.d"
  "CMakeFiles/smfl_la.dir/ops.cc.o"
  "CMakeFiles/smfl_la.dir/ops.cc.o.d"
  "CMakeFiles/smfl_la.dir/qr.cc.o"
  "CMakeFiles/smfl_la.dir/qr.cc.o.d"
  "CMakeFiles/smfl_la.dir/sparse.cc.o"
  "CMakeFiles/smfl_la.dir/sparse.cc.o.d"
  "CMakeFiles/smfl_la.dir/svd.cc.o"
  "CMakeFiles/smfl_la.dir/svd.cc.o.d"
  "libsmfl_la.a"
  "libsmfl_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
