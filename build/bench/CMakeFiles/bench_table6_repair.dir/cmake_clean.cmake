file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_repair.dir/bench_table6_repair.cpp.o"
  "CMakeFiles/bench_table6_repair.dir/bench_table6_repair.cpp.o.d"
  "bench_table6_repair"
  "bench_table6_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
