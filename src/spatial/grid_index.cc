#include "src/spatial/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace smfl::spatial {

Result<GridIndex> GridIndex::Build(const Matrix& points) {
  if (points.rows() == 0 || points.cols() < 2) {
    return Status::InvalidArgument("GridIndex: need an N x >=2 point matrix");
  }
  GridIndex index(points);
  index.lat_lo_ = index.lat_hi_ = points(0, 0);
  index.lon_lo_ = index.lon_hi_ = points(0, 1);
  for (Index i = 1; i < points.rows(); ++i) {
    index.lat_lo_ = std::min(index.lat_lo_, points(i, 0));
    index.lat_hi_ = std::max(index.lat_hi_, points(i, 0));
    index.lon_lo_ = std::min(index.lon_lo_, points(i, 1));
    index.lon_hi_ = std::max(index.lon_hi_, points(i, 1));
  }
  // Degenerate extents still need a nonzero cell size.
  if (index.lat_hi_ - index.lat_lo_ < 1e-12) index.lat_hi_ = index.lat_lo_ + 1;
  if (index.lon_hi_ - index.lon_lo_ < 1e-12) index.lon_hi_ = index.lon_lo_ + 1;
  index.cells_ = std::max<Index>(
      1, static_cast<Index>(std::sqrt(static_cast<double>(points.rows()))));
  index.buckets_.assign(static_cast<size_t>(index.cells_ * index.cells_), {});
  for (Index i = 0; i < points.rows(); ++i) {
    const Index cx = index.CellOf(points(i, 0), index.lat_lo_, index.lat_hi_);
    const Index cy = index.CellOf(points(i, 1), index.lon_lo_, index.lon_hi_);
    index.buckets_[static_cast<size_t>(cx * index.cells_ + cy)].push_back(i);
  }
  return index;
}

Index GridIndex::CellOf(double coord, double lo, double hi) const {
  const double t = (coord - lo) / (hi - lo);
  return std::clamp<Index>(static_cast<Index>(t * static_cast<double>(cells_)),
                           0, cells_ - 1);
}

const std::vector<Index>& GridIndex::Bucket(Index cx, Index cy) const {
  return buckets_[static_cast<size_t>(cx * cells_ + cy)];
}

std::vector<Neighbor> GridIndex::RadiusQuery(double lat, double lon,
                                             double radius) const {
  std::vector<Neighbor> out;
  if (radius < 0) return out;
  const double cell_lat = (lat_hi_ - lat_lo_) / static_cast<double>(cells_);
  const double cell_lon = (lon_hi_ - lon_lo_) / static_cast<double>(cells_);
  const Index rx = static_cast<Index>(radius / cell_lat) + 1;
  const Index ry = static_cast<Index>(radius / cell_lon) + 1;
  const Index cx = CellOf(lat, lat_lo_, lat_hi_);
  const Index cy = CellOf(lon, lon_lo_, lon_hi_);
  for (Index x = std::max<Index>(0, cx - rx);
       x <= std::min(cells_ - 1, cx + rx); ++x) {
    for (Index y = std::max<Index>(0, cy - ry);
         y <= std::min(cells_ - 1, cy + ry); ++y) {
      for (Index i : Bucket(x, y)) {
        const double d = std::hypot((*points_)(i, 0) - lat,
                                    (*points_)(i, 1) - lon);
        if (d <= radius) out.push_back({i, d});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;
  });
  return out;
}

std::vector<Neighbor> GridIndex::Knn(double lat, double lon, Index k,
                                     Index exclude) const {
  SMFL_CHECK_GT(k, 0);
  const double cell_lat = (lat_hi_ - lat_lo_) / static_cast<double>(cells_);
  const double cell_lon = (lon_hi_ - lon_lo_) / static_cast<double>(cells_);
  const Index cx = CellOf(lat, lat_lo_, lat_hi_);
  const Index cy = CellOf(lon, lon_lo_, lon_hi_);
  std::vector<Neighbor> candidates;
  // Expand rings until we have k candidates AND the ring boundary exceeds
  // the current k-th distance (so nothing closer can be outside).
  for (Index ring = 0; ring < cells_; ++ring) {
    const Index x0 = std::max<Index>(0, cx - ring);
    const Index x1 = std::min(cells_ - 1, cx + ring);
    const Index y0 = std::max<Index>(0, cy - ring);
    const Index y1 = std::min(cells_ - 1, cy + ring);
    for (Index x = x0; x <= x1; ++x) {
      for (Index y = y0; y <= y1; ++y) {
        // Only the new ring shell.
        if (ring > 0 && x != x0 && x != x1 && y != y0 && y != y1) continue;
        for (Index i : Bucket(x, y)) {
          if (i == exclude) continue;
          candidates.push_back({i, std::hypot((*points_)(i, 0) - lat,
                                              (*points_)(i, 1) - lon)});
        }
      }
    }
    // Border-clamped rings can revisit buckets; drop duplicate rows before
    // the stopping test (a duplicated nearest point would fake a small
    // k-th distance and stop the search early).
    std::sort(candidates.begin(), candidates.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.index < b.index;
              });
    candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                 [](const Neighbor& a, const Neighbor& b) {
                                   return a.index == b.index;
                                 }),
                     candidates.end());
    if (static_cast<Index>(candidates.size()) >= k) {
      std::nth_element(candidates.begin(),
                       candidates.begin() + static_cast<size_t>(k) - 1,
                       candidates.end(),
                       [](const Neighbor& a, const Neighbor& b) {
                         return a.distance < b.distance;
                       });
      const double kth =
          candidates[static_cast<size_t>(k) - 1].distance;
      const double ring_guarantee =
          static_cast<double>(ring) * std::min(cell_lat, cell_lon);
      if (kth <= ring_guarantee || (x0 == 0 && y0 == 0 && x1 == cells_ - 1 &&
                                    y1 == cells_ - 1)) {
        break;
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.index < b.index;
            });
  if (static_cast<Index>(candidates.size()) > k) {
    candidates.resize(static_cast<size_t>(k));
  }
  return candidates;
}

}  // namespace smfl::spatial
