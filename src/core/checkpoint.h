// Crash-safe training checkpoints with bitwise-identical resume.
//
// A long fit killed at iteration 400 of 500 used to mean starting over.
// The fit loop can instead hand a CheckpointManager a FitCheckpoint every
// `every` iterations: the COMPLETE solver state — factors, landmarks,
// objective trace, the TrainingGuard's internal state (including its Rng
// stream), the escalated denominator floor, and the position inside the
// restart/retry nest — plus fingerprints of the input and options.
// Restoring that state replays the exact trajectory the uninterrupted run
// would have taken: `smfl fit --resume` produces a model file that is
// byte-for-byte identical to the never-killed run at any thread count
// (tests/crash_recovery_test.cc SIGKILLs real fits to prove it).
//
// Durability comes from src/common/durable_io.h: every checkpoint is one
// CRC32-section-framed container written with the atomic temp-file +
// fsync + rename protocol, so a crash mid-write can never destroy the
// previous generation, and a corrupted generation is detected at load and
// skipped in favor of the one before it (rotation keeps `keep`
// generations). Doubles travel as hex-encoded IEEE-754 bit patterns —
// exact by construction, no decimal round-trip involved.
//
// Telemetry (docs/observability.md): spans `checkpoint.write` /
// `checkpoint.restore`; histograms `smfl.checkpoint.bytes`,
// `smfl.checkpoint.write_us`; counters `smfl.checkpoint.writes`,
// `.failures`, `.restores`, `.corrupt_skipped`. When the config carries
// flush paths, the in-memory Chrome trace and metrics snapshot are also
// durably rewritten at every checkpoint, so telemetry survives the same
// crashes the model state does.

#ifndef SMFL_CORE_CHECKPOINT_H_
#define SMFL_CORE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/training_guard.h"
#include "src/data/normalize.h"
#include "src/la/matrix.h"

namespace smfl::core {

// FNV-1a 64-bit over raw bytes; the building block of the input/options
// fingerprints below. Chain by passing the previous hash as `h`.
uint64_t Fnv1a64(std::string_view bytes,
                 uint64_t h = 0xcbf29ce484222325ULL);

// One resumable fit state, as captured at the end of an accepted
// iteration. Everything the trajectory depends on is here; nothing is
// recomputed on resume except R_Ω(UV), which is a pure deterministic
// function of (U, V, mask).
struct FitCheckpoint {
  // -- identity / validation ------------------------------------------
  // The OUTER FitSmfl seed (not the derived per-attempt seed).
  uint64_t seed = 0;
  // FNV-1a over the normalized input bytes + mask + spatial_cols, and
  // over the trajectory-relevant SmflOptions fields. Resume refuses a
  // checkpoint whose fingerprints do not match the live call — resuming
  // against different data or options would silently produce a model
  // that matches neither run.
  uint64_t input_fingerprint = 0;
  uint64_t options_fingerprint = 0;

  // -- position in the restart / retry / iteration nest ---------------
  int restart = 0;       // index into the num_restarts loop
  int attempt = 0;       // RetryPolicy attempt within that restart
  int retries_used = 0;  // numeric retries consumed so far (all restarts)
  int iteration = 0;     // last ACCEPTED iteration; resume runs iteration+1

  // -- solver state ----------------------------------------------------
  double div_eps = 0.0;  // fit-loop denominator floor (guard-escalated)
  la::Matrix u;
  la::Matrix v;
  la::Matrix landmarks;
  la::Index spatial_cols = 0;
  std::vector<double> objective_trace;  // accepted trajectory incl. initial
  TrainingGuard::State guard;

  // Best completed-restart model (model_io serialization; empty when the
  // interrupted restart is the first). Lets a resumed num_restarts > 1
  // fit keep the winner-so-far without refitting earlier restarts.
  std::string best_model;

  // Training normalizer, stamped in by CheckpointManager::SetNormalizer
  // so `smfl fit --resume` serves the SAME normalization space without
  // re-deriving it (absent when fitting pre-normalized matrices).
  std::optional<data::MinMaxNormalizer> normalizer;
};

// Checkpoint <-> durable-io container bytes. Deserialize verifies
// structure and every section CRC, returning DataError on any corruption.
std::string SerializeCheckpoint(const FitCheckpoint& checkpoint);
Result<FitCheckpoint> DeserializeCheckpoint(const std::string& content);

struct CheckpointConfig {
  // Directory the generations live in (created on first write).
  std::string dir;
  // Iterations between checkpoint writes (a write fires after accepted
  // iteration i when (i + 1) % every == 0). <= 0 disables writing.
  int every = 10;
  // Generations retained; older files are unlinked after each write.
  int keep = 3;
  // When non-empty, the Chrome trace / metrics snapshot are durably
  // rewritten at every checkpoint (the CLI passes --trace-out /
  // --metrics-out here so telemetry survives a crash too).
  std::string trace_flush_path;
  std::string metrics_flush_path;
};

// Owns one checkpoint directory: numbering, rotation, corrupt-generation
// fallback. Not thread-safe; the fit loop calls it from one thread.
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointConfig config);

  const CheckpointConfig& config() const { return config_; }

  // True when the fit loop should checkpoint after accepted iteration i.
  bool ShouldCheckpoint(int iteration) const {
    return config_.every > 0 && (iteration + 1) % config_.every == 0;
  }

  // Serializes, durably writes generation N+1, rotates old generations,
  // flushes telemetry when configured, then invokes the post-write hook.
  // The normalizer set via SetNormalizer is stamped into the checkpoint
  // when it carries none.
  Status Save(const FitCheckpoint& checkpoint);

  // Newest readable generation. Corrupt generations (CRC mismatch, torn
  // write, bad structure) are logged, counted, and skipped in favor of
  // the previous one. NotFound when the directory holds no checkpoints;
  // DataError when every generation is corrupt. Subsequent Saves number
  // after the loaded generation.
  Result<FitCheckpoint> LoadLatest();

  // Normalizer to stamp into saved checkpoints (not owned; must outlive
  // the manager's Save calls). nullptr clears.
  void SetNormalizer(const data::MinMaxNormalizer* normalizer) {
    normalizer_ = normalizer;
  }

  // Test-and-crash-harness hook, called after every successful durable
  // write with the cumulative write count (the crash test raises SIGKILL
  // from it to kill a real fit at a known checkpoint boundary).
  void SetPostWriteHook(std::function<void(int)> hook) {
    post_write_hook_ = std::move(hook);
  }

  int writes() const { return writes_; }

 private:
  CheckpointConfig config_;
  const data::MinMaxNormalizer* normalizer_ = nullptr;
  std::function<void(int)> post_write_hook_;
  int writes_ = 0;
  long long next_generation_ = -1;  // -1: directory not scanned yet
};

}  // namespace smfl::core

#endif  // SMFL_CORE_CHECKPOINT_H_
