// Shared types for iterative matrix factorization solvers.

#ifndef SMFL_MF_FACTORIZATION_H_
#define SMFL_MF_FACTORIZATION_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "src/la/matrix.h"

namespace smfl::mf {

using la::Index;
using la::Matrix;

// Denominator floor for multiplicative update rules. Standard NMF practice:
// keeps iterates finite and nonnegative when a factor row/column dies.
inline constexpr double kDivEps = 1e-12;

// Benchmark-only escape hatch: SMFL_BENCH_LEGACY_RECONSTRUCT=1 makes the
// iterative solvers recompute R_Ω(UV) unfused (full GEMM + masking pass)
// in every update and objective evaluation — the pre-optimization
// per-iteration cost. tools/run_bench.sh uses it for before/after numbers;
// never set it in production.
inline bool LegacyReconstructForBench() {
  static const bool legacy = [] {
    const char* env = std::getenv("SMFL_BENCH_LEGACY_RECONSTRUCT");
    return env != nullptr && env[0] == '1';
  }();
  return legacy;
}

// Which tier of a graceful-degradation chain (e.g. SMFL → SMF → NMF →
// column-mean) served a result, and why the tiers before it were skipped.
// Filled by the fallback imputers/repairers; empty when no chain ran.
struct DegradationReport {
  struct Attempt {
    std::string tier;
    std::string error;  // empty for the tier that served
  };

  std::string served_by;
  std::vector<Attempt> attempts;

  // True when at least one tier failed before one served.
  bool degraded() const {
    return !attempts.empty() &&
           (served_by.empty() || attempts.front().tier != served_by);
  }

  // "SMFL: <err>; SMF: <err>; NMF: served" (or "" when no chain ran).
  std::string ToString() const {
    std::string out;
    for (const Attempt& a : attempts) {
      if (!out.empty()) out += "; ";
      out += a.tier + ": " + (a.error.empty() ? "served" : a.error);
    }
    return out;
  }
};

// Progress record returned by every iterative solver. The objective trace is
// the hook for the paper's convergence guarantee: multiplicative updates
// must make it non-increasing (Propositions 5 and 7), which the test suite
// asserts.
struct FitReport {
  std::vector<double> objective_trace;
  int iterations = 0;
  bool converged = false;

  // TrainingGuard accounting (guarded solvers only): checkpoint rollbacks
  // taken and recovery escalations spent during this fit.
  int rollbacks = 0;
  int recovery_attempts = 0;
  // Extra single-seed fit attempts consumed by the RetryPolicy across the
  // restart loop (0 when every restart succeeded first try).
  int numeric_retries = 0;

  // Filled when a graceful-degradation chain produced this result.
  DegradationReport degradation;

  double final_objective() const {
    return objective_trace.empty() ? 0.0 : objective_trace.back();
  }
};

// Convergence test shared by the solvers: relative objective improvement.
inline bool RelativeImprovementBelow(const std::vector<double>& trace,
                                     double tolerance) {
  if (trace.size() < 2) return false;
  const double prev = trace[trace.size() - 2];
  const double cur = trace.back();
  const double denom = prev > 1e-300 ? prev : 1e-300;
  return (prev - cur) / denom < tolerance;
}

}  // namespace smfl::mf

#endif  // SMFL_MF_FACTORIZATION_H_
