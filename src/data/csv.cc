#include "src/data/csv.h"

#include <fstream>
#include <sstream>

#include "src/common/strings.h"

namespace smfl::data {

namespace {

Result<CsvTable> ParseLines(const std::vector<std::string>& lines,
                            const CsvReadOptions& options) {
  size_t first_data = 0;
  std::vector<std::string> names;
  if (options.has_header) {
    if (lines.empty()) return Status::DataError("CSV has no header row");
    for (auto& f : Split(lines[0], options.delimiter)) {
      names.emplace_back(Trim(f));
    }
    first_data = 1;
  }
  const size_t n_rows = lines.size() - first_data;
  std::vector<std::vector<std::string>> cells;
  cells.reserve(n_rows);
  size_t n_cols = names.size();
  for (size_t r = first_data; r < lines.size(); ++r) {
    auto fields = Split(lines[r], options.delimiter);
    if (n_cols == 0) n_cols = fields.size();
    if (fields.size() != n_cols) {
      return Status::DataError(StrFormat(
          "CSV row %zu has %zu fields, expected %zu", r, fields.size(),
          n_cols));
    }
    cells.push_back(std::move(fields));
  }
  if (!options.has_header) {
    for (size_t j = 0; j < n_cols; ++j) {
      names.push_back(StrFormat("col%zu", j));
    }
  }
  Matrix values(static_cast<Index>(n_rows), static_cast<Index>(n_cols));
  Mask observed(static_cast<Index>(n_rows), static_cast<Index>(n_cols));
  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t j = 0; j < n_cols; ++j) {
      std::string_view cell = Trim(cells[i][j]);
      if (cell.empty()) continue;  // unobserved
      auto parsed = ParseDouble(cell);
      if (!parsed.ok()) {
        Status st = parsed.status();
        return st.WithContext(StrFormat("CSV cell (%zu, %zu)", i, j));
      }
      values(static_cast<Index>(i), static_cast<Index>(j)) = *parsed;
      observed.Set(static_cast<Index>(i), static_cast<Index>(j));
    }
  }
  ASSIGN_OR_RETURN(
      Table table,
      Table::Create(std::move(names), std::move(values), options.spatial_cols));
  return CsvTable{std::move(table), std::move(observed)};
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& content,
                          const CsvReadOptions& options) {
  std::vector<std::string> lines;
  std::istringstream is(content);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!Trim(line).empty()) lines.push_back(line);
  }
  return ParseLines(lines, options);
}

Result<CsvTable> ReadCsv(const std::string& path,
                         const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto result = ParseCsv(buf.str(), options);
  if (!result.ok()) {
    Status st = result.status();
    return st.WithContext("while reading '" + path + "'");
  }
  return result;
}

Status WriteCsv(const std::string& path, const Table& table,
                const Mask& observed, char delimiter) {
  if (observed.rows() != table.NumRows() ||
      observed.cols() != table.NumCols()) {
    return Status::InvalidArgument("WriteCsv: mask shape mismatch");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const auto& names = table.column_names();
  for (size_t j = 0; j < names.size(); ++j) {
    if (j > 0) out << delimiter;
    out << names[j];
  }
  out << "\n";
  out.precision(12);
  for (Index i = 0; i < table.NumRows(); ++i) {
    for (Index j = 0; j < table.NumCols(); ++j) {
      if (j > 0) out << delimiter;
      if (observed.Contains(i, j)) out << table.values()(i, j);
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Status WriteCsv(const std::string& path, const Table& table, char delimiter) {
  return WriteCsv(path, table,
                  Mask::AllSet(table.NumRows(), table.NumCols()), delimiter);
}

}  // namespace smfl::data
