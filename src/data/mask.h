// Observed/unobserved entry bookkeeping (the paper's Ω and Ψ sets).
//
// A Mask is an N x M boolean grid; true marks an entry as belonging to the
// set. By convention throughout the library, an "observation mask" has
// true = observed (Ω) and its complement is Ψ. The same type represents the
// dirty-cell set for the repair task and the landmark set Φ over V.

#ifndef SMFL_DATA_MASK_H_
#define SMFL_DATA_MASK_H_

#include <cstdint>
#include <vector>

#include "src/la/matrix.h"

namespace smfl::data {

using la::Index;
using la::Matrix;

// One (row, col) cell address.
struct Entry {
  Index row = 0;
  Index col = 0;

  friend bool operator==(const Entry& a, const Entry& b) {
    return a.row == b.row && a.col == b.col;
  }
  friend bool operator<(const Entry& a, const Entry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  }
};

class Mask {
 public:
  Mask() = default;

  // All entries initialized to `value`.
  Mask(Index rows, Index cols, bool value = false)
      : rows_(rows), cols_(cols),
        bits_(static_cast<size_t>(rows * cols), value ? 1 : 0) {
    SMFL_CHECK_GE(rows, 0);
    SMFL_CHECK_GE(cols, 0);
  }

  static Mask AllSet(Index rows, Index cols) { return Mask(rows, cols, true); }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  bool Contains(Index i, Index j) const {
    SMFL_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return bits_[static_cast<size_t>(i * cols_ + j)] != 0;
  }

  void Set(Index i, Index j, bool value = true) {
    SMFL_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    bits_[static_cast<size_t>(i * cols_ + j)] = value ? 1 : 0;
  }

  // Number of set entries.
  Index Count() const;

  // Entries NOT in this mask (Ψ when *this is Ω).
  Mask Complement() const;

  // All set entries in row-major order.
  std::vector<Entry> Entries() const;

  // True if every entry in row i is set.
  bool RowFullySet(Index i) const;

  // Indices of fully-set rows (complete tuples).
  std::vector<Index> FullySetRows() const;

  // Set-intersection / union with another mask of the same shape.
  Mask And(const Mask& other) const;
  Mask Or(const Mask& other) const;

  bool SameShape(const Mask& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  friend bool operator==(const Mask& a, const Mask& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.bits_ == b.bits_;
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<uint8_t> bits_;
};

// R_mask(X): zero out entries not in the mask (the paper's R_Ω operator).
Matrix ApplyMask(const Matrix& x, const Mask& mask);

// R_Ω(X) + R_Ψ(X*): take masked entries from `x`, the rest from `x_star`
// (the paper's Formula 8 recovery step).
Matrix CombineByMask(const Matrix& x, const Matrix& x_star, const Mask& mask);

}  // namespace smfl::data

#endif  // SMFL_DATA_MASK_H_
