#include "src/la/cholesky.h"

#include <cmath>

namespace smfl::la {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const Index n = a.rows();
  Matrix l(n, n);
  for (Index j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (Index p = 0; p < j; ++p) diag -= l(j, p) * l(j, p);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return Status::NumericError(
          "matrix is not positive definite (pivot " +
          std::to_string(static_cast<long long>(j)) + ")");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (Index i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (Index p = 0; p < j; ++p) v -= l(i, p) * l(j, p);
      l(i, j) = v / ljj;
    }
  }
  return l;
}

Vector ForwardSubstitute(const Matrix& l, const Vector& b) {
  SMFL_CHECK_EQ(l.rows(), l.cols());
  SMFL_CHECK_EQ(l.rows(), b.size());
  const Index n = l.rows();
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    double v = b[i];
    for (Index p = 0; p < i; ++p) v -= l(i, p) * y[p];
    y[i] = v / l(i, i);
  }
  return y;
}

Vector BackSubstituteTransposed(const Matrix& l, const Vector& y) {
  SMFL_CHECK_EQ(l.rows(), l.cols());
  SMFL_CHECK_EQ(l.rows(), y.size());
  const Index n = l.rows();
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    double v = y[i];
    for (Index p = i + 1; p < n; ++p) v -= l(p, i) * x[p];
    x[i] = v / l(i, i);
  }
  return x;
}

Result<Vector> CholeskySolve(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("Cholesky solve: dimension mismatch");
  }
  ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  Vector y = ForwardSubstitute(l, b);
  return BackSubstituteTransposed(l, y);
}

Result<Matrix> CholeskySolveMatrix(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("Cholesky solve: dimension mismatch");
  }
  ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  Matrix x(b.rows(), b.cols());
  for (Index j = 0; j < b.cols(); ++j) {
    Vector y = ForwardSubstitute(l, b.Col(j));
    x.SetCol(j, BackSubstituteTransposed(l, y));
  }
  return x;
}

}  // namespace smfl::la
