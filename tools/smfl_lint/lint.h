// smfl_lint: repo-contract static analysis for the smfl source tree.
//
// A deliberately small, dependency-free lexical checker. It does not parse
// C++; it tokenizes each file (skipping comments and string literals) and
// pattern-matches token sequences against the repo's hard contracts:
//
//   thread          (R1) raw std::thread/std::async/OpenMP outside
//                        src/common/parallel.* — all parallelism must go
//                        through the deterministic ParallelFor layer.
//   nondet          (R2) nondeterminism sources (rand(), std::random_device,
//                        time(), std::chrono::system_clock) outside
//                        src/common/rng.*, stopwatch.h, telemetry.cc.
//   unordered-iter  (R3) iteration over std::unordered_map/unordered_set in
//                        src/la, src/core, src/mf — hash-order iteration
//                        feeds float accumulation and breaks bitwise
//                        reproducibility. Lookups are fine; loops are not.
//   discard-status  (R4) a call to a Status/Result-returning function used
//                        as a bare statement, or cast to void. Complements
//                        the [[nodiscard]] attribute for macro-free sites.
//   float-eq        (R5) ==/!= against a floating-point literal outside
//                        test files.
//   raw-log         (R6) std::cerr/std::clog outside src/common/logging.cc —
//                        diagnostics must go through the SMFL_LOG macros.
//   raw-file-write  (R7) std::ofstream or fopen()/freopen() outside
//                        src/common/durable_io.cc and logging.cc — output
//                        files must be written via smfl::WriteFileDurable
//                        (temp + fsync + atomic rename) so a crash can never
//                        leave a truncated artifact. Reads are unaffected.
//   raw-simd        (R8) SIMD intrinsic headers or _mm*/__m###/v*q_f64
//                        tokens outside src/la/simd.* — vector code must go
//                        through the la::simd runtime-dispatch table so the
//                        scalar fallback and bitwise-determinism argument
//                        stay centralized in one file.
//   const-ref       (R9) a Matrix/Table/Mask function parameter passed by
//                        value — a full deep copy of the heap buffer per
//                        call; take `const T&`. ALL_CAPS macro callees
//                        (ASSIGN_OR_RETURN declares locals inside its
//                        parens) are exempt.
//   raw-socket     (R11) unqualified socket/bind/listen/accept/poll/epoll_*
//                        calls outside src/obs/http_server.cc — network
//                        I/O and event polling are centralized in the obs
//                        HTTP layer so connection bounds, shutdown, and
//                        instrumentation live in one place. std::bind and
//                        member calls are exempt; tests may open sockets.
//   header-hygiene (R12) every non-test header must open with its
//                        path-derived include guard (src/obs/http_server.h
//                        -> SMFL_OBS_HTTP_SERVER_H_) as the first two
//                        preprocessor directives.
//
// Two semantic passes ride on a lightweight parsing layer (parse.h):
//
//   --graph  module-layering pass (graph.h): rules `layering`,
//            `include-cycle`, `cc-include`, `unused-include` over the
//            project include graph; DOT export via LintResult::dot.
//   --race   ParallelFor/ParallelReduce race & determinism detector
//            (race.h): rule `race` (R13) — shared-state writes, container
//            mutation, RNG advancement, and unallowlisted telemetry calls
//            inside parallel bodies.
//
// Findings can be baselined (accepted-but-tracked) via a baseline file of
// `rule|path|message` keys; baselined findings do not fail the run but are
// reported separately. `unused-include` findings are mechanically fixable
// (ApplyUnusedIncludeFixes / smfl_lint --fix).
//
// Any finding can be suppressed inline with a justified comment on the same
// line or the line above:
//
//   // smfl-lint: allow(float-eq) mask entries are exactly 0.0 or 1.0
//
// The reason text is mandatory; a suppression without one is itself reported
// (rule "bad-suppression"). See docs/static-analysis.md for the catalogue.

#ifndef SMFL_TOOLS_SMFL_LINT_LINT_H_
#define SMFL_TOOLS_SMFL_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace smfl::lint {

// ---------------------------------------------------------------------------
// Lexer

struct Token {
  enum class Kind {
    kIdent,    // identifier or keyword
    kNumber,   // numeric literal (IsFloatLiteral distinguishes 1.0 from 1)
    kString,   // string or char literal (contents dropped)
    kPunct,    // operator/punctuator; multi-char ops are single tokens
    kPreproc,  // a whole preprocessor directive, continuations joined
  };
  Kind kind;
  std::string text;
  int line;  // 1-based line the token starts on
};

// An inline `// smfl-lint: allow(rule[,rule...]) reason` comment.
struct Suppression {
  std::set<std::string> rules;
  std::string reason;
  int line;           // line the comment appears on
  bool own_line;      // comment is the only thing on its line -> covers line+1
  mutable bool used;  // set when a finding matches it
};

struct LexedFile {
  std::string rel_path;  // '/'-separated path relative to the repo root
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

// Tokenizes `content`. Never fails: unrecognized bytes are skipped.
LexedFile Lex(const std::string& rel_path, const std::string& content);

// True when `text` is a floating-point literal (has '.', a decimal exponent,
// or an f/F suffix; hex integer literals are excluded).
bool IsFloatLiteral(const std::string& text);

// ---------------------------------------------------------------------------
// Diagnostics

struct Diagnostic {
  std::string rule;
  std::string rel_path;
  int line;
  std::string message;
};

struct LintResult {
  std::vector<Diagnostic> violations;  // unsuppressed findings
  std::vector<Diagnostic> suppressed;  // findings silenced by a suppression
  std::vector<Diagnostic> baselined;   // findings accepted by the baseline
  int files_scanned = 0;
  // Module-level Graphviz rendering of the include graph; filled only when
  // LintOptions::graph_pass is set.
  std::string dot;
};

// ---------------------------------------------------------------------------
// Driver

struct LintOptions {
  // Repo root; rel_paths and rule scoping are computed against it.
  std::string repo_root = ".";
  // Directories or files to scan, relative to repo_root (default: {"src"}).
  std::vector<std::string> roots = {"src"};
  // Extra rel-path prefixes exempt from float-eq, beyond test files.
  std::vector<std::string> float_eq_allowlist;
  // Semantic passes (see the header comment).
  bool graph_pass = false;  // layering / cycles / cc-include / unused-include
  bool race_pass = false;   // R13 parallel-body race detector
  // Baseline file of accepted `rule|path|message` keys; findings matching
  // an entry land in LintResult::baselined instead of violations. Empty or
  // missing file = empty baseline.
  std::string baseline_path;
};

// Names of functions returning Status/Result<T>, harvested from the scanned
// files themselves (pass 1), used by the discard-status rule (pass 2).
using StatusFnRegistry = std::set<std::string>;

// Scans declarations/definitions `Status Name(` / `Result<T> Name(` and
// records Name (the last identifier of a qualified chain).
void HarvestStatusFunctions(const LexedFile& file, StatusFnRegistry* registry);

// Runs every rule on one lexed file, appending findings to *result.
// Suppression matching and per-path rule scoping happen here.
void LintFile(const LexedFile& file, const StatusFnRegistry& registry,
              const LintOptions& options, LintResult* result);

// Walks options.roots under options.repo_root (sorted, deterministic),
// lexes every *.h/*.hpp/*.cc/*.cpp file, harvests the Status registry, and
// lints each file. Returns false (and fills *error) only on I/O failure.
bool RunLint(const LintOptions& options, LintResult* result,
             std::string* error);

// Formats one diagnostic as "path:line: [rule] message".
std::string FormatDiagnostic(const Diagnostic& d);

// Machine-readable summary of a run (violations, suppressed, baselined,
// files_scanned).
std::string ResultToJson(const LintResult& result);

// SARIF 2.1.0 rendering of the run's violations (baselined and suppressed
// findings are excluded), suitable for CI upload / PR annotation.
std::string ResultToSarif(const LintResult& result);

// ---------------------------------------------------------------------------
// Baseline

// The line-stable identity of a finding: "rule|path|message" (no line
// number, so baselines survive unrelated edits above a finding).
std::string BaselineKey(const Diagnostic& d);

// One key per line, sorted and deduplicated, covering the run's current
// violations and already-baselined findings. '#' comments allowed on read.
std::string BaselineFromResult(const LintResult& result);

// ---------------------------------------------------------------------------
// Fixes

// Mechanically removes the #include lines of `unused-include` findings in
// `diags` from the files under options.repo_root. In dry-run mode no file
// is touched; *report receives a diff-style preview either way and
// *fixed_count the number of removed lines. A target line that no longer
// holds an #include (stale finding) is skipped, not mangled. Returns false
// and fills *error on I/O failure.
bool ApplyUnusedIncludeFixes(const LintOptions& options,
                             const std::vector<Diagnostic>& diags,
                             bool dry_run, std::string* report,
                             int* fixed_count, std::string* error);

}  // namespace smfl::lint

#endif  // SMFL_TOOLS_SMFL_LINT_LINT_H_
