#include "src/impute/simple.h"

#include <algorithm>

#include "src/data/normalize.h"
#include "src/impute/neighbor_util.h"

namespace smfl::impute {

namespace {

Status ValidateShape(const Matrix& x, const Mask& observed) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("Impute: empty matrix");
  }
  if (observed.rows() != x.rows() || observed.cols() != x.cols()) {
    return Status::InvalidArgument("Impute: mask shape mismatch");
  }
  return Status::OK();
}

// kNN prediction for cell (i, j) matching on `match_cols`; returns false if
// no donor row qualifies. Donors are FULLY complete tuples — the classical
// kNN/kNNE implementations the paper compares against cannot use partially
// observed donors (which is why its protocol reserves 100 complete rows).
bool KnnPredict(const Matrix& x, Index i, Index j,
                const std::vector<Index>& match_cols, Index k, double* out,
                const std::vector<Index>& complete_donors) {
  std::vector<ScoredRow> nn =
      NearestAmong(x, i, complete_donors, match_cols, k);
  if (nn.empty()) return false;
  double acc = 0.0;
  for (const ScoredRow& s : nn) acc += x(s.row, j);
  *out = acc / static_cast<double>(nn.size());
  return true;
}

}  // namespace

Result<Matrix> MeanImputer::Impute(const Matrix& x, const Mask& observed,
                                   Index /*spatial_cols*/) const {
  RETURN_NOT_OK(ValidateShape(x, observed));
  return data::FillWithColumnMeans(x, observed);
}

Result<Matrix> KnnImputer::Impute(const Matrix& x, const Mask& observed,
                                  Index /*spatial_cols*/) const {
  RETURN_NOT_OK(ValidateShape(x, observed));
  Matrix out = data::FillWithColumnMeans(x, observed);  // fallback values
  const std::vector<Index> complete_donors = observed.FullySetRows();
  for (Index i = 0; i < x.rows(); ++i) {
    if (observed.RowFullySet(i)) continue;
    const std::vector<Index> obs_cols = ObservedColumns(observed, i);
    if (obs_cols.empty()) continue;  // nothing to match on: keep the mean
    for (Index j = 0; j < x.cols(); ++j) {
      if (observed.Contains(i, j)) continue;
      double v;
      if (KnnPredict(x, i, j, obs_cols, options_.k, &v,
                     complete_donors)) {
        out(i, j) = v;
      }
    }
  }
  return out;
}

Result<Matrix> KnneImputer::Impute(const Matrix& x, const Mask& observed,
                                   Index /*spatial_cols*/) const {
  RETURN_NOT_OK(ValidateShape(x, observed));
  Matrix out = data::FillWithColumnMeans(x, observed);
  const std::vector<Index> complete_donors = observed.FullySetRows();
  for (Index i = 0; i < x.rows(); ++i) {
    if (observed.RowFullySet(i)) continue;
    const std::vector<Index> obs_cols = ObservedColumns(observed, i);
    if (obs_cols.empty()) continue;
    for (Index j = 0; j < x.cols(); ++j) {
      if (observed.Contains(i, j)) continue;
      // Ensemble members: the full observed set, then leave-one-out subsets.
      double acc = 0.0;
      Index members = 0;
      double v;
      if (KnnPredict(x, i, j, obs_cols, options_.k, &v,
                     complete_donors)) {
        acc += v;
        ++members;
      }
      if (obs_cols.size() > 1) {
        const Index budget = std::min<Index>(
            options_.max_models - 1, static_cast<Index>(obs_cols.size()));
        for (Index drop = 0; drop < budget; ++drop) {
          std::vector<Index> subset;
          subset.reserve(obs_cols.size() - 1);
          for (size_t c = 0; c < obs_cols.size(); ++c) {
            if (static_cast<Index>(c) != drop) subset.push_back(obs_cols[c]);
          }
          if (KnnPredict(x, i, j, subset, options_.k, &v,
                         complete_donors)) {
            acc += v;
            ++members;
          }
        }
      }
      if (members > 0) out(i, j) = acc / static_cast<double>(members);
    }
  }
  return out;
}

}  // namespace smfl::impute
