// Prometheus text-exposition conformance tests for src/obs/prometheus.*:
// name mangling, HELP escaping, counter `_total` suffixing, histogram
// cumulative `le` buckets (monotone, +Inf == _count), and the line grammar
// of a full rendered page. No sockets here — obs_endpoint_test covers the
// HTTP path; this file pins down the serializer alone.

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/telemetry.h"
#include "src/obs/prometheus.h"

namespace smfl::obs {
namespace {

using telemetry::Histogram;
using telemetry::MetricsRegistry;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// --------------------------------------------------------------------------
// Name mangling

TEST(MangleMetricNameTest, DotsBecomeUnderscores) {
  EXPECT_EQ(MangleMetricName("smfl.fit.iter"), "smfl_fit_iter");
  EXPECT_EQ(MangleMetricName("process.rss_bytes"), "process_rss_bytes");
}

TEST(MangleMetricNameTest, ValidNamesPassThrough) {
  EXPECT_EQ(MangleMetricName("already_valid_name"), "already_valid_name");
  EXPECT_EQ(MangleMetricName("ns:subsystem_total"), "ns:subsystem_total");
  EXPECT_EQ(MangleMetricName("_leading_underscore"), "_leading_underscore");
}

TEST(MangleMetricNameTest, InvalidCharactersBecomeUnderscores) {
  EXPECT_EQ(MangleMetricName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(MangleMetricName("weird%name!"), "weird_name_");
}

TEST(MangleMetricNameTest, LeadingDigitIsPrefixed) {
  EXPECT_EQ(MangleMetricName("99th_percentile"), "_99th_percentile");
  EXPECT_EQ(MangleMetricName("9"), "_9");
}

TEST(MangleMetricNameTest, EmptyNameYieldsPlaceholder) {
  EXPECT_EQ(MangleMetricName(""), "_");
}

TEST(EscapeHelpTextTest, BackslashAndNewline) {
  EXPECT_EQ(EscapeHelpText("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeHelpText("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapeHelpText("plain"), "plain");
}

// --------------------------------------------------------------------------
// Rendering

TEST(RenderPrometheusTextTest, CounterGetsTotalSuffixAndHeaders) {
  MetricsRegistry::MetricsSnapshot snap;
  snap.counters.emplace_back("smfl.fit.restarts", int64_t{7});
  const std::string page = RenderPrometheusText(snap);
  EXPECT_TRUE(Contains(
      page, "# HELP smfl_fit_restarts_total smfl metric smfl.fit.restarts\n"))
      << page;
  EXPECT_TRUE(Contains(page, "# TYPE smfl_fit_restarts_total counter\n"))
      << page;
  EXPECT_TRUE(Contains(page, "\nsmfl_fit_restarts_total 7\n")) << page;
}

TEST(RenderPrometheusTextTest, GaugeRendersValue) {
  MetricsRegistry::MetricsSnapshot snap;
  snap.gauges.emplace_back("process.rss_bytes", 12345.0);
  const std::string page = RenderPrometheusText(snap);
  EXPECT_TRUE(Contains(page, "# TYPE process_rss_bytes gauge\n")) << page;
  EXPECT_TRUE(Contains(page, "\nprocess_rss_bytes 12345\n")) << page;
}

TEST(RenderPrometheusTextTest, HistogramBucketsAreCumulativeAndMonotone) {
  Histogram h;
  h.Record(0.5);  // bucket 0: [0, 1)
  h.Record(1.5);  // bucket 1: [1, 2)
  h.Record(3.0);  // bucket 2: [2, 4)
  h.Record(3.5);  // bucket 2
  MetricsRegistry::MetricsSnapshot snap;
  snap.histograms.emplace_back("obs.scrape_us", h.GetSnapshot());
  const std::string page = RenderPrometheusText(snap);
  EXPECT_TRUE(Contains(page, "# TYPE obs_scrape_us histogram\n")) << page;
  EXPECT_TRUE(Contains(page, "obs_scrape_us_bucket{le=\"1\"} 1\n")) << page;
  EXPECT_TRUE(Contains(page, "obs_scrape_us_bucket{le=\"2\"} 2\n")) << page;
  EXPECT_TRUE(Contains(page, "obs_scrape_us_bucket{le=\"4\"} 4\n")) << page;
  EXPECT_TRUE(Contains(page, "obs_scrape_us_bucket{le=\"+Inf\"} 4\n")) << page;
  EXPECT_TRUE(Contains(page, "obs_scrape_us_sum 8.5\n")) << page;
  EXPECT_TRUE(Contains(page, "obs_scrape_us_count 4\n")) << page;

  // The cumulative counts must be non-decreasing down the page and the
  // +Inf bucket must equal _count exactly.
  std::istringstream in(page);
  std::string line;
  int64_t prev = 0;
  int64_t inf_value = -1;
  int bucket_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("obs_scrape_us_bucket{", 0) != 0) continue;
    ++bucket_lines;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const int64_t value = std::stoll(line.substr(sp + 1));
    EXPECT_GE(value, prev) << line;
    prev = value;
    if (Contains(line, "le=\"+Inf\"")) inf_value = value;
  }
  EXPECT_EQ(bucket_lines, 4);
  EXPECT_EQ(inf_value, 4);
}

TEST(RenderPrometheusTextTest, EmptyHistogramStillHasInfSumCount) {
  Histogram h;
  MetricsRegistry::MetricsSnapshot snap;
  snap.histograms.emplace_back("obs.idle_us", h.GetSnapshot());
  const std::string page = RenderPrometheusText(snap);
  EXPECT_TRUE(Contains(page, "obs_idle_us_bucket{le=\"+Inf\"} 0\n")) << page;
  EXPECT_TRUE(Contains(page, "obs_idle_us_sum 0\n")) << page;
  EXPECT_TRUE(Contains(page, "obs_idle_us_count 0\n")) << page;
}

// Every non-comment, non-blank line of a mixed page must parse as
// `<name>[{label="value"}] <number>` — the exposition line grammar.
TEST(RenderPrometheusTextTest, EveryLineMatchesExpositionGrammar) {
  Histogram h;
  h.Record(2.0);
  MetricsRegistry::MetricsSnapshot snap;
  snap.counters.emplace_back("a.b", int64_t{1});
  snap.gauges.emplace_back("c.d", -0.5);
  snap.histograms.emplace_back("e.f", h.GetSnapshot());
  const std::string page = RenderPrometheusText(snap);

  std::istringstream in(page);
  std::string line;
  int sample_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      ADD_FAILURE() << "blank line in exposition page";
      continue;
    }
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    ++sample_lines;
    // Name: [a-zA-Z_:][a-zA-Z0-9_:]*
    size_t i = 0;
    ASSERT_LT(i, line.size());
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                line[0] == '_' || line[0] == ':')
        << line;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    // Optional label block.
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      ASSERT_NE(close, std::string::npos) << line;
      i = close + 1;
    }
    // Exactly one space, then a value strtod can fully consume.
    ASSERT_LT(i, line.size()) << line;
    EXPECT_EQ(line[i], ' ') << line;
    const std::string value = line.substr(i + 1);
    EXPECT_FALSE(value.empty()) << line;
    size_t pos = 0;
    if (value == "+Inf" || value == "-Inf" || value == "NaN") {
      pos = value.size();
    } else {
      (void)std::stod(value, &pos);
    }
    EXPECT_EQ(pos, value.size()) << line;
  }
  EXPECT_GE(sample_lines, 6);  // counter + gauge + >=4 histogram lines
}

TEST(RenderGlobalPrometheusTextTest, ReflectsTheGlobalRegistry) {
  MetricsRegistry::Global().ResetForTesting();
  MetricsRegistry::Global().GetCounter("promtest.pages").Add(3);
  const std::string page = RenderGlobalPrometheusText();
  EXPECT_TRUE(Contains(page, "promtest_pages_total 3\n")) << page;
  MetricsRegistry::Global().ResetForTesting();
}

TEST(PrometheusContentTypeTest, IsTextVersion004) {
  EXPECT_EQ(std::string(PrometheusContentType()),
            "text/plain; version=0.0.4; charset=utf-8");
}

}  // namespace
}  // namespace smfl::obs
