// Wall-clock stopwatch used by the experiment harness and Fig 9 bench.

#ifndef SMFL_COMMON_STOPWATCH_H_
#define SMFL_COMMON_STOPWATCH_H_

#include <chrono>

namespace smfl {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace smfl

#endif  // SMFL_COMMON_STOPWATCH_H_
