# Empty compiler generated dependencies file for mask_table_test.
# This may be replaced when dependencies are built.
