#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/la/ops.h"
#include "src/spatial/graph.h"

namespace smfl::spatial {
namespace {

Matrix RandomPoints(Index n, uint64_t seed) {
  Rng rng(seed);
  Matrix points(n, 2);
  for (Index i = 0; i < points.size(); ++i) {
    points.data()[i] = rng.Uniform();
  }
  return points;
}

TEST(WeightedGraphTest, BinaryBuildHasUnitWeights) {
  Matrix points = RandomPoints(30, 3);
  auto graph = NeighborGraph::Build(points, 3);
  ASSERT_TRUE(graph.ok());
  for (Index i = 0; i < 30; ++i) {
    for (const auto& e : graph->NeighborsOf(i)) {
      EXPECT_DOUBLE_EQ(e.weight, 1.0);
    }
  }
}

TEST(WeightedGraphTest, HeatKernelWeightsInUnitIntervalAndSymmetric) {
  Matrix points = RandomPoints(40, 5);
  auto graph = NeighborGraph::Build(points, 3);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->ApplyHeatKernelWeights(points).ok());
  Matrix d = graph->DenseD();
  for (Index i = 0; i < 40; ++i) {
    for (Index j = 0; j < 40; ++j) {
      EXPECT_GE(d(i, j), 0.0);
      EXPECT_LE(d(i, j), 1.0);
      EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
    }
  }
}

TEST(WeightedGraphTest, CloserEdgesGetLargerWeights) {
  // A line of points with uneven gaps: the short edge must outweigh the
  // long one.
  Matrix points{{0.0, 0.0}, {0.1, 0.0}, {1.0, 0.0}};
  auto graph = NeighborGraph::Build(points, 1);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->ApplyHeatKernelWeights(points).ok());
  Matrix d = graph->DenseD();
  EXPECT_GT(d(0, 1), d(1, 2));
}

TEST(WeightedGraphTest, DegreeIsWeightSumAndOperatorsConsistent) {
  Matrix points = RandomPoints(35, 7);
  auto graph = NeighborGraph::Build(points, 3);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->ApplyHeatKernelWeights(points, 0.2).ok());
  Matrix d = graph->DenseD();
  for (Index i = 0; i < 35; ++i) {
    double row_sum = 0.0;
    for (Index j = 0; j < 35; ++j) row_sum += d(i, j);
    EXPECT_NEAR(graph->Degree(i), row_sum, 1e-12);
  }
  // Sparse ops still agree with dense under weights.
  Matrix u = RandomPoints(35, 9);
  EXPECT_LT(la::MaxAbsDiff(graph->MultiplyD(u), d * u), 1e-10);
  EXPECT_LT(la::MaxAbsDiff(graph->MultiplyW(u), graph->DenseW() * u), 1e-10);
  const double via_edges = graph->LaplacianQuadraticForm(u);
  const double via_trace = la::Trace(la::MatMulAtB(u, graph->DenseL() * u));
  EXPECT_NEAR(via_edges, via_trace, 1e-8);
  EXPECT_LT(la::MaxAbsDiff(graph->SparseLaplacian().ToDense(),
                           graph->DenseL()),
            1e-12);
}

TEST(WeightedGraphTest, WeightedLaplacianStillPsd) {
  Matrix points = RandomPoints(25, 11);
  auto graph = NeighborGraph::Build(points, 3);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->ApplyHeatKernelWeights(points).ok());
  Matrix u = RandomPoints(25, 13);
  EXPECT_GE(graph->LaplacianQuadraticForm(u), 0.0);
  Matrix constant_u(25, 2, 1.0);
  EXPECT_NEAR(graph->LaplacianQuadraticForm(constant_u), 0.0, 1e-12);
}

TEST(WeightedGraphTest, Validation) {
  Matrix points = RandomPoints(10, 15);
  auto graph = NeighborGraph::Build(points, 2);
  ASSERT_TRUE(graph.ok());
  Matrix wrong(5, 2);
  EXPECT_FALSE(graph->ApplyHeatKernelWeights(wrong).ok());
}

TEST(WeightedGraphTest, SmflRunsWithHeatKernelWeighting) {
  auto dataset = data::MakeLakeLike(150, 17);
  ASSERT_TRUE(dataset.ok());
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Matrix truth = normalizer->Transform(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = 19;
  auto injection = data::InjectMissing(dataset->table, inject);
  ASSERT_TRUE(injection.ok());
  Matrix input = data::ApplyMask(truth, injection->observed);

  core::SmflOptions options;
  options.graph_weighting = core::GraphWeighting::kHeatKernel;
  options.max_iterations = 60;
  options.tolerance = 0.0;
  auto model = core::FitSmfl(input, injection->observed, 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Reconstruct().HasNonFinite());
  // Monotonicity must hold for weighted Laplacians too (the convergence
  // proof only needs D nonnegative and W the degree matrix).
  const auto& trace = model->report.objective_trace;
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-9));
  }
}

}  // namespace
}  // namespace smfl::spatial
