#include "src/obs/resource_sampler.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/telemetry.h"

namespace smfl::obs {

namespace {

// /proc/self/statm: "size resident shared ..." in pages.
double ReadRssBytes() {
  std::ifstream in("/proc/self/statm");
  long long size_pages = 0;
  long long resident_pages = 0;
  if (!(in >> size_pages >> resident_pages)) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident_pages) *
         static_cast<double>(page > 0 ? page : 4096);
}

// /proc/self/stat fields 14/15 (utime/stime) in clock ticks. The second
// field (comm) may contain spaces and parentheses, so parsing starts after
// the LAST ')'.
double ReadCpuSeconds() {
  std::ifstream in("/proc/self/stat");
  std::string line;
  if (!std::getline(in, line)) return 0.0;
  const size_t close = line.rfind(')');
  if (close == std::string::npos) return 0.0;
  std::istringstream rest(line.substr(close + 1));
  std::string field;
  // After ')': state(1) then fields 4..13 precede utime (field 14).
  long long utime = 0;
  long long stime = 0;
  for (int i = 0; i < 11; ++i) {
    if (!(rest >> field)) return 0.0;
  }
  if (!(rest >> utime >> stime)) return 0.0;
  const long ticks = sysconf(_SC_CLK_TCK);
  return static_cast<double>(utime + stime) /
         static_cast<double>(ticks > 0 ? ticks : 100);
}

double CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0.0;
  long long count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  // ".", "..", and the directory's own fd inflate the count by 3.
  return static_cast<double>(count > 3 ? count - 3 : count);
}

double ReadThreadCount() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      std::istringstream value(line.substr(8));
      long long threads = 0;
      if (value >> threads) return static_cast<double>(threads);
      return 0.0;
    }
  }
  return 0.0;
}

}  // namespace

ResourceSample ReadResourceSample() {
  ResourceSample sample;
  sample.rss_bytes = ReadRssBytes();
  sample.cpu_seconds = ReadCpuSeconds();
  sample.open_fds = CountOpenFds();
  sample.threads = ReadThreadCount();
  return sample;
}

void ResourceSampler::SampleOnce() {
  const ResourceSample sample = ReadResourceSample();
  // Direct registry writes (not the SMFL_GAUGE_SET macro): the gauges must
  // be live on /metrics even when file telemetry is disabled, and nothing
  // numeric ever reads them.
  auto& registry = telemetry::MetricsRegistry::Global();
  registry.GetGauge("process.rss_bytes").Set(sample.rss_bytes);
  registry.GetGauge("process.cpu_seconds").Set(sample.cpu_seconds);
  registry.GetGauge("process.open_fds").Set(sample.open_fds);
  registry.GetGauge("process.threads").Set(sample.threads);
}

ResourceSampler::~ResourceSampler() { Stop(); }

void ResourceSampler::Start(int interval_ms) {
  if (running_) return;
  stop_ = false;
  running_ = true;
  // smfl-lint: allow(thread) observational sampler thread, not a worker
  thread_ = std::thread([this, interval_ms] {
    SampleOnce();
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [this] { return stop_; })) {
      lock.unlock();
      SampleOnce();
      lock.lock();
    }
  });
}

void ResourceSampler::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

}  // namespace smfl::obs
