# Empty compiler generated dependencies file for smfl_impute.
# This may be replaced when dependencies are built.
