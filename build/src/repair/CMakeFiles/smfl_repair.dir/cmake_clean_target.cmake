file(REMOVE_RECURSE
  "libsmfl_repair.a"
)
