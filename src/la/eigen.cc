#include "src/la/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>


namespace smfl::la {

Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          const EigenOptions& options) {
  if (a.rows() == 0 || a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen: need a square matrix");
  }
  if (a.HasNonFinite()) {
    return Status::NumericError("SymmetricEigen: non-finite input");
  }
  const Index n = a.rows();
  // Symmetry check, then work on the symmetrized copy.
  double asym = 0.0, scale = 0.0;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      asym = std::max(asym, std::fabs(a(i, j) - a(j, i)));
      scale = std::max(scale, std::fabs(a(i, j)));
    }
  }
  if (asym > 1e-8 * std::max(scale, 1.0)) {
    return Status::InvalidArgument("SymmetricEigen: matrix is not symmetric");
  }
  Matrix w(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) w(i, j) = 0.5 * (a(i, j) + a(j, i));
  }
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass; stop when negligible.
    double off = 0.0;
    for (Index i = 0; i < n; ++i) {
      for (Index j = i + 1; j < n; ++j) off += w(i, j) * w(i, j);
    }
    if (std::sqrt(off) <= options.tolerance * std::max(scale, 1e-300)) break;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const double apq = w(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = w(p, p), aqq = w(q, q);
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // W <- Jᵀ W J applied to rows/columns p and q.
        for (Index k = 0; k < n; ++k) {
          const double wkp = w(k, p), wkq = w(k, q);
          w(k, p) = c * wkp - s * wkq;
          w(k, q) = s * wkp + c * wkq;
        }
        for (Index k = 0; k < n; ++k) {
          const double wpk = w(p, k), wqk = w(q, k);
          w(p, k) = c * wpk - s * wqk;
          w(q, k) = s * wpk + c * wqk;
        }
        for (Index k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort ascending.
  std::vector<Index> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(),
            [&](Index x, Index y) { return w(x, x) < w(y, y); });
  EigenDecomposition out;
  out.values = Vector(n);
  out.vectors = Matrix(n, n);
  for (Index j = 0; j < n; ++j) {
    const Index src = order[static_cast<size_t>(j)];
    out.values[j] = w(src, src);
    for (Index i = 0; i < n; ++i) out.vectors(i, j) = v(i, src);
  }
  return out;
}

}  // namespace smfl::la
