#include "src/data/split.h"

#include <algorithm>

#include "src/common/rng.h"

namespace smfl::data {

Result<TrainTestSplit> SplitTrainTest(Index n, double test_fraction,
                                      uint64_t seed) {
  if (n < 2) {
    return Status::InvalidArgument("SplitTrainTest: need at least two rows");
  }
  if (!(test_fraction > 0.0 && test_fraction < 1.0)) {
    return Status::InvalidArgument(
        "SplitTrainTest: test_fraction must be in (0, 1)");
  }
  Index test_count = static_cast<Index>(
      test_fraction * static_cast<double>(n) + 0.5);
  test_count = std::clamp<Index>(test_count, 1, n - 1);
  Rng rng(seed);
  auto picks = rng.SampleWithoutReplacement(static_cast<size_t>(n),
                                            static_cast<size_t>(test_count));
  std::vector<bool> is_test(static_cast<size_t>(n), false);
  for (size_t p : picks) is_test[p] = true;
  TrainTestSplit split;
  for (Index i = 0; i < n; ++i) {
    if (is_test[static_cast<size_t>(i)]) {
      split.test_rows.push_back(i);
    } else {
      split.train_rows.push_back(i);
    }
  }
  return split;
}

Result<std::vector<Index>> AssignKFolds(Index n, Index k, uint64_t seed) {
  if (k < 2 || k > n) {
    return Status::InvalidArgument("AssignKFolds: need 2 <= k <= n");
  }
  Rng rng(seed);
  auto perm = rng.Permutation(static_cast<size_t>(n));
  std::vector<Index> fold_of(static_cast<size_t>(n));
  for (size_t position = 0; position < perm.size(); ++position) {
    fold_of[perm[position]] = static_cast<Index>(position) % k;
  }
  return fold_of;
}

std::vector<Index> FoldRows(const std::vector<Index>& fold_of, Index fold) {
  std::vector<Index> rows;
  for (size_t i = 0; i < fold_of.size(); ++i) {
    if (fold_of[i] == fold) rows.push_back(static_cast<Index>(i));
  }
  return rows;
}

std::vector<Index> NonFoldRows(const std::vector<Index>& fold_of,
                               Index fold) {
  std::vector<Index> rows;
  for (size_t i = 0; i < fold_of.size(); ++i) {
    if (fold_of[i] != fold) rows.push_back(static_cast<Index>(i));
  }
  return rows;
}

}  // namespace smfl::data
