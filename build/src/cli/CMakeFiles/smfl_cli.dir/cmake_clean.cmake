file(REMOVE_RECURSE
  "CMakeFiles/smfl_cli.dir/commands.cc.o"
  "CMakeFiles/smfl_cli.dir/commands.cc.o.d"
  "libsmfl_cli.a"
  "libsmfl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
