file(REMOVE_RECURSE
  "libsmfl_spatial.a"
)
