#!/usr/bin/env bash
# Build and run tests under a sanitizer. Each sanitizer gets its own build
# tree so the instrumented objects never pollute the regular build/.
#
#   address    full tier-1 suite under AddressSanitizer (+ leak check)
#   undefined  full tier-1 suite under UndefinedBehaviorSanitizer
#   thread     the threading-sensitive subset (parallel_test, simd_kernel_test,
#              kernel_equivalence_test, smfl_monotonicity_property_test,
#              fold_in_serving_test, telemetry_test, crash_recovery_test,
#              observed_index_test, obs_endpoint_test)
#              under ThreadSanitizer, with SMFL_THREADS=4 so the pool is
#              actually exercised even on a single-core machine;
#              obs_endpoint_test races the HTTP exporter thread against a
#              live fit, exactly the interleaving TSan exists to check
#
# Usage: tools/run_sanitizers.sh [address|undefined|thread]
# With no argument, address and undefined run in sequence (the tier-1
# gate); thread is opt-in because TSan's runtime overhead is large.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitizers=("${1:-address}" )
if [[ $# -eq 0 ]]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address|undefined|thread) ;;
    *)
      echo "unknown sanitizer '$san' (want address, undefined, or thread)" >&2
      exit 2
      ;;
  esac

  # Some toolchains ship without TSan runtime support. Probe with a trivial
  # program and skip (exit 0, with an explicit marker line) rather than fail:
  # tools/run_checks.sh greps for "SKIPPED" and records the skip in
  # CHECKS.json so the gate stays honest about what actually ran.
  if [[ "$san" == thread ]]; then
    probe_dir="$(mktemp -d)"
    trap 'rm -rf "$probe_dir"' EXIT
    echo 'int main(){return 0;}' > "$probe_dir/probe.cc"
    if ! "${CXX:-c++}" -fsanitize=thread "$probe_dir/probe.cc" \
         -o "$probe_dir/probe" >/dev/null 2>&1; then
      echo "==> thread: SKIPPED (toolchain lacks ThreadSanitizer support)"
      continue
    fi
  fi

  build_dir="$repo_root/build-$san"
  echo "==> configuring $san sanitizer build in $build_dir"
  cmake -B "$build_dir" -S "$repo_root" -DSMFL_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "==> building ($san)"
  cmake --build "$build_dir" -j
  echo "==> running tests ($san)"
  case "$san" in
    address)
      ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$build_dir" \
          --output-on-failure -j
      ;;
    undefined)
      UBSAN_OPTIONS=print_stacktrace=1 ctest --test-dir "$build_dir" \
          --output-on-failure -j
      ;;
    thread)
      SMFL_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
          ctest --test-dir "$build_dir" --output-on-failure \
          -R '^(parallel_test|simd_kernel_test|kernel_equivalence_test|smfl_monotonicity_property_test|fold_in_serving_test|telemetry_test|crash_recovery_test|observed_index_test|obs_endpoint_test)$'
      ;;
  esac
  echo "==> $san: PASSED"
done

echo "all sanitizer runs passed"
