file(REMOVE_RECURSE
  "CMakeFiles/mf_test.dir/mf_test.cc.o"
  "CMakeFiles/mf_test.dir/mf_test.cc.o.d"
  "mf_test"
  "mf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
