#include <gtest/gtest.h>

#include <set>

#include "src/data/split.h"
#include "src/exp/sweep.h"

namespace smfl {
namespace {

using la::Index;

// ---------------------------------------------------------------- splits

TEST(SplitTest, PartitionCoversAllRowsExactlyOnce) {
  auto split = data::SplitTrainTest(100, 0.25, 3);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->test_rows.size(), 25u);
  EXPECT_EQ(split->train_rows.size(), 75u);
  std::set<Index> all(split->train_rows.begin(), split->train_rows.end());
  all.insert(split->test_rows.begin(), split->test_rows.end());
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), 99);
}

TEST(SplitTest, RowsAscending) {
  auto split = data::SplitTrainTest(50, 0.4, 5);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(std::is_sorted(split->train_rows.begin(),
                             split->train_rows.end()));
  EXPECT_TRUE(std::is_sorted(split->test_rows.begin(),
                             split->test_rows.end()));
}

TEST(SplitTest, DeterministicPerSeed) {
  auto a = data::SplitTrainTest(60, 0.3, 7);
  auto b = data::SplitTrainTest(60, 0.3, 7);
  auto c = data::SplitTrainTest(60, 0.3, 8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->test_rows, b->test_rows);
  EXPECT_NE(a->test_rows, c->test_rows);
}

TEST(SplitTest, ExtremeFractionsClampedToNonEmptySides) {
  auto tiny = data::SplitTrainTest(10, 0.01, 9);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->test_rows.size(), 1u);
  auto huge = data::SplitTrainTest(10, 0.99, 9);
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge->train_rows.size(), 1u);
}

TEST(SplitTest, Validation) {
  EXPECT_FALSE(data::SplitTrainTest(1, 0.5, 1).ok());
  EXPECT_FALSE(data::SplitTrainTest(10, 0.0, 1).ok());
  EXPECT_FALSE(data::SplitTrainTest(10, 1.0, 1).ok());
}

TEST(KFoldTest, BalancedAndComplete) {
  auto folds = data::AssignKFolds(23, 5, 11);
  ASSERT_TRUE(folds.ok());
  std::vector<Index> counts(5, 0);
  for (Index f : *folds) {
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 5);
    ++counts[static_cast<size_t>(f)];
  }
  // 23 = 5*4 + 3: folds of size 4 or 5.
  for (Index c : counts) EXPECT_TRUE(c == 4 || c == 5);
}

TEST(KFoldTest, FoldRowsPartition) {
  auto folds = data::AssignKFolds(30, 3, 13);
  ASSERT_TRUE(folds.ok());
  for (Index f = 0; f < 3; ++f) {
    auto in_fold = data::FoldRows(*folds, f);
    auto out_fold = data::NonFoldRows(*folds, f);
    EXPECT_EQ(in_fold.size() + out_fold.size(), 30u);
    EXPECT_TRUE(std::is_sorted(in_fold.begin(), in_fold.end()));
    std::set<Index> overlap;
    std::set_intersection(in_fold.begin(), in_fold.end(), out_fold.begin(),
                          out_fold.end(),
                          std::inserter(overlap, overlap.begin()));
    EXPECT_TRUE(overlap.empty());
  }
}

TEST(KFoldTest, Validation) {
  EXPECT_FALSE(data::AssignKFolds(10, 1, 1).ok());
  EXPECT_FALSE(data::AssignKFolds(3, 5, 1).ok());
}

// ---------------------------------------------------------------- sweep

TEST(SweepTest, RunsAndShapesTable) {
  exp::SweepSpec spec;
  spec.datasets = {"lake"};
  spec.value_labels = {"a", "b"};
  std::vector<double> lambdas = {0.1, 0.5};
  spec.apply = [&](size_t v, core::SmflOptions* options) {
    options->lambda = lambdas[v];
    options->max_iterations = 30;
  };
  spec.trial.trials = 1;
  spec.rows_override = 150;
  auto table = exp::RunSmflSweep(spec);
  ASSERT_TRUE(table.ok());
  const std::string csv = table->ToCsv();
  // Header + 2 rows (SMF, SMFL) for the single dataset.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("Dataset,Method,a,b"), std::string::npos);
  EXPECT_NE(csv.find("lake,SMF"), std::string::npos);
  EXPECT_NE(csv.find("lake,SMFL"), std::string::npos);
}

TEST(SweepTest, MethodSelection) {
  exp::SweepSpec spec;
  spec.datasets = {"lake"};
  spec.value_labels = {"x"};
  spec.apply = [](size_t, core::SmflOptions* options) {
    options->max_iterations = 10;
  };
  spec.trial.trials = 1;
  spec.rows_override = 100;
  spec.include_smf = false;
  auto table = exp::RunSmflSweep(spec);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ToCsv().find("lake,SMF,"), std::string::npos);
  EXPECT_NE(table->ToCsv().find("lake,SMFL"), std::string::npos);
}

TEST(SweepTest, Validation) {
  exp::SweepSpec spec;
  spec.datasets = {};
  EXPECT_FALSE(exp::RunSmflSweep(spec).ok());
  spec = exp::SweepSpec{};
  spec.value_labels = {"a"};
  spec.apply = nullptr;
  EXPECT_FALSE(exp::RunSmflSweep(spec).ok());
  spec.apply = [](size_t, core::SmflOptions*) {};
  spec.include_smf = spec.include_smfl = false;
  EXPECT_FALSE(exp::RunSmflSweep(spec).ok());
}

}  // namespace
}  // namespace smfl
