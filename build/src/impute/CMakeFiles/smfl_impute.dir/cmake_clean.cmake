file(REMOVE_RECURSE
  "CMakeFiles/smfl_impute.dir/eracer.cc.o"
  "CMakeFiles/smfl_impute.dir/eracer.cc.o.d"
  "CMakeFiles/smfl_impute.dir/gan.cc.o"
  "CMakeFiles/smfl_impute.dir/gan.cc.o.d"
  "CMakeFiles/smfl_impute.dir/mf_imputers.cc.o"
  "CMakeFiles/smfl_impute.dir/mf_imputers.cc.o.d"
  "CMakeFiles/smfl_impute.dir/neighbor_util.cc.o"
  "CMakeFiles/smfl_impute.dir/neighbor_util.cc.o.d"
  "CMakeFiles/smfl_impute.dir/registry.cc.o"
  "CMakeFiles/smfl_impute.dir/registry.cc.o.d"
  "CMakeFiles/smfl_impute.dir/regression.cc.o"
  "CMakeFiles/smfl_impute.dir/regression.cc.o.d"
  "CMakeFiles/smfl_impute.dir/simple.cc.o"
  "CMakeFiles/smfl_impute.dir/simple.cc.o.d"
  "CMakeFiles/smfl_impute.dir/statistical.cc.o"
  "CMakeFiles/smfl_impute.dir/statistical.cc.o.d"
  "libsmfl_impute.a"
  "libsmfl_impute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl_impute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
