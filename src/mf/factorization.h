// Shared types for iterative matrix factorization solvers.

#ifndef SMFL_MF_FACTORIZATION_H_
#define SMFL_MF_FACTORIZATION_H_

#include <vector>

#include "src/la/matrix.h"

namespace smfl::mf {

using la::Index;
using la::Matrix;

// Denominator floor for multiplicative update rules. Standard NMF practice:
// keeps iterates finite and nonnegative when a factor row/column dies.
inline constexpr double kDivEps = 1e-12;

// Progress record returned by every iterative solver. The objective trace is
// the hook for the paper's convergence guarantee: multiplicative updates
// must make it non-increasing (Propositions 5 and 7), which the test suite
// asserts.
struct FitReport {
  std::vector<double> objective_trace;
  int iterations = 0;
  bool converged = false;

  double final_objective() const {
    return objective_trace.empty() ? 0.0 : objective_trace.back();
  }
};

// Convergence test shared by the solvers: relative objective improvement.
inline bool RelativeImprovementBelow(const std::vector<double>& trace,
                                     double tolerance) {
  if (trace.size() < 2) return false;
  const double prev = trace[trace.size() - 2];
  const double cur = trace.back();
  const double denom = prev > 1e-300 ? prev : 1e-300;
  return (prev - cur) / denom < tolerance;
}

}  // namespace smfl::mf

#endif  // SMFL_MF_FACTORIZATION_H_
