// Live fit/serving progress, published by the training and fold-in loops
// and read by the observability plane's /statusz endpoint (src/obs).
//
// The struct is a flat set of relaxed atomics: the writers (the FitSmfl
// iteration loop, FoldIn, CheckpointManager::Save) store individual fields
// with no ordering constraints, and the HTTP scrape thread loads them the
// same way. A scrape may therefore observe a torn *set* (iteration from
// step N, objective from step N-1) — fine for a progress display, and the
// price buys the fit loop a handful of uncontended stores per ITERATION
// (not per element), so publication is always on and has no determinism
// or performance consequence. Nothing here ever feeds numeric code.

#ifndef SMFL_COMMON_FIT_PROGRESS_H_
#define SMFL_COMMON_FIT_PROGRESS_H_

#include <atomic>
#include <cstdint>

namespace smfl {

struct FitProgress {
  // True while a FitSmfl attempt is inside its iteration loop.
  std::atomic<bool> fit_active{false};
  // Position in the restart/retry nest (0-based).
  std::atomic<int64_t> restart{0};
  std::atomic<int64_t> attempt{0};
  // Last completed iteration (1-based count) and the configured ceiling.
  std::atomic<int64_t> iteration{0};
  std::atomic<int64_t> max_iterations{0};
  // Objective after the most recent accepted iteration, and the relative
  // improvement over the one before it (the convergence criterion input).
  std::atomic<double> objective{0.0};
  std::atomic<double> convergence_delta{0.0};
  // Generation number of the most recent durable checkpoint (-1 = none).
  std::atomic<int64_t> checkpoint_generation{-1};
  // Serving-side progress: rows/batches folded in so far this process.
  std::atomic<int64_t> foldin_rows{0};
  std::atomic<int64_t> foldin_batches{0};
  // Bumped once per published update; lets a scraper distinguish "stuck"
  // from "between fits" without comparing every field.
  std::atomic<int64_t> updates{0};

  // Zeroes every field (tests; also called when a new fit begins so stale
  // state from a previous fit in the same process never shows).
  void Reset();
};

// The process-wide instance. Writers and readers share it; references are
// valid for the process lifetime.
FitProgress& GlobalFitProgress();

// Publishes one fit-loop step: bumps `updates` after storing the fields so
// pollers see the sequence advance.
void PublishFitIteration(int64_t iteration, double objective, double delta);

}  // namespace smfl

#endif  // SMFL_COMMON_FIT_PROGRESS_H_
