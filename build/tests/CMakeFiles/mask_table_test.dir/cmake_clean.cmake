file(REMOVE_RECURSE
  "CMakeFiles/mask_table_test.dir/mask_table_test.cc.o"
  "CMakeFiles/mask_table_test.dir/mask_table_test.cc.o.d"
  "mask_table_test"
  "mask_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mask_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
