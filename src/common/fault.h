// Deterministic fault injection for robustness testing.
//
// Production code marks recoverable failure sites with named fault points:
//
//   if (SMFL_FAULT_FIRED("io.write.fail")) {
//     return Status::IoError("injected write failure");
//   }
//
// Tests arm points through the global FaultRegistry (usually via ScopedFault)
// with trigger counts and probabilities; everything draws from the
// registry's deterministic Rng, so a failing run replays exactly. When no
// point is armed the macro is a single relaxed atomic load, and defining
// SMFL_DISABLE_FAULT_INJECTION compiles every fault point to a constant
// `false` with no registry reference at all.
//
// Naming convention (see docs/robustness.md): dot-separated
// `<subsystem>.<operation>.<failure>`, e.g. "smfl.update.nan",
// "csv.row.corrupt", "io.write.fail".

#ifndef SMFL_COMMON_FAULT_H_
#define SMFL_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace smfl {

// How an armed fault point fires. Hits are counted per point; a hit is
// "eligible" once `skip` earlier hits have passed.
struct FaultSpec {
  // Number of eligible hits to let through before the first fire.
  int skip = 0;
  // How many times to fire after the skip window; negative = forever.
  int count = 1;
  // Probability that an eligible hit actually fires (deterministic Rng).
  double probability = 1.0;
};

class FaultRegistry {
 public:
  // The process-wide registry used by SMFL_FAULT_FIRED.
  static FaultRegistry& Global();

  // Arms `point` with `spec`; re-arming replaces the spec and resets the
  // point's hit/fire counters.
  void Arm(const std::string& point, FaultSpec spec = {});
  void Disarm(const std::string& point);
  void DisarmAll();

  // Re-seeds the stream behind probabilistic specs (default seed 23).
  void SeedRng(uint64_t seed);

  // True when the named point should fail now. Counts the hit either way.
  // Points that were never armed always return false.
  bool Fire(const std::string& point);

  // Observability for tests: how often a point was reached / actually fired
  // since it was (re-)armed. Zero for unknown points.
  int hits(const std::string& point) const;
  int fires(const std::string& point) const;

  // Fast path: false when no point is armed anywhere.
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  FaultRegistry() : rng_(23) {}

  struct PointState {
    FaultSpec spec;
    bool armed = false;
    int hits = 0;
    int fires = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
  Rng rng_;
  std::atomic<int> armed_count_{0};
};

// RAII arming for tests: disarms the point (and only it) on scope exit.
class ScopedFault {
 public:
  explicit ScopedFault(std::string point, FaultSpec spec = {})
      : point_(std::move(point)) {
    FaultRegistry::Global().Arm(point_, spec);
  }
  ~ScopedFault() { FaultRegistry::Global().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace smfl

#ifdef SMFL_DISABLE_FAULT_INJECTION
#define SMFL_FAULT_FIRED(point) false
#else
// Short-circuits on the armed count so unarmed builds pay one atomic load.
#define SMFL_FAULT_FIRED(point)                 \
  (::smfl::FaultRegistry::Global().AnyArmed() && \
   ::smfl::FaultRegistry::Global().Fire(point))
#endif

#endif  // SMFL_COMMON_FAULT_H_
