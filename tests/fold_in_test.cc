#include <gtest/gtest.h>

#include <cmath>

#include "src/core/fold_in.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/exp/metrics.h"
#include "src/la/ops.h"

namespace smfl::core {
namespace {

using data::Mask;

struct Fitted {
  Matrix truth;        // normalized ground truth (all rows)
  SmflModel model;     // fit on the first `train_rows` rows
  Index train_rows = 0;
};

Fitted TrainOnPrefix(Index total_rows, Index train_rows, uint64_t seed) {
  auto dataset = data::MakeVehicleLike(total_rows, seed);
  SMFL_CHECK(dataset.ok());
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Fitted f;
  f.truth = normalizer->Transform(dataset->table.values());
  f.train_rows = train_rows;
  Matrix train = f.truth.Block(0, 0, train_rows, f.truth.cols());
  SmflOptions options;
  options.rank = 8;
  options.max_iterations = 150;
  auto model =
      FitSmfl(train, Mask::AllSet(train_rows, train.cols()), 2, options);
  SMFL_CHECK(model.ok());
  f.model = std::move(model).value();
  return f;
}

TEST(FoldInTest, Validation) {
  Fitted f = TrainOnPrefix(200, 150, 3);
  la::Vector row(f.truth.cols(), 0.5);
  std::vector<bool> none(static_cast<size_t>(f.truth.cols()), false);
  EXPECT_FALSE(FoldInRow(f.model, row, none).ok());  // nothing observed
  std::vector<bool> wrong_width(3, true);
  EXPECT_FALSE(FoldInRow(f.model, row, wrong_width).ok());
  la::Vector short_row(2, 0.5);
  std::vector<bool> all(static_cast<size_t>(f.truth.cols()), true);
  EXPECT_FALSE(FoldInRow(f.model, short_row, all).ok());
  // Negative observed value rejected (model space is nonnegative).
  la::Vector negative(f.truth.cols(), -1.0);
  EXPECT_FALSE(FoldInRow(f.model, negative, all).ok());
  // Empty model rejected.
  SmflModel empty;
  EXPECT_FALSE(FoldInRow(empty, row, all).ok());
}

TEST(FoldInTest, PreservesObservedEntries) {
  Fitted f = TrainOnPrefix(200, 150, 5);
  la::Vector row(f.truth.cols());
  std::vector<bool> observed(static_cast<size_t>(f.truth.cols()), true);
  for (Index j = 0; j < f.truth.cols(); ++j) row[j] = f.truth(160, j);
  observed[4] = false;  // hide one attribute
  auto completed = FoldInRow(f.model, row, observed);
  ASSERT_TRUE(completed.ok());
  for (Index j = 0; j < f.truth.cols(); ++j) {
    if (observed[static_cast<size_t>(j)]) {
      EXPECT_DOUBLE_EQ((*completed)[j], row[j]);
    }
  }
}

TEST(FoldInTest, BeatsColumnMeanOnHeldOutRows) {
  // Fold fresh rows (not seen in training) into the fitted model and
  // compare against mean imputation computed from the training block.
  Fitted f = TrainOnPrefix(600, 450, 7);
  const Index fresh = f.truth.rows() - f.train_rows;
  Matrix x(fresh, f.truth.cols());
  Mask observed(fresh, f.truth.cols());
  Mask psi(fresh, f.truth.cols());

  for (Index i = 0; i < fresh; ++i) {
    for (Index j = 0; j < f.truth.cols(); ++j) {
      x(i, j) = f.truth(f.train_rows + i, j);
      // Hide two attribute columns per row.
      const bool hide = (j == 3 || j == 5);
      observed.Set(i, j, !hide);
      if (hide) {
        psi.Set(i, j);
        x(i, j) = 0.0;  // scrubbed
      }
    }
  }
  auto folded = FoldIn(f.model, x, observed);
  ASSERT_TRUE(folded.ok());
  Matrix truth_block =
      f.truth.Block(f.train_rows, 0, fresh, f.truth.cols());
  auto rms_fold = exp::RmsOverMask(*folded, truth_block, psi);
  ASSERT_TRUE(rms_fold.ok());

  // Column-mean baseline from the training block.
  Matrix mean_filled = x;
  for (Index j = 0; j < f.truth.cols(); ++j) {
    double mean = 0.0;
    for (Index i = 0; i < f.train_rows; ++i) mean += f.truth(i, j);
    mean /= static_cast<double>(f.train_rows);
    for (Index i = 0; i < fresh; ++i) {
      if (!observed.Contains(i, j)) mean_filled(i, j) = mean;
    }
  }
  auto rms_mean = exp::RmsOverMask(mean_filled, truth_block, psi);
  ASSERT_TRUE(rms_mean.ok());
  EXPECT_LT(*rms_fold, *rms_mean);
}

TEST(FoldInTest, DeterministicAndFinite) {
  Fitted f = TrainOnPrefix(200, 150, 11);
  la::Vector row(f.truth.cols());
  std::vector<bool> observed(static_cast<size_t>(f.truth.cols()), true);
  for (Index j = 0; j < f.truth.cols(); ++j) row[j] = f.truth(190, j);
  observed[3] = false;
  auto a = FoldInRow(f.model, row, observed);
  auto b = FoldInRow(f.model, row, observed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (Index j = 0; j < f.truth.cols(); ++j) {
    EXPECT_DOUBLE_EQ((*a)[j], (*b)[j]);
    EXPECT_TRUE(std::isfinite((*a)[j]));
  }
}

TEST(FoldInTest, CoordinatesOnlyRowGetsPlausibleAttributes) {
  // A brand-new row with ONLY coordinates observed: fold-in must produce
  // finite attribute predictions inside (a loose envelope of) the
  // normalized range.
  Fitted f = TrainOnPrefix(400, 350, 13);
  la::Vector row(f.truth.cols());
  std::vector<bool> observed(static_cast<size_t>(f.truth.cols()), false);
  row[0] = f.truth(380, 0);
  row[1] = f.truth(380, 1);
  observed[0] = observed[1] = true;
  auto completed = FoldInRow(f.model, row, observed);
  ASSERT_TRUE(completed.ok());
  for (Index j = 2; j < f.truth.cols(); ++j) {
    EXPECT_GE((*completed)[j], -0.5);
    EXPECT_LE((*completed)[j], 1.5);
  }
}

}  // namespace
}  // namespace smfl::core
