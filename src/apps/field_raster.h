// Rasterizes a scalar field over (lat, lon) observations into a grid — the
// machinery behind Fig 1's fuel-consumption map. Each grid cell averages
// the values of the observations falling in it; empty cells are filled by
// inverse-distance interpolation from the k nearest observations so the
// exported map is dense.

#ifndef SMFL_APPS_FIELD_RASTER_H_
#define SMFL_APPS_FIELD_RASTER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::apps {

using la::Index;
using la::Matrix;

struct FieldRaster {
  // cell (r, c) covers lat in [lat_lo + r*cell_lat, ...), lon likewise.
  Matrix grid;
  double lat_lo = 0, lat_hi = 1, lon_lo = 0, lon_hi = 1;

  // Center coordinates of cell (r, c).
  double CellLat(Index r) const;
  double CellLon(Index c) const;
};

struct RasterOptions {
  Index grid_rows = 24;
  Index grid_cols = 24;
  // Neighbors used to fill observation-free cells.
  Index fill_neighbors = 3;
};

// `si` is N x 2 (lat, lon); `values[i]` the field value at row i.
Result<FieldRaster> RasterizeField(const Matrix& si,
                                   const std::vector<double>& values,
                                   const RasterOptions& options = {});

// Writes the raster as CSV: "lat,lon,value" per cell (plottable directly).
Status WriteRasterCsv(const FieldRaster& raster, const std::string& path);

}  // namespace smfl::apps

#endif  // SMFL_APPS_FIELD_RASTER_H_
