file(REMOVE_RECURSE
  "CMakeFiles/eigen_sparse_test.dir/eigen_sparse_test.cc.o"
  "CMakeFiles/eigen_sparse_test.dir/eigen_sparse_test.cc.o.d"
  "eigen_sparse_test"
  "eigen_sparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigen_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
