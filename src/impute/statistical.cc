#include "src/impute/statistical.h"

#include <algorithm>
#include <cmath>

#include "src/data/normalize.h"
#include "src/impute/neighbor_util.h"

namespace smfl::impute {

Result<Matrix> DlmImputer::Impute(const Matrix& x, const Mask& observed,
                                  Index /*spatial_cols*/) const {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("DlmImputer: empty matrix");
  }
  if (observed.rows() != x.rows() || observed.cols() != x.cols()) {
    return Status::InvalidArgument("DlmImputer: mask shape mismatch");
  }
  Matrix out = data::FillWithColumnMeans(x, observed);
  const double scale = std::max(options_.likelihood_scale, 1e-9);
  for (Index i = 0; i < x.rows(); ++i) {
    if (observed.RowFullySet(i)) continue;
    const std::vector<Index> obs_cols = ObservedColumns(observed, i);
    if (obs_cols.empty()) continue;
    for (Index j = 0; j < x.cols(); ++j) {
      if (observed.Contains(i, j)) continue;
      std::vector<Index> needed = obs_cols;
      needed.push_back(j);
      std::vector<Index> donors = RowsCompleteOn(observed, needed);
      std::vector<ScoredRow> nn =
          NearestAmong(x, i, donors, obs_cols, options_.k);
      if (nn.empty()) continue;
      // Candidate fillings: each neighbor's value of column j. Score each
      // candidate by the log-likelihood of the completed tuple's distances
      // to all neighbors under d ~ Exp(scale): log p = -Σ_t d_t / scale
      // (up to constants), where d_t includes the candidate's contribution
      // in dimension j.
      double best_score = -std::numeric_limits<double>::infinity();
      double best_value = out(i, j);
      for (const ScoredRow& cand : nn) {
        const double value = x(cand.row, j);
        double score = 0.0;
        for (const ScoredRow& t : nn) {
          const double dj = value - x(t.row, j);
          const double d =
              std::sqrt(t.distance * t.distance + dj * dj);
          score -= d / scale;
        }
        if (score > best_score) {
          best_score = score;
          best_value = value;
        }
      }
      // Refine: likelihood-weighted average around the best candidate —
      // this is the "maximize then aggregate" smoothing of DLM.
      double wsum = 0.0, vsum = 0.0;
      for (const ScoredRow& t : nn) {
        const double dj = best_value - x(t.row, j);
        const double d = std::sqrt(t.distance * t.distance + dj * dj);
        const double w = std::exp(-d / scale);
        wsum += w;
        vsum += w * x(t.row, j);
      }
      out(i, j) = wsum > 0.0 ? vsum / wsum : best_value;
    }
  }
  return out;
}

}  // namespace smfl::impute
