#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "src/common/telemetry.h"

namespace smfl {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// "HH:MM:SS.uuuuuu tNN" — wall-clock time plus the telemetry layer's small
// sequential thread id, so interleaved multi-threaded logs stay legible and
// correlate with the `tid` of trace events.
std::string TimestampAndThread() {
  // smfl-lint: allow(nondet) log-line timestamps are wall-clock by design
  const auto now = std::chrono::system_clock::now();
  // smfl-lint: allow(nondet) converting the same wall-clock read as above
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000000;
  std::tm tm_buf;
  localtime_r(&secs, &tm_buf);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%06lld t%02d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<long long>(micros),
                telemetry::SmallThreadId());
  return buf;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load());
}

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  const std::string key = AsciiLower(name);
  if (key == "debug") {
    *out = LogLevel::kDebug;
  } else if (key == "info") {
    *out = LogLevel::kInfo;
  } else if (key == "warning" || key == "warn") {
    *out = LogLevel::kWarning;
  } else if (key == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  const char* env = std::getenv("SMFL_LOG_LEVEL");
  if (env == nullptr) return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) SetLogLevel(level);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << TimestampAndThread() << " "
          << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_log_level.load()) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[F " << TimestampAndThread() << " " << file << ":" << line
          << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace smfl
