#include "src/la/sparse.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace smfl::la {

Result<SparseMatrix> SparseMatrix::FromTriplets(
    Index rows, Index cols, std::vector<Triplet> triplets) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("SparseMatrix: negative dimensions");
  }
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::OutOfRange("SparseMatrix: triplet out of range");
    }
  }
  // Order by (row, col, value-bit-pattern): the value tiebreak makes the
  // summation order of duplicate (row, col) entries a function of the
  // duplicate values alone, never of the incoming triplet order — the
  // documented "duplicates are summed" contract is deterministic down to
  // the last bit. Bit patterns (not operator<) keep the comparator a
  // strict weak order even for NaN payloads and distinguish ±0.0; equal
  // bit patterns are interchangeable summands, so stable_sort's
  // input-order tie-keeping cannot leak back into the result.
  std::stable_sort(triplets.begin(), triplets.end(),
                   [](const Triplet& a, const Triplet& b) {
                     if (a.row != b.row) return a.row < b.row;
                     if (a.col != b.col) return a.col < b.col;
                     return std::bit_cast<uint64_t>(a.value) <
                            std::bit_cast<uint64_t>(b.value);
                   });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_offsets_.assign(static_cast<size_t>(rows) + 1, 0);
  for (size_t i = 0; i < triplets.size();) {
    // Merge duplicates.
    size_t j = i + 1;
    double sum = triplets[i].value;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    m.col_indices_.push_back(triplets[i].col);
    m.values_.push_back(sum);
    ++m.row_offsets_[static_cast<size_t>(triplets[i].row) + 1];
    i = j;
  }
  for (size_t r = 1; r < m.row_offsets_.size(); ++r) {
    m.row_offsets_[r] += m.row_offsets_[r - 1];
  }
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense,
                                     double drop_tolerance) {
  std::vector<Triplet> triplets;
  for (Index i = 0; i < dense.rows(); ++i) {
    for (Index j = 0; j < dense.cols(); ++j) {
      if (std::fabs(dense(i, j)) > drop_tolerance) {
        triplets.push_back({i, j, dense(i, j)});
      }
    }
  }
  auto result = FromTriplets(dense.rows(), dense.cols(), std::move(triplets));
  SMFL_CHECK(result.ok());
  return std::move(result).value();
}

Vector SparseMatrix::Multiply(const Vector& x) const {
  SMFL_CHECK_EQ(x.size(), cols_);
  Vector y(rows_);
  for (Index i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (Index k = row_offsets_[static_cast<size_t>(i)];
         k < row_offsets_[static_cast<size_t>(i) + 1]; ++k) {
      acc += values_[static_cast<size_t>(k)] *
             x[col_indices_[static_cast<size_t>(k)]];
    }
    y[i] = acc;
  }
  return y;
}

Matrix SparseMatrix::MultiplyDense(const Matrix& b) const {
  SMFL_CHECK_EQ(b.rows(), cols_);
  Matrix c(rows_, b.cols());
  for (Index i = 0; i < rows_; ++i) {
    auto crow = c.Row(i);
    for (Index k = row_offsets_[static_cast<size_t>(i)];
         k < row_offsets_[static_cast<size_t>(i) + 1]; ++k) {
      const double v = values_[static_cast<size_t>(k)];
      auto brow = b.Row(col_indices_[static_cast<size_t>(k)]);
      for (Index j = 0; j < b.cols(); ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

double SparseMatrix::QuadraticForm(const Vector& x) const {
  SMFL_CHECK_EQ(rows_, cols_);
  SMFL_CHECK_EQ(x.size(), rows_);
  double acc = 0.0;
  for (Index i = 0; i < rows_; ++i) {
    for (Index k = row_offsets_[static_cast<size_t>(i)];
         k < row_offsets_[static_cast<size_t>(i) + 1]; ++k) {
      acc += x[i] * values_[static_cast<size_t>(k)] *
             x[col_indices_[static_cast<size_t>(k)]];
    }
  }
  return acc;
}

Matrix SparseMatrix::ToDense() const {
  Matrix dense(rows_, cols_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index k = row_offsets_[static_cast<size_t>(i)];
         k < row_offsets_[static_cast<size_t>(i) + 1]; ++k) {
      dense(i, col_indices_[static_cast<size_t>(k)]) +=
          values_[static_cast<size_t>(k)];
    }
  }
  return dense;
}

std::span<const Index> SparseMatrix::RowIndices(Index i) const {
  SMFL_DCHECK(i >= 0 && i < rows_);
  const auto begin = static_cast<size_t>(row_offsets_[static_cast<size_t>(i)]);
  const auto end =
      static_cast<size_t>(row_offsets_[static_cast<size_t>(i) + 1]);
  return {col_indices_.data() + begin, end - begin};
}

std::span<const double> SparseMatrix::RowValues(Index i) const {
  SMFL_DCHECK(i >= 0 && i < rows_);
  const auto begin = static_cast<size_t>(row_offsets_[static_cast<size_t>(i)]);
  const auto end =
      static_cast<size_t>(row_offsets_[static_cast<size_t>(i) + 1]);
  return {values_.data() + begin, end - begin};
}

}  // namespace smfl::la
