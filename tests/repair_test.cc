#include <gtest/gtest.h>

#include <cmath>

#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/exp/metrics.h"
#include "src/la/ops.h"
#include "src/repair/baseline_repairers.h"
#include "src/repair/mf_repairers.h"
#include "src/repair/repairer.h"

namespace smfl::repair {
namespace {

struct Scenario {
  Matrix truth;
  Matrix dirty;
  Mask dirty_cells;
  double dirty_rms = 0.0;  // error of doing nothing
};

Scenario MakeScenario(Index rows, double error_rate, uint64_t seed) {
  auto dataset = data::MakeLakeLike(rows, seed);
  SMFL_CHECK(dataset.ok());
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Scenario s;
  s.truth = normalizer->Transform(dataset->table.values());
  std::vector<std::string> names;
  for (Index j = 0; j < s.truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table = data::Table::Create(names, s.truth, 2);
  SMFL_CHECK(table.ok());
  data::ErrorInjectionOptions inject;
  inject.error_rate = error_rate;
  inject.preserve_complete_rows = 30;
  inject.seed = seed + 1000;
  auto injection = data::InjectErrors(*table, inject);
  SMFL_CHECK(injection.ok());
  s.dirty = injection->dirty;
  s.dirty_cells = injection->dirty_cells;
  s.dirty_rms = *exp::RmsOverMask(s.dirty, s.truth, s.dirty_cells);
  return s;
}

// Every registered repairer: clean cells untouched, dirty cells replaced
// with finite values.
class RepairerContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RepairerContractTest, CleanCellsUntouchedAndFinite) {
  auto repairer = MakeRepairer(GetParam());
  ASSERT_TRUE(repairer.ok());
  Scenario s = MakeScenario(150, 0.1, 3);
  auto repaired = (*repairer)->Repair(s.dirty, s.dirty_cells, 2);
  ASSERT_TRUE(repaired.ok()) << GetParam();
  EXPECT_FALSE(repaired->HasNonFinite());
  for (Index i = 0; i < s.truth.rows(); ++i) {
    for (Index j = 0; j < s.truth.cols(); ++j) {
      if (!s.dirty_cells.Contains(i, j)) {
        EXPECT_DOUBLE_EQ((*repaired)(i, j), s.dirty(i, j))
            << GetParam() << " touched clean cell (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, RepairerContractTest,
                         ::testing::Values("Baran", "HoloClean", "NMF",
                                           "SMF", "SMFL"));

TEST(RepairRegistryTest, ResolvesAndRejects) {
  EXPECT_TRUE(MakeRepairer("baran").ok());
  EXPECT_TRUE(MakeRepairer("SMFL").ok());
  EXPECT_FALSE(MakeRepairer("wrench").ok());
  auto names = RegisteredRepairers();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names.back(), "SMFL");
  for (const auto& name : names) {
    auto repairer = MakeRepairer(name);
    ASSERT_TRUE(repairer.ok());
    EXPECT_EQ((*repairer)->name(), name);
  }
}

TEST(RepairQualityTest, EveryMethodBeatsDoingNothing) {
  Scenario s = MakeScenario(400, 0.1, 7);
  for (const auto& name : RegisteredRepairers()) {
    auto repairer = MakeRepairer(name);
    ASSERT_TRUE(repairer.ok());
    auto repaired = (*repairer)->Repair(s.dirty, s.dirty_cells, 2);
    ASSERT_TRUE(repaired.ok()) << name;
    auto rms = exp::RmsOverMask(*repaired, s.truth, s.dirty_cells);
    ASSERT_TRUE(rms.ok());
    EXPECT_LT(*rms, s.dirty_rms) << name;
  }
}

TEST(RepairQualityTest, SpatialMethodsBeatGenericBaselines) {
  // The Table VI shape: SMF/SMFL below Baran/HoloClean on spatial data.
  // Averaged over seeds: per-draw comparisons between the two spatial
  // methods are within noise.
  double baran = 0.0, holoclean = 0.0, smf = 0.0, smfl = 0.0;
  for (uint64_t seed : {11u, 29u, 61u}) {
    Scenario s = MakeScenario(500, 0.1, seed);
    auto run = [&](const char* name) {
      auto repairer = MakeRepairer(name);
      SMFL_CHECK(repairer.ok());
      auto repaired = (*repairer)->Repair(s.dirty, s.dirty_cells, 2);
      SMFL_CHECK(repaired.ok()) << name;
      return *exp::RmsOverMask(*repaired, s.truth, s.dirty_cells);
    };
    baran += run("Baran");
    holoclean += run("HoloClean");
    smf += run("SMF");
    smfl += run("SMFL");
  }
  EXPECT_LT(smfl, baran);
  EXPECT_LT(smfl, holoclean);
  EXPECT_LE(smfl, smf * 1.10);
}

TEST(RepairEdgeTest, NoDirtyCellsIsIdentity) {
  Scenario s = MakeScenario(80, 0.1, 13);
  Mask none(s.truth.rows(), s.truth.cols());
  for (const char* name : {"Baran", "HoloClean"}) {
    auto repairer = MakeRepairer(name);
    ASSERT_TRUE(repairer.ok());
    auto repaired = (*repairer)->Repair(s.truth, none, 2);
    ASSERT_TRUE(repaired.ok()) << name;
    EXPECT_LT(la::MaxAbsDiff(*repaired, s.truth), 1e-12) << name;
  }
}

TEST(RepairEdgeTest, RejectsShapeMismatch) {
  Matrix dirty(4, 4, 0.5);
  Mask wrong(2, 2);
  for (const auto& name : RegisteredRepairers()) {
    auto repairer = MakeRepairer(name);
    ASSERT_TRUE(repairer.ok());
    EXPECT_FALSE((*repairer)->Repair(dirty, wrong, 2).ok()) << name;
  }
}

TEST(RepairEdgeTest, HeavilyCorruptedColumnStillRepairs) {
  Scenario s = MakeScenario(200, 0.1, 17);
  // Corrupt most of one column.
  for (Index i = 0; i < s.truth.rows(); i += 2) {
    s.dirty(i, 3) = 0.99;
    s.dirty_cells.Set(i, 3);
  }
  BaranLikeRepairer baran;
  auto repaired = baran.Repair(s.dirty, s.dirty_cells, 2);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->HasNonFinite());
}

}  // namespace
}  // namespace smfl::repair
