# Empty dependencies file for bench_table6_repair.
# This may be replaced when dependencies are built.
