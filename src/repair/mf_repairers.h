// Matrix-factorization-based repairers: NMF, SMF, SMFL (paper Table VI).
// Each treats the detected dirty cells as Ψ, fits on the clean cells, and
// replaces the dirty cells with the reconstruction (Formula 8).

#ifndef SMFL_REPAIR_MF_REPAIRERS_H_
#define SMFL_REPAIR_MF_REPAIRERS_H_

#include "src/core/smfl.h"
#include "src/mf/nmf.h"
#include "src/repair/repairer.h"

namespace smfl::repair {

class NmfRepairer : public Repairer {
 public:
  explicit NmfRepairer(mf::NmfOptions options = {}) : options_(options) {}
  std::string name() const override { return "NMF"; }
  Result<Matrix> Repair(const Matrix& dirty, const Mask& dirty_cells,
                        Index spatial_cols) const override;

 private:
  mf::NmfOptions options_;
};

class SmfRepairer : public Repairer {
 public:
  explicit SmfRepairer(core::SmflOptions options = core::SmflOptions{});
  std::string name() const override { return "SMF"; }
  Result<Matrix> Repair(const Matrix& dirty, const Mask& dirty_cells,
                        Index spatial_cols) const override;

 private:
  core::SmflOptions options_;
};

class SmflRepairer : public Repairer {
 public:
  explicit SmflRepairer(core::SmflOptions options = core::SmflOptions{});
  std::string name() const override { return "SMFL"; }
  Result<Matrix> Repair(const Matrix& dirty, const Mask& dirty_cells,
                        Index spatial_cols) const override;

 private:
  core::SmflOptions options_;
};

}  // namespace smfl::repair

#endif  // SMFL_REPAIR_MF_REPAIRERS_H_
