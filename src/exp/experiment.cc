#include "src/exp/experiment.h"

#include "src/common/stopwatch.h"
#include "src/common/telemetry.h"
#include "src/data/inject.h"
#include "src/exp/metrics.h"

namespace smfl::exp {

Result<PreparedDataset> PrepareDataset(const std::string& name, Index rows,
                                       uint64_t seed) {
  ASSIGN_OR_RETURN(data::SyntheticDataset generated,
                   data::MakeDatasetByName(name, rows, seed));
  PreparedDataset prepared;
  prepared.name = name;
  prepared.spatial_cols = generated.table.SpatialCols();
  prepared.cluster_labels = std::move(generated.cluster_labels);
  prepared.raw = generated.table.values();
  ASSIGN_OR_RETURN(prepared.normalizer,
                   data::MinMaxNormalizer::Fit(prepared.raw));
  prepared.truth = prepared.normalizer.Transform(prepared.raw);
  return prepared;
}

Index DefaultRowsFor(const std::string& name) {
  // Scaled-down counterparts of Table III (27k/0.4k/8k/100k) chosen so the
  // full 12-method comparison completes in minutes on a laptop while
  // preserving each dataset's relative size ordering.
  if (name == "economic") return 1500;
  if (name == "farm") return 400;
  if (name == "lake") return 1000;
  if (name == "vehicle") return 3000;
  return 1000;
}

namespace {

// Number of rows kept fully complete, mirroring the paper's 100-complete-
// tuple pool (clamped for tiny datasets).
Index CompletePoolSize(Index rows) { return std::min<Index>(100, rows / 4); }

}  // namespace

Result<TrialResult> RunImputationTrials(const PreparedDataset& dataset,
                                        const impute::Imputer& imputer,
                                        const TrialOptions& options) {
  if (options.trials <= 0) {
    return Status::InvalidArgument("RunImputationTrials: trials must be > 0");
  }
  std::vector<std::string> names;
  for (Index j = 0; j < dataset.truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  ASSIGN_OR_RETURN(data::Table table,
                   data::Table::Create(std::move(names), dataset.truth,
                                       dataset.spatial_cols));

  TrialResult result;
  int successes = 0;
  for (int t = 0; t < options.trials; ++t) {
    data::MissingInjectionOptions inject;
    inject.missing_rate = options.missing_rate;
    inject.include_spatial_cols = options.missing_in_spatial;
    inject.preserve_complete_rows = CompletePoolSize(dataset.truth.rows());
    inject.seed = options.seed + static_cast<uint64_t>(t) * 7919;
    ASSIGN_OR_RETURN(data::MissingInjection injection,
                     data::InjectMissing(table, inject));
    const Mask& observed = injection.observed;
    // Scrub ground truth out of the holes.
    Matrix input = data::ApplyMask(dataset.truth, observed);

    // Stopwatch and the span read the same steady clock
    // (Stopwatch::Clock drives telemetry::NowMicros), so the harness's
    // mean_seconds and the trace timeline agree.
    SMFL_TRACE_SPAN("exp.impute_trial");
    Stopwatch watch;
    auto imputed = imputer.Impute(input, observed, dataset.spatial_cols);
    const double seconds = watch.ElapsedSeconds();
    if (!imputed.ok()) {
      ++result.failures;
      continue;
    }
    ASSIGN_OR_RETURN(
        double rms,
        RmsOverMask(*imputed, dataset.truth, observed.Complement()));
    result.mean_rms += rms;
    result.mean_seconds += seconds;
    ++successes;
  }
  if (successes == 0) {
    return Status::NumericError("all imputation trials failed for " +
                                imputer.name());
  }
  result.mean_rms /= successes;
  result.mean_seconds /= successes;
  return result;
}

Result<TrialResult> RunRepairTrials(const PreparedDataset& dataset,
                                    const repair::Repairer& repairer,
                                    const TrialOptions& options) {
  if (options.trials <= 0) {
    return Status::InvalidArgument("RunRepairTrials: trials must be > 0");
  }
  std::vector<std::string> names;
  for (Index j = 0; j < dataset.truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  ASSIGN_OR_RETURN(data::Table table,
                   data::Table::Create(std::move(names), dataset.truth,
                                       dataset.spatial_cols));

  TrialResult result;
  int successes = 0;
  for (int t = 0; t < options.trials; ++t) {
    data::ErrorInjectionOptions inject;
    inject.error_rate = options.error_rate;
    inject.preserve_complete_rows = CompletePoolSize(dataset.truth.rows());
    inject.seed = options.seed + static_cast<uint64_t>(t) * 104729;
    ASSIGN_OR_RETURN(data::ErrorInjection injection,
                     data::InjectErrors(table, inject));

    SMFL_TRACE_SPAN("exp.repair_trial");
    Stopwatch watch;
    auto repaired = repairer.Repair(injection.dirty, injection.dirty_cells,
                                    dataset.spatial_cols);
    const double seconds = watch.ElapsedSeconds();
    if (!repaired.ok()) {
      ++result.failures;
      continue;
    }
    ASSIGN_OR_RETURN(double rms, RmsOverMask(*repaired, dataset.truth,
                                             injection.dirty_cells));
    result.mean_rms += rms;
    result.mean_seconds += seconds;
    ++successes;
  }
  if (successes == 0) {
    return Status::NumericError("all repair trials failed for " +
                                repairer.name());
  }
  result.mean_rms /= successes;
  result.mean_seconds /= successes;
  return result;
}

}  // namespace smfl::exp
