// Graceful degradation for repair, mirroring impute::FallbackImputer: a
// chain of registered repairers tried in order, with the serving tier and
// per-tier failures recorded in a mf::DegradationReport.

#ifndef SMFL_REPAIR_FALLBACK_H_
#define SMFL_REPAIR_FALLBACK_H_

#include <string>
#include <vector>

#include "src/mf/factorization.h"
#include "src/repair/repairer.h"

namespace smfl::repair {

// SMFL first, then simpler factorizations, then the statistical baseline.
std::vector<std::string> DefaultRepairFallbackChain();

class FallbackRepairer : public Repairer {
 public:
  explicit FallbackRepairer(std::vector<std::string> chain =
                                DefaultRepairFallbackChain());

  std::string name() const override;

  Result<Matrix> Repair(const Matrix& dirty, const Mask& dirty_cells,
                        Index spatial_cols) const override;

  // Same, and fills `*report` (may be null). Fails only when every tier
  // fails, surfacing the last tier's status.
  Result<Matrix> RepairWithReport(const Matrix& dirty,
                                  const Mask& dirty_cells, Index spatial_cols,
                                  mf::DegradationReport* report) const;

  const std::vector<std::string>& chain() const { return chain_; }

 private:
  std::vector<std::string> chain_;
};

}  // namespace smfl::repair

#endif  // SMFL_REPAIR_FALLBACK_H_
