# Empty dependencies file for smfl_cluster.
# This may be replaced when dependencies are built.
