// Tests for tools/smfl_lint: one positive and one suppressed fixture per
// rule (R1-R12), plus lexer and suppression-validation coverage. Fixtures
// are written into a temp directory shaped like the repo (src/...), so the
// per-path rule scoping is exercised exactly as in production runs.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/smfl_lint/lint.h"

namespace smfl::lint {
namespace {

namespace fs = std::filesystem;

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("smfl_lint_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()
                     ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    ASSERT_TRUE(out.is_open()) << p;
    out << content;
  }

  LintResult Run() {
    LintOptions options;
    options.repo_root = root_.string();
    LintResult result;
    std::string error;
    EXPECT_TRUE(RunLint(options, &result, &error)) << error;
    return result;
  }

  static std::vector<std::string> Rules(const std::vector<Diagnostic>& ds) {
    std::vector<std::string> out;
    for (const auto& d : ds) out.push_back(d.rule);
    return out;
  }

  fs::path root_;
};

// --------------------------------------------------------------------------
// Lexer

TEST(LexerTest, FloatLiteralClassification) {
  EXPECT_TRUE(IsFloatLiteral("0.0"));
  EXPECT_TRUE(IsFloatLiteral("1.5e-3"));
  EXPECT_TRUE(IsFloatLiteral("2e6"));
  EXPECT_TRUE(IsFloatLiteral("1.f"));
  EXPECT_TRUE(IsFloatLiteral(".25"));
  EXPECT_FALSE(IsFloatLiteral("0"));
  EXPECT_FALSE(IsFloatLiteral("42"));
  EXPECT_FALSE(IsFloatLiteral("0x1F"));
  EXPECT_FALSE(IsFloatLiteral("100ul"));
}

TEST(LexerTest, CommentsAndStringsAreNotCode) {
  const LexedFile f = Lex("src/a.cc",
                          "// std::thread in a comment\n"
                          "const char* s = \"std::thread\";\n"
                          "/* rand() */ int x = 1;\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "thread");
    EXPECT_NE(t.text, "rand");
  }
}

TEST(LexerTest, SuppressionParsing) {
  const LexedFile f = Lex("src/a.cc",
                          "int a = 1;\n"
                          "// smfl-lint: allow(float-eq) masks are 0/1\n"
                          "int b = 2;  // smfl-lint: allow(nondet,thread) ok\n");
  ASSERT_EQ(f.suppressions.size(), 2u);
  EXPECT_TRUE(f.suppressions[0].own_line);
  EXPECT_EQ(f.suppressions[0].line, 2);
  EXPECT_TRUE(f.suppressions[0].rules.count("float-eq"));
  EXPECT_EQ(f.suppressions[0].reason, "masks are 0/1");
  EXPECT_FALSE(f.suppressions[1].own_line);
  EXPECT_TRUE(f.suppressions[1].rules.count("nondet"));
  EXPECT_TRUE(f.suppressions[1].rules.count("thread"));
}

// --------------------------------------------------------------------------
// R1: thread

TEST_F(LintTest, ThreadPositive) {
  WriteFile("src/core/worker.cc",
            "#include <thread>\n"
            "void Go() { std::thread t([] {}); t.join(); }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "thread");
  EXPECT_EQ(r.violations[0].line, 2);
}

TEST_F(LintTest, ThreadSuppressed) {
  WriteFile("src/core/worker.cc",
            "// smfl-lint: allow(thread) bounded helper, joins immediately\n"
            "void Go() { std::thread t([] {}); t.join(); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "thread");
}

TEST_F(LintTest, ThreadAllowedInParallelLayer) {
  WriteFile("src/common/parallel.cc",
            "void Pool() { std::thread t([] {}); t.join(); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, ThreadFlagsOpenMp) {
  WriteFile("src/la/fast.cc",
            "#pragma omp parallel for\n"
            "void F() {}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "thread");
}

// --------------------------------------------------------------------------
// R2: nondet

TEST_F(LintTest, NondetPositive) {
  WriteFile("src/data/sampler.cc",
            "#include <random>\n"
            "int Seed() { std::random_device rd; return (int)rd(); }\n"
            "int Now() { return (int)time(nullptr); }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 2u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "nondet");
  EXPECT_EQ(r.violations[1].rule, "nondet");
}

TEST_F(LintTest, NondetSuppressed) {
  WriteFile("src/data/sampler.cc",
            "int Now() {\n"
            "  // smfl-lint: allow(nondet) cache-busting token, not numerics\n"
            "  return (int)time(nullptr);\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "nondet");
}

TEST_F(LintTest, NondetAllowedInRng) {
  WriteFile("src/common/rng.cc",
            "unsigned Fallback() { std::random_device rd; return rd(); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, NondetIgnoresMemberTime) {
  WriteFile("src/data/sampler.cc",
            "double F(const Stopwatch& sw) { return sw.time(); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R3: unordered-iter

TEST_F(LintTest, UnorderedIterPositive) {
  WriteFile("src/core/agg.cc",
            "#include <unordered_map>\n"
            "double Sum(const std::unordered_map<int, double>& cells) {\n"
            "  double s = 0.0;\n"
            "  for (const auto& kv : cells) s += kv.second;\n"
            "  return s;\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "unordered-iter");
  EXPECT_EQ(r.violations[0].line, 4);
}

TEST_F(LintTest, UnorderedIterSuppressed) {
  WriteFile("src/core/agg.cc",
            "#include <unordered_map>\n"
            "int Count(const std::unordered_map<int, double>& cells) {\n"
            "  int n = 0;\n"
            "  // smfl-lint: allow(unordered-iter) counting is order-free\n"
            "  for (const auto& kv : cells) n += kv.second > 0;\n"
            "  return n;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "unordered-iter");
}

TEST_F(LintTest, UnorderedLookupIsFine) {
  WriteFile("src/core/agg.cc",
            "#include <unordered_map>\n"
            "double Get(const std::unordered_map<int, double>& m, int k) {\n"
            "  auto it = m.find(k);\n"
            "  return it == m.end() ? 0.0 : it->second;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, UnorderedIterOnlyInNumericDirs) {
  // Same iteration in src/data is outside the rule's scope.
  WriteFile("src/data/agg.cc",
            "#include <unordered_map>\n"
            "double Sum(const std::unordered_map<int, double>& cells) {\n"
            "  double s = 0.0;\n"
            "  for (const auto& kv : cells) s += kv.second;\n"
            "  return s;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, UnorderedIterSeesThroughAlias) {
  WriteFile("src/mf/groups.cc",
            "#include <unordered_map>\n"
            "using GroupMap = std::unordered_map<int, double>;\n"
            "double Sum(const GroupMap& g) {\n"
            "  double s = 0.0;\n"
            "  for (const auto& kv : g) s += kv.second;\n"
            "  return s;\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "unordered-iter");
}

// --------------------------------------------------------------------------
// R4: discard-status

TEST_F(LintTest, DiscardStatusPositive) {
  WriteFile("src/core/io.h",
            "#ifndef SMFL_CORE_IO_H_\n"
            "#define SMFL_CORE_IO_H_\n"
            "Status SaveThing(const char* path);\n"
            "#endif\n");
  WriteFile("src/core/use.cc",
            "#include \"src/core/io.h\"\n"
            "void Checkpoint() {\n"
            "  SaveThing(\"/tmp/x\");\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "discard-status");
  EXPECT_EQ(r.violations[0].rel_path, "src/core/use.cc");
  EXPECT_EQ(r.violations[0].line, 3);
}

TEST_F(LintTest, DiscardStatusVoidCast) {
  WriteFile("src/core/io.h",
            "#ifndef SMFL_CORE_IO_H_\n"
            "#define SMFL_CORE_IO_H_\n"
            "Status SaveThing(const char* path);\n"
            "#endif\n");
  WriteFile("src/core/use.cc",
            "#include \"src/core/io.h\"\n"
            "void A() { (void)SaveThing(\"/tmp/x\"); }\n"
            "void B() { static_cast<void>(SaveThing(\"/tmp/y\")); }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 2u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "discard-status");
  EXPECT_EQ(r.violations[1].rule, "discard-status");
}

TEST_F(LintTest, DiscardStatusSuppressed) {
  WriteFile("src/core/io.h",
            "#ifndef SMFL_CORE_IO_H_\n"
            "#define SMFL_CORE_IO_H_\n"
            "Status SaveThing(const char* path);\n"
            "#endif\n");
  WriteFile("src/core/use.cc",
            "#include \"src/core/io.h\"\n"
            "void Shutdown() {\n"
            "  // smfl-lint: allow(discard-status) best-effort final flush\n"
            "  SaveThing(\"/tmp/x\");\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "discard-status");
}

TEST_F(LintTest, DiscardStatusConsumedIsFine) {
  WriteFile("src/core/io.h",
            "#ifndef SMFL_CORE_IO_H_\n"
            "#define SMFL_CORE_IO_H_\n"
            "Status SaveThing(const char* path);\n"
            "Result<int> LoadThing(const char* path);\n"
            "#endif\n");
  WriteFile("src/core/use.cc",
            "#include \"src/core/io.h\"\n"
            "Status Checkpoint() {\n"
            "  Status st = SaveThing(\"/tmp/x\");\n"
            "  if (!st.ok()) return st;\n"
            "  RETURN_NOT_OK(SaveThing(\"/tmp/y\"));\n"
            "  auto loaded = cond ? LoadThing(\"/a\") : LoadThing(\"/b\");\n"
            "  return loaded.status();\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R5: float-eq

TEST_F(LintTest, FloatEqPositive) {
  WriteFile("src/la/norm.cc",
            "bool IsZero(double x) { return x == 0.0; }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "float-eq");
}

TEST_F(LintTest, FloatEqSuppressed) {
  WriteFile("src/la/norm.cc",
            "bool IsZero(double x) {\n"
            "  // smfl-lint: allow(float-eq) exact-zero guard for division\n"
            "  return x == 0.0;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "float-eq");
}

TEST_F(LintTest, FloatEqSkipsTestsAndIntegers) {
  WriteFile("tests/norm_test.cc",
            "bool T() { return 1.0 == Norm(); }\n");
  WriteFile("src/la/count.cc",
            "bool Empty(int n) { return n == 0; }\n");
  LintOptions options;
  options.repo_root = root_.string();
  options.roots = {"src", "tests"};
  LintResult r;
  std::string error;
  ASSERT_TRUE(RunLint(options, &r, &error)) << error;
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R6: raw-log

TEST_F(LintTest, RawLogPositive) {
  WriteFile("src/exp/report.cc",
            "#include <iostream>\n"
            "void Warn() { std::cerr << \"bad\\n\"; }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "raw-log");
  EXPECT_EQ(r.violations[0].line, 2);
}

TEST_F(LintTest, RawLogSuppressed) {
  WriteFile("src/exp/report.cc",
            "#include <iostream>\n"
            "void Warn() {\n"
            "  // smfl-lint: allow(raw-log) crash path; logger may be gone\n"
            "  std::cerr << \"bad\\n\";\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-log");
}

TEST_F(LintTest, RawLogAllowedInLoggingImpl) {
  WriteFile("src/common/logging.cc",
            "#include <iostream>\n"
            "void Emit(const char* m) { std::cerr << m; }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R7: raw-file-write

TEST_F(LintTest, RawFileWritePositive) {
  WriteFile("src/exp/report.cc",
            "#include <fstream>\n"
            "#include <cstdio>\n"
            "void Dump() { std::ofstream out(\"/tmp/r.csv\"); }\n"
            "void Legacy() { FILE* f = fopen(\"/tmp/r.bin\", \"wb\"); }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 2u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "raw-file-write");
  EXPECT_EQ(r.violations[0].line, 3);
  EXPECT_EQ(r.violations[1].rule, "raw-file-write");
  EXPECT_EQ(r.violations[1].line, 4);
}

TEST_F(LintTest, RawFileWriteSuppressed) {
  WriteFile("src/exp/report.cc",
            "#include <fstream>\n"
            "void Dump() {\n"
            "  // smfl-lint: allow(raw-file-write) append-only debug stream\n"
            "  std::ofstream out(\"/tmp/r.csv\");\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-file-write");
}

TEST_F(LintTest, RawFileWriteAllowedInDurableIoAndTests) {
  WriteFile("src/common/durable_io.cc",
            "#include <cstdio>\n"
            "bool W(const char* p) { return fopen(p, \"wb\") != nullptr; }\n");
  WriteFile("tests/io_test.cc",
            "#include <fstream>\n"
            "void Fixture() { std::ofstream out(\"/tmp/fixture\"); }\n");
  LintOptions options;
  options.repo_root = root_.string();
  options.roots = {"src", "tests"};
  LintResult r;
  std::string error;
  ASSERT_TRUE(RunLint(options, &r, &error)) << error;
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, RawFileWriteIgnoresReadsAndMembers) {
  WriteFile("src/exp/report.cc",
            "#include <fstream>\n"
            "void Load() { std::ifstream in(\"/tmp/r.csv\"); }\n"
            "void Member(Vfs& vfs) { vfs.fopen(\"/tmp/x\"); }\n"
            "void Other() { posix::fopen(\"/tmp/x\"); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R8: raw-simd

TEST_F(LintTest, RawSimdPositive) {
  WriteFile("src/core/fast_path.cc",
            "#include <immintrin.h>\n"
            "void F(double* y, const double* x) {\n"
            "  __m256d a = _mm256_loadu_pd(x);\n"
            "  _mm256_storeu_pd(y, a);\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 4u) << ResultToJson(r);
  for (const auto& d : r.violations) EXPECT_EQ(d.rule, "raw-simd");
  EXPECT_EQ(r.violations[0].line, 1);  // the #include itself
}

TEST_F(LintTest, RawSimdNeonPositive) {
  WriteFile("src/core/fast_path.cc",
            "#include <arm_neon.h>\n"
            "void F(double* y, const double* x) {\n"
            "  float64x2_t a = vld1q_f64(x);\n"
            "  vst1q_f64(y, vaddq_f64(a, vdupq_n_f64(1.0)));\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_GE(r.violations.size(), 5u) << ResultToJson(r);
  for (const auto& d : r.violations) EXPECT_EQ(d.rule, "raw-simd");
}

TEST_F(LintTest, RawSimdSuppressed) {
  WriteFile("src/core/fast_path.cc",
            "void F(double* y) {\n"
            "  // smfl-lint: allow(raw-simd) one-off prefetch, no arithmetic\n"
            "  _mm_prefetch(y, 1);\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-simd");
}

TEST_F(LintTest, RawSimdAllowedInDispatchLayer) {
  WriteFile("src/la/simd.cc",
            "#include <immintrin.h>\n"
            "void F(double* y, const double* x) {\n"
            "  _mm256_storeu_pd(y, _mm256_loadu_pd(x));\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, RawSimdIgnoresOrdinaryIdentifiers) {
  WriteFile("src/core/plain.cc",
            "int vmax_f64_count = 0;\n"      // no 'q'
            "void visit(int v) { (void)v; }\n"
            "double mm_ratio = 1.5;\n");     // no leading underscore
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R9: const-ref

TEST_F(LintTest, ConstRefPositive) {
  WriteFile("src/core/api.cc",
            "double Sum(Matrix m);\n"
            "double Mix(const Matrix& a, Table t, int n);\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 2u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "const-ref");
  EXPECT_EQ(r.violations[0].line, 1);
  EXPECT_EQ(r.violations[1].rule, "const-ref");
  EXPECT_EQ(r.violations[1].line, 2);
}

TEST_F(LintTest, ConstRefSuppressed) {
  WriteFile("src/core/api.cc",
            "// smfl-lint: allow(const-ref) sink parameter, moved from\n"
            "void Consume(Matrix m);\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "const-ref");
}

TEST_F(LintTest, ConstRefIgnoresReferencesDeclarationsAndMacros) {
  WriteFile("src/core/api.cc",
            "double Ok(const Matrix& a, Mask* b);\n"
            "void Local() { Matrix c(3, 4); Matrix u = c; }\n"
            "Status Harvest() {\n"
            "  ASSIGN_OR_RETURN(Matrix z, LoadMatrix());\n"
            "  SMFL_CHECK_EQ(z.rows(), 3);\n"
            "  return Status::OK();\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, ConstRefExemptInTests) {
  WriteFile("tests/helper_test.cc", "double Sum(Matrix m);\n");
  LintOptions options;
  options.repo_root = root_.string();
  options.roots = {"tests"};
  LintResult r;
  std::string error;
  ASSERT_TRUE(RunLint(options, &r, &error)) << error;
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R10: mask-scan

TEST_F(LintTest, MaskScanPositive) {
  WriteFile("src/core/loop.cc",
            "void Iterate(const Mask& observed) {\n"
            "  const uint8_t* row = observed.RowData(0);\n"
            "  Index c = observed.RowCount(2);\n"
            "  auto pts = observed.Entries();\n"
            "  (void)row; (void)c; (void)pts;\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 3u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "mask-scan");
  EXPECT_EQ(r.violations[0].line, 2);
  EXPECT_EQ(r.violations[1].line, 3);
  EXPECT_EQ(r.violations[2].line, 4);
}

TEST_F(LintTest, MaskScanSuppressed) {
  WriteFile("src/mf/probe.cc",
            "void Hash(const Mask& m) {\n"
            "  // smfl-lint: allow(mask-scan) fingerprint hashes once per fit\n"
            "  const uint8_t* row = m.RowData(0);\n"
            "  (void)row;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "mask-scan");
}

TEST_F(LintTest, MaskScanIgnoresBareIdentsAndOtherDirs) {
  // Bare identifiers and declarations are not member-call scan sites.
  WriteFile("src/core/decl.cc",
            "Index RowCount(const Mask& m);\n"
            "void F() { Index Entries = 3; (void)Entries; }\n");
  // mask.cc (src/data) is the sanctioned home for raw row scans.
  WriteFile("src/data/mask.cc",
            "void Scan(const Mask& m) { (void)m.RowData(0); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R11: raw-socket

TEST_F(LintTest, RawSocketPositive) {
  WriteFile("src/core/push.cc",
            "void Push() {\n"
            "  int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
            "  bind(fd, nullptr, 0);\n"
            "  listen(fd, 8);\n"
            "  poll(nullptr, 0, 100);\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 4u) << ResultToJson(r);
  for (const Diagnostic& d : r.violations) {
    EXPECT_EQ(d.rule, "raw-socket");
  }
  EXPECT_EQ(r.violations[0].line, 2);
}

TEST_F(LintTest, RawSocketSuppressed) {
  WriteFile("src/core/push.cc",
            "void Push() {\n"
            "  // smfl-lint: allow(raw-socket) UDP beacon, fire-and-forget\n"
            "  int fd = socket(AF_INET, SOCK_DGRAM, 0);\n"
            "  (void)fd;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-socket");
}

TEST_F(LintTest, RawSocketIgnoresQualifiedMemberAndServerHome) {
  // std::bind and member .bind(...) are not the socket syscall; the obs
  // HTTP server is the sanctioned home and tests may open sockets freely.
  WriteFile("src/core/cb.cc",
            "void F() {\n"
            "  auto g = std::bind(h, 1);\n"
            "  server.listen(80);\n"
            "  q->poll();\n"
            "  int accept = 0; (void)accept; (void)g;\n"
            "}\n");
  WriteFile("src/obs/http_server.cc",
            "void Start() { int fd = socket(AF_INET, SOCK_STREAM, 0);"
            " (void)fd; }\n");
  WriteFile("tests/net_test.cc",
            "void T() { int fd = socket(AF_INET, SOCK_STREAM, 0);"
            " (void)fd; }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R12: header-hygiene

TEST_F(LintTest, HeaderHygieneMissingGuard) {
  WriteFile("src/obs/widget.h", "struct Widget { int x; };\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "header-hygiene");
  EXPECT_NE(r.violations[0].message.find("SMFL_OBS_WIDGET_H_"),
            std::string::npos)
      << r.violations[0].message;
}

TEST_F(LintTest, HeaderHygieneWrongGuardNamesConvention) {
  WriteFile("src/obs/widget.h",
            "#ifndef WIDGET_H\n"
            "#define WIDGET_H\n"
            "struct Widget { int x; };\n"
            "#endif\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "header-hygiene");
  EXPECT_NE(r.violations[0].message.find("WIDGET_H"), std::string::npos);
  EXPECT_NE(r.violations[0].message.find("SMFL_OBS_WIDGET_H_"),
            std::string::npos);
}

TEST_F(LintTest, HeaderHygieneCompliantAndNonHeadersPass) {
  WriteFile("src/obs/widget.h",
            "#ifndef SMFL_OBS_WIDGET_H_\n"
            "#define SMFL_OBS_WIDGET_H_\n"
            "// A comment before the guard is fine.\n"
            "struct Widget { int x; };\n"
            "#endif  // SMFL_OBS_WIDGET_H_\n");
  WriteFile("src/obs/widget.cc", "int unguarded_translation_unit = 1;\n");
  WriteFile("tests/fixture.h", "struct NoGuardNeeded {};\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// Suppression hygiene

TEST_F(LintTest, SuppressionWithoutReasonIsViolation) {
  WriteFile("src/la/norm.cc",
            "// smfl-lint: allow(float-eq)\n"
            "bool IsZero(double x) { return x == 0.0; }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "bad-suppression");
}

TEST_F(LintTest, SuppressionWithUnknownRuleIsViolation) {
  WriteFile("src/la/norm.cc",
            "// smfl-lint: allow(no-such-rule) because reasons\n"
            "int x = 1;\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "bad-suppression");
}

TEST_F(LintTest, MalformedDirectiveIsViolation) {
  WriteFile("src/la/norm.cc",
            "// smfl-lint: disable everything\n"
            "int x = 1;\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "bad-suppression");
}

// --------------------------------------------------------------------------
// Output plumbing

TEST_F(LintTest, JsonSummaryContainsFindings) {
  WriteFile("src/la/norm.cc",
            "bool IsZero(double x) { return x == 0.0; }\n");
  const LintResult r = Run();
  const std::string json = ResultToJson(r);
  EXPECT_NE(json.find("\"violation_count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"float-eq\""), std::string::npos) << json;
  EXPECT_NE(json.find("src/la/norm.cc"), std::string::npos) << json;
}

TEST_F(LintTest, FormatDiagnosticIsFileLineRule) {
  const Diagnostic d{"float-eq", "src/la/norm.cc", 7, "msg"};
  EXPECT_EQ(FormatDiagnostic(d), "src/la/norm.cc:7: [float-eq] msg");
}

}  // namespace
}  // namespace smfl::lint
