// The only translation unit in the tree allowed to touch raw SIMD
// intrinsics (smfl_lint rule `raw-simd` enforces this). Every vector
// kernel below preserves the scalar per-output-element operation order —
// see the contract in simd.h — by using separate mul and add intrinsics
// (never fused multiply-add) and by never reducing across a vector
// register. The build additionally pins -ffp-contract=off so no tier can
// be contracted behind our back.

#include "src/la/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SMFL_SIMD_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define SMFL_SIMD_NEON 1
#endif

namespace smfl::la::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier — the reference operation order every vector tier must match.
// ---------------------------------------------------------------------------

void AxpyScalar(Index n, double a, const double* x, double* y) {
  for (Index j = 0; j < n; ++j) {
    y[j] += a * x[j];
  }
}

void DotPanelScalar(Index k, const double* a, const double* panel,
                    Index lanes, double* out) {
  // kPanelWidth independent accumulator chains, ascending p — the same
  // chain per lane the vector tiers run, just one lane at a time.
  double acc[kPanelWidth] = {};
  for (Index p = 0; p < k; ++p) {
    const double ap = a[p];
    const double* prow = panel + p * kPanelWidth;
    for (Index l = 0; l < kPanelWidth; ++l) {
      acc[l] += ap * prow[l];
    }
  }
  for (Index l = 0; l < lanes; ++l) {
    out[l] = acc[l];
  }
}

void MaskedDotColsScalar(Index k, Index m, const double* u, const double* v,
                         const Index* cols, Index ncols, double* orow) {
  for (Index c = 0; c < ncols; ++c) {
    const Index j = cols[c];
    double acc = 0.0;
    for (Index p = 0; p < k; ++p) {
      const double up = u[p];
      if (up == 0.0) {  // smfl-lint: allow(float-eq) exact zero-skip, mirrors the historical sparse path
        continue;
      }
      acc += up * v[p * m + j];
    }
    orow[j] = acc;
  }
}

void SqDiffScalar(Index n, const double* x, const double* r, double* out) {
  for (Index j = 0; j < n; ++j) {
    const double d = x[j] - r[j];
    out[j] = d * d;
  }
}

// Scalar crossover 1/4: below 25% observed the per-entry dots beat the
// full-width axpy+restrict pass (the historical `observed * 4 >= m`,
// confirmed by the BENCH_PR8 observed-rate sweep).
constexpr Kernels kScalarTable{Tier::kScalar, AxpyScalar, DotPanelScalar,
                               MaskedDotColsScalar, SqDiffScalar, 4};

// ---------------------------------------------------------------------------
// AVX2 tier (x86). Per-function target attributes keep the rest of the
// binary at the baseline ISA; only these functions emit AVX2 and they are
// only ever reached after the cpuid probe below says the CPU has it.
// ---------------------------------------------------------------------------

#if defined(SMFL_SIMD_X86)

__attribute__((target("avx2"))) void AxpyAvx2(Index n, double a,
                                              const double* x, double* y) {
  const __m256d av = _mm256_set1_pd(a);
  Index j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d xv = _mm256_loadu_pd(x + j);
    const __m256d yv = _mm256_loadu_pd(y + j);
    // y[j] + (a * x[j]) — one mul, one add, exactly the scalar expression.
    _mm256_storeu_pd(y + j, _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
  }
  for (; j < n; ++j) {
    y[j] += a * x[j];
  }
}

__attribute__((target("avx2"))) void DotPanelAvx2(Index k, const double* a,
                                                  const double* panel,
                                                  Index lanes, double* out) {
  // Two independent 4-lane accumulator chains = the scalar tier's eight
  // acc[l] chains, ascending p, no cross-lane reduction.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (Index p = 0; p < k; ++p) {
    const __m256d ap = _mm256_set1_pd(a[p]);
    const double* prow = panel + p * kPanelWidth;
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(ap, _mm256_loadu_pd(prow)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(ap, _mm256_loadu_pd(prow + 4)));
  }
  double lane[kPanelWidth];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (Index l = 0; l < lanes; ++l) {
    out[l] = lane[l];
  }
}

// No AVX2 masked_dot_cols: the _mm256_i64gather_pd kernel that lived here
// through PR 7 measured 0.85× the scalar per-entry dots at 10% observed
// (BENCH_PR7.json) — hardware gathers are slow on the server Xeons this
// repo benches on, and the strided column reads defeat the vector win.
// The AVX2 table routes sparse rows to MaskedDotColsScalar instead and
// compensates with an earlier dense crossover (see kAvx2Table).

__attribute__((target("avx2"))) void SqDiffAvx2(Index n, const double* x,
                                                const double* r, double* out) {
  Index j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + j),
                                    _mm256_loadu_pd(r + j));
    _mm256_storeu_pd(out + j, _mm256_mul_pd(d, d));
  }
  for (; j < n; ++j) {
    const double d = x[j] - r[j];
    out[j] = d * d;
  }
}

// AVX2 crossover 1/5: the 4-wide axpy pass makes the dense path ~1.7×
// cheaper than scalar dense, so it overtakes the (scalar) per-entry dots
// at ~20% observed rather than 25% (BENCH_PR8 observed-rate sweep).
constexpr Kernels kAvx2Table{Tier::kAvx2, AxpyAvx2, DotPanelAvx2,
                             MaskedDotColsScalar, SqDiffAvx2, 5};

#endif  // SMFL_SIMD_X86

// ---------------------------------------------------------------------------
// NEON tier (aarch64). NEON is mandatory on aarch64 so there is no runtime
// probe — the compile-time gate is the dispatch. No gather instruction
// exists, so masked_dot_cols stays on the (already order-identical) scalar
// routine.
// ---------------------------------------------------------------------------

#if defined(SMFL_SIMD_NEON)

void AxpyNeon(Index n, double a, const double* x, double* y) {
  const float64x2_t av = vdupq_n_f64(a);
  Index j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t xv = vld1q_f64(x + j);
    const float64x2_t yv = vld1q_f64(y + j);
    // vaddq + vmulq, never vfmaq: fused multiply-add would round once
    // where the scalar code rounds twice.
    vst1q_f64(y + j, vaddq_f64(yv, vmulq_f64(av, xv)));
  }
  for (; j < n; ++j) {
    y[j] += a * x[j];
  }
}

void DotPanelNeon(Index k, const double* a, const double* panel, Index lanes,
                  double* out) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  for (Index p = 0; p < k; ++p) {
    const float64x2_t ap = vdupq_n_f64(a[p]);
    const double* prow = panel + p * kPanelWidth;
    acc0 = vaddq_f64(acc0, vmulq_f64(ap, vld1q_f64(prow)));
    acc1 = vaddq_f64(acc1, vmulq_f64(ap, vld1q_f64(prow + 2)));
    acc2 = vaddq_f64(acc2, vmulq_f64(ap, vld1q_f64(prow + 4)));
    acc3 = vaddq_f64(acc3, vmulq_f64(ap, vld1q_f64(prow + 6)));
  }
  double lane[kPanelWidth];
  vst1q_f64(lane, acc0);
  vst1q_f64(lane + 2, acc1);
  vst1q_f64(lane + 4, acc2);
  vst1q_f64(lane + 6, acc3);
  for (Index l = 0; l < lanes; ++l) {
    out[l] = lane[l];
  }
}

void SqDiffNeon(Index n, const double* x, const double* r, double* out) {
  Index j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(x + j), vld1q_f64(r + j));
    vst1q_f64(out + j, vmulq_f64(d, d));
  }
  for (; j < n; ++j) {
    const double d = x[j] - r[j];
    out[j] = d * d;
  }
}

// NEON crossover 1/5: like AVX2, sparse rows run the scalar dots while the
// dense path runs 2-wide — break-even sits below the scalar tier's 1/4.
constexpr Kernels kNeonTable{Tier::kNeon, AxpyNeon, DotPanelNeon,
                             MaskedDotColsScalar, SqDiffNeon, 5};

#endif  // SMFL_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------

std::atomic<bool> g_process_enabled{true};

// -1 inherit the process setting, 0 force scalar, 1 force vector.
thread_local int tls_simd_mode = -1;

bool EnvPinEnabled() {
  static const bool enabled = SimdEnvValueEnabled(std::getenv("SMFL_SIMD"));
  return enabled;
}

const Kernels& HardwareTable() {
#if defined(SMFL_SIMD_X86)
  if (HardwareTier() == Tier::kAvx2) {
    return kAvx2Table;
  }
  return kScalarTable;
#elif defined(SMFL_SIMD_NEON)
  return kNeonTable;
#else
  return kScalarTable;
#endif
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

Tier HardwareTier() {
#if defined(SMFL_SIMD_X86)
  static const Tier tier =
      __builtin_cpu_supports("avx2") ? Tier::kAvx2 : Tier::kScalar;
  return tier;
#elif defined(SMFL_SIMD_NEON)
  return Tier::kNeon;
#else
  return Tier::kScalar;
#endif
}

bool Enabled() {
  if (tls_simd_mode == 0) {
    return false;
  }
  if (tls_simd_mode == 1) {
    return true;
  }
  // The env pin is ANDed in, so SetEnabled(true) cannot unpin a run that
  // exported SMFL_SIMD=0 for reproduction.
  return g_process_enabled.load(std::memory_order_relaxed) && EnvPinEnabled();
}

void SetEnabled(bool enabled) {
  g_process_enabled.store(enabled, std::memory_order_relaxed);
}

Tier ActiveTier() { return Active().tier; }

ScopedSimd::ScopedSimd(int mode) : saved_(tls_simd_mode), active_(mode >= 0) {
  if (active_) {
    tls_simd_mode = mode > 0 ? 1 : 0;
  }
}

ScopedSimd::~ScopedSimd() {
  if (active_) {
    tls_simd_mode = saved_;
  }
}

bool SimdEnvValueEnabled(const char* value) {
  if (value == nullptr || value[0] == '\0') {
    return true;
  }
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "OFF") != 0 && std::strcmp(value, "false") != 0 &&
         std::strcmp(value, "FALSE") != 0;
}

const Kernels& Active() {
  if (!Enabled()) {
    return kScalarTable;
  }
  return HardwareTable();
}

void PackRowPanel(const double* b, Index ldb, Index nrows, Index k,
                  double* panel) {
  if (k <= 0) {
    return;
  }
  if (nrows >= kPanelWidth) {
    for (Index p = 0; p < k; ++p) {
      double* prow = panel + p * kPanelWidth;
      for (Index l = 0; l < kPanelWidth; ++l) {
        prow[l] = b[l * ldb + p];
      }
    }
    return;
  }
  for (Index p = 0; p < k; ++p) {
    double* prow = panel + p * kPanelWidth;
    for (Index l = 0; l < nrows; ++l) {
      prow[l] = b[l * ldb + p];
    }
    for (Index l = nrows; l < kPanelWidth; ++l) {
      prow[l] = 0.0;
    }
  }
}

}  // namespace smfl::la::simd
