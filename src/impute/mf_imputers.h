// Matrix-factorization-backed imputers: MC (SVT), SoftImpute, NMF, and the
// paper's SMF / SMFL (wrapping src/core).

#ifndef SMFL_IMPUTE_MF_IMPUTERS_H_
#define SMFL_IMPUTE_MF_IMPUTERS_H_

#include "src/core/smfl.h"
#include "src/impute/imputer.h"
#include "src/mf/nmf.h"
#include "src/mf/softimpute.h"
#include "src/mf/svt.h"

namespace smfl::impute {

// MC [10]: nuclear-norm matrix completion via SVT.
class McImputer : public Imputer {
 public:
  explicit McImputer(mf::SvtOptions options = {}) : options_(options) {}
  std::string name() const override { return "MC"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  mf::SvtOptions options_;
};

// SoftImpute [35].
class SoftImputeImputer : public Imputer {
 public:
  explicit SoftImputeImputer(mf::SoftImputeOptions options = {})
      : options_(options) {}
  std::string name() const override { return "SoftImpute"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  mf::SoftImputeOptions options_;
};

// Plain masked NMF [41] — no spatial information at all.
class NmfImputer : public Imputer {
 public:
  explicit NmfImputer(mf::NmfOptions options = {}) : options_(options) {}
  std::string name() const override { return "NMF"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  mf::NmfOptions options_;
};

// SMF: NMF + spatial regularization, no landmarks (Problem 1).
class SmfImputer : public Imputer {
 public:
  explicit SmfImputer(core::SmflOptions options = core::SmflOptions{});
  std::string name() const override { return "SMF"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  core::SmflOptions options_;
};

// SMFL: the paper's full method (Problem 2).
class SmflImputer : public Imputer {
 public:
  explicit SmflImputer(core::SmflOptions options = core::SmflOptions{});
  std::string name() const override { return "SMFL"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  core::SmflOptions options_;
};

}  // namespace smfl::impute

#endif  // SMFL_IMPUTE_MF_IMPUTERS_H_
