// Ablation: binary (Formula 3) vs heat-kernel edge weights in the
// similarity graph (DESIGN.md §4; the GNMF-style weighting of the paper's
// related work [9]).

#include "bench/bench_util.h"
#include "src/impute/mf_imputers.h"

using namespace smfl;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  exp::ReportTable table({"Dataset", "SMF(binary)", "SMF(heat)",
                          "SMFL(binary)", "SMFL(heat)"});
  for (const std::string& dataset_name : bench::PaperDatasets()) {
    auto prepared = bench::ValueOrDie(exp::PrepareDataset(
        dataset_name, bench::RowsFor(config, dataset_name)));
    exp::TrialOptions trial;
    trial.trials = config.trials;
    table.BeginRow(dataset_name);
    for (bool landmarks : {false, true}) {
      for (core::GraphWeighting weighting :
           {core::GraphWeighting::kBinary,
            core::GraphWeighting::kHeatKernel}) {
        core::SmflOptions options;
        options.use_landmarks = landmarks;
        options.graph_weighting = weighting;
        auto result =
            landmarks
                ? exp::RunImputationTrials(
                      prepared, impute::SmflImputer(options), trial)
                : exp::RunImputationTrials(
                      prepared, impute::SmfImputer(options), trial);
        if (result.ok()) {
          table.AddNumber(result->mean_rms);
        } else {
          table.AddCell("ERR");
        }
      }
    }
  }
  table.Print("Ablation: binary vs heat-kernel graph weights");
  std::printf("%s", table.ToCsv().c_str());
  return 0;
}
