# Empty compiler generated dependencies file for smfl_nn.
# This may be replaced when dependencies are built.
