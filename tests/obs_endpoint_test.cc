// End-to-end tests of the observability plane (src/obs): loopback scrapes
// of /metrics, /healthz, and /statusz while a real fit runs in-process,
// plus the HTTP server's failure paths (400/404/405/431/503, port in use).
// The core guarantee under test: scraping is purely observational — a fit
// run under concurrent scrapes serializes byte-identically to one without.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/fit_progress.h"
#include "src/common/telemetry.h"
#include "src/core/model_io.h"
#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/obs/exporter.h"
#include "src/obs/http_server.h"

namespace smfl::obs {
namespace {

using data::Mask;
using la::Index;
using la::Matrix;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Opens a loopback TCP connection to `port`. Returns -1 on failure.
int Connect(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

// Sends `request` verbatim and reads until the server closes (it always
// sends Connection: close). Returns the raw response, "" on any failure.
std::string RawRequest(int port, const std::string& request) {
  const int fd = Connect(port);
  if (fd < 0) return "";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = send(fd, request.data() + sent, request.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: l\r\n\r\n");
}

// "HTTP/1.1 200 OK\r\n..." -> 200; -1 when unparseable.
int StatusCodeOf(const std::string& response) {
  const size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) return -1;
  return std::atoi(response.c_str() + sp + 1);
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// Extracts the integer value of `"key":` from a flat JSON object; -1 when
// the key is absent.
int64_t JsonInt(const std::string& json, const std::string& key) {
  const size_t pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return -1;
  return std::atoll(json.c_str() + pos + key.size() + 3);
}

bool JsonTrue(const std::string& json, const std::string& key) {
  return Contains(json, "\"" + key + "\":true");
}

struct Scenario {
  Matrix input;
  Mask observed;
};

Scenario MakeScenario(Index rows, uint64_t seed) {
  auto dataset = data::MakeVehicleLike(rows, seed);
  SMFL_CHECK(dataset.ok());
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.3;
  inject.preserve_complete_rows = 20;
  inject.seed = seed + 1;
  auto injection = data::InjectMissing(dataset->table, inject);
  SMFL_CHECK(injection.ok());
  Scenario s;
  s.observed = injection->observed;
  s.input = data::ApplyMask(normalizer->Transform(dataset->table.values()),
                            s.observed);
  return s;
}

core::SmflOptions SlowFitOptions() {
  core::SmflOptions options;
  options.rank = 8;
  options.max_iterations = 3000;
  options.tolerance = 0.0;  // never early-stop: keep the fit scrapable
  options.threads = 2;
  return options;
}

class ObsEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::MetricsRegistry::Global().ResetForTesting();
    GlobalFitProgress().Reset();
  }
};

// --------------------------------------------------------------------------
// Live scrape during a real in-process fit

TEST_F(ObsEndpointTest, EndpointsServeDuringLiveFitAndStatuszAdvances) {
  MetricsExporter exporter;
  MetricsExporter::Options options;
  options.sample_interval_ms = 50;
  ASSERT_TRUE(exporter.Start(options).ok());
  const int port = exporter.port();
  ASSERT_GT(port, 0);

  const Scenario s = MakeScenario(200, 7);
  std::atomic<bool> fit_done{false};
  // Raw thread is fine in tests; production fits stay on the caller.
  std::thread fit_thread([&] {
    auto model = core::FitSmfl(s.input, s.observed, 2, SlowFitOptions());
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    fit_done.store(true);
  });

  // Scrape /statusz until we have seen two distinct iteration counts while
  // the fit is active (proving live progress), or the fit ends.
  std::set<int64_t> iterations_seen;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string response = Get(port, "/statusz");
    ASSERT_EQ(StatusCodeOf(response), 200) << response;
    const std::string body = BodyOf(response);
    const int64_t iter = JsonInt(body, "iteration");
    if (JsonTrue(body, "fit_active") && iter > 0) {
      iterations_seen.insert(iter);
    }
    if (iterations_seen.size() >= 2 || fit_done.load()) break;
  }
  fit_thread.join();
  EXPECT_GE(iterations_seen.size(), 2u)
      << "never observed the fit advancing over " << iterations_seen.size()
      << " distinct live iterations";

  // /metrics during/after the fit: valid exposition with fit instruments,
  // resource gauges, and the server's own request counter.
  const std::string metrics = Get(port, "/metrics");
  EXPECT_EQ(StatusCodeOf(metrics), 200);
  EXPECT_TRUE(Contains(metrics, "text/plain; version=0.0.4")) << metrics;
  EXPECT_TRUE(Contains(metrics, "# TYPE smfl_fit_iter histogram"));
  EXPECT_TRUE(Contains(metrics, "process_rss_bytes"));
  EXPECT_TRUE(Contains(metrics, "obs_http_requests_total"));

  const std::string healthz = Get(port, "/healthz");
  EXPECT_EQ(StatusCodeOf(healthz), 200);
  EXPECT_EQ(BodyOf(healthz), "ok\n");

  // The fit ended: /statusz must agree.
  const std::string final_status = BodyOf(Get(port, "/statusz"));
  EXPECT_FALSE(JsonTrue(final_status, "fit_active")) << final_status;
  EXPECT_GT(JsonInt(final_status, "updates"), 0) << final_status;

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
}

// --------------------------------------------------------------------------
// Scrapes are purely observational

TEST_F(ObsEndpointTest, ConcurrentScrapesDoNotPerturbTheFit) {
  const Scenario s = MakeScenario(120, 11);
  core::SmflOptions options;
  options.rank = 6;
  options.max_iterations = 400;
  options.tolerance = 0.0;
  options.threads = 2;

  auto baseline = core::FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string baseline_bytes = core::SerializeModel(*baseline);

  telemetry::MetricsRegistry::Global().ResetForTesting();
  GlobalFitProgress().Reset();

  MetricsExporter exporter;
  MetricsExporter::Options exporter_options;
  exporter_options.sample_interval_ms = 20;
  ASSERT_TRUE(exporter.Start(exporter_options).ok());
  std::atomic<bool> stop_scraping{false};
  std::thread scraper([&] {
    while (!stop_scraping.load()) {
      (void)Get(exporter.port(), "/metrics");
      (void)Get(exporter.port(), "/statusz");
    }
  });

  auto scraped = core::FitSmfl(s.input, s.observed, 2, options);
  stop_scraping.store(true);
  scraper.join();
  exporter.Stop();

  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();
  EXPECT_EQ(core::SerializeModel(*scraped), baseline_bytes)
      << "concurrent scrapes changed the fitted model bytes";
}

// --------------------------------------------------------------------------
// HTTP failure paths

TEST_F(ObsEndpointTest, MalformedUnknownAndNonGetRequests) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start(HttpServer::Options{}).ok());
  const int port = server.port();

  EXPECT_EQ(StatusCodeOf(Get(port, "/ping")), 200);
  EXPECT_EQ(BodyOf(Get(port, "/ping")), "pong");
  // Query strings are stripped before routing.
  EXPECT_EQ(StatusCodeOf(Get(port, "/ping?verbose=1")), 200);
  EXPECT_EQ(StatusCodeOf(Get(port, "/nope")), 404);
  EXPECT_EQ(StatusCodeOf(RawRequest(
                port, "POST /ping HTTP/1.1\r\nContent-Length: 0\r\n\r\n")),
            405);
  EXPECT_EQ(StatusCodeOf(RawRequest(port, "garbage\r\n\r\n")), 400);

  // The failure counters moved; the server survived it all.
  EXPECT_EQ(StatusCodeOf(Get(port, "/ping")), 200);
  server.Stop();
}

TEST_F(ObsEndpointTest, OversizedRequestIs431) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  HttpServer::Options options;
  options.max_request_bytes = 128;
  ASSERT_TRUE(server.Start(options).ok());
  const std::string huge =
      "GET /" + std::string(1024, 'x') + " HTTP/1.1\r\n\r\n";
  EXPECT_EQ(StatusCodeOf(RawRequest(server.port(), huge)), 431);
  server.Stop();
}

TEST_F(ObsEndpointTest, ConnectionLimitAnswers503) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  HttpServer::Options options;
  options.max_connections = 2;
  ASSERT_TRUE(server.Start(options).ok());

  // Two idle connections occupy both slots once accepted.
  const int a = Connect(server.port());
  const int b = Connect(server.port());
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  // Give the poll loop a round to accept them before the third arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const std::string response =
      RawRequest(server.port(), "GET /ping HTTP/1.1\r\n\r\n");
  EXPECT_EQ(StatusCodeOf(response), 503) << response;

  close(a);
  close(b);
  server.Stop();
}

TEST_F(ObsEndpointTest, PortInUseIsACleanError) {
  HttpServer first;
  first.Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(first.Start(HttpServer::Options{}).ok());

  HttpServer second;
  second.Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  HttpServer::Options options;
  options.port = first.port();
  const Status status = second.Start(options);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
  EXPECT_FALSE(second.running());
  first.Stop();
}

TEST_F(ObsEndpointTest, NonLoopbackBindAddressIsRejected) {
  HttpServer server;
  HttpServer::Options options;
  options.bind_address = "203.0.113.7";
  const Status status = server.Start(options);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// /statusz payload shape (socket-free)

TEST_F(ObsEndpointTest, StatuszJsonCarriesFitProgressFields) {
  auto& progress = GlobalFitProgress();
  progress.fit_active.store(true, std::memory_order_relaxed);
  progress.iteration.store(42, std::memory_order_relaxed);
  progress.max_iterations.store(100, std::memory_order_relaxed);
  progress.objective.store(1.5, std::memory_order_relaxed);
  progress.checkpoint_generation.store(3, std::memory_order_relaxed);

  const std::string json = StatuszJson();
  EXPECT_TRUE(JsonTrue(json, "fit_active")) << json;
  EXPECT_EQ(JsonInt(json, "iteration"), 42) << json;
  EXPECT_EQ(JsonInt(json, "max_iterations"), 100) << json;
  EXPECT_EQ(JsonInt(json, "checkpoint_generation"), 3) << json;
  EXPECT_TRUE(Contains(json, "\"objective\":1.5")) << json;
  // No smfl.fit.iter samples recorded -> no ETA estimate.
  EXPECT_TRUE(Contains(json, "\"eta_seconds\":null")) << json;
  EXPECT_TRUE(Contains(json, "\"uptime_seconds\":")) << json;
}

}  // namespace
}  // namespace smfl::obs
