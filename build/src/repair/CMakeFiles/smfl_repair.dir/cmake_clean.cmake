file(REMOVE_RECURSE
  "CMakeFiles/smfl_repair.dir/baseline_repairers.cc.o"
  "CMakeFiles/smfl_repair.dir/baseline_repairers.cc.o.d"
  "CMakeFiles/smfl_repair.dir/detector.cc.o"
  "CMakeFiles/smfl_repair.dir/detector.cc.o.d"
  "CMakeFiles/smfl_repair.dir/mf_repairers.cc.o"
  "CMakeFiles/smfl_repair.dir/mf_repairers.cc.o.d"
  "CMakeFiles/smfl_repair.dir/registry.cc.o"
  "CMakeFiles/smfl_repair.dir/registry.cc.o.d"
  "libsmfl_repair.a"
  "libsmfl_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
