#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/la/eigen.h"
#include "src/la/ops.h"
#include "src/la/sparse.h"
#include "src/spatial/graph.h"

namespace smfl::la {
namespace {

Matrix RandomSymmetric(Index n, uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      a(i, j) = a(j, i) = rng.Normal();
    }
  }
  return a;
}

// ---------------------------------------------------------------- eigen

TEST(EigenTest, DiagonalMatrix) {
  Matrix a = Matrix::Diagonal(Vector{3.0, -1.0, 2.0});
  auto eigen = SymmetricEigen(a);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], -1.0, 1e-10);
  EXPECT_NEAR(eigen->values[1], 2.0, 1e-10);
  EXPECT_NEAR(eigen->values[2], 3.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  Matrix a{{2, 1}, {1, 2}};
  auto eigen = SymmetricEigen(a);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 1.0, 1e-10);
  EXPECT_NEAR(eigen->values[1], 3.0, 1e-10);
}

class EigenSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenSizeTest, ReconstructsAndOrthonormal) {
  const Index n = GetParam();
  Matrix a = RandomSymmetric(n, 100 + n);
  auto eigen = SymmetricEigen(a);
  ASSERT_TRUE(eigen.ok());
  // V diag(w) Vᵀ = A.
  Matrix vd = eigen->vectors;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) vd(i, j) *= eigen->values[j];
  }
  Matrix reconstructed = MatMulABt(vd, eigen->vectors);
  EXPECT_LT(MaxAbsDiff(a, reconstructed), 1e-8);
  // VᵀV = I.
  Matrix vtv = MatMulAtB(eigen->vectors, eigen->vectors);
  EXPECT_LT(MaxAbsDiff(vtv, Matrix::Identity(n)), 1e-9);
  // Ascending order.
  for (Index i = 1; i < n; ++i) {
    EXPECT_LE(eigen->values[i - 1], eigen->values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizeTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50));

TEST(EigenTest, TraceEqualsEigenvalueSum) {
  Matrix a = RandomSymmetric(8, 7);
  auto eigen = SymmetricEigen(a);
  ASSERT_TRUE(eigen.ok());
  double sum = 0.0;
  for (Index i = 0; i < 8; ++i) sum += eigen->values[i];
  EXPECT_NEAR(sum, Trace(a), 1e-9);
}

TEST(EigenTest, RejectsBadInput) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
  EXPECT_FALSE(SymmetricEigen(Matrix()).ok());
  Matrix asym{{1, 2}, {3, 4}};
  EXPECT_FALSE(SymmetricEigen(asym).ok());
  Matrix nan(2, 2, 0.0);
  nan(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(SymmetricEigen(nan).ok());
}

TEST(EigenTest, GraphLaplacianSpectrum) {
  // A Laplacian is PSD with smallest eigenvalue 0 (eigenvector = constant),
  // and the multiplicity of 0 equals the number of connected components.
  // Two far-apart lines of evenly spaced points: each line is internally
  // connected under symmetric p-NN (adjacent points are mutual neighbors),
  // and the two lines never connect -> exactly two components.
  Matrix points(30, 2);
  for (Index i = 0; i < 30; ++i) {
    const double offset = i < 15 ? 0.0 : 100.0;
    points(i, 0) = offset + 0.1 * static_cast<double>(i % 15);
    points(i, 1) = offset;
  }
  auto graph = spatial::NeighborGraph::Build(points, 3);
  ASSERT_TRUE(graph.ok());
  auto eigen = SymmetricEigen(graph->DenseL());
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 0.0, 1e-9);
  EXPECT_NEAR(eigen->values[1], 0.0, 1e-9);  // second zero: two components
  EXPECT_GT(eigen->values[2], 1e-6);         // but not a third
  for (Index i = 0; i < 30; ++i) EXPECT_GE(eigen->values[i], -1e-9);
}

// ---------------------------------------------------------------- sparse

TEST(SparseTest, FromTripletsAndToDense) {
  auto m = SparseMatrix::FromTriplets(
      2, 3, {{0, 1, 5.0}, {1, 2, -2.0}, {0, 1, 1.0}});  // duplicate summed
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->NumNonZeros(), 2);
  Matrix dense = m->ToDense();
  EXPECT_DOUBLE_EQ(dense(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(dense(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(dense(0, 0), 0.0);
}

TEST(SparseTest, DuplicateSummationIsOrderIndependentBitwise) {
  // Floating-point addition is not associative: 0.1 + 0.2 + 0.3 and
  // 0.3 + 0.2 + 0.1 differ in the last bit. FromTriplets must therefore
  // fix the summation order (ascending value-bit-pattern within each
  // duplicate group) so the stored sum is bitwise identical no matter how
  // the triplets arrive.
  const std::vector<Triplet> canonical = {
      {0, 0, 0.1}, {0, 0, 0.2}, {0, 0, 0.3},
      {1, 1, -0.7}, {1, 1, 1e-3}, {1, 1, 0.7},
      {0, 1, 4.0},
  };
  auto reference = SparseMatrix::FromTriplets(2, 2, canonical);
  ASSERT_TRUE(reference.ok());
  const Matrix ref_dense = reference->ToDense();

  // A few hand-picked permutations plus seeded shuffles.
  std::vector<std::vector<Triplet>> permutations;
  permutations.push_back({{1, 1, 0.7}, {0, 0, 0.3}, {0, 1, 4.0},
                          {0, 0, 0.1}, {1, 1, -0.7}, {1, 1, 1e-3},
                          {0, 0, 0.2}});
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    std::vector<Triplet> shuffled = canonical;
    for (size_t i = shuffled.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(
          rng.Uniform(0.0, static_cast<double>(i)));
      std::swap(shuffled[i - 1], shuffled[j < i ? j : i - 1]);
    }
    permutations.push_back(std::move(shuffled));
  }
  for (size_t p = 0; p < permutations.size(); ++p) {
    auto m = SparseMatrix::FromTriplets(2, 2, permutations[p]);
    ASSERT_TRUE(m.ok()) << "permutation " << p;
    const Matrix dense = m->ToDense();
    for (Index i = 0; i < 2; ++i) {
      for (Index j = 0; j < 2; ++j) {
        // Bitwise, not approximate: EXPECT_EQ on doubles.
        EXPECT_EQ(dense(i, j), ref_dense(i, j))
            << "permutation " << p << " at (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(SparseTest, RejectsOutOfRange) {
  EXPECT_FALSE(SparseMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}).ok());
  EXPECT_FALSE(SparseMatrix::FromTriplets(2, 2, {{0, -1, 1.0}}).ok());
}

TEST(SparseTest, FromDenseDropsSmall) {
  Matrix dense{{1.0, 1e-15}, {0.0, -3.0}};
  SparseMatrix sparse = SparseMatrix::FromDense(dense, 1e-12);
  EXPECT_EQ(sparse.NumNonZeros(), 2);
  EXPECT_LT(MaxAbsDiff(sparse.ToDense(),
                       Matrix{{1.0, 0.0}, {0.0, -3.0}}),
            1e-15);
}

TEST(SparseTest, MultiplyMatchesDense) {
  Rng rng(11);
  Matrix dense(20, 15);
  for (Index i = 0; i < dense.size(); ++i) {
    if (rng.Bernoulli(0.2)) dense.data()[i] = rng.Normal();
  }
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  Vector x(15);
  for (Index i = 0; i < 15; ++i) x[i] = rng.Normal();
  Vector expected = dense * x;
  Vector actual = sparse.Multiply(x);
  for (Index i = 0; i < 20; ++i) EXPECT_NEAR(actual[i], expected[i], 1e-12);
}

TEST(SparseTest, MultiplyDenseMatchesDense) {
  Rng rng(13);
  Matrix dense(12, 9);
  for (Index i = 0; i < dense.size(); ++i) {
    if (rng.Bernoulli(0.3)) dense.data()[i] = rng.Normal();
  }
  Matrix b(9, 4);
  for (Index i = 0; i < b.size(); ++i) b.data()[i] = rng.Normal();
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  EXPECT_LT(MaxAbsDiff(sparse.MultiplyDense(b), dense * b), 1e-12);
}

TEST(SparseTest, QuadraticFormMatchesDense) {
  Rng rng(17);
  Matrix dense = RandomSymmetric(10, 19);
  SparseMatrix sparse = SparseMatrix::FromDense(dense);
  Vector x(10);
  for (Index i = 0; i < 10; ++i) x[i] = rng.Normal();
  const double expected = Dot(x, dense * x);
  EXPECT_NEAR(sparse.QuadraticForm(x), expected, 1e-10);
}

TEST(SparseTest, RowAccessors) {
  auto m = SparseMatrix::FromTriplets(3, 3, {{1, 0, 2.0}, {1, 2, 3.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->RowIndices(0).size(), 0u);
  auto idx = m->RowIndices(1);
  auto val = m->RowValues(1);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 2);
  EXPECT_DOUBLE_EQ(val[0], 2.0);
  EXPECT_DOUBLE_EQ(val[1], 3.0);
}

TEST(SparseTest, GraphExportsMatchDense) {
  Rng rng(23);
  Matrix points(40, 2);
  for (Index i = 0; i < points.size(); ++i) {
    points.data()[i] = rng.Uniform();
  }
  auto graph = spatial::NeighborGraph::Build(points, 3);
  ASSERT_TRUE(graph.ok());
  EXPECT_LT(MaxAbsDiff(graph->SparseD().ToDense(), graph->DenseD()), 1e-15);
  EXPECT_LT(MaxAbsDiff(graph->SparseLaplacian().ToDense(), graph->DenseL()),
            1e-15);
  // Laplacian quadratic form agrees across all three implementations.
  Vector x(40);
  for (Index i = 0; i < 40; ++i) x[i] = rng.Normal();
  Matrix xm(40, 1);
  for (Index i = 0; i < 40; ++i) xm(i, 0) = x[i];
  EXPECT_NEAR(graph->SparseLaplacian().QuadraticForm(x),
              graph->LaplacianQuadraticForm(xm), 1e-9);
}

}  // namespace
}  // namespace smfl::la
