// Graceful degradation for imputation: a fallback chain of registered
// imputers (default SMFL → SMF → NMF → Mean) tried in order until one
// serves. Which tier served — and why each earlier tier failed — is
// recorded in a mf::DegradationReport, so a serving path can return a
// best-effort result instead of failing closed while still telling the
// caller the answer is degraded.

#ifndef SMFL_IMPUTE_FALLBACK_H_
#define SMFL_IMPUTE_FALLBACK_H_

#include <string>
#include <vector>

#include "src/impute/imputer.h"
#include "src/mf/factorization.h"

namespace smfl::impute {

// The default chain: the paper's method first, then progressively simpler
// models down to the always-available column mean.
std::vector<std::string> DefaultFallbackChain();

class FallbackImputer : public Imputer {
 public:
  // `chain` holds registry names (see MakeImputer), tried front to back.
  explicit FallbackImputer(std::vector<std::string> chain =
                               DefaultFallbackChain());

  // "Fallback(SMFL->SMF->NMF->Mean)".
  std::string name() const override;

  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

  // Same, and fills `*report` (may be null) with the tier that served and
  // the per-tier errors. Fails only when every tier fails; the returned
  // status is the last tier's, with the earlier failures as context.
  Result<Matrix> ImputeWithReport(const Matrix& x, const Mask& observed,
                                  Index spatial_cols,
                                  mf::DegradationReport* report) const;

  const std::vector<std::string>& chain() const { return chain_; }

 private:
  std::vector<std::string> chain_;
};

}  // namespace smfl::impute

#endif  // SMFL_IMPUTE_FALLBACK_H_
