// CSR-style layout of the observed set Ω (the paper's R_Ω support).
//
// The fit loop only ever touches observed entries, yet a Mask answers
// "which columns of row i are observed?" by rescanning its byte row. An
// ObservedIndex answers it with a precomputed span: row_ptr + col_idx in
// the same compressed-sparse-row shape as la::SparseMatrix (sparse.h),
// built once per fit in O(n·m) and reused by every reconstruction,
// objective evaluation, and fold-in grouping afterwards. The index itself
// costs O(|Ω|) memory ((rows+1 + |Ω|) Index slots, plus |Ω| doubles when
// the observed values are packed alongside), independent of how sparse the
// byte grid it came from was.
//
// The index is a pure re-layout: the masked kernels consuming it
// (MaskedReconstruct / MaskedSquaredError overloads below) visit the same
// columns in the same ascending order as their Mask-scanning twins, so the
// two paths are bitwise identical — tests/observed_index_test.cc proves it
// across observed rates, thread counts, and SIMD tiers.

#ifndef SMFL_DATA_OBSERVED_INDEX_H_
#define SMFL_DATA_OBSERVED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/data/mask.h"

namespace smfl::data {

class ObservedIndex {
 public:
  ObservedIndex() = default;

  // Builds the index from a mask's set entries (column order ascending
  // within each row, rows ascending — the mask's row-major order).
  static ObservedIndex FromMask(const Mask& mask);

  // Same, additionally packing the observed entries of `values` (same
  // shape as the mask) contiguously, so sparse consumers read |Ω| doubles
  // sequentially instead of gathering from the dense n×m buffer.
  static ObservedIndex FromMask(const Mask& mask, const Matrix& values);

  // Builds from a raw row-major byte grid (nonzero = observed), the layout
  // Mask::RowData exposes and fold-in's usable-cell vector shares.
  static ObservedIndex FromRowMajorBytes(Index rows, Index cols,
                                         const uint8_t* bytes);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  // |Ω|: total observed entries.
  Index Count() const { return static_cast<Index>(col_idx_.size()); }

  // Observed entries in row i.
  Index RowCount(Index i) const {
    SMFL_DCHECK(i >= 0 && i < rows_);
    return row_ptr_[static_cast<size_t>(i) + 1] -
           row_ptr_[static_cast<size_t>(i)];
  }

  // Row i's observed column indices, ascending.
  std::span<const Index> RowCols(Index i) const {
    SMFL_DCHECK(i >= 0 && i < rows_);
    const auto begin = static_cast<size_t>(row_ptr_[static_cast<size_t>(i)]);
    const auto end =
        static_cast<size_t>(row_ptr_[static_cast<size_t>(i) + 1]);
    return {col_idx_.data() + begin, end - begin};
  }

  // Row i's packed observed values (parallel to RowCols); empty when the
  // index was built without values.
  std::span<const double> RowValues(Index i) const {
    SMFL_DCHECK(i >= 0 && i < rows_);
    if (values_.empty()) return {};
    const auto begin = static_cast<size_t>(row_ptr_[static_cast<size_t>(i)]);
    const auto end =
        static_cast<size_t>(row_ptr_[static_cast<size_t>(i) + 1]);
    return {values_.data() + begin, end - begin};
  }

  bool HasValues() const { return !values_.empty(); }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_ptr_;  // size rows_ + 1
  std::vector<Index> col_idx_;  // ascending within each row
  std::vector<double> values_;  // optional; parallel to col_idx_
};

// R_Ω(U V) / ||R_Ω(X) − UV_Ω||_F² consuming the precomputed index instead
// of rescanning mask rows — bitwise identical to the Mask overloads in
// mask.h (same per-row dense/gather crossover, same ascending-j /
// ascending-k orders). Implemented alongside them in mask.cc.
[[nodiscard]] Matrix MaskedReconstruct(const Matrix& u, const Matrix& v,
                                       const ObservedIndex& omega);
[[nodiscard]] double MaskedSquaredError(const Matrix& x,
                                        const ObservedIndex& omega,
                                        const Matrix& uv_masked);

// Escape hatch mirroring SMFL_BENCH_LEGACY_RECONSTRUCT: SMFL_OBSERVED_INDEX
// set to "0"/"off"/"false" makes the fit loops fall back to per-call mask
// scans. Deliberately re-read per call (it is consulted once per fit
// attempt, not per row) so the equivalence tests can toggle it in-process.
[[nodiscard]] bool ObservedIndexEnabled();

}  // namespace smfl::data

#endif  // SMFL_DATA_OBSERVED_INDEX_H_
