// Tests for tools/smfl_lint: one positive and one suppressed fixture per
// rule (R1-R13), plus lexer, parsing-layer (parse.h), include-graph
// (graph.h), baseline/SARIF/--fix plumbing, and suppression-validation
// coverage. Fixtures are written into a temp directory shaped like the
// repo (src/...), so include resolution and per-path rule scoping are
// exercised exactly as in production runs.

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/smfl_lint/graph.h"
#include "tools/smfl_lint/lint.h"
#include "tools/smfl_lint/parse.h"

namespace smfl::lint {
namespace {

namespace fs = std::filesystem;

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("smfl_lint_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()
                     ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    ASSERT_TRUE(out.is_open()) << p;
    out << content;
  }

  LintResult Run() { return Run(LintOptions{}); }

  // The semantic passes are opt-in; tests for them pass options with
  // graph_pass / race_pass / baseline_path set (repo_root is overridden).
  LintResult Run(LintOptions options) {
    options.repo_root = root_.string();
    LintResult result;
    std::string error;
    EXPECT_TRUE(RunLint(options, &result, &error)) << error;
    return result;
  }

  std::string ReadFile(const std::string& rel) {
    std::ifstream in(root_ / rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  static std::vector<std::string> Rules(const std::vector<Diagnostic>& ds) {
    std::vector<std::string> out;
    for (const auto& d : ds) out.push_back(d.rule);
    return out;
  }

  fs::path root_;
};

// --------------------------------------------------------------------------
// Lexer

TEST(LexerTest, FloatLiteralClassification) {
  EXPECT_TRUE(IsFloatLiteral("0.0"));
  EXPECT_TRUE(IsFloatLiteral("1.5e-3"));
  EXPECT_TRUE(IsFloatLiteral("2e6"));
  EXPECT_TRUE(IsFloatLiteral("1.f"));
  EXPECT_TRUE(IsFloatLiteral(".25"));
  EXPECT_FALSE(IsFloatLiteral("0"));
  EXPECT_FALSE(IsFloatLiteral("42"));
  EXPECT_FALSE(IsFloatLiteral("0x1F"));
  EXPECT_FALSE(IsFloatLiteral("100ul"));
}

TEST(LexerTest, CommentsAndStringsAreNotCode) {
  const LexedFile f = Lex("src/a.cc",
                          "// std::thread in a comment\n"
                          "const char* s = \"std::thread\";\n"
                          "/* rand() */ int x = 1;\n");
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "thread");
    EXPECT_NE(t.text, "rand");
  }
}

TEST(LexerTest, SuppressionParsing) {
  const LexedFile f = Lex("src/a.cc",
                          "int a = 1;\n"
                          "// smfl-lint: allow(float-eq) masks are 0/1\n"
                          "int b = 2;  // smfl-lint: allow(nondet,thread) ok\n");
  ASSERT_EQ(f.suppressions.size(), 2u);
  EXPECT_TRUE(f.suppressions[0].own_line);
  EXPECT_EQ(f.suppressions[0].line, 2);
  EXPECT_TRUE(f.suppressions[0].rules.count("float-eq"));
  EXPECT_EQ(f.suppressions[0].reason, "masks are 0/1");
  EXPECT_FALSE(f.suppressions[1].own_line);
  EXPECT_TRUE(f.suppressions[1].rules.count("nondet"));
  EXPECT_TRUE(f.suppressions[1].rules.count("thread"));
}

// --------------------------------------------------------------------------
// R1: thread

TEST_F(LintTest, ThreadPositive) {
  WriteFile("src/core/worker.cc",
            "#include <thread>\n"
            "void Go() { std::thread t([] {}); t.join(); }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "thread");
  EXPECT_EQ(r.violations[0].line, 2);
}

TEST_F(LintTest, ThreadSuppressed) {
  WriteFile("src/core/worker.cc",
            "// smfl-lint: allow(thread) bounded helper, joins immediately\n"
            "void Go() { std::thread t([] {}); t.join(); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "thread");
}

TEST_F(LintTest, ThreadAllowedInParallelLayer) {
  WriteFile("src/common/parallel.cc",
            "void Pool() { std::thread t([] {}); t.join(); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, ThreadFlagsOpenMp) {
  WriteFile("src/la/fast.cc",
            "#pragma omp parallel for\n"
            "void F() {}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "thread");
}

// --------------------------------------------------------------------------
// R2: nondet

TEST_F(LintTest, NondetPositive) {
  WriteFile("src/data/sampler.cc",
            "#include <random>\n"
            "int Seed() { std::random_device rd; return (int)rd(); }\n"
            "int Now() { return (int)time(nullptr); }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 2u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "nondet");
  EXPECT_EQ(r.violations[1].rule, "nondet");
}

TEST_F(LintTest, NondetSuppressed) {
  WriteFile("src/data/sampler.cc",
            "int Now() {\n"
            "  // smfl-lint: allow(nondet) cache-busting token, not numerics\n"
            "  return (int)time(nullptr);\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "nondet");
}

TEST_F(LintTest, NondetAllowedInRng) {
  WriteFile("src/common/rng.cc",
            "unsigned Fallback() { std::random_device rd; return rd(); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, NondetIgnoresMemberTime) {
  WriteFile("src/data/sampler.cc",
            "double F(const Stopwatch& sw) { return sw.time(); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R3: unordered-iter

TEST_F(LintTest, UnorderedIterPositive) {
  WriteFile("src/core/agg.cc",
            "#include <unordered_map>\n"
            "double Sum(const std::unordered_map<int, double>& cells) {\n"
            "  double s = 0.0;\n"
            "  for (const auto& kv : cells) s += kv.second;\n"
            "  return s;\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "unordered-iter");
  EXPECT_EQ(r.violations[0].line, 4);
}

TEST_F(LintTest, UnorderedIterSuppressed) {
  WriteFile("src/core/agg.cc",
            "#include <unordered_map>\n"
            "int Count(const std::unordered_map<int, double>& cells) {\n"
            "  int n = 0;\n"
            "  // smfl-lint: allow(unordered-iter) counting is order-free\n"
            "  for (const auto& kv : cells) n += kv.second > 0;\n"
            "  return n;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "unordered-iter");
}

TEST_F(LintTest, UnorderedLookupIsFine) {
  WriteFile("src/core/agg.cc",
            "#include <unordered_map>\n"
            "double Get(const std::unordered_map<int, double>& m, int k) {\n"
            "  auto it = m.find(k);\n"
            "  return it == m.end() ? 0.0 : it->second;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, UnorderedIterOnlyInNumericDirs) {
  // Same iteration in src/data is outside the rule's scope.
  WriteFile("src/data/agg.cc",
            "#include <unordered_map>\n"
            "double Sum(const std::unordered_map<int, double>& cells) {\n"
            "  double s = 0.0;\n"
            "  for (const auto& kv : cells) s += kv.second;\n"
            "  return s;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, UnorderedIterSeesThroughAlias) {
  WriteFile("src/mf/groups.cc",
            "#include <unordered_map>\n"
            "using GroupMap = std::unordered_map<int, double>;\n"
            "double Sum(const GroupMap& g) {\n"
            "  double s = 0.0;\n"
            "  for (const auto& kv : g) s += kv.second;\n"
            "  return s;\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "unordered-iter");
}

// --------------------------------------------------------------------------
// R4: discard-status

TEST_F(LintTest, DiscardStatusPositive) {
  WriteFile("src/core/io.h",
            "#ifndef SMFL_CORE_IO_H_\n"
            "#define SMFL_CORE_IO_H_\n"
            "Status SaveThing(const char* path);\n"
            "#endif\n");
  WriteFile("src/core/use.cc",
            "#include \"src/core/io.h\"\n"
            "void Checkpoint() {\n"
            "  SaveThing(\"/tmp/x\");\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "discard-status");
  EXPECT_EQ(r.violations[0].rel_path, "src/core/use.cc");
  EXPECT_EQ(r.violations[0].line, 3);
}

TEST_F(LintTest, DiscardStatusVoidCast) {
  WriteFile("src/core/io.h",
            "#ifndef SMFL_CORE_IO_H_\n"
            "#define SMFL_CORE_IO_H_\n"
            "Status SaveThing(const char* path);\n"
            "#endif\n");
  WriteFile("src/core/use.cc",
            "#include \"src/core/io.h\"\n"
            "void A() { (void)SaveThing(\"/tmp/x\"); }\n"
            "void B() { static_cast<void>(SaveThing(\"/tmp/y\")); }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 2u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "discard-status");
  EXPECT_EQ(r.violations[1].rule, "discard-status");
}

TEST_F(LintTest, DiscardStatusSuppressed) {
  WriteFile("src/core/io.h",
            "#ifndef SMFL_CORE_IO_H_\n"
            "#define SMFL_CORE_IO_H_\n"
            "Status SaveThing(const char* path);\n"
            "#endif\n");
  WriteFile("src/core/use.cc",
            "#include \"src/core/io.h\"\n"
            "void Shutdown() {\n"
            "  // smfl-lint: allow(discard-status) best-effort final flush\n"
            "  SaveThing(\"/tmp/x\");\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "discard-status");
}

TEST_F(LintTest, DiscardStatusConsumedIsFine) {
  WriteFile("src/core/io.h",
            "#ifndef SMFL_CORE_IO_H_\n"
            "#define SMFL_CORE_IO_H_\n"
            "Status SaveThing(const char* path);\n"
            "Result<int> LoadThing(const char* path);\n"
            "#endif\n");
  WriteFile("src/core/use.cc",
            "#include \"src/core/io.h\"\n"
            "Status Checkpoint() {\n"
            "  Status st = SaveThing(\"/tmp/x\");\n"
            "  if (!st.ok()) return st;\n"
            "  RETURN_NOT_OK(SaveThing(\"/tmp/y\"));\n"
            "  auto loaded = cond ? LoadThing(\"/a\") : LoadThing(\"/b\");\n"
            "  return loaded.status();\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R5: float-eq

TEST_F(LintTest, FloatEqPositive) {
  WriteFile("src/la/norm.cc",
            "bool IsZero(double x) { return x == 0.0; }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "float-eq");
}

TEST_F(LintTest, FloatEqSuppressed) {
  WriteFile("src/la/norm.cc",
            "bool IsZero(double x) {\n"
            "  // smfl-lint: allow(float-eq) exact-zero guard for division\n"
            "  return x == 0.0;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "float-eq");
}

TEST_F(LintTest, FloatEqSkipsTestsAndIntegers) {
  WriteFile("tests/norm_test.cc",
            "bool T() { return 1.0 == Norm(); }\n");
  WriteFile("src/la/count.cc",
            "bool Empty(int n) { return n == 0; }\n");
  LintOptions options;
  options.repo_root = root_.string();
  options.roots = {"src", "tests"};
  LintResult r;
  std::string error;
  ASSERT_TRUE(RunLint(options, &r, &error)) << error;
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R6: raw-log

TEST_F(LintTest, RawLogPositive) {
  WriteFile("src/exp/report.cc",
            "#include <iostream>\n"
            "void Warn() { std::cerr << \"bad\\n\"; }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "raw-log");
  EXPECT_EQ(r.violations[0].line, 2);
}

TEST_F(LintTest, RawLogSuppressed) {
  WriteFile("src/exp/report.cc",
            "#include <iostream>\n"
            "void Warn() {\n"
            "  // smfl-lint: allow(raw-log) crash path; logger may be gone\n"
            "  std::cerr << \"bad\\n\";\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-log");
}

TEST_F(LintTest, RawLogAllowedInLoggingImpl) {
  WriteFile("src/common/logging.cc",
            "#include <iostream>\n"
            "void Emit(const char* m) { std::cerr << m; }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R7: raw-file-write

TEST_F(LintTest, RawFileWritePositive) {
  WriteFile("src/exp/report.cc",
            "#include <fstream>\n"
            "#include <cstdio>\n"
            "void Dump() { std::ofstream out(\"/tmp/r.csv\"); }\n"
            "void Legacy() { FILE* f = fopen(\"/tmp/r.bin\", \"wb\"); }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 2u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "raw-file-write");
  EXPECT_EQ(r.violations[0].line, 3);
  EXPECT_EQ(r.violations[1].rule, "raw-file-write");
  EXPECT_EQ(r.violations[1].line, 4);
}

TEST_F(LintTest, RawFileWriteSuppressed) {
  WriteFile("src/exp/report.cc",
            "#include <fstream>\n"
            "void Dump() {\n"
            "  // smfl-lint: allow(raw-file-write) append-only debug stream\n"
            "  std::ofstream out(\"/tmp/r.csv\");\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-file-write");
}

TEST_F(LintTest, RawFileWriteAllowedInDurableIoAndTests) {
  WriteFile("src/common/durable_io.cc",
            "#include <cstdio>\n"
            "bool W(const char* p) { return fopen(p, \"wb\") != nullptr; }\n");
  WriteFile("tests/io_test.cc",
            "#include <fstream>\n"
            "void Fixture() { std::ofstream out(\"/tmp/fixture\"); }\n");
  LintOptions options;
  options.repo_root = root_.string();
  options.roots = {"src", "tests"};
  LintResult r;
  std::string error;
  ASSERT_TRUE(RunLint(options, &r, &error)) << error;
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, RawFileWriteIgnoresReadsAndMembers) {
  WriteFile("src/exp/report.cc",
            "#include <fstream>\n"
            "void Load() { std::ifstream in(\"/tmp/r.csv\"); }\n"
            "void Member(Vfs& vfs) { vfs.fopen(\"/tmp/x\"); }\n"
            "void Other() { posix::fopen(\"/tmp/x\"); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R8: raw-simd

TEST_F(LintTest, RawSimdPositive) {
  WriteFile("src/core/fast_path.cc",
            "#include <immintrin.h>\n"
            "void F(double* y, const double* x) {\n"
            "  __m256d a = _mm256_loadu_pd(x);\n"
            "  _mm256_storeu_pd(y, a);\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 4u) << ResultToJson(r);
  for (const auto& d : r.violations) EXPECT_EQ(d.rule, "raw-simd");
  EXPECT_EQ(r.violations[0].line, 1);  // the #include itself
}

TEST_F(LintTest, RawSimdNeonPositive) {
  WriteFile("src/core/fast_path.cc",
            "#include <arm_neon.h>\n"
            "void F(double* y, const double* x) {\n"
            "  float64x2_t a = vld1q_f64(x);\n"
            "  vst1q_f64(y, vaddq_f64(a, vdupq_n_f64(1.0)));\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_GE(r.violations.size(), 5u) << ResultToJson(r);
  for (const auto& d : r.violations) EXPECT_EQ(d.rule, "raw-simd");
}

TEST_F(LintTest, RawSimdSuppressed) {
  WriteFile("src/core/fast_path.cc",
            "void F(double* y) {\n"
            "  // smfl-lint: allow(raw-simd) one-off prefetch, no arithmetic\n"
            "  _mm_prefetch(y, 1);\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-simd");
}

TEST_F(LintTest, RawSimdAllowedInDispatchLayer) {
  WriteFile("src/la/simd.cc",
            "#include <immintrin.h>\n"
            "void F(double* y, const double* x) {\n"
            "  _mm256_storeu_pd(y, _mm256_loadu_pd(x));\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, RawSimdIgnoresOrdinaryIdentifiers) {
  WriteFile("src/core/plain.cc",
            "int vmax_f64_count = 0;\n"      // no 'q'
            "void visit(int v) { (void)v; }\n"
            "double mm_ratio = 1.5;\n");     // no leading underscore
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R9: const-ref

TEST_F(LintTest, ConstRefPositive) {
  WriteFile("src/core/api.cc",
            "double Sum(Matrix m);\n"
            "double Mix(const Matrix& a, Table t, int n);\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 2u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "const-ref");
  EXPECT_EQ(r.violations[0].line, 1);
  EXPECT_EQ(r.violations[1].rule, "const-ref");
  EXPECT_EQ(r.violations[1].line, 2);
}

TEST_F(LintTest, ConstRefSuppressed) {
  WriteFile("src/core/api.cc",
            "// smfl-lint: allow(const-ref) sink parameter, moved from\n"
            "void Consume(Matrix m);\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "const-ref");
}

TEST_F(LintTest, ConstRefIgnoresReferencesDeclarationsAndMacros) {
  WriteFile("src/core/api.cc",
            "double Ok(const Matrix& a, Mask* b);\n"
            "void Local() { Matrix c(3, 4); Matrix u = c; }\n"
            "Status Harvest() {\n"
            "  ASSIGN_OR_RETURN(Matrix z, LoadMatrix());\n"
            "  SMFL_CHECK_EQ(z.rows(), 3);\n"
            "  return Status::OK();\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, ConstRefExemptInTests) {
  WriteFile("tests/helper_test.cc", "double Sum(Matrix m);\n");
  LintOptions options;
  options.repo_root = root_.string();
  options.roots = {"tests"};
  LintResult r;
  std::string error;
  ASSERT_TRUE(RunLint(options, &r, &error)) << error;
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R10: mask-scan

TEST_F(LintTest, MaskScanPositive) {
  WriteFile("src/core/loop.cc",
            "void Iterate(const Mask& observed) {\n"
            "  const uint8_t* row = observed.RowData(0);\n"
            "  Index c = observed.RowCount(2);\n"
            "  auto pts = observed.Entries();\n"
            "  (void)row; (void)c; (void)pts;\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 3u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "mask-scan");
  EXPECT_EQ(r.violations[0].line, 2);
  EXPECT_EQ(r.violations[1].line, 3);
  EXPECT_EQ(r.violations[2].line, 4);
}

TEST_F(LintTest, MaskScanSuppressed) {
  WriteFile("src/mf/probe.cc",
            "void Hash(const Mask& m) {\n"
            "  // smfl-lint: allow(mask-scan) fingerprint hashes once per fit\n"
            "  const uint8_t* row = m.RowData(0);\n"
            "  (void)row;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "mask-scan");
}

TEST_F(LintTest, MaskScanIgnoresBareIdentsAndOtherDirs) {
  // Bare identifiers and declarations are not member-call scan sites.
  WriteFile("src/core/decl.cc",
            "Index RowCount(const Mask& m);\n"
            "void F() { Index Entries = 3; (void)Entries; }\n");
  // mask.cc (src/data) is the sanctioned home for raw row scans.
  WriteFile("src/data/mask.cc",
            "void Scan(const Mask& m) { (void)m.RowData(0); }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R11: raw-socket

TEST_F(LintTest, RawSocketPositive) {
  WriteFile("src/core/push.cc",
            "void Push() {\n"
            "  int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
            "  bind(fd, nullptr, 0);\n"
            "  listen(fd, 8);\n"
            "  poll(nullptr, 0, 100);\n"
            "}\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 4u) << ResultToJson(r);
  for (const Diagnostic& d : r.violations) {
    EXPECT_EQ(d.rule, "raw-socket");
  }
  EXPECT_EQ(r.violations[0].line, 2);
}

TEST_F(LintTest, RawSocketSuppressed) {
  WriteFile("src/core/push.cc",
            "void Push() {\n"
            "  // smfl-lint: allow(raw-socket) UDP beacon, fire-and-forget\n"
            "  int fd = socket(AF_INET, SOCK_DGRAM, 0);\n"
            "  (void)fd;\n"
            "}\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "raw-socket");
}

TEST_F(LintTest, RawSocketIgnoresQualifiedMemberAndServerHome) {
  // std::bind and member .bind(...) are not the socket syscall; the obs
  // HTTP server is the sanctioned home and tests may open sockets freely.
  WriteFile("src/core/cb.cc",
            "void F() {\n"
            "  auto g = std::bind(h, 1);\n"
            "  server.listen(80);\n"
            "  q->poll();\n"
            "  int accept = 0; (void)accept; (void)g;\n"
            "}\n");
  WriteFile("src/obs/http_server.cc",
            "void Start() { int fd = socket(AF_INET, SOCK_STREAM, 0);"
            " (void)fd; }\n");
  WriteFile("tests/net_test.cc",
            "void T() { int fd = socket(AF_INET, SOCK_STREAM, 0);"
            " (void)fd; }\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R12: header-hygiene

TEST_F(LintTest, HeaderHygieneMissingGuard) {
  WriteFile("src/obs/widget.h", "struct Widget { int x; };\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "header-hygiene");
  EXPECT_NE(r.violations[0].message.find("SMFL_OBS_WIDGET_H_"),
            std::string::npos)
      << r.violations[0].message;
}

TEST_F(LintTest, HeaderHygieneWrongGuardNamesConvention) {
  WriteFile("src/obs/widget.h",
            "#ifndef WIDGET_H\n"
            "#define WIDGET_H\n"
            "struct Widget { int x; };\n"
            "#endif\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "header-hygiene");
  EXPECT_NE(r.violations[0].message.find("WIDGET_H"), std::string::npos);
  EXPECT_NE(r.violations[0].message.find("SMFL_OBS_WIDGET_H_"),
            std::string::npos);
}

TEST_F(LintTest, HeaderHygieneCompliantAndNonHeadersPass) {
  WriteFile("src/obs/widget.h",
            "#ifndef SMFL_OBS_WIDGET_H_\n"
            "#define SMFL_OBS_WIDGET_H_\n"
            "// A comment before the guard is fine.\n"
            "struct Widget { int x; };\n"
            "#endif  // SMFL_OBS_WIDGET_H_\n");
  WriteFile("src/obs/widget.cc", "int unguarded_translation_unit = 1;\n");
  WriteFile("tests/fixture.h", "struct NoGuardNeeded {};\n");
  const LintResult r = Run();
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// Suppression hygiene

TEST_F(LintTest, SuppressionWithoutReasonIsViolation) {
  WriteFile("src/la/norm.cc",
            "// smfl-lint: allow(float-eq)\n"
            "bool IsZero(double x) { return x == 0.0; }\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "bad-suppression");
}

TEST_F(LintTest, SuppressionWithUnknownRuleIsViolation) {
  WriteFile("src/la/norm.cc",
            "// smfl-lint: allow(no-such-rule) because reasons\n"
            "int x = 1;\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "bad-suppression");
}

TEST_F(LintTest, MalformedDirectiveIsViolation) {
  WriteFile("src/la/norm.cc",
            "// smfl-lint: disable everything\n"
            "int x = 1;\n");
  const LintResult r = Run();
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "bad-suppression");
}

// --------------------------------------------------------------------------
// Output plumbing

TEST_F(LintTest, JsonSummaryContainsFindings) {
  WriteFile("src/la/norm.cc",
            "bool IsZero(double x) { return x == 0.0; }\n");
  const LintResult r = Run();
  const std::string json = ResultToJson(r);
  EXPECT_NE(json.find("\"violation_count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"float-eq\""), std::string::npos) << json;
  EXPECT_NE(json.find("src/la/norm.cc"), std::string::npos) << json;
}

TEST_F(LintTest, FormatDiagnosticIsFileLineRule) {
  const Diagnostic d{"float-eq", "src/la/norm.cc", 7, "msg"};
  EXPECT_EQ(FormatDiagnostic(d), "src/la/norm.cc:7: [float-eq] msg");
}

// --------------------------------------------------------------------------
// Parsing layer (parse.h)

TEST(ParseTest, ParseIncludesSeparatesProjectAndSystem) {
  const LexedFile f = Lex("src/core/x.cc",
                          "#include \"src/la/vec.h\"\n"
                          "#include <vector>\n"
                          "#include \"local.h\"  // trailing comment\n");
  const std::vector<IncludeDirective> incs = ParseIncludes(f);
  ASSERT_EQ(incs.size(), 3u);
  EXPECT_EQ(incs[0].path, "src/la/vec.h");
  EXPECT_FALSE(incs[0].angled);
  EXPECT_EQ(incs[0].line, 1);
  EXPECT_EQ(incs[1].path, "vector");
  EXPECT_TRUE(incs[1].angled);
  EXPECT_EQ(incs[2].path, "local.h");
}

TEST(ParseTest, HarvestDeclaredSymbolsCoversTheHeaderApi) {
  const LexedFile f = Lex(
      "src/la/vec.h",
      "#ifndef SMFL_LA_VEC_H_\n"
      "#define SMFL_LA_VEC_H_\n"
      "#define VEC_MAX_DIM 8\n"
      "namespace smfl::la {\n"
      "struct VecThing { int size_; void Member(); };\n"
      "enum class VecMode { kDense, kSparse };\n"
      "using VecScalar = double;\n"
      "double VecNorm(const VecThing& v);\n"
      "inline constexpr double kVecEps = 1e-12;\n"
      "}  // namespace smfl::la\n"
      "#endif  // SMFL_LA_VEC_H_\n");
  const std::set<std::string> syms = HarvestDeclaredSymbols(f);
  EXPECT_TRUE(syms.count("VecThing"));
  EXPECT_TRUE(syms.count("VecMode"));
  EXPECT_TRUE(syms.count("kDense"));
  EXPECT_TRUE(syms.count("VecScalar"));
  EXPECT_TRUE(syms.count("VecNorm"));
  EXPECT_TRUE(syms.count("kVecEps"));
  EXPECT_TRUE(syms.count("VEC_MAX_DIM"));
  // Include-guard macros and class members are not part of the API.
  EXPECT_FALSE(syms.count("SMFL_LA_VEC_H_"));
  EXPECT_FALSE(syms.count("size_"));
  EXPECT_FALSE(syms.count("Member"));
}

TEST(ParseTest, LambdaCapturesParamsAndBody) {
  const LexedFile f =
      Lex("src/core/x.cc",
          "auto fn = [&, total](Index b, Index e) { return b + e; };\n");
  size_t open = 0;
  while (open < f.tokens.size() && !TokIsPunct(f.tokens[open], "[")) ++open;
  ASSERT_LT(open, f.tokens.size());
  LambdaInfo lam;
  ASSERT_TRUE(ParseLambda(f.tokens, open, &lam));
  EXPECT_TRUE(lam.default_by_ref);
  EXPECT_FALSE(lam.default_by_value);
  EXPECT_TRUE(lam.by_value_names.count("total"));
  ASSERT_EQ(lam.params.size(), 2u);
  EXPECT_EQ(lam.params[0], "b");
  EXPECT_EQ(lam.params[1], "e");
  EXPECT_LT(lam.body_begin, lam.body_end);
}

TEST(ParseTest, SubscriptAndAttributeAreNotLambdas) {
  const LexedFile f = Lex("src/core/x.cc",
                          "int y = arr[i];\n"
                          "[[nodiscard]] int F();\n");
  LambdaInfo lam;
  for (size_t i = 0; i < f.tokens.size(); ++i) {
    if (TokIsPunct(f.tokens[i], "[")) {
      EXPECT_FALSE(ParseLambda(f.tokens, i, &lam)) << "token index " << i;
    }
  }
}

// --------------------------------------------------------------------------
// Include graph (graph.h): module mapping and graph construction

TEST(GraphTest, ModuleOfAndRankFollowTheDeclaredDag) {
  EXPECT_EQ(ModuleOf("src/core/smfl.h"), "core");
  EXPECT_EQ(ModuleOf("src/la/matrix.h"), "la");
  EXPECT_EQ(ModuleOf("tools/smfl_lint/lint.h"), "tools");
  EXPECT_EQ(ModuleOf("src/orphan.h"), "");  // directly under src/
  EXPECT_LT(ModuleRank("common"), ModuleRank("la"));
  EXPECT_LT(ModuleRank("la"), ModuleRank("data"));
  EXPECT_LT(ModuleRank("data"), ModuleRank("spatial"));
  EXPECT_LT(ModuleRank("spatial"), ModuleRank("cluster"));
  EXPECT_LT(ModuleRank("cluster"), ModuleRank("nn"));
  EXPECT_LT(ModuleRank("nn"), ModuleRank("mf"));
  EXPECT_LT(ModuleRank("mf"), ModuleRank("core"));
  EXPECT_LT(ModuleRank("core"), ModuleRank("impute"));
  EXPECT_EQ(ModuleRank("impute"), ModuleRank("repair"));
  EXPECT_LT(ModuleRank("repair"), ModuleRank("obs"));
  EXPECT_LT(ModuleRank("obs"), ModuleRank("cli"));
  EXPECT_EQ(ModuleRank("no-such-module"), -1);
}

TEST_F(LintTest, BuildIncludeGraphResolvesRootAndSiblingIncludes) {
  WriteFile("src/la/vec.h", "struct VecThing {};\n");
  const LexedFile root_rel =
      Lex("src/core/user.cc",
          "#include \"src/la/vec.h\"\n"
          "#include <vector>\n"
          "#include \"src/core/not_on_disk.h\"\n");
  const LexedFile sibling_rel = Lex("src/la/other.cc",
                                    "#include \"vec.h\"\n");
  const IncludeGraph g =
      BuildIncludeGraph({root_rel, sibling_rel}, root_.string());
  ASSERT_EQ(g.edges.at("src/core/user.cc").size(), 1u);
  EXPECT_EQ(g.edges.at("src/core/user.cc")[0].to, "src/la/vec.h");
  EXPECT_EQ(g.edges.at("src/core/user.cc")[0].line, 1);
  ASSERT_EQ(g.edges.at("src/la/other.cc").size(), 1u);
  EXPECT_EQ(g.edges.at("src/la/other.cc")[0].to, "src/la/vec.h");
}

// --------------------------------------------------------------------------
// Graph pass: layering

TEST_F(LintTest, LayeringBackEdgeIsViolation) {
  // la (layer 1) must not include core (layer 7).
  WriteFile("src/core/model.h",
            "#ifndef SMFL_CORE_MODEL_H_\n"
            "#define SMFL_CORE_MODEL_H_\n"
            "namespace smfl::core { struct CoreModel { int trained; }; }\n"
            "#endif  // SMFL_CORE_MODEL_H_\n");
  WriteFile("src/la/vec.h",
            "#ifndef SMFL_LA_VEC_H_\n"
            "#define SMFL_LA_VEC_H_\n"
            "#include \"src/core/model.h\"\n"
            "namespace smfl::la { core::CoreModel MakeModel(); }\n"
            "#endif  // SMFL_LA_VEC_H_\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "layering");
  EXPECT_EQ(r.violations[0].rel_path, "src/la/vec.h");
  EXPECT_EQ(r.violations[0].line, 3);
  EXPECT_NE(r.violations[0].message.find("back-edge"), std::string::npos)
      << r.violations[0].message;
}

TEST_F(LintTest, LayeringSanctionedSameLayerEdgeRepairToImpute) {
  WriteFile("src/impute/mean.h",
            "#ifndef SMFL_IMPUTE_MEAN_H_\n"
            "#define SMFL_IMPUTE_MEAN_H_\n"
            "namespace smfl::impute { struct MeanImputer { int k; }; }\n"
            "#endif  // SMFL_IMPUTE_MEAN_H_\n");
  WriteFile("src/repair/fix.h",
            "#ifndef SMFL_REPAIR_FIX_H_\n"
            "#define SMFL_REPAIR_FIX_H_\n"
            "#include \"src/impute/mean.h\"\n"
            "namespace smfl::repair { impute::MeanImputer MakeStage(); }\n"
            "#endif  // SMFL_REPAIR_FIX_H_\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, LayeringUnsanctionedSameLayerEdgeImputeToRepair) {
  WriteFile("src/repair/fix.h",
            "#ifndef SMFL_REPAIR_FIX_H_\n"
            "#define SMFL_REPAIR_FIX_H_\n"
            "namespace smfl::repair { struct FixStage { int n; }; }\n"
            "#endif  // SMFL_REPAIR_FIX_H_\n");
  WriteFile("src/impute/mean.h",
            "#ifndef SMFL_IMPUTE_MEAN_H_\n"
            "#define SMFL_IMPUTE_MEAN_H_\n"
            "#include \"src/repair/fix.h\"\n"
            "namespace smfl::impute { repair::FixStage MakeStage(); }\n"
            "#endif  // SMFL_IMPUTE_MEAN_H_\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "layering");
  EXPECT_EQ(r.violations[0].rel_path, "src/impute/mean.h");
  EXPECT_NE(r.violations[0].message.find("same-layer"), std::string::npos)
      << r.violations[0].message;
}

TEST_F(LintTest, LayeringSrcMustNotDependOutsideSrc) {
  WriteFile("tools/helper.h", "struct ToolHelper { int x; };\n");
  WriteFile("src/core/use.cc",
            "#include \"tools/helper.h\"\n"
            "namespace smfl::core { ToolHelper MakeHelper(); }\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "layering");
  EXPECT_NE(r.violations[0].message.find("must not depend"),
            std::string::npos)
      << r.violations[0].message;
}

// --------------------------------------------------------------------------
// Graph pass: cycles and .cc includes

TEST_F(LintTest, IncludeCycleIsViolation) {
  // Same module (no layering noise), symbols mutually used (no
  // unused-include noise): the cycle itself is the only finding.
  WriteFile("src/la/a.h",
            "#ifndef SMFL_LA_A_H_\n"
            "#define SMFL_LA_A_H_\n"
            "#include \"src/la/b.h\"\n"
            "namespace smfl::la { struct AThing { BThing* peer; }; }\n"
            "#endif  // SMFL_LA_A_H_\n");
  WriteFile("src/la/b.h",
            "#ifndef SMFL_LA_B_H_\n"
            "#define SMFL_LA_B_H_\n"
            "#include \"src/la/a.h\"\n"
            "namespace smfl::la { struct BThing { AThing* peer; }; }\n"
            "#endif  // SMFL_LA_B_H_\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "include-cycle");
  EXPECT_NE(r.violations[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(r.violations[0].message.find("src/la/a.h"), std::string::npos);
  EXPECT_NE(r.violations[0].message.find("src/la/b.h"), std::string::npos);
}

TEST_F(LintTest, CcIncludeIsViolation) {
  WriteFile("src/core/impl.cc",
            "namespace smfl::core { int ImplValue() { return 3; } }\n");
  WriteFile("src/core/driver.cc",
            "#include \"src/core/impl.cc\"\n"
            "namespace smfl::core { int Driver() { return ImplValue(); } }\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "cc-include");
  EXPECT_EQ(r.violations[0].rel_path, "src/core/driver.cc");
}

// --------------------------------------------------------------------------
// Graph pass: unused-include (IWYU-lite)

TEST_F(LintTest, UnusedIncludePositive) {
  WriteFile("src/la/vec.h",
            "#ifndef SMFL_LA_VEC_H_\n"
            "#define SMFL_LA_VEC_H_\n"
            "namespace smfl::la { struct VecThing { int n; }; }\n"
            "#endif  // SMFL_LA_VEC_H_\n");
  WriteFile("src/core/user.cc",
            "#include \"src/la/vec.h\"\n"
            "namespace smfl::core { int Unrelated() { return 1; } }\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "unused-include");
  EXPECT_EQ(r.violations[0].rel_path, "src/core/user.cc");
  EXPECT_EQ(r.violations[0].line, 1);
}

TEST_F(LintTest, UnusedIncludeSuppressedOnTheIncludeLine) {
  WriteFile("src/la/vec.h",
            "#ifndef SMFL_LA_VEC_H_\n"
            "#define SMFL_LA_VEC_H_\n"
            "namespace smfl::la { struct VecThing { int n; }; }\n"
            "#endif  // SMFL_LA_VEC_H_\n");
  WriteFile("src/core/user.cc",
            "#include \"src/la/vec.h\"  "
            "// smfl-lint: allow(unused-include) kept as an umbrella\n"
            "namespace smfl::core { int Unrelated() { return 1; } }\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "unused-include");
}

TEST_F(LintTest, UsedIncludeAndOwnHeaderAreNotFlagged) {
  WriteFile("src/la/vec.h",
            "#ifndef SMFL_LA_VEC_H_\n"
            "#define SMFL_LA_VEC_H_\n"
            "namespace smfl::la { struct VecThing { int n; }; }\n"
            "#endif  // SMFL_LA_VEC_H_\n");
  // engine.cc includes its own header without touching any symbol from it
  // (common for registration-only TUs) — exempt by the own-header rule.
  WriteFile("src/core/engine.h",
            "#ifndef SMFL_CORE_ENGINE_H_\n"
            "#define SMFL_CORE_ENGINE_H_\n"
            "namespace smfl::core { struct Engine { int x; }; }\n"
            "#endif  // SMFL_CORE_ENGINE_H_\n");
  WriteFile("src/core/engine.cc",
            "#include \"src/core/engine.h\"\n"
            "namespace smfl::core { int RegisterOnly() { return 1; } }\n");
  WriteFile("src/core/user.cc",
            "#include \"src/la/vec.h\"\n"
            "namespace smfl::core { la::VecThing MakeVec(); }\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, GraphPassFillsModuleLevelDot) {
  WriteFile("src/la/vec.h",
            "#ifndef SMFL_LA_VEC_H_\n"
            "#define SMFL_LA_VEC_H_\n"
            "namespace smfl::la { struct VecThing { int n; }; }\n"
            "#endif  // SMFL_LA_VEC_H_\n");
  WriteFile("src/core/user.cc",
            "#include \"src/la/vec.h\"\n"
            "namespace smfl::core { la::VecThing MakeVec(); }\n");
  LintOptions options;
  options.graph_pass = true;
  const LintResult r = Run(options);
  EXPECT_NE(r.dot.find("digraph smfl_modules"), std::string::npos) << r.dot;
  EXPECT_NE(r.dot.find("\"core\" -> \"la\";"), std::string::npos) << r.dot;
  EXPECT_NE(r.dot.find("layer 1"), std::string::npos) << r.dot;   // la
  EXPECT_NE(r.dot.find("layer 7"), std::string::npos) << r.dot;   // core
}

// --------------------------------------------------------------------------
// R13: race (ParallelFor/ParallelReduce body analysis)

TEST_F(LintTest, RaceSharedAccumulatorIsViolation) {
  WriteFile("src/core/accum.cc",
            "namespace smfl::core {\n"
            "double SumAll(const la::Vector& v) {\n"
            "  double sum = 0.0;\n"
            "  parallel::ParallelFor(0, v.size(), 256,\n"
            "      [&](la::Index b, la::Index e) {\n"
            "    for (la::Index i = b; i < e; ++i) sum += v[i];\n"
            "  });\n"
            "  return sum;\n"
            "}\n"
            "}  // namespace smfl::core\n");
  LintOptions options;
  options.race_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "race");
  EXPECT_EQ(r.violations[0].line, 6);
  EXPECT_NE(r.violations[0].message.find("'sum'"), std::string::npos)
      << r.violations[0].message;
}

TEST_F(LintTest, RaceInductionIndexedWriteIsSafe) {
  WriteFile("src/core/map.cc",
            "namespace smfl::core {\n"
            "void Scale(const la::Vector& in, la::Vector& out) {\n"
            "  parallel::ParallelFor(0, in.size(), 256,\n"
            "      [&](la::Index b, la::Index e) {\n"
            "    for (la::Index i = b; i < e; ++i) out[i] = in[i] * 2.0;\n"
            "  });\n"
            "}\n"
            "}  // namespace smfl::core\n");
  LintOptions options;
  options.race_pass = true;
  const LintResult r = Run(options);
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, RaceParallelReduceLocalAccumulatorIsSafe) {
  WriteFile("src/core/reduce.cc",
            "namespace smfl::core {\n"
            "double SumAll(const la::Vector& v) {\n"
            "  return parallel::ParallelReduce(0, v.size(), 256,\n"
            "      [&](la::Index b, la::Index e) {\n"
            "    double acc = 0.0;\n"
            "    for (la::Index i = b; i < e; ++i) acc += v[i];\n"
            "    return acc;\n"
            "  });\n"
            "}\n"
            "}  // namespace smfl::core\n");
  LintOptions options;
  options.race_pass = true;
  const LintResult r = Run(options);
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, RaceSuppressed) {
  WriteFile("src/core/flag.cc",
            "namespace smfl::core {\n"
            "void Mark(la::Index n, la::Index& last) {\n"
            "  parallel::ParallelFor(0, n, 1, [&](la::Index b, la::Index e) {\n"
            "    // smfl-lint: allow(race) single chunk: grain covers n\n"
            "    last = e;\n"
            "  });\n"
            "}\n"
            "}  // namespace smfl::core\n");
  LintOptions options;
  options.race_pass = true;
  const LintResult r = Run(options);
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "race");
}

TEST_F(LintTest, RaceMutatingContainerCallIsViolation) {
  WriteFile("src/core/collect.cc",
            "namespace smfl::core {\n"
            "void Collect(la::Index n, std::vector<la::Index>& results) {\n"
            "  parallel::ParallelFor(0, n, 64,\n"
            "      [&](la::Index b, la::Index e) {\n"
            "    for (la::Index i = b; i < e; ++i) results.push_back(i);\n"
            "  });\n"
            "}\n"
            "}  // namespace smfl::core\n");
  LintOptions options;
  options.race_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "race");
  EXPECT_NE(r.violations[0].message.find("push_back"), std::string::npos)
      << r.violations[0].message;
}

TEST_F(LintTest, RaceRngAdvancementIsViolation) {
  WriteFile("src/core/draw.cc",
            "namespace smfl::core {\n"
            "void Fill(la::Index n, Rng& rng, la::Vector& out) {\n"
            "  parallel::ParallelFor(0, n, 64,\n"
            "      [&](la::Index b, la::Index e) {\n"
            "    for (la::Index i = b; i < e; ++i) out[i] = rng.Uniform();\n"
            "  });\n"
            "}\n"
            "}  // namespace smfl::core\n");
  LintOptions options;
  options.race_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "race");
  EXPECT_NE(r.violations[0].message.find("RNG"), std::string::npos)
      << r.violations[0].message;
}

TEST_F(LintTest, RaceTelemetryOutsideAllowlistIsViolation) {
  WriteFile("src/core/instr.cc",
            "namespace smfl::core {\n"
            "void Count(la::Index n) {\n"
            "  parallel::ParallelFor(0, n, 64,\n"
            "      [&](la::Index b, la::Index e) {\n"
            "    if (telemetry::Enabled()) {\n"
            "      const int64_t t0 = telemetry::NowMicros(); (void)t0;\n"
            "    }\n"
            "    telemetry::CounterAdd(\"core.count\", e - b);\n"
            "  });\n"
            "}\n"
            "}  // namespace smfl::core\n");
  LintOptions options;
  options.race_pass = true;
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "race");
  EXPECT_EQ(r.violations[0].line, 8);
  EXPECT_NE(r.violations[0].message.find("CounterAdd"), std::string::npos)
      << r.violations[0].message;
}

TEST_F(LintTest, RaceAtomicStateIsExempt) {
  WriteFile("src/core/hits.cc",
            "namespace smfl::core {\n"
            "la::Index CountHits(const la::Vector& v) {\n"
            "  std::atomic<la::Index> hits{0};\n"
            "  parallel::ParallelFor(0, v.size(), 64,\n"
            "      [&](la::Index b, la::Index e) {\n"
            "    for (la::Index i = b; i < e; ++i) {\n"
            "      if (v[i] > 0.5) hits += 1;\n"
            "    }\n"
            "  });\n"
            "  return hits.load();\n"
            "}\n"
            "}  // namespace smfl::core\n");
  LintOptions options;
  options.race_pass = true;
  const LintResult r = Run(options);
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

TEST_F(LintTest, RacePassIgnoresTestFilesAndParallelImpl) {
  const std::string body =
      "void F(la::Index n, double& sum) {\n"
      "  parallel::ParallelFor(0, n, 1, [&](la::Index b, la::Index e) {\n"
      "    sum += static_cast<double>(e - b);\n"
      "  });\n"
      "}\n";
  WriteFile("src/common/parallel.cc", body);
  WriteFile("src/core/f_test.cc", body);
  LintOptions options;
  options.race_pass = true;
  const LintResult r = Run(options);
  EXPECT_TRUE(r.violations.empty()) << ResultToJson(r);
}

// --------------------------------------------------------------------------
// R4 regression: Status functions declared in included (unscanned) headers

TEST_F(LintTest, DiscardStatusSeesFunctionsFromIncludedHeaders) {
  // Only use.cc is scanned; the registry must still learn DoThing() from
  // the included header via the include-closure harvest.
  WriteFile("src/core/api.h",
            "#ifndef SMFL_CORE_API_H_\n"
            "#define SMFL_CORE_API_H_\n"
            "namespace smfl::core {\n"
            "Status DoThing();\n"
            "}  // namespace smfl::core\n"
            "#endif  // SMFL_CORE_API_H_\n");
  WriteFile("src/core/use.cc",
            "#include \"src/core/api.h\"\n"
            "namespace smfl::core {\n"
            "void Caller() { DoThing(); }\n"
            "}  // namespace smfl::core\n");
  LintOptions options;
  options.roots = {"src/core/use.cc"};
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);
  EXPECT_EQ(r.violations[0].rule, "discard-status");
  EXPECT_EQ(r.violations[0].rel_path, "src/core/use.cc");
  EXPECT_EQ(r.violations[0].line, 3);
}

// --------------------------------------------------------------------------
// Baseline, SARIF, and --fix plumbing

TEST_F(LintTest, BaselineMovesKnownFindingsOutOfViolations) {
  WriteFile("src/la/norm.cc",
            "bool IsZero(double x) { return x == 0.0; }\n");
  const LintResult before = Run();
  ASSERT_EQ(before.violations.size(), 1u);

  WriteFile("lint-baseline.txt",
            "# accepted findings\n" + BaselineKey(before.violations[0]) +
                "\n");
  LintOptions options;
  options.baseline_path = (root_ / "lint-baseline.txt").string();
  const LintResult after = Run(options);
  EXPECT_TRUE(after.violations.empty()) << ResultToJson(after);
  ASSERT_EQ(after.baselined.size(), 1u);
  EXPECT_EQ(after.baselined[0].rule, "float-eq");
  // Round-trip: the regenerated baseline keeps covering the finding.
  EXPECT_NE(BaselineFromResult(after).find(BaselineKey(after.baselined[0])),
            std::string::npos);
}

TEST_F(LintTest, SarifListsRulesAndResults) {
  WriteFile("src/la/norm.cc",
            "bool IsZero(double x) { return x == 0.0; }\n");
  const LintResult r = Run();
  const std::string sarif = ResultToSarif(r);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"smfl_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"float-eq\"}"), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"float-eq\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/la/norm.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

TEST_F(LintTest, FixRemovesUnusedIncludeAndDryRunDoesNot) {
  WriteFile("src/la/vec.h",
            "#ifndef SMFL_LA_VEC_H_\n"
            "#define SMFL_LA_VEC_H_\n"
            "namespace smfl::la { struct VecThing { int n; }; }\n"
            "#endif  // SMFL_LA_VEC_H_\n");
  WriteFile("src/core/user.cc",
            "#include \"src/la/vec.h\"\n"
            "namespace smfl::core { int Unrelated() { return 1; } }\n");
  LintOptions options;
  options.graph_pass = true;
  options.repo_root = root_.string();
  const LintResult r = Run(options);
  ASSERT_EQ(r.violations.size(), 1u) << ResultToJson(r);

  std::string report;
  std::string error;
  int fixed = 0;
  ASSERT_TRUE(ApplyUnusedIncludeFixes(options, r.violations, /*dry_run=*/true,
                                      &report, &fixed, &error))
      << error;
  EXPECT_EQ(fixed, 1);
  EXPECT_NE(report.find("--- src/core/user.cc:1"), std::string::npos)
      << report;
  EXPECT_NE(ReadFile("src/core/user.cc").find("#include"), std::string::npos)
      << "dry run must not edit the file";

  ASSERT_TRUE(ApplyUnusedIncludeFixes(options, r.violations,
                                      /*dry_run=*/false, &report, &fixed,
                                      &error))
      << error;
  EXPECT_EQ(fixed, 1);
  EXPECT_EQ(ReadFile("src/core/user.cc").find("#include"), std::string::npos);
  // The tree is clean after the fix.
  const LintResult after = Run(options);
  EXPECT_TRUE(after.violations.empty()) << ResultToJson(after);
}

TEST_F(LintTest, FixSkipsStaleFindingLines) {
  WriteFile("src/core/user.cc",
            "int not_an_include = 1;\n");
  const std::vector<Diagnostic> stale = {
      Diagnostic{"unused-include", "src/core/user.cc", 1, "stale"}};
  LintOptions options;
  options.repo_root = root_.string();
  std::string report;
  std::string error;
  int fixed = 0;
  ASSERT_TRUE(ApplyUnusedIncludeFixes(options, stale, /*dry_run=*/false,
                                      &report, &fixed, &error))
      << error;
  EXPECT_EQ(fixed, 0);
  EXPECT_EQ(ReadFile("src/core/user.cc"), "int not_an_include = 1;\n");
}

}  // namespace
}  // namespace smfl::lint
