#include "src/apps/clustering_app.h"

#include <cmath>

#include "src/cluster/hungarian.h"
#include "src/cluster/kmeans.h"
#include "src/cluster/spectral.h"
#include "src/core/smfl.h"
#include "src/data/normalize.h"
#include "src/mf/nmf.h"
#include "src/mf/pca.h"

namespace smfl::apps {

const char* ClusterMethodName(ClusterMethod method) {
  switch (method) {
    case ClusterMethod::kPca:
      return "PCA";
    case ClusterMethod::kNmf:
      return "NMF";
    case ClusterMethod::kSmf:
      return "SMF";
    case ClusterMethod::kSmfl:
      return "SMFL";
    case ClusterMethod::kSpectral:
      return "Spectral";
  }
  return "?";
}

namespace {

// K-means over L2-normalized embedding rows -> labels. Row normalization
// follows the GNMF clustering protocol (Cai et al.): factorization row
// norms track tuple magnitudes, while cluster identity lives in the
// direction of the coefficient vector.
Result<std::vector<Index>> KMeansLabels(const Matrix& embedding, Index k,
                                        uint64_t seed) {
  Matrix normalized = embedding;
  for (Index i = 0; i < normalized.rows(); ++i) {
    auto row = normalized.Row(i);
    double norm = 0.0;
    for (double v : row) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (double& v : row) v /= norm;
    }
  }
  cluster::KMeansOptions km;
  km.k = k;
  km.seed = seed;
  ASSIGN_OR_RETURN(cluster::KMeansResult result,
                   cluster::KMeans(normalized, km));
  return std::move(result.assignments);
}

}  // namespace

Result<std::vector<Index>> ClusterIncomplete(
    ClusterMethod method, const Matrix& x, const Mask& observed,
    Index spatial_cols, const ClusterAppOptions& options) {
  switch (method) {
    case ClusterMethod::kPca: {
      // PCA needs a complete matrix: mean-fill first (standard practice).
      Matrix filled = data::FillWithColumnMeans(x, observed);
      ASSIGN_OR_RETURN(mf::PcaModel pca, mf::FitPca(filled, options.rank));
      return KMeansLabels(pca.Transform(filled), options.num_clusters,
                          options.seed);
    }
    case ClusterMethod::kNmf: {
      mf::NmfOptions nmf;
      nmf.rank = options.rank;
      nmf.seed = options.seed;
      ASSIGN_OR_RETURN(mf::NmfModel model, mf::FitNmf(x, observed, nmf));
      return KMeansLabels(model.u, options.num_clusters, options.seed);
    }
    case ClusterMethod::kSpectral: {
      // Graph over (mean-filled) coordinates only.
      Matrix si = x.Block(0, 0, x.rows(), spatial_cols);
      Mask si_mask(x.rows(), spatial_cols);
      for (Index i = 0; i < x.rows(); ++i) {
        for (Index j = 0; j < spatial_cols; ++j) {
          si_mask.Set(i, j, observed.Contains(i, j));
        }
      }
      Matrix si_filled = data::FillWithColumnMeans(si, si_mask);
      // Spectral clustering needs the graph CONNECTED within each true
      // cluster; with several readings per location (visit bursts), a
      // small p wires each burst only to itself and the graph shatters
      // into hundreds of components. A larger p bridges bursts.
      const Index p = std::min<Index>(8, std::max<Index>(1, x.rows() - 1));
      ASSIGN_OR_RETURN(spatial::NeighborGraph graph,
                       spatial::NeighborGraph::Build(si_filled, p));
      cluster::SpectralOptions spectral;
      spectral.k = options.num_clusters;
      spectral.seed = options.seed;
      ASSIGN_OR_RETURN(cluster::SpectralResult result,
                       cluster::SpectralClustering(graph, spectral));
      return std::move(result.assignments);
    }
    case ClusterMethod::kSmf:
    case ClusterMethod::kSmfl: {
      core::SmflOptions opts;
      opts.rank = options.rank;
      opts.seed = options.seed;
      opts.use_landmarks = method == ClusterMethod::kSmfl;
      ASSIGN_OR_RETURN(core::SmflModel model,
                       core::FitSmfl(x, observed, spatial_cols, opts));
      return KMeansLabels(model.u, options.num_clusters, options.seed);
    }
  }
  return Status::InvalidArgument("ClusterIncomplete: unknown method");
}

Result<double> ClusteringAccuracyOnIncomplete(
    ClusterMethod method, const Matrix& x, const Mask& observed,
    Index spatial_cols, const std::vector<Index>& truth,
    const ClusterAppOptions& options) {
  ASSIGN_OR_RETURN(
      std::vector<Index> pred,
      ClusterIncomplete(method, x, observed, spatial_cols, options));
  return cluster::ClusteringAccuracy(truth, pred);
}

}  // namespace smfl::apps
