#include "src/data/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/strings.h"

namespace smfl::data {

Result<ColumnStats> ComputeColumnStats(const Matrix& x, const Mask& observed,
                                       Index column) {
  if (column < 0 || column >= x.cols()) {
    return Status::OutOfRange("ComputeColumnStats: bad column");
  }
  if (observed.rows() != x.rows() || observed.cols() != x.cols()) {
    return Status::InvalidArgument("ComputeColumnStats: mask shape mismatch");
  }
  std::vector<double> values;
  for (Index i = 0; i < x.rows(); ++i) {
    if (observed.Contains(i, column)) values.push_back(x(i, column));
  }
  if (values.empty()) {
    return Status::InvalidArgument(
        "ComputeColumnStats: column has no observed cells");
  }
  ColumnStats stats;
  stats.observed = static_cast<Index>(values.size());
  stats.min = *std::min_element(values.begin(), values.end());
  stats.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(var / static_cast<double>(values.size()));
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  stats.median = values[mid];
  if (values.size() % 2 == 0) {
    std::nth_element(values.begin(), values.begin() + mid - 1, values.end());
    stats.median = 0.5 * (stats.median + values[mid - 1]);
  }
  return stats;
}

Result<std::vector<ColumnStats>> ComputeAllColumnStats(const Matrix& x,
                                                       const Mask& observed) {
  std::vector<ColumnStats> all;
  all.reserve(static_cast<size_t>(x.cols()));
  for (Index j = 0; j < x.cols(); ++j) {
    ASSIGN_OR_RETURN(ColumnStats stats, ComputeColumnStats(x, observed, j));
    all.push_back(stats);
  }
  return all;
}

Result<std::vector<ColumnStats>> ComputeAllColumnStats(const Matrix& x) {
  return ComputeAllColumnStats(x, Mask::AllSet(x.rows(), x.cols()));
}

Result<double> ColumnCorrelation(const Matrix& x, const Mask& observed,
                                 Index a, Index b) {
  if (a < 0 || a >= x.cols() || b < 0 || b >= x.cols()) {
    return Status::OutOfRange("ColumnCorrelation: bad column");
  }
  double sa = 0, sb = 0;
  Index n = 0;
  for (Index i = 0; i < x.rows(); ++i) {
    if (!observed.Contains(i, a) || !observed.Contains(i, b)) continue;
    sa += x(i, a);
    sb += x(i, b);
    ++n;
  }
  if (n < 2) {
    return Status::InvalidArgument(
        "ColumnCorrelation: fewer than two jointly observed rows");
  }
  const double ma = sa / static_cast<double>(n);
  const double mb = sb / static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (Index i = 0; i < x.rows(); ++i) {
    if (!observed.Contains(i, a) || !observed.Contains(i, b)) continue;
    const double da = x(i, a) - ma, db = x(i, b) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va < 1e-300 || vb < 1e-300) {
    return Status::NumericError("ColumnCorrelation: constant column");
  }
  return cov / std::sqrt(va * vb);
}

std::string FormatStatsTable(const std::vector<std::string>& names,
                             const std::vector<ColumnStats>& stats) {
  std::string out = StrFormat("%-16s %8s %10s %10s %10s %10s %10s\n", "column",
                              "n", "min", "max", "mean", "std", "median");
  for (size_t j = 0; j < stats.size(); ++j) {
    const std::string name =
        j < names.size() ? names[j] : "col" + std::to_string(j);
    const ColumnStats& s = stats[j];
    out += StrFormat("%-16s %8lld %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                     name.c_str(), static_cast<long long>(s.observed), s.min,
                     s.max, s.mean, s.stddev, s.median);
  }
  return out;
}

}  // namespace smfl::data
