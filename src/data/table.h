// Table: a named-column numeric relation with spatial-information columns.
//
// The paper's input (Table I) is a tabular dataset whose first L columns are
// spatial coordinates (latitude, longitude) and whose remaining columns are
// sensor attributes. Table couples the numeric matrix with the schema and L.

#ifndef SMFL_DATA_TABLE_H_
#define SMFL_DATA_TABLE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::data {

using la::Index;
using la::Matrix;

class Table {
 public:
  Table() = default;

  // Takes ownership of the values. `spatial_cols` is the paper's L: the
  // first L columns of `values` are spatial information.
  static Result<Table> Create(
      std::vector<std::string> column_names,
      // smfl-lint: allow(const-ref) sink parameter, moved into the Table
      Matrix values, Index spatial_cols);

  Index NumRows() const { return values_.rows(); }
  Index NumCols() const { return values_.cols(); }
  Index SpatialCols() const { return spatial_cols_; }

  const Matrix& values() const { return values_; }
  Matrix& mutable_values() { return values_; }

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  // Column index by name, or NotFound.
  Result<Index> ColumnIndex(const std::string& name) const;

  // The SI block: first L columns (N x L copy).
  Matrix SpatialInfo() const {
    return values_.Block(0, 0, values_.rows(), spatial_cols_);
  }

  // Copy of the non-spatial block (N x (M-L)).
  Matrix AttributeBlock() const {
    return values_.Block(0, spatial_cols_, values_.rows(),
                         values_.cols() - spatial_cols_);
  }

  // Row subset (preserves schema and L).
  Table SelectRows(const std::vector<Index>& rows) const;

  // First n rows.
  Table Head(Index n) const;

 private:
  std::vector<std::string> column_names_;
  Matrix values_;
  Index spatial_cols_ = 0;
};

}  // namespace smfl::data

#endif  // SMFL_DATA_TABLE_H_
