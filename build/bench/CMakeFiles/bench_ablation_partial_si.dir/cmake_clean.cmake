file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_partial_si.dir/bench_ablation_partial_si.cpp.o"
  "CMakeFiles/bench_ablation_partial_si.dir/bench_ablation_partial_si.cpp.o.d"
  "bench_ablation_partial_si"
  "bench_ablation_partial_si.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_partial_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
