// A small multilayer perceptron with Adam — the substrate for the GAIN and
// CAMF baselines (generator + discriminator networks).
//
// Batch convention: inputs are (batch x features) matrices; a layer computes
// Y = act(X W + 1 bᵀ).

#ifndef SMFL_NN_MLP_H_
#define SMFL_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/nn/activations.h"

namespace smfl::nn {

using la::Vector;

struct LayerSpec {
  Index output_dim = 0;
  Activation activation = Activation::kRelu;
};

struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class Mlp {
 public:
  // Xavier-initialized MLP mapping input_dim to the last layer's output_dim.
  static Result<Mlp> Create(Index input_dim, std::vector<LayerSpec> layers,
                            uint64_t seed);

  Index input_dim() const { return input_dim_; }
  Index output_dim() const;

  // Forward pass; caches per-layer outputs for the next Backward call.
  Matrix Forward(const Matrix& x);

  // Forward without caching (inference).
  Matrix Predict(const Matrix& x) const;

  // Backpropagates dLoss/dOutput from the last Forward call, accumulating
  // parameter gradients. Returns dLoss/dInput.
  Matrix Backward(const Matrix& grad_output);

  // One Adam update from the accumulated gradients, then clears them.
  void Step(const AdamOptions& options);

  // Drops accumulated gradients without applying them.
  void ZeroGradients();

  // Number of trainable parameters.
  Index NumParameters() const;

 private:
  struct Layer {
    Matrix w;   // in x out
    Vector b;   // out
    Activation activation;
    // Cached activations from Forward.
    Matrix input;
    Matrix output;
    // Accumulated gradients.
    Matrix dw;
    Vector db;
    // Adam first/second moments.
    Matrix mw, vw;
    Vector mb, vb;
  };

  Index input_dim_ = 0;
  std::vector<Layer> layers_;
  int64_t step_count_ = 0;
};

// Mean squared error 1/n Σ (pred - target)^2 and its gradient wrt pred.
double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad);

// Masked MSE: error only over entries where mask(i,j) != 0.
double MaskedMseLoss(const Matrix& pred, const Matrix& target,
                     const Matrix& mask, Matrix* grad);

// Binary cross-entropy with probabilities in (0,1); targets in {0,1}
// (or soft labels). Gradient wrt pred.
double BceLoss(const Matrix& pred, const Matrix& target, Matrix* grad);

}  // namespace smfl::nn

#endif  // SMFL_NN_MLP_H_
