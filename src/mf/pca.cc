#include "src/mf/pca.h"

#include "src/la/ops.h"
#include "src/la/svd.h"

namespace smfl::mf {

Matrix PcaModel::Transform(const Matrix& x) const {
  SMFL_CHECK_EQ(x.cols(), mean.size());
  Matrix centered = x;
  for (Index i = 0; i < centered.rows(); ++i) {
    auto row = centered.Row(i);
    for (Index j = 0; j < centered.cols(); ++j) row[j] -= mean[j];
  }
  return la::MatMul(centered, components);
}

Result<PcaModel> FitPca(const Matrix& x, Index k) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("FitPca: empty matrix");
  }
  if (k <= 0) return Status::InvalidArgument("FitPca: k must be positive");
  k = std::min(k, std::min(x.rows(), x.cols()));

  PcaModel model;
  model.mean = la::ColMeans(x);
  Matrix centered = x;
  for (Index i = 0; i < centered.rows(); ++i) {
    auto row = centered.Row(i);
    for (Index j = 0; j < centered.cols(); ++j) row[j] -= model.mean[j];
  }
  ASSIGN_OR_RETURN(la::SvdDecomposition svd, la::Svd(centered));
  la::SvdDecomposition top = la::TruncateSvd(svd, k);
  model.components = std::move(top.v);
  model.singular_values = std::move(top.s);
  return model;
}

}  // namespace smfl::mf
