#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/data/csv.h"
#include "src/data/mask.h"
#include "src/data/normalize.h"
#include "src/data/table.h"

namespace smfl::data {
namespace {

// ---------------------------------------------------------------- Mask

TEST(MaskTest, DefaultUnsetAndAllSet) {
  Mask m(2, 3);
  EXPECT_EQ(m.Count(), 0);
  EXPECT_FALSE(m.Contains(1, 2));
  Mask all = Mask::AllSet(2, 3);
  EXPECT_EQ(all.Count(), 6);
  EXPECT_TRUE(all.Contains(0, 0));
}

TEST(MaskTest, SetAndComplement) {
  Mask m(2, 2);
  m.Set(0, 1);
  m.Set(1, 0);
  EXPECT_EQ(m.Count(), 2);
  Mask c = m.Complement();
  EXPECT_EQ(c.Count(), 2);
  EXPECT_TRUE(c.Contains(0, 0));
  EXPECT_FALSE(c.Contains(0, 1));
  // Complement twice is identity.
  EXPECT_TRUE(c.Complement() == m);
}

TEST(MaskTest, EntriesRowMajor) {
  Mask m(2, 2);
  m.Set(1, 1);
  m.Set(0, 1);
  auto entries = m.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], (Entry{0, 1}));
  EXPECT_EQ(entries[1], (Entry{1, 1}));
}

TEST(MaskTest, RowPredicates) {
  Mask m(3, 2);
  m.Set(0, 0);
  m.Set(0, 1);
  m.Set(2, 0);
  EXPECT_TRUE(m.RowFullySet(0));
  EXPECT_FALSE(m.RowFullySet(1));
  EXPECT_FALSE(m.RowFullySet(2));
  auto rows = m.FullySetRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0);
}

TEST(MaskTest, AndOr) {
  Mask a(1, 3), b(1, 3);
  a.Set(0, 0);
  a.Set(0, 1);
  b.Set(0, 1);
  b.Set(0, 2);
  Mask both = a.And(b);
  EXPECT_EQ(both.Count(), 1);
  EXPECT_TRUE(both.Contains(0, 1));
  Mask either = a.Or(b);
  EXPECT_EQ(either.Count(), 3);
}

TEST(MaskTest, ApplyMaskZeroesUnobserved) {
  Matrix x{{1, 2}, {3, 4}};
  Mask omega(2, 2);
  omega.Set(0, 0);
  omega.Set(1, 1);
  Matrix masked = ApplyMask(x, omega);
  EXPECT_DOUBLE_EQ(masked(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(masked(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(masked(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(masked(1, 1), 4.0);
}

TEST(MaskTest, CombineByMaskImplementsFormula8) {
  Matrix x{{1, 2}, {3, 4}};
  Matrix x_star{{10, 20}, {30, 40}};
  Mask omega(2, 2);
  omega.Set(0, 0);
  Matrix combined = CombineByMask(x, x_star, omega);
  EXPECT_DOUBLE_EQ(combined(0, 0), 1.0);   // observed: from x
  EXPECT_DOUBLE_EQ(combined(0, 1), 20.0);  // unobserved: from x*
  EXPECT_DOUBLE_EQ(combined(1, 1), 40.0);
}

TEST(MaskTest, EdgeShapesZeroByZero) {
  Mask m(0, 0);
  EXPECT_EQ(m.Count(), 0);
  EXPECT_TRUE(m.Entries().empty());
  EXPECT_TRUE(m.FullySetRows().empty());
  EXPECT_TRUE(m.Complement() == m);
  // The masked kernels must survive degenerate shapes, not just never see
  // them: an empty reconstruction of an empty product.
  Matrix u(0, 3), v(3, 0);
  Matrix r = MaskedReconstruct(u, v, m);
  EXPECT_EQ(r.rows(), 0);
  EXPECT_EQ(r.cols(), 0);
  EXPECT_EQ(MaskedSquaredError(Matrix(0, 0), m, r), 0.0);
}

TEST(MaskTest, EdgeShapesZeroColumns) {
  Mask m(4, 0);
  EXPECT_EQ(m.Count(), 0);
  EXPECT_TRUE(m.Entries().empty());
  // Every row is vacuously fully set.
  EXPECT_TRUE(m.RowFullySet(0));
  EXPECT_EQ(m.FullySetRows().size(), 4u);
  Matrix u(4, 2), v(2, 0);
  Matrix r = MaskedReconstruct(u, v, m);
  EXPECT_EQ(r.rows(), 4);
  EXPECT_EQ(r.cols(), 0);
  EXPECT_EQ(MaskedSquaredError(Matrix(4, 0), m, r), 0.0);
}

TEST(MaskTest, EdgeShapesAllUnobservedRows) {
  Mask m(3, 4);  // nothing set
  EXPECT_EQ(m.Count(), 0);
  for (Index i = 0; i < 3; ++i) EXPECT_EQ(m.RowCount(i), 0);
  Matrix u{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix v{{1.0, 0.0, 2.0, 0.0}, {0.0, 1.0, 0.0, 2.0}};
  Matrix r = MaskedReconstruct(u, v, m);
  ASSERT_EQ(r.rows(), 3);
  ASSERT_EQ(r.cols(), 4);
  for (Index i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r.data()[i], 0.0) << "flat index " << i;
  }
  Matrix x{{1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}};
  EXPECT_EQ(MaskedSquaredError(x, m, r), 0.0);
}

// ---------------------------------------------------------------- Table

TEST(TableTest, CreateAndAccess) {
  auto t = Table::Create({"lat", "lon", "speed"}, Matrix{{1, 2, 3}, {4, 5, 6}},
                         2);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2);
  EXPECT_EQ(t->NumCols(), 3);
  EXPECT_EQ(t->SpatialCols(), 2);
  EXPECT_EQ(*t->ColumnIndex("speed"), 2);
  EXPECT_FALSE(t->ColumnIndex("missing").ok());
}

TEST(TableTest, RejectsBadInputs) {
  EXPECT_FALSE(Table::Create({"a"}, Matrix{{1, 2}}, 1).ok());  // name count
  EXPECT_FALSE(Table::Create({"a", "b"}, Matrix{{1, 2}}, 3).ok());  // L > M
  EXPECT_FALSE(Table::Create({"a", "a"}, Matrix{{1, 2}}, 1).ok());  // dup
}

TEST(TableTest, SpatialAndAttributeBlocks) {
  auto t = Table::Create({"lat", "lon", "v"}, Matrix{{1, 2, 3}, {4, 5, 6}}, 2);
  ASSERT_TRUE(t.ok());
  Matrix si = t->SpatialInfo();
  EXPECT_EQ(si.cols(), 2);
  EXPECT_DOUBLE_EQ(si(1, 1), 5.0);
  Matrix attrs = t->AttributeBlock();
  EXPECT_EQ(attrs.cols(), 1);
  EXPECT_DOUBLE_EQ(attrs(0, 0), 3.0);
}

TEST(TableTest, SelectRowsAndHead) {
  auto t = Table::Create({"a", "b"}, Matrix{{1, 2}, {3, 4}, {5, 6}}, 1);
  ASSERT_TRUE(t.ok());
  Table sub = t->SelectRows({2, 0});
  EXPECT_EQ(sub.NumRows(), 2);
  EXPECT_DOUBLE_EQ(sub.values()(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sub.values()(1, 0), 1.0);
  Table head = t->Head(2);
  EXPECT_EQ(head.NumRows(), 2);
  EXPECT_DOUBLE_EQ(head.values()(1, 1), 4.0);
  EXPECT_EQ(t->Head(100).NumRows(), 3);
}

// ---------------------------------------------------------------- CSV

TEST(CsvTest, ParseWithHeaderAndHoles) {
  const std::string content =
      "lat,lon,speed\n"
      "1.0,2.0,3.0\n"
      "4.0,,6.0\n";
  auto csv = ParseCsv(content);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->table.NumRows(), 2);
  EXPECT_EQ(csv->table.NumCols(), 3);
  EXPECT_EQ(csv->table.column_names()[2], "speed");
  EXPECT_TRUE(csv->observed.Contains(0, 1));
  EXPECT_FALSE(csv->observed.Contains(1, 1));
  EXPECT_DOUBLE_EQ(csv->table.values()(1, 2), 6.0);
}

TEST(CsvTest, ParseWithoutHeader) {
  CsvReadOptions options;
  options.has_header = false;
  auto csv = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->table.NumRows(), 2);
  EXPECT_EQ(csv->table.column_names()[0], "col0");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2\n3\n").ok());
}

TEST(CsvTest, RejectsNonNumericCell) {
  auto result = ParseCsv("a,b\n1,hello\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataError);
}

TEST(CsvTest, HandlesCrlf) {
  auto csv = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(csv.ok());
  EXPECT_DOUBLE_EQ(csv->table.values()(0, 1), 2.0);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto result = ReadCsv("/nonexistent/path.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "smfl_csv_test.csv").string();
  auto t = Table::Create({"lat", "lon", "v"},
                         Matrix{{1.5, 2.5, 3.5}, {4.5, 5.5, 6.5}}, 2);
  ASSERT_TRUE(t.ok());
  Mask observed = Mask::AllSet(2, 3);
  observed.Set(1, 2, false);
  ASSERT_TRUE(WriteCsv(path, *t, observed).ok());
  CsvReadOptions options;
  options.spatial_cols = 2;
  auto back = ReadCsv(path, options);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->table.NumRows(), 2);
  EXPECT_DOUBLE_EQ(back->table.values()(0, 0), 1.5);
  EXPECT_FALSE(back->observed.Contains(1, 2));
  EXPECT_TRUE(back->observed.Contains(1, 1));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- normalize

TEST(NormalizeTest, MapsToUnitInterval) {
  Matrix x{{0, 10}, {5, 20}, {10, 30}};
  auto n = MinMaxNormalizer::Fit(x);
  ASSERT_TRUE(n.ok());
  Matrix y = n->Transform(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(y(1, 1), 0.5);
}

TEST(NormalizeTest, InverseRoundTrip) {
  Matrix x{{-3, 100}, {7, 250}, {1, 175}};
  auto n = MinMaxNormalizer::Fit(x);
  ASSERT_TRUE(n.ok());
  Matrix round = n->InverseTransform(n->Transform(x));
  for (Index i = 0; i < x.rows(); ++i) {
    for (Index j = 0; j < x.cols(); ++j) {
      EXPECT_NEAR(round(i, j), x(i, j), 1e-10);
    }
  }
}

TEST(NormalizeTest, MaskAwareFitIgnoresUnobserved) {
  Matrix x{{0, 0}, {10, 999}};
  Mask observed = Mask::AllSet(2, 2);
  observed.Set(1, 1, false);  // the 999 outlier is unobserved
  auto n = MinMaxNormalizer::Fit(x, observed);
  ASSERT_TRUE(n.ok());
  // Column 1 sees only the value 0 -> constant column rule: max = min + 1.
  EXPECT_DOUBLE_EQ(n->ColMin(1), 0.0);
  EXPECT_DOUBLE_EQ(n->ColMax(1), 1.0);
}

TEST(NormalizeTest, ConstantColumnMapsToZero) {
  Matrix x{{5, 1}, {5, 2}};
  auto n = MinMaxNormalizer::Fit(x);
  ASSERT_TRUE(n.ok());
  Matrix y = n->Transform(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(1, 0), 0.0);
  EXPECT_FALSE(y.HasNonFinite());
}

TEST(NormalizeTest, RejectsNonFinite) {
  Matrix x(2, 2, 0.0);
  x(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(MinMaxNormalizer::Fit(x).ok());
}

TEST(NormalizeTest, FillWithColumnMeans) {
  Matrix x{{1, 10}, {3, 0}};
  Mask observed = Mask::AllSet(2, 2);
  observed.Set(1, 1, false);
  Matrix filled = FillWithColumnMeans(x, observed);
  EXPECT_DOUBLE_EQ(filled(1, 1), 10.0);  // mean of the one observed value
  EXPECT_DOUBLE_EQ(filled(0, 0), 1.0);   // observed entries untouched
}

TEST(NormalizeTest, FillFullyUnobservedColumn) {
  Matrix x{{1, 7}, {3, 9}};
  Mask observed = Mask::AllSet(2, 2);
  observed.Set(0, 1, false);
  observed.Set(1, 1, false);
  Matrix filled = FillWithColumnMeans(x, observed);
  EXPECT_DOUBLE_EQ(filled(0, 1), 0.5);  // normalized-midpoint fallback
  EXPECT_DOUBLE_EQ(filled(1, 1), 0.5);
}

}  // namespace
}  // namespace smfl::data
