file(REMOVE_RECURSE
  "CMakeFiles/smfl_mf.dir/nmf.cc.o"
  "CMakeFiles/smfl_mf.dir/nmf.cc.o.d"
  "CMakeFiles/smfl_mf.dir/pca.cc.o"
  "CMakeFiles/smfl_mf.dir/pca.cc.o.d"
  "CMakeFiles/smfl_mf.dir/softimpute.cc.o"
  "CMakeFiles/smfl_mf.dir/softimpute.cc.o.d"
  "CMakeFiles/smfl_mf.dir/svt.cc.o"
  "CMakeFiles/smfl_mf.dir/svt.cc.o.d"
  "libsmfl_mf.a"
  "libsmfl_mf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
