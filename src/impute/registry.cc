#include "src/impute/registry.h"

#include "src/common/strings.h"
#include "src/impute/eracer.h"
#include "src/impute/fallback.h"
#include "src/impute/gan.h"
#include "src/impute/mf_imputers.h"
#include "src/impute/regression.h"
#include "src/impute/simple.h"
#include "src/impute/statistical.h"

namespace smfl::impute {

Result<std::unique_ptr<Imputer>> MakeImputer(const std::string& name) {
  const std::string key = ToLower(name);
  if (key == "mean") return std::unique_ptr<Imputer>(new MeanImputer());
  if (key == "eracer") return std::unique_ptr<Imputer>(new EracerImputer());
  if (key == "knn") return std::unique_ptr<Imputer>(new KnnImputer());
  if (key == "knne") return std::unique_ptr<Imputer>(new KnneImputer());
  if (key == "loess") return std::unique_ptr<Imputer>(new LoessImputer());
  if (key == "iim") return std::unique_ptr<Imputer>(new IimImputer());
  if (key == "mc") return std::unique_ptr<Imputer>(new McImputer());
  if (key == "dlm") return std::unique_ptr<Imputer>(new DlmImputer());
  if (key == "gain") return std::unique_ptr<Imputer>(new GainImputer());
  if (key == "softimpute") {
    return std::unique_ptr<Imputer>(new SoftImputeImputer());
  }
  if (key == "iterative") {
    return std::unique_ptr<Imputer>(new IterativeImputer());
  }
  if (key == "camf") return std::unique_ptr<Imputer>(new CamfImputer());
  if (key == "nmf") return std::unique_ptr<Imputer>(new NmfImputer());
  if (key == "smf") return std::unique_ptr<Imputer>(new SmfImputer());
  if (key == "smfl") return std::unique_ptr<Imputer>(new SmflImputer());
  if (key == "fallback") {
    return std::unique_ptr<Imputer>(new FallbackImputer());
  }
  return Status::NotFound("no imputer named '" + name + "'");
}

std::vector<std::string> RegisteredImputers() {
  return {"kNNE", "LOESS", "IIM",        "MC",        "DLM",
          "GAIN", "SoftImpute", "Iterative", "CAMF",  "NMF",
          "SMF",  "SMFL"};
}

}  // namespace smfl::impute
