#include "src/spatial/metrics.h"

#include <cmath>

#include "src/la/ops.h"

namespace smfl::spatial {

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  return std::sqrt(la::SquaredDistance(a, b));
}

double HaversineKm(double lat1, double lon1, double lat2, double lon2) {
  constexpr double kEarthRadiusKm = 6371.0088;
  constexpr double kDegToRad = M_PI / 180.0;
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dphi = (lat2 - lat1) * kDegToRad;
  const double dlambda = (lon2 - lon1) * kDegToRad;
  const double a = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) *
                       std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

double RowDistance(const Matrix& points, Index i, Index j) {
  return EuclideanDistance(points.Row(i), points.Row(j));
}

namespace {
constexpr double kEarthRadiusKmForChord = 6371.0088;
constexpr double kDegToRadForChord = M_PI / 180.0;
}  // namespace

Matrix EmbedLatLonOnSphere(const Matrix& lat_lon_degrees) {
  SMFL_CHECK_EQ(lat_lon_degrees.cols(), 2);
  Matrix embedded(lat_lon_degrees.rows(), 3);
  for (Index i = 0; i < lat_lon_degrees.rows(); ++i) {
    const double phi = lat_lon_degrees(i, 0) * kDegToRadForChord;
    const double lambda = lat_lon_degrees(i, 1) * kDegToRadForChord;
    embedded(i, 0) = std::cos(phi) * std::cos(lambda);
    embedded(i, 1) = std::cos(phi) * std::sin(lambda);
    embedded(i, 2) = std::sin(phi);
  }
  return embedded;
}

double KmToChord(double km) {
  return 2.0 * std::sin(std::min(km / kEarthRadiusKmForChord, M_PI) / 2.0);
}

double ChordToKm(double chord) {
  const double half = std::min(std::max(chord / 2.0, 0.0), 1.0);
  return 2.0 * kEarthRadiusKmForChord * std::asin(half);
}

}  // namespace smfl::spatial
