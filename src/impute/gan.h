// GAN-based imputers: GAIN [46] and CAMF [42].
//
// GAIN: a generator MLP completes the matrix from [x̃, m] and a
// discriminator MLP guesses which entries were observed from [x̂, hint];
// the generator is trained with the adversarial signal plus an α-weighted
// reconstruction loss on observed entries. Built entirely on src/nn.
//
// CAMF clusters the tuples and trains an adversarial matrix-factorization
// imputer per cluster; we realize it as per-cluster NMF initialization
// followed by per-cluster GAIN-style adversarial refinement, which keeps
// the clustered+adversarial structure of the original. (The original is a
// TensorFlow/GPU system; see DESIGN.md substitution notes.)

#ifndef SMFL_IMPUTE_GAN_H_
#define SMFL_IMPUTE_GAN_H_

#include <cstdint>

#include "src/impute/imputer.h"

namespace smfl::impute {

struct GainOptions {
  Index hidden_dim = 0;     // 0 = same as input width M
  int training_steps = 600;
  Index batch_size = 128;
  double hint_rate = 0.9;
  double alpha = 10.0;      // reconstruction weight in the G loss
  double learning_rate = 1e-3;
  uint64_t seed = 31;
};

class GainImputer : public Imputer {
 public:
  explicit GainImputer(GainOptions options = {}) : options_(options) {}
  std::string name() const override { return "GAIN"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  GainOptions options_;
};

struct CamfOptions {
  Index num_clusters = 5;
  Index nmf_rank = 5;
  int nmf_iterations = 200;
  GainOptions gan;  // per-cluster adversarial refinement
  uint64_t seed = 37;
};

class CamfImputer : public Imputer {
 public:
  explicit CamfImputer(CamfOptions options = {}) : options_(options) {}
  std::string name() const override { return "CAMF"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  CamfOptions options_;
};

}  // namespace smfl::impute

#endif  // SMFL_IMPUTE_GAN_H_
