file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_lambda.dir/bench_fig6_lambda.cpp.o"
  "CMakeFiles/bench_fig6_lambda.dir/bench_fig6_lambda.cpp.o.d"
  "bench_fig6_lambda"
  "bench_fig6_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
