#include "src/la/matrix.h"

#include <cmath>
#include <sstream>

#include "src/la/ops.h"

namespace smfl::la {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<Index>(rows.size());
  cols_ = rows_ > 0 ? static_cast<Index>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<size_t>(rows_ * cols_));
  for (const auto& r : rows) {
    SMFL_CHECK_EQ(static_cast<Index>(r.size()), cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(Index n) {
  Matrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (Index i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::FromRowMajor(Index rows, Index cols,
                            std::vector<double> data) {
  SMFL_CHECK_EQ(static_cast<Index>(data.size()), rows * cols);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Vector Matrix::Col(Index j) const {
  SMFL_CHECK(j >= 0 && j < cols_);
  Vector v(rows_);
  for (Index i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

void Matrix::SetCol(Index j, const Vector& v) {
  SMFL_CHECK(j >= 0 && j < cols_);
  SMFL_CHECK_EQ(v.size(), rows_);
  for (Index i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

void Matrix::SetRow(Index i, const Vector& v) {
  SMFL_CHECK(i >= 0 && i < rows_);
  SMFL_CHECK_EQ(v.size(), cols_);
  for (Index j = 0; j < cols_; ++j) (*this)(i, j) = v[j];
}

Matrix Matrix::Block(Index r0, Index c0, Index nr, Index nc) const {
  SMFL_CHECK(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0);
  SMFL_CHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix b(nr, nc);
  for (Index i = 0; i < nr; ++i) {
    for (Index j = 0; j < nc; ++j) b(i, j) = (*this)(r0 + i, c0 + j);
  }
  return b;
}

void Matrix::SetBlock(Index r0, Index c0, const Matrix& b) {
  SMFL_CHECK(r0 >= 0 && c0 >= 0);
  SMFL_CHECK(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_);
  for (Index i = 0; i < b.rows(); ++i) {
    for (Index j = 0; j < b.cols(); ++j) (*this)(r0 + i, c0 + j) = b(i, j);
  }
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SMFL_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SMFL_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

bool Matrix::HasNonFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << "[" << rows_ << " x " << cols_ << "]\n";
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = 0; j < cols_; ++j) {
      os << (*this)(i, j) << (j + 1 < cols_ ? " " : "");
    }
    os << "\n";
  }
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

Matrix operator*(const Matrix& a, const Matrix& b) { return MatMul(a, b); }

Vector operator*(const Matrix& a, const Vector& x) {
  SMFL_CHECK_EQ(a.cols(), x.size());
  Vector y(a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    auto row = a.Row(i);
    for (Index j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

}  // namespace smfl::la
