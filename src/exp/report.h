// Fixed-width table and CSV printers for the bench binaries, so every
// regenerated table/figure prints in the same layout the paper reports.

#ifndef SMFL_EXP_REPORT_H_
#define SMFL_EXP_REPORT_H_

#include <string>
#include <vector>

namespace smfl::exp {

class ReportTable {
 public:
  // `columns` includes the leading row-label column.
  explicit ReportTable(std::vector<std::string> columns);

  // Starts a row with its label; fill it with AddCell / AddNumber.
  void BeginRow(const std::string& label);
  void AddCell(const std::string& value);
  void AddNumber(double value, int precision = 3);

  // Renders as an aligned text table.
  std::string ToText() const;

  // Renders as CSV (for downstream plotting).
  std::string ToCsv() const;

  // Renders as a GitHub-flavored markdown table (for EXPERIMENTS.md).
  std::string ToMarkdown() const;

  // Prints the title, the text table, and a trailing blank line to stdout.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smfl::exp

#endif  // SMFL_EXP_REPORT_H_
