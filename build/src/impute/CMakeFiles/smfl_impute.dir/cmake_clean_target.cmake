file(REMOVE_RECURSE
  "libsmfl_impute.a"
)
