#include "src/impute/regression.h"

#include <algorithm>
#include <cmath>

#include "src/data/normalize.h"
#include "src/impute/neighbor_util.h"
#include "src/la/qr.h"

namespace smfl::impute {

namespace {

using la::Vector;

Status ValidateShape(const Matrix& x, const Mask& observed) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("Impute: empty matrix");
  }
  if (observed.rows() != x.rows() || observed.cols() != x.cols()) {
    return Status::InvalidArgument("Impute: mask shape mismatch");
  }
  return Status::OK();
}

// Weighted ridge regression of y on [1, features]: solves
// (Fᵀ diag(w) F + ridge I) beta = Fᵀ diag(w) y and predicts at `query`.
// Returns false on numeric failure.
bool WeightedLinearPredict(const Matrix& x, const std::vector<ScoredRow>& nn,
                           const std::vector<double>& weights,
                           const std::vector<Index>& feature_cols,
                           Index target_col, Index query_row, double ridge,
                           double* out) {
  const Index rows = static_cast<Index>(nn.size());
  const Index dims = static_cast<Index>(feature_cols.size()) + 1;
  Matrix f(rows, dims);
  Vector y(rows);
  for (Index r = 0; r < rows; ++r) {
    const double w = std::sqrt(weights[static_cast<size_t>(r)]);
    f(r, 0) = w;  // intercept
    for (size_t c = 0; c < feature_cols.size(); ++c) {
      f(r, static_cast<Index>(c) + 1) = w * x(nn[static_cast<size_t>(r)].row,
                                              feature_cols[c]);
    }
    y[r] = w * x(nn[static_cast<size_t>(r)].row, target_col);
  }
  auto beta = la::RidgeSolve(f, y, ridge);
  if (!beta.ok()) return false;
  double pred = (*beta)[0];
  for (size_t c = 0; c < feature_cols.size(); ++c) {
    pred += (*beta)[static_cast<Index>(c) + 1] * x(query_row, feature_cols[c]);
  }
  if (!std::isfinite(pred)) return false;
  *out = pred;
  return true;
}

}  // namespace

Result<Matrix> LoessImputer::Impute(const Matrix& x, const Mask& observed,
                                    Index /*spatial_cols*/) const {
  RETURN_NOT_OK(ValidateShape(x, observed));
  Matrix out = data::FillWithColumnMeans(x, observed);
  // Classical LOESS imputation fits on fully complete donor tuples.
  const std::vector<Index> donors = observed.FullySetRows();
  for (Index i = 0; i < x.rows(); ++i) {
    if (observed.RowFullySet(i)) continue;
    const std::vector<Index> obs_cols = ObservedColumns(observed, i);
    if (obs_cols.empty()) continue;
    for (Index j = 0; j < x.cols(); ++j) {
      if (observed.Contains(i, j)) continue;
      std::vector<ScoredRow> nn =
          NearestAmong(x, i, donors, obs_cols, options_.k);
      if (nn.empty()) continue;
      // Tricube weights over normalized distances.
      const double dmax = std::max(nn.back().distance, 1e-12);
      std::vector<double> w(nn.size());
      for (size_t r = 0; r < nn.size(); ++r) {
        const double u = std::min(nn[r].distance / dmax, 1.0);
        const double t = 1.0 - u * u * u;
        w[r] = std::max(t * t * t, 1e-6);
      }
      double v;
      if (WeightedLinearPredict(x, nn, w, obs_cols, j, i, options_.ridge,
                                &v)) {
        out(i, j) = v;
      }
    }
  }
  return out;
}

Result<Matrix> IimImputer::Impute(const Matrix& x, const Mask& observed,
                                  Index /*spatial_cols*/) const {
  RETURN_NOT_OK(ValidateShape(x, observed));
  Matrix out = data::FillWithColumnMeans(x, observed);
  // IIM learns each tuple's individual model from complete neighbors.
  const std::vector<Index> donors = observed.FullySetRows();
  std::vector<double> unit_weights;
  for (Index i = 0; i < x.rows(); ++i) {
    if (observed.RowFullySet(i)) continue;
    const std::vector<Index> obs_cols = ObservedColumns(observed, i);
    if (obs_cols.empty()) continue;
    for (Index j = 0; j < x.cols(); ++j) {
      if (observed.Contains(i, j)) continue;
      std::vector<ScoredRow> nn =
          NearestAmong(x, i, donors, obs_cols, options_.k);
      if (nn.empty()) continue;
      unit_weights.assign(nn.size(), 1.0);
      double v;
      if (WeightedLinearPredict(x, nn, unit_weights, obs_cols, j, i,
                                options_.ridge, &v)) {
        out(i, j) = v;
      }
    }
  }
  return out;
}

Result<Matrix> IterativeImputer::Impute(const Matrix& x, const Mask& observed,
                                        Index /*spatial_cols*/) const {
  RETURN_NOT_OK(ValidateShape(x, observed));
  const Index n = x.rows(), m = x.cols();
  Matrix out = data::FillWithColumnMeans(x, observed);
  if (m < 2) return out;

  // Columns that actually have holes, and the rows observed per column.
  std::vector<Index> incomplete_cols;
  for (Index j = 0; j < m; ++j) {
    for (Index i = 0; i < n; ++i) {
      if (!observed.Contains(i, j)) {
        incomplete_cols.push_back(j);
        break;
      }
    }
  }
  if (incomplete_cols.empty()) return out;

  for (int round = 0; round < options_.rounds; ++round) {
    double max_change = 0.0;
    for (Index j : incomplete_cols) {
      // Train on rows where column j is observed; features = other columns
      // of the current working matrix (already hole-filled).
      std::vector<Index> train_rows;
      for (Index i = 0; i < n; ++i) {
        if (observed.Contains(i, j)) train_rows.push_back(i);
      }
      if (train_rows.size() < 2) continue;
      const Index rows = static_cast<Index>(train_rows.size());
      Matrix f(rows, m);  // intercept + (m-1) other columns
      Vector y(rows);
      for (Index r = 0; r < rows; ++r) {
        const Index i = train_rows[static_cast<size_t>(r)];
        f(r, 0) = 1.0;
        Index c = 1;
        for (Index jj = 0; jj < m; ++jj) {
          if (jj == j) continue;
          f(r, c++) = out(i, jj);
        }
        y[r] = out(i, j);
      }
      auto beta = la::RidgeSolve(f, y, options_.ridge);
      if (!beta.ok()) continue;
      for (Index i = 0; i < n; ++i) {
        if (observed.Contains(i, j)) continue;
        double pred = (*beta)[0];
        Index c = 1;
        for (Index jj = 0; jj < m; ++jj) {
          if (jj == j) continue;
          pred += (*beta)[c++] * out(i, jj);
        }
        if (!std::isfinite(pred)) continue;
        max_change = std::max(max_change, std::fabs(pred - out(i, j)));
        out(i, j) = pred;
      }
    }
    if (max_change < options_.tolerance) break;
  }
  return out;
}

}  // namespace smfl::impute
