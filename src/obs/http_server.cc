#include "src/obs/http_server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/common/strings.h"
#include "src/common/telemetry.h"

// This file is the single sanctioned home for raw socket syscalls (the
// smfl-lint `raw-socket` rule scopes them here), so everything below the
// Options layer — socket/bind/listen/accept4/poll and the fd lifecycle —
// is deliberately local and unabstracted.

namespace smfl::obs {

namespace {

// The server's own instruments, resolved once. Registered directly on the
// registry (not through the SMFL_* macros) so scrape traffic is visible in
// /metrics even when file telemetry is disabled: these record on the obs
// thread only and never feed numeric code.
struct ServerMetrics {
  telemetry::Counter& requests;
  telemetry::Counter& bad_requests;
  telemetry::Counter& rejected_connections;
  telemetry::Gauge& active_connections;
  telemetry::Histogram& scrape_us;
};

ServerMetrics& Metrics() {
  auto& registry = telemetry::MetricsRegistry::Global();
  static ServerMetrics* metrics = new ServerMetrics{
      registry.GetCounter("obs.http.requests"),
      registry.GetCounter("obs.http.bad_requests"),
      registry.GetCounter("obs.http.rejected_connections"),
      registry.GetGauge("obs.http.active_connections"),
      registry.GetHistogram("obs.http.scrape_us"),
  };
  return *metrics;
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  return StrFormat(
             "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
             "Connection: close\r\n\r\n",
             response.status_code, ReasonPhrase(response.status_code),
             response.content_type.c_str(), response.body.size()) +
         response.body;
}

std::string ErrorResponse(int code) {
  HttpResponse response;
  response.status_code = code;
  response.body = StrFormat("%d %s\n", code, ReasonPhrase(code));
  return SerializeResponse(response);
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start(const Options& options) {
  if (running_) {
    return Status::FailedPrecondition("HttpServer: already running");
  }
  options_ = options;
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("HttpServer: socket(): %s",
                                     std::strerror(errno)));
  }
  // Without SO_REUSEADDR a restart within TIME_WAIT of the previous
  // process's connections would fail to bind.
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (options_.bind_address.empty() || options_.bind_address == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (options_.bind_address == "127.0.0.1" ||
             options_.bind_address == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        "HttpServer: bind_address must be 127.0.0.1, localhost, or 0.0.0.0");
  }
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    // EADDRINUSE is the operationally interesting case: --metrics-port
    // colliding with another process must be a clean error, not a crash.
    Status st = Status::IoError(
        StrFormat("HttpServer: cannot bind port %d on %s: %s", options_.port,
                  options_.bind_address.c_str(), std::strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (listen(listen_fd_, 64) != 0) {
    Status st = Status::IoError(
        StrFormat("HttpServer: listen(): %s", std::strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // Read the port back: with Options::port == 0 the kernel picked one.
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    Status st = Status::IoError(
        StrFormat("HttpServer: getsockname(): %s", std::strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  // Self-pipe: Stop() writes one byte to wake the poll loop immediately.
  if (pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    Status st = Status::IoError(
        StrFormat("HttpServer: pipe2(): %s", std::strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // The one obs server thread, outside the deterministic parallel pool.
  // smfl-lint: allow(thread) observational-only thread; reads telemetry
  thread_ = std::thread([this] { Loop(); });
  running_ = true;
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_) return;
  // One byte on the self-pipe is the shutdown message.
  const char byte = 'q';
  ssize_t ignored = write(wake_pipe_[1], &byte, 1);
  (void)ignored;
  thread_.join();
  close(listen_fd_);
  close(wake_pipe_[0]);
  close(wake_pipe_[1]);
  listen_fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
  running_ = false;
}

void HttpServer::AcceptPending(std::vector<Connection>* conns,
                               int64_t now_us) {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN: drained; other errors: retry next poll
    Connection conn;
    conn.fd = fd;
    conn.opened_us = now_us;
    if (conns->size() >= static_cast<size_t>(options_.max_connections)) {
      // Over the cap: answer 503 and close, so the client sees an explicit
      // rejection instead of a hung socket.
      Metrics().rejected_connections.Increment();
      conn.out = ErrorResponse(503);
      conn.responding = true;
    }
    conns->push_back(std::move(conn));
  }
}

void HttpServer::BuildResponse(Connection* conn) {
  const int64_t handle_start_us = telemetry::NowMicros();
  Metrics().requests.Increment();
  // Request line: METHOD SP TARGET SP HTTP/1.x
  const size_t line_end = conn->in.find("\r\n");
  const std::string line = conn->in.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    Metrics().bad_requests.Increment();
    conn->out = ErrorResponse(400);
    conn->responding = true;
    return;
  }
  HttpRequest request;
  request.method = line.substr(0, sp1);
  request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = request.path.find('?');
  if (query != std::string::npos) request.path.resize(query);
  if (request.method != "GET") {
    conn->out = ErrorResponse(405);
    conn->responding = true;
    return;
  }
  const auto it = handlers_.find(request.path);
  if (it == handlers_.end()) {
    conn->out = ErrorResponse(404);
    conn->responding = true;
    return;
  }
  conn->out = SerializeResponse(it->second(request));
  conn->responding = true;
  Metrics().scrape_us.Record(
      static_cast<double>(telemetry::NowMicros() - handle_start_us));
}

void HttpServer::Loop() {
  std::vector<Connection> conns;
  std::vector<pollfd> pfds;
  bool stopping = false;
  while (!stopping) {
    pfds.clear();
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const Connection& conn : conns) {
      pfds.push_back(pollfd{
          conn.fd, static_cast<short>(conn.responding ? POLLOUT : POLLIN),
          0});
    }
    // The 250 ms cap bounds the idle-connection sweep latency.
    const int n = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 250);
    if (n < 0 && errno != EINTR) break;
    const int64_t now_us = telemetry::NowMicros();
    if ((pfds[1].revents & POLLIN) != 0) {
      stopping = true;
      break;
    }
    if ((pfds[0].revents & POLLIN) != 0) AcceptPending(&conns, now_us);
    const int64_t idle_cutoff_us =
        now_us - static_cast<int64_t>(options_.idle_timeout_ms) * 1000;
    std::vector<Connection> live;
    live.reserve(conns.size());
    for (size_t i = 0; i < conns.size(); ++i) {
      Connection& conn = conns[i];
      // New connections accepted this round have no pollfd yet.
      const short revents =
          i + 2 < pfds.size() && pfds[i + 2].fd == conn.fd
              ? pfds[i + 2].revents
              : 0;
      bool close_conn = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                        (revents & POLLIN) == 0 && !conn.responding;
      if (!close_conn && !conn.responding && (revents & POLLIN) != 0) {
        char buf[4096];
        for (;;) {
          const ssize_t got = recv(conn.fd, buf, sizeof(buf), 0);
          if (got > 0) {
            conn.in.append(buf, static_cast<size_t>(got));
            if (conn.in.size() >
                static_cast<size_t>(options_.max_request_bytes)) {
              Metrics().bad_requests.Increment();
              conn.out = ErrorResponse(431);
              conn.responding = true;
              break;
            }
            if (conn.in.find("\r\n\r\n") != std::string::npos) {
              BuildResponse(&conn);
              break;
            }
            continue;
          }
          if (got == 0) close_conn = true;  // peer went away
          break;  // 0 or EAGAIN/error: wait for the next poll round
        }
      }
      if (!close_conn && conn.responding) {
        const size_t remaining = conn.out.size() - conn.out_written;
        if (remaining > 0) {
          // MSG_NOSIGNAL: a peer that closed early must surface as EPIPE,
          // not kill the process with SIGPIPE.
          const ssize_t sent =
              send(conn.fd, conn.out.data() + conn.out_written, remaining,
                   MSG_NOSIGNAL);
          if (sent > 0) {
            conn.out_written += static_cast<size_t>(sent);
          } else if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR) {
            close_conn = true;
          }
        }
        if (conn.out_written == conn.out.size()) close_conn = true;  // done
      }
      if (!close_conn && conn.opened_us < idle_cutoff_us) close_conn = true;
      if (close_conn) {
        close(conn.fd);
      } else {
        live.push_back(std::move(conn));
      }
    }
    conns = std::move(live);
    Metrics().active_connections.Set(static_cast<double>(conns.size()));
  }
  for (const Connection& conn : conns) close(conn.fd);
  Metrics().active_connections.Set(0.0);
}

}  // namespace smfl::obs
