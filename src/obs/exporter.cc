#include "src/obs/exporter.h"

#include <cstdint>

#include "src/common/fit_progress.h"
#include "src/common/strings.h"
#include "src/common/telemetry.h"
#include "src/obs/prometheus.h"

namespace smfl::obs {

std::string StatuszJson() {
  const FitProgress& p = GlobalFitProgress();
  const int64_t iteration = p.iteration.load(std::memory_order_relaxed);
  const int64_t max_iterations =
      p.max_iterations.load(std::memory_order_relaxed);
  // ETA: remaining iterations at the median observed per-iteration cost.
  // The smfl.fit.iter histogram records only while telemetry collection is
  // on (--metrics-port turns it on unless SMFL_TELEMETRY=0 pins it off);
  // with no samples the field is null.
  const telemetry::Histogram::Snapshot iter_snapshot =
      telemetry::MetricsRegistry::Global()
          .GetHistogram("smfl.fit.iter")
          .GetSnapshot();
  std::string eta = "null";
  if (iter_snapshot.count > 0 && max_iterations > iteration) {
    eta = StrFormat("%.3f", static_cast<double>(max_iterations - iteration) *
                                iter_snapshot.p50 / 1e6);
  }
  return StrFormat(
      "{\"fit_active\":%s,\"restart\":%lld,\"attempt\":%lld,"
      "\"iteration\":%lld,\"max_iterations\":%lld,"
      "\"objective\":%.17g,\"convergence_delta\":%.10g,"
      "\"checkpoint_generation\":%lld,"
      "\"foldin_rows\":%lld,\"foldin_batches\":%lld,"
      "\"updates\":%lld,\"eta_seconds\":%s,\"uptime_seconds\":%.3f}\n",
      p.fit_active.load(std::memory_order_relaxed) ? "true" : "false",
      static_cast<long long>(p.restart.load(std::memory_order_relaxed)),
      static_cast<long long>(p.attempt.load(std::memory_order_relaxed)),
      static_cast<long long>(iteration),
      static_cast<long long>(max_iterations),
      p.objective.load(std::memory_order_relaxed),
      p.convergence_delta.load(std::memory_order_relaxed),
      static_cast<long long>(
          p.checkpoint_generation.load(std::memory_order_relaxed)),
      static_cast<long long>(p.foldin_rows.load(std::memory_order_relaxed)),
      static_cast<long long>(
          p.foldin_batches.load(std::memory_order_relaxed)),
      static_cast<long long>(p.updates.load(std::memory_order_relaxed)),
      eta.c_str(), static_cast<double>(telemetry::NowMicros()) / 1e6);
}

MetricsExporter::~MetricsExporter() { Stop(); }

Status MetricsExporter::Start(const Options& options) {
  if (running_) {
    return Status::FailedPrecondition("MetricsExporter: already running");
  }
  server_.Handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = PrometheusContentType();
    response.body = RenderGlobalPrometheusText();
    return response;
  });
  server_.Handle("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  server_.Handle("/statusz", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = StatuszJson();
    return response;
  });
  HttpServer::Options server_options;
  server_options.port = options.port;
  server_options.bind_address = options.bind_address;
  RETURN_NOT_OK(server_.Start(server_options));
  sampler_.Start(options.sample_interval_ms);
  running_ = true;
  return Status::OK();
}

void MetricsExporter::Stop() {
  if (!running_) return;
  sampler_.Stop();
  server_.Stop();
  running_ = false;
}

}  // namespace smfl::obs
