# Empty dependencies file for mf_test.
# This may be replaced when dependencies are built.
