file(REMOVE_RECURSE
  "libsmfl_nn.a"
)
