#include "src/data/mask.h"

#include <vector>

#include "src/common/parallel.h"
#include "src/common/telemetry.h"
#include "src/data/observed_index.h"
#include "src/la/simd.h"

namespace smfl::data {

Index Mask::Count() const {
  Index n = 0;
  for (uint8_t b : bits_) n += b;
  return n;
}

Index Mask::RowCount(Index i) const {
  const uint8_t* row = RowData(i);
  Index n = 0;
  for (Index j = 0; j < cols_; ++j) n += row[j];
  return n;
}

Mask Mask::Complement() const {
  Mask out(rows_, cols_);
  for (size_t i = 0; i < bits_.size(); ++i) out.bits_[i] = bits_[i] ? 0 : 1;
  return out;
}

std::vector<Entry> Mask::Entries() const {
  std::vector<Entry> out;
  out.reserve(static_cast<size_t>(Count()));
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = 0; j < cols_; ++j) {
      if (Contains(i, j)) out.push_back({i, j});
    }
  }
  return out;
}

bool Mask::RowFullySet(Index i) const {
  for (Index j = 0; j < cols_; ++j) {
    if (!Contains(i, j)) return false;
  }
  return true;
}

std::vector<Index> Mask::FullySetRows() const {
  std::vector<Index> out;
  for (Index i = 0; i < rows_; ++i) {
    if (RowFullySet(i)) out.push_back(i);
  }
  return out;
}

Mask Mask::And(const Mask& other) const {
  SMFL_CHECK(SameShape(other));
  Mask out(rows_, cols_);
  for (size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = (bits_[i] && other.bits_[i]) ? 1 : 0;
  }
  return out;
}

Mask Mask::Or(const Mask& other) const {
  SMFL_CHECK(SameShape(other));
  Mask out(rows_, cols_);
  for (size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = (bits_[i] || other.bits_[i]) ? 1 : 0;
  }
  return out;
}

Matrix ApplyMask(const Matrix& x, const Mask& mask) {
  SMFL_CHECK_EQ(x.rows(), mask.rows());
  SMFL_CHECK_EQ(x.cols(), mask.cols());
  Matrix out(x.rows(), x.cols());
  for (Index i = 0; i < x.rows(); ++i) {
    for (Index j = 0; j < x.cols(); ++j) {
      if (mask.Contains(i, j)) out(i, j) = x(i, j);
    }
  }
  return out;
}

Matrix CombineByMask(const Matrix& x, const Matrix& x_star, const Mask& mask) {
  SMFL_CHECK(x.SameShape(x_star));
  SMFL_CHECK_EQ(x.rows(), mask.rows());
  SMFL_CHECK_EQ(x.cols(), mask.cols());
  Matrix out(x.rows(), x.cols());
  for (Index i = 0; i < x.rows(); ++i) {
    for (Index j = 0; j < x.cols(); ++j) {
      out(i, j) = mask.Contains(i, j) ? x(i, j) : x_star(i, j);
    }
  }
  return out;
}

namespace {

// One output row of R_Ω(UV) given its observed column list. Dense rows
// (past the tier's measured crossover — simd.h) stream the rows of V in
// ascending-k order (the per-element summation order of la::MatMul,
// zero-skip included) and then zero the unobserved entries by walking the
// column list; sparse rows run the per-entry dots of masked_dot_cols.
// Both paths build every observed entry with the identical mul/add chain,
// so the crossover choice never changes a bit of the output. Returns true
// when the dense path ran (for the dispatch counters).
inline bool ReconstructRowForCols(const la::simd::Kernels& ker, Index k,
                                  Index m, const double* urow,
                                  const double* vd, const Index* cols,
                                  Index observed, double* orow) {
  if (observed * ker.dense_crossover >= m) {
    for (Index p = 0; p < k; ++p) {
      const double uv = urow[p];
      // smfl-lint: allow(float-eq) exact zero-skip: 0.0 adds nothing
      if (uv == 0.0) continue;
      ker.axpy(m, uv, vd + p * m, orow);
    }
    if (observed != m) {
      Index c = 0;
      for (Index j = 0; j < m; ++j) {
        if (c < observed && cols[c] == j) {
          ++c;
        } else {
          orow[j] = 0.0;
        }
      }
    }
    return true;
  }
  ker.masked_dot_cols(k, m, urow, vd, cols, observed, orow);
  return false;
}

}  // namespace

Matrix MaskedReconstruct(const Matrix& u, const Matrix& v, const Mask& mask) {
  SMFL_CHECK_EQ(u.cols(), v.rows());
  SMFL_CHECK_EQ(u.rows(), mask.rows());
  SMFL_CHECK_EQ(v.cols(), mask.cols());
  const Index n = u.rows(), k = u.cols(), m = v.cols();
  Matrix out(n, m);
  const double* ud = u.data();
  const double* vd = v.data();
  double* od = out.data();
  constexpr Index kRowGrain = 16;
  // Kernel table resolved on the calling thread (thread-local ScopedSimd
  // overrides must reach the pool workers running the chunks — simd.h).
  const la::simd::Kernels& ker = la::simd::Active();
  if (ker.tier != la::simd::Tier::kScalar) {
    SMFL_COUNTER_INC("la.simd.dispatch.masked_reconstruct");
  }
  parallel::ParallelFor(0, n, kRowGrain, [&](Index r0, Index r1) {
    std::vector<Index> cols;
    cols.reserve(static_cast<size_t>(m));
    Index dense_rows = 0, gather_rows = 0;
    for (Index i = r0; i < r1; ++i) {
      // Single pass over the mask row: the column list doubles as the
      // row count and as the unobserved-zeroing cursor, where the old
      // code paid a RowCount scan plus a second obs[j] sweep.
      const uint8_t* obs = mask.RowData(i);
      cols.clear();
      for (Index j = 0; j < m; ++j) {
        if (obs[j]) cols.push_back(j);
      }
      const Index observed = static_cast<Index>(cols.size());
      if (observed == 0) continue;
      if (ReconstructRowForCols(ker, k, m, ud + i * k, vd, cols.data(),
                                observed, od + i * m)) {
        ++dense_rows;
      } else {
        ++gather_rows;
      }
    }
    // Crossover decisions, aggregated per chunk (counters are atomic).
    SMFL_COUNTER_ADD("la.simd.dispatch.masked_rows_dense", dense_rows);
    SMFL_COUNTER_ADD("la.simd.dispatch.masked_rows_gather", gather_rows);
  });
  return out;
}

Matrix MaskedReconstruct(const Matrix& u, const Matrix& v,
                         const ObservedIndex& omega) {
  SMFL_CHECK_EQ(u.cols(), v.rows());
  SMFL_CHECK_EQ(u.rows(), omega.rows());
  SMFL_CHECK_EQ(v.cols(), omega.cols());
  const Index n = u.rows(), k = u.cols(), m = v.cols();
  Matrix out(n, m);
  const double* ud = u.data();
  const double* vd = v.data();
  double* od = out.data();
  constexpr Index kRowGrain = 16;
  const la::simd::Kernels& ker = la::simd::Active();
  if (ker.tier != la::simd::Tier::kScalar) {
    SMFL_COUNTER_INC("la.simd.dispatch.masked_reconstruct");
  }
  parallel::ParallelFor(0, n, kRowGrain, [&](Index r0, Index r1) {
    Index dense_rows = 0, gather_rows = 0;
    for (Index i = r0; i < r1; ++i) {
      // The precomputed index hands masked_dot_cols its column list for
      // free — no mask-row scan, no per-call rebuild.
      const std::span<const Index> cols = omega.RowCols(i);
      const Index observed = static_cast<Index>(cols.size());
      if (observed == 0) continue;
      if (ReconstructRowForCols(ker, k, m, ud + i * k, vd, cols.data(),
                                observed, od + i * m)) {
        ++dense_rows;
      } else {
        ++gather_rows;
      }
    }
    SMFL_COUNTER_ADD("la.simd.dispatch.masked_rows_dense", dense_rows);
    SMFL_COUNTER_ADD("la.simd.dispatch.masked_rows_gather", gather_rows);
  });
  return out;
}

namespace {

// Squared residual of one row over its observed columns. Dense rows (by
// the same per-tier crossover as the reconstruction) vectorize the
// elementwise (x - r)^2 into a scratch row, then fold the observed entries
// in the same ascending-j order the scalar loop uses — each d*d is one sub
// and one mul in both paths, and the accumulation itself never vectorizes,
// so the sum is bitwise identical across tiers and across the crossover.
// `xvals` (nullable) is the packed observed-value row of an ObservedIndex:
// bit-copies of x at the observed columns, read sequentially instead of
// gathered.
inline double RowSquaredError(const la::simd::Kernels& ker, Index m,
                              const double* xrow, const double* xvals,
                              const double* rrow, const Index* cols,
                              Index observed, double* sq) {
  double acc = 0.0;
  if (observed * ker.dense_crossover >= m) {
    ker.sq_diff(m, xrow, rrow, sq);
    for (Index c = 0; c < observed; ++c) {
      acc += sq[cols[c]];
    }
  } else if (xvals != nullptr) {
    for (Index c = 0; c < observed; ++c) {
      const double d = xvals[c] - rrow[cols[c]];
      acc += d * d;
    }
  } else {
    for (Index c = 0; c < observed; ++c) {
      const Index j = cols[c];
      const double d = xrow[j] - rrow[j];
      acc += d * d;
    }
  }
  return acc;
}

}  // namespace

double MaskedSquaredError(const Matrix& x, const Mask& mask,
                          const Matrix& uv_masked) {
  SMFL_CHECK(x.SameShape(uv_masked));
  SMFL_CHECK_EQ(x.rows(), mask.rows());
  SMFL_CHECK_EQ(x.cols(), mask.cols());
  const Index m = x.cols();
  constexpr Index kRowGrain = 64;
  const la::simd::Kernels& ker = la::simd::Active();
  if (ker.tier != la::simd::Tier::kScalar) {
    SMFL_COUNTER_INC("la.simd.dispatch.masked_sq_err");
  }
  return parallel::ParallelReduce(
      0, x.rows(), kRowGrain, [&](Index r0, Index r1) {
        std::vector<double> sq(static_cast<size_t>(m));
        std::vector<Index> cols;
        cols.reserve(static_cast<size_t>(m));
        double acc = 0.0;
        for (Index i = r0; i < r1; ++i) {
          // Single mask-row pass (was RowCount + a second obs[j] sweep).
          const uint8_t* obs = mask.RowData(i);
          cols.clear();
          for (Index j = 0; j < m; ++j) {
            if (obs[j]) cols.push_back(j);
          }
          const Index observed = static_cast<Index>(cols.size());
          if (observed == 0) continue;
          acc += RowSquaredError(ker, m, x.data() + i * m, nullptr,
                                 uv_masked.data() + i * m, cols.data(),
                                 observed, sq.data());
        }
        return acc;
      });
}

double MaskedSquaredError(const Matrix& x, const ObservedIndex& omega,
                          const Matrix& uv_masked) {
  SMFL_CHECK(x.SameShape(uv_masked));
  SMFL_CHECK_EQ(x.rows(), omega.rows());
  SMFL_CHECK_EQ(x.cols(), omega.cols());
  const Index m = x.cols();
  constexpr Index kRowGrain = 64;
  const la::simd::Kernels& ker = la::simd::Active();
  if (ker.tier != la::simd::Tier::kScalar) {
    SMFL_COUNTER_INC("la.simd.dispatch.masked_sq_err");
  }
  return parallel::ParallelReduce(
      0, x.rows(), kRowGrain, [&](Index r0, Index r1) {
        std::vector<double> sq(static_cast<size_t>(m));
        double acc = 0.0;
        for (Index i = r0; i < r1; ++i) {
          const std::span<const Index> cols = omega.RowCols(i);
          const Index observed = static_cast<Index>(cols.size());
          if (observed == 0) continue;
          const std::span<const double> vals = omega.RowValues(i);
          acc += RowSquaredError(ker, m, x.data() + i * m,
                                 vals.empty() ? nullptr : vals.data(),
                                 uv_masked.data() + i * m, cols.data(),
                                 observed, sq.data());
        }
        return acc;
      });
}

}  // namespace smfl::data
