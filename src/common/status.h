// Status and Result<T>: error handling for the smfl library.
//
// The library does not throw exceptions (Google style / Arrow convention).
// Fallible operations return Status, or Result<T> when they also produce a
// value. Use the RETURN_NOT_OK / ASSIGN_OR_RETURN macros to propagate.

#ifndef SMFL_COMMON_STATUS_H_
#define SMFL_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace smfl {

// Broad error taxonomy. Mirrors the failure classes the library can hit:
// bad user arguments, malformed input data, numeric breakdown, missing
// files, exhausted iteration budgets, and internal invariant violations.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kDataError = 6,      // malformed input data (e.g. bad CSV cell)
  kNumericError = 7,   // NaN/Inf/divergence in a numeric routine
  kResourceExhausted = 8,
  kUnimplemented = 9,
  kInternal = 10,
  kIoError = 11,
};

// Human-readable name of a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

// A cheap, movable success-or-error value. OK status carries no allocation.
// [[nodiscard]]: dropping a Status silently swallows an error; consume it
// (RETURN_NOT_OK, ok(), or an explicit log) at every call site.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataError(std::string msg) {
    return Status(StatusCode::kDataError, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  // "OK" or "<code name>: <message>".
  std::string ToString() const;

  // Prepends context to the message, keeping the code. No-op on OK.
  Status& WithContext(const std::string& context);

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // nullptr == OK
};

// Result<T>: either a T or a non-OK Status. [[nodiscard]] for the same
// reason as Status: an unread Result hides both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    // A Result built from OK-status would have neither value nor error;
    // degrade it to an Internal error instead of UB.
    if (std::get<Status>(v_).ok()) {
      v_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  // Precondition: ok(). Accessing the value of an errored Result aborts.
  const T& value() const& {
    CheckOk();
    return std::get<T>(v_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(v_);
  }
  T&& value() && {
    CheckOk();
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  void CheckOk() const;

  std::variant<T, Status> v_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(v_));
}

}  // namespace smfl

// Propagates a non-OK Status from the current function.
#define RETURN_NOT_OK(expr)                    \
  do {                                         \
    ::smfl::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define SMFL_CONCAT_IMPL(a, b) a##b
#define SMFL_CONCAT(a, b) SMFL_CONCAT_IMPL(a, b)

// ASSIGN_OR_RETURN(lhs, rexpr): evaluates rexpr (a Result<T>); on error
// returns the status, otherwise move-assigns the value into lhs.
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(SMFL_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)     \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // SMFL_COMMON_STATUS_H_
