# Empty compiler generated dependencies file for bench_foldin_serving.
# This may be replaced when dependencies are built.
