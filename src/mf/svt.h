// Singular Value Thresholding for nuclear-norm matrix completion —
// the paper's "MC" baseline (Candès & Recht; Cai–Candès–Shen SVT solver).

#ifndef SMFL_MF_SVT_H_
#define SMFL_MF_SVT_H_

#include "src/common/status.h"
#include "src/data/mask.h"
#include "src/mf/factorization.h"

namespace smfl::mf {

using data::Mask;

struct SvtOptions {
  // Threshold tau; <= 0 picks the standard heuristic 5 * sqrt(N*M).
  double tau = 0.0;
  // Step size delta; <= 0 picks 1.2 * (N*M / |Ω|).
  double step = 0.0;
  int max_iterations = 200;
  // Stop when ||R_Ω(X - Z)||_F / ||R_Ω(X)||_F falls below this.
  double tolerance = 1e-4;
};

struct SvtResult {
  // The completed low-rank matrix Z.
  Matrix completed;
  FitReport report;
};

// Completes x from its observed entries by minimizing the nuclear norm.
Result<SvtResult> CompleteSvt(const Matrix& x, const Mask& observed,
                              const SvtOptions& options = {});

}  // namespace smfl::mf

#endif  // SMFL_MF_SVT_H_
