#include "src/common/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/durable_io.h"
#include "src/common/strings.h"

namespace smfl::telemetry {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

struct EnvState {
  bool forced_off = false;  // SMFL_TELEMETRY=0
  bool forced_on = false;   // SMFL_TELEMETRY set to anything else non-empty
};

EnvState ReadEnv() {
  EnvState state;
  if (const char* env = std::getenv("SMFL_TELEMETRY")) {
    if (std::strcmp(env, "0") == 0) {
      state.forced_off = true;
    } else if (env[0] != '\0') {
      state.forced_on = true;
    }
  }
  return state;
}

EnvState& GetEnvState() {
  static EnvState state = ReadEnv();
  return state;
}

// Applies SMFL_TELEMETRY=1 at library load so collection covers the whole
// process (getenv is safe during static initialization).
const bool g_env_applied = [] {
  if (GetEnvState().forced_on) {
    internal::g_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

// Escapes the characters JSON string literals cannot carry raw. Metric
// names are controlled literals, but exporters must never emit broken JSON
// even if a caller passes something exotic.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  // Atomic replace (temp + fsync + rename): trace/metrics files rewritten
  // at checkpoint boundaries never tear, so the previous flush survives a
  // crash mid-rewrite.
  return WriteFileDurable(path, contents);
}

}  // namespace

void SetEnabled(bool on) {
  if (on && GetEnvState().forced_off) return;
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

void RefreshEnvForTesting() {
  GetEnvState() = ReadEnv();
  if (GetEnvState().forced_off) {
    internal::g_enabled.store(false, std::memory_order_relaxed);
  } else if (GetEnvState().forced_on) {
    internal::g_enabled.store(true, std::memory_order_relaxed);
  }
}

int SmallThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---------------------------------------------------------------------------
// Histogram

double Histogram::BucketLowerBound(int b) {
  return b <= 0 ? 0.0 : std::ldexp(1.0, b - 1);
}

void Histogram::Record(double value) {
  // Instruments carry durations and counts: nonnegative by construction.
  // NaN or a negative (a backwards clock step) lands in bucket 0 rather
  // than corrupting the distribution.
  if (!(value >= 0.0)) value = 0.0;
  int b = 0;
  if (value >= 1.0) {
    b = std::min(1 + std::ilogb(value), kNumBuckets - 1);
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + value,
                                     std::memory_order_relaxed)) {
  }
  seen = min_.load(std::memory_order_relaxed);
  while (value < seen && !min_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Percentile(const int64_t* buckets, int64_t count, double q,
                             double min_seen, double max_seen) const {
  if (count <= 0) return 0.0;
  const double rank = q * static_cast<double>(count - 1);
  int64_t first_rank = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const int64_t next_first = first_rank + buckets[i];
    if (rank < static_cast<double>(next_first)) {
      const double lo = BucketLowerBound(i);
      const double hi = i + 1 < kNumBuckets
                            ? BucketLowerBound(i + 1)
                            : std::max(max_seen, lo);
      // Interpolate by position among this bucket's samples; with one
      // sample the estimate sits at the bucket's lower edge, and the final
      // clamp to [min, max] makes single-value histograms exact.
      const double frac =
          buckets[i] == 1
              ? 0.0
              : (rank - static_cast<double>(first_rank)) /
                    static_cast<double>(buckets[i] - 1);
      return std::clamp(lo + frac * (hi - lo), min_seen, max_seen);
    }
    first_rank = next_first;
  }
  return max_seen;
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  int64_t buckets[kNumBuckets];
  int64_t count = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    count += buckets[i];
  }
  Snapshot snap;
  snap.count = count;
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.bucket_counts[static_cast<size_t>(i)] = buckets[i];
  }
  if (count == 0) return snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.p50 = Percentile(buckets, count, 0.50, snap.min, snap.max);
  snap.p95 = Percentile(buckets, count, 0.95, snap.min, snap.max);
  snap.p99 = Percentile(buckets, count, 0.99, snap.min, snap.max);
  return snap;
}

void Histogram::ResetForTesting() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked:
  return *registry;  // instruments may be touched during static teardown
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTesting();
  for (auto& [name, g] : gauges_) g->ResetForTesting();
  for (auto& [name, h] : histograms_) h->ResetForTesting();
}

MetricsRegistry::MetricsSnapshot MetricsRegistry::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->GetSnapshot());
  }
  return snap;
}

std::string MetricsRegistry::MetricsJsonl() const {
  const MetricsSnapshot snap = SnapshotAll();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += StrFormat("{\"name\":\"%s\",\"type\":\"counter\",\"value\":%lld}\n",
                     EscapeJson(name).c_str(), static_cast<long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    out += StrFormat("{\"name\":\"%s\",\"type\":\"gauge\",\"value\":%.17g}\n",
                     EscapeJson(name).c_str(), value);
  }
  for (const auto& [name, s] : snap.histograms) {
    out += StrFormat(
        "{\"name\":\"%s\",\"type\":\"histogram\",\"count\":%lld,"
        "\"sum\":%.10g,\"min\":%.10g,\"max\":%.10g,"
        "\"p50\":%.10g,\"p95\":%.10g,\"p99\":%.10g,\"buckets\":[",
        EscapeJson(name).c_str(), static_cast<long long>(s.count), s.sum,
        s.min, s.max, s.p50, s.p95, s.p99);
    // Exact cumulative counts as [upper_edge, count_le_edge] pairs, up to
    // the highest non-empty bucket; the final overflow bucket's cumulative
    // count is the "count" field, so it is never repeated here.
    int highest = -1;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (s.bucket_counts[static_cast<size_t>(b)] > 0) highest = b;
    }
    int64_t cumulative = 0;
    for (int b = 0; b <= highest && b < Histogram::kNumBuckets - 1; ++b) {
      cumulative += s.bucket_counts[static_cast<size_t>(b)];
      out += StrFormat("%s[%.17g,%lld]", b > 0 ? "," : "",
                       Histogram::BucketLowerBound(b + 1),
                       static_cast<long long>(cumulative));
    }
    out += "]}\n";
  }
  return out;
}

Status MetricsRegistry::WriteMetricsJsonl(const std::string& path) const {
  return WriteStringToFile(path, MetricsJsonl());
}

// ---------------------------------------------------------------------------
// TraceRecorder

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // leaked, as above
  return *recorder;
}

void TraceRecorder::RecordComplete(const char* name, int64_t ts_us,
                                   int64_t dur_us, int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{name, 'X', ts_us, dur_us, tid, 0.0});
}

void TraceRecorder::RecordCounterSample(const char* name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{name, 'C', NowMicros(), 0, 0, value});
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

int64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  events_.shrink_to_fit();
  dropped_ = 0;
}

std::string TraceRecorder::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat(
      "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":%lld},"
      "\"traceEvents\":[",
      static_cast<long long>(dropped_));
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    if (e.phase == 'X') {
      out += StrFormat(
          "\n{\"name\":\"%s\",\"cat\":\"smfl\",\"ph\":\"X\",\"ts\":%lld,"
          "\"dur\":%lld,\"pid\":1,\"tid\":%d}",
          EscapeJson(e.name).c_str(), static_cast<long long>(e.ts_us),
          static_cast<long long>(e.dur_us), e.tid);
    } else {
      out += StrFormat(
          "\n{\"name\":\"%s\",\"cat\":\"smfl\",\"ph\":\"C\",\"ts\":%lld,"
          "\"pid\":1,\"tid\":0,\"args\":{\"value\":%.17g}}",
          EscapeJson(e.name).c_str(), static_cast<long long>(e.ts_us),
          e.value);
    }
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return WriteStringToFile(path, ChromeTraceJson());
}

// ---------------------------------------------------------------------------

ScopedSpan::~ScopedSpan() {
  if (!enabled_) return;
  const int64_t end_us = NowMicros();
  const int64_t dur_us = end_us - start_us_;
  TraceRecorder::Global().RecordComplete(name_, start_us_, dur_us,
                                         SmallThreadId());
  MetricsRegistry::Global().GetHistogram(name_).Record(
      static_cast<double>(dur_us));
}

namespace internal {

void TraceCounterImpl(const char* name, double value) {
  TraceRecorder::Global().RecordCounterSample(name, value);
  MetricsRegistry::Global().GetGauge(name).Set(value);
}

}  // namespace internal

}  // namespace smfl::telemetry
