// TrainingGuard: checkpoint/rollback protection for the iterative solvers.
//
// The paper's multiplicative updates (Formulas 13/14) provably keep the
// objective non-increasing (Propositions 5/7), so a NaN/Inf objective or an
// objective *increase* mid-fit is an invariant violation — numeric
// breakdown, a dying factor row, or injected corruption. Instead of letting
// the violation poison the remaining iterations and abort the whole fit,
// the guard snapshots (U, V, objective) every `checkpoint_interval`
// iterations, detects violations as they happen, rolls the factors back to
// the last good checkpoint, and applies an escalating recovery policy:
//
//   attempt 1   — epsilon-floor bump: widen the multiplicative-update
//                 denominator floor by 1e4x so near-zero denominators stop
//                 amplifying rounding noise;
//   attempt 2+  — re-seeded perturbation: additionally jitter the restored
//                 factors multiplicatively (fresh Rng stream) to leave the
//                 bad basin;
//   exhausted   — give up with a NumericError carrying the violation
//                 iteration, the last good objective, and the attempt count.
//
// The monotonicity check applies only to update rules that guarantee it
// (kMultiplicative); NaN/Inf detection applies to every rule.

#ifndef SMFL_CORE_TRAINING_GUARD_H_
#define SMFL_CORE_TRAINING_GUARD_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::core {

struct GuardOptions {
  // Master switch; disabled, the guard never snapshots or checks.
  bool enabled = true;
  // Iterations between checkpoint refreshes. Smaller = cheaper rollbacks
  // (less progress lost), more snapshot copies.
  int checkpoint_interval = 25;
  // Rollback + recovery attempts before the fit gives up.
  int max_recovery_attempts = 3;
  // Relative slack for the monotonicity check: an increase counts as a
  // violation only beyond `objective_slack * max(1, |reference|)` —
  // masked-update rounding legitimately wobbles at this scale.
  double objective_slack = 1e-7;
  // Multiplier applied to the denominator floor on each epsilon-floor bump.
  double eps_bump = 1e4;
  // Relative magnitude of the re-seeded factor perturbation.
  double perturbation = 0.05;
};

class TrainingGuard {
 public:
  // `check_monotonic` gates the objective-increase check (true for
  // kMultiplicative only). `div_eps` seeds the denominator floor the guard
  // escalates on recovery.
  TrainingGuard(const GuardOptions& options, bool check_monotonic,
                uint64_t seed, double div_eps);

  bool enabled() const { return options_.enabled; }

  // What Observe decided.
  enum class Action {
    kProceed,     // state healthy; keep iterating
    kRolledBack,  // factors restored (and possibly perturbed); the caller
                  // must recompute the objective and skip the trace push
  };

  // Call once per iteration with the freshly updated factors and their
  // objective. On a violation this mutates *u / *v (rollback + recovery) and
  // escalates div_eps(); when the recovery budget is exhausted it returns a
  // NumericError describing the violation.
  Result<Action> Observe(int iteration, double objective, la::Matrix* u,
                         la::Matrix* v);

  // Current denominator floor for the multiplicative updates (grows with
  // each epsilon-floor bump).
  double div_eps() const { return div_eps_; }

  // Recovery accounting for FitReport.
  int rollbacks() const { return rollbacks_; }
  int recovery_attempts() const { return recovery_attempts_; }

  // Violation context for error messages.
  double last_good_objective() const { return checkpoint_objective_; }
  int last_good_iteration() const { return checkpoint_iteration_; }

  // Complete mutable guard state, capturable for crash-safe checkpoints
  // (src/core/checkpoint.*) and restorable bit-exactly: a resumed fit
  // makes the same rollback/recovery decisions — and, when perturbing,
  // draws the same jitter — as the uninterrupted run.
  struct State {
    double div_eps = 0.0;
    double prev_objective = 0.0;
    double checkpoint_objective = 0.0;
    int checkpoint_iteration = -1;
    bool have_checkpoint = false;
    bool rebaseline = false;
    int rollbacks = 0;
    int recovery_attempts = 0;
    RngState rng;
    la::Matrix checkpoint_u;
    la::Matrix checkpoint_v;
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  bool IsViolation(double objective) const;

  GuardOptions options_;
  bool check_monotonic_;
  double div_eps_;
  Rng rng_;

  la::Matrix checkpoint_u_;
  la::Matrix checkpoint_v_;
  double prev_objective_ = 0.0;
  double checkpoint_objective_ = 0.0;
  int checkpoint_iteration_ = -1;
  bool have_checkpoint_ = false;
  // Set right after a recovery: the next healthy Observe re-baselines the
  // checkpoint instead of comparing against the pre-recovery objective
  // (a perturbed restart may legitimately sit slightly above it).
  bool rebaseline_ = false;

  int rollbacks_ = 0;
  int recovery_attempts_ = 0;
};

}  // namespace smfl::core

#endif  // SMFL_CORE_TRAINING_GUARD_H_
