// Internal rule implementations for smfl_lint. Each Check* walks one lexed
// file and appends raw findings; path scoping and suppression matching are
// the driver's job (lint.cc).

#ifndef SMFL_TOOLS_SMFL_LINT_RULES_H_
#define SMFL_TOOLS_SMFL_LINT_RULES_H_

#include <vector>

#include "tools/smfl_lint/lint.h"

namespace smfl::lint {

// R1 "thread": std::thread/std::jthread/std::async, omp_* calls, and
// OpenMP pragmas/includes.
void CheckThread(const LexedFile& file, std::vector<Diagnostic>* out);

// R2 "nondet": rand()/srand(), std::random_device, time(), and
// std::chrono::system_clock.
void CheckNondet(const LexedFile& file, std::vector<Diagnostic>* out);

// R3 "unordered-iter": range-for over, or begin() iteration of, a variable
// declared as std::unordered_map/std::unordered_set (aliases via `using`
// are tracked within the same file).
void CheckUnorderedIter(const LexedFile& file, std::vector<Diagnostic>* out);

// R4 "discard-status": bare-statement call of a registered Status/Result
// function, or a (void)/static_cast<void> cast of one.
void CheckDiscardStatus(const LexedFile& file,
                        const StatusFnRegistry& registry,
                        std::vector<Diagnostic>* out);

// R5 "float-eq": ==/!= where either operand is a floating-point literal.
void CheckFloatEq(const LexedFile& file, std::vector<Diagnostic>* out);

// R6 "raw-log": std::cerr / std::clog.
void CheckRawLog(const LexedFile& file, std::vector<Diagnostic>* out);

// R7 "raw-file-write": std::ofstream (or a bare `ofstream` after a
// using-directive) and fopen()/freopen() calls. Durable output must go
// through smfl::WriteFileDurable (temp + fsync + rename); ifstream reads
// are fine.
void CheckRawFileWrite(const LexedFile& file, std::vector<Diagnostic>* out);

// R8 "raw-simd": SIMD intrinsic headers (<immintrin.h>/<arm_neon.h> and
// friends), x86 `_mm*`/`__m128/256/512` tokens, and NEON `v*q_*`
// intrinsics / `float64x2_t`. Raw vector code outside src/la/simd.* would
// bypass the runtime dispatch and its determinism contract.
void CheckRawSimd(const LexedFile& file, std::vector<Diagnostic>* out);

// R9 "const-ref": a Matrix/Table/Mask function parameter passed by value.
// These types own O(n*m) heap buffers; a by-value parameter is a full deep
// copy per call. Macro-style ALL_CAPS callees (ASSIGN_OR_RETURN and
// friends declare locals inside their parens) are exempt.
void CheckConstRef(const LexedFile& file, std::vector<Diagnostic>* out);

// R10 "mask-scan": a `.RowData(` / `.RowCount(` / `.Entries(` member call
// in src/core|src/mf — the full-grid Mask scan primitives. The fit and
// serving loops must consume the once-per-fit data::ObservedIndex spans
// instead of rescanning the byte grid; mask.cc (src/data) is the only
// production home for raw row scans.
void CheckMaskScan(const LexedFile& file, std::vector<Diagnostic>* out);

// R11 "raw-socket": unqualified call-position socket/bind/listen/accept/
// accept4/poll/ppoll/epoll_* outside src/obs/http_server.cc — network I/O
// and event polling are centralized in the obs HTTP layer. Qualified names
// (std::bind) and member calls are exempt.
void CheckRawSocket(const LexedFile& file, std::vector<Diagnostic>* out);

// R12 "header-hygiene": every header opens with the path-derived include
// guard (src/obs/http_server.h -> SMFL_OBS_HTTP_SERVER_H_): `#ifndef` and
// `#define` of exactly that name as the first two directives.
void CheckHeaderHygiene(const LexedFile& file, std::vector<Diagnostic>* out);

}  // namespace smfl::lint

#endif  // SMFL_TOOLS_SMFL_LINT_RULES_H_
