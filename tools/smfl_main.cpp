// The smfl command-line tool. All logic lives in src/cli/commands.* so the
// subcommands are unit-testable; this file only parses argv and prints.

#include <cstdio>

#include "src/cli/commands.h"
#include "src/common/logging.h"
#include "src/common/shutdown.h"

int main(int argc, char** argv) {
  // SMFL_LOG_LEVEL applies from the very first line; cli::Run re-applies
  // it and then the --log-level flag, so the flag still wins.
  smfl::InitLogLevelFromEnv();
  // Ctrl-C / SIGTERM unwind cooperatively: the fit loop writes a final
  // checkpoint and the telemetry sinks flush durably before exit. A second
  // signal kills immediately (docs/observability.md).
  smfl::InstallShutdownHandlers();
  auto flags = smfl::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  std::string output;
  smfl::Status status = smfl::cli::Run(*flags, &output);
  std::fputs(output.c_str(), stdout);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.message().c_str());
    return 1;
  }
  return 0;
}
