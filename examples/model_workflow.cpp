// Production model workflow: select hyper-parameters by validation
// holdout, fit SMFL on the full data, persist the model, and reload it in
// a (simulated) serving process to impute fresh queries.
//
//   ./build/examples/model_workflow [--rows=600]

#include <cstdio>
#include <filesystem>

#include "src/common/flags.h"
#include "src/core/model_io.h"
#include "src/core/model_selection.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/exp/metrics.h"

using namespace smfl;
using la::Index;
using la::Matrix;

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  const Index rows = static_cast<Index>(*flags->GetInt("rows", 600));

  // --- Training data with 10% missing values.
  auto dataset = data::MakeEconomicLike(rows, /*seed=*/21);
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Matrix truth = normalizer->Transform(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = 33;
  auto injection = data::InjectMissing(dataset->table, inject);
  Matrix input = data::ApplyMask(truth, injection->observed);

  // --- 1. Hyper-parameter selection on a validation holdout.
  core::SelectionGrid grid;
  grid.lambdas = {0.05, 0.5, 1.0};
  grid.ranks = {6, 10};
  grid.base.max_iterations = 150;
  auto selection =
      core::SelectSmflOptions(input, injection->observed, 2, grid);
  if (!selection.ok()) {
    std::fprintf(stderr, "%s\n", selection.status().ToString().c_str());
    return 1;
  }
  std::printf("grid search over %zu candidates:\n",
              selection->candidates.size());
  for (const auto& c : selection->candidates) {
    std::printf("  lambda=%-5g K=%-3lld p=%lld  validation RMS %.4f%s\n",
                c.lambda, static_cast<long long>(c.rank),
                static_cast<long long>(c.num_neighbors), c.validation_rms,
                c.validation_rms == selection->best_validation_rms
                    ? "  <- selected"
                    : "");
  }

  // --- 2. Fit on the full observed data with the winning options.
  auto model =
      core::FitSmfl(input, injection->observed, 2, selection->best);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("final fit: %d iterations, objective %.4f\n",
              model->report.iterations, model->report.final_objective());

  // --- 3. Persist.
  const std::string path =
      (std::filesystem::temp_directory_path() / "smfl_workflow_model.txt")
          .string();
  if (auto st = core::SaveModel(*model, path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("model saved to %s\n", path.c_str());

  // --- 4. "Serving": reload and impute.
  auto served = core::LoadModel(path);
  std::remove(path.c_str());
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.status().ToString().c_str());
    return 1;
  }
  Matrix completed =
      data::CombineByMask(input, served->Reconstruct(), injection->observed);
  auto rms = exp::RmsOverMask(completed, truth,
                              injection->observed.Complement());
  std::printf("imputation RMS from the reloaded model: %.4f\n", *rms);
  return 0;
}
