// Unit tests for the deterministic fault-injection framework
// (src/common/fault.h) and its integration points in CSV I/O.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/common/fault.h"
#include "src/data/csv.h"
#include "src/data/mask.h"

namespace smfl {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(FaultTest, UnarmedPointNeverFires) {
  EXPECT_FALSE(FaultRegistry::Global().AnyArmed());
  EXPECT_FALSE(SMFL_FAULT_FIRED("test.unarmed.point"));
  EXPECT_EQ(FaultRegistry::Global().fires("test.unarmed.point"), 0);
}

TEST_F(FaultTest, ArmedPointFiresOnceByDefault) {
  FaultRegistry::Global().Arm("test.point");
  EXPECT_TRUE(FaultRegistry::Global().AnyArmed());
  EXPECT_TRUE(SMFL_FAULT_FIRED("test.point"));
  // Default spec: count = 1 → subsequent hits pass.
  EXPECT_FALSE(SMFL_FAULT_FIRED("test.point"));
  EXPECT_FALSE(SMFL_FAULT_FIRED("test.point"));
  EXPECT_EQ(FaultRegistry::Global().hits("test.point"), 3);
  EXPECT_EQ(FaultRegistry::Global().fires("test.point"), 1);
}

TEST_F(FaultTest, SkipDelaysFirstFire) {
  FaultSpec spec;
  spec.skip = 2;
  spec.count = 2;
  FaultRegistry::Global().Arm("test.skip", spec);
  EXPECT_FALSE(SMFL_FAULT_FIRED("test.skip"));  // hit 1 (skipped)
  EXPECT_FALSE(SMFL_FAULT_FIRED("test.skip"));  // hit 2 (skipped)
  EXPECT_TRUE(SMFL_FAULT_FIRED("test.skip"));   // hit 3 (fire 1)
  EXPECT_TRUE(SMFL_FAULT_FIRED("test.skip"));   // hit 4 (fire 2)
  EXPECT_FALSE(SMFL_FAULT_FIRED("test.skip"));  // budget spent
}

TEST_F(FaultTest, NegativeCountFiresForever) {
  FaultSpec spec;
  spec.count = -1;
  FaultRegistry::Global().Arm("test.forever", spec);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(SMFL_FAULT_FIRED("test.forever"));
  }
}

TEST_F(FaultTest, ProbabilityIsDeterministicGivenSeed) {
  const auto run = [] {
    FaultRegistry::Global().SeedRng(7);
    FaultSpec spec;
    spec.count = -1;
    spec.probability = 0.5;
    FaultRegistry::Global().Arm("test.prob", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(SMFL_FAULT_FIRED("test.prob"));
    }
    FaultRegistry::Global().Disarm("test.prob");
    return fired;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  int fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 10);  // ~32 expected
  EXPECT_LT(fires, 54);
}

TEST_F(FaultTest, RearmResetsCounters) {
  FaultRegistry::Global().Arm("test.rearm");
  EXPECT_TRUE(SMFL_FAULT_FIRED("test.rearm"));
  EXPECT_FALSE(SMFL_FAULT_FIRED("test.rearm"));
  FaultRegistry::Global().Arm("test.rearm");  // reset
  EXPECT_EQ(FaultRegistry::Global().hits("test.rearm"), 0);
  EXPECT_TRUE(SMFL_FAULT_FIRED("test.rearm"));
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("test.scoped");
    EXPECT_TRUE(FaultRegistry::Global().AnyArmed());
  }
  EXPECT_FALSE(FaultRegistry::Global().AnyArmed());
  EXPECT_FALSE(SMFL_FAULT_FIRED("test.scoped"));
}

TEST_F(FaultTest, DisarmOnlyAffectsNamedPoint) {
  FaultRegistry::Global().Arm("test.a");
  FaultRegistry::Global().Arm("test.b");
  FaultRegistry::Global().Disarm("test.a");
  EXPECT_FALSE(SMFL_FAULT_FIRED("test.a"));
  EXPECT_TRUE(SMFL_FAULT_FIRED("test.b"));
}

// ------------------------------------------------- integration: CSV faults

TEST_F(FaultTest, CsvRowCorruptFaultQuarantinesInLenientMode) {
  FaultSpec spec;
  spec.skip = 1;  // corrupt the second data row
  ScopedFault fault("csv.row.corrupt", spec);
  data::CsvReadOptions options;
  options.mode = data::CsvMode::kLenient;
  auto csv = data::ParseCsv("a,b,c\n1,2,3\n4,5,6\n7,8,9\n", options);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->table.NumRows(), 2);
  ASSERT_EQ(csv->row_errors.size(), 1u);
  EXPECT_EQ(csv->row_errors[0].line, 3u);
  EXPECT_NE(csv->row_errors[0].message.find("injected"), std::string::npos);
}

TEST_F(FaultTest, CsvRowCorruptFaultFailsStrictMode) {
  ScopedFault fault("csv.row.corrupt");
  auto csv = data::ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_FALSE(csv.ok());
  EXPECT_EQ(csv.status().code(), StatusCode::kDataError);
}

TEST_F(FaultTest, IoWriteFailFaultSurfacesIoError) {
  ScopedFault fault("io.write.fail");
  auto t = data::Table::Create({"a", "b"}, la::Matrix{{1.0, 2.0}}, 1);
  ASSERT_TRUE(t.ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "smfl_fault_write.csv")
          .string();
  Status st = data::WriteCsv(path, *t);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("injected"), std::string::npos);
  // Fault budget spent: the retry succeeds.
  EXPECT_TRUE(data::WriteCsv(path, *t).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace smfl
