#!/usr/bin/env bash
# One-command correctness gate for the repo. Runs, in order:
#
#   1. werror-build   configure + build with -DSMFL_WERROR=ON
#                     (-Wall -Wextra -Wconversion -Wshadow promoted to errors)
#   2. tier1-tests    the full ctest suite in that build tree
#   3. smfl-lint      repo-contract static analysis (docs/static-analysis.md)
#   4. lint-graph     the semantic passes: module-layering / include-graph
#                     enforcement (--graph) and the R13 ParallelFor race
#                     detector (--race), with SARIF written to the check
#                     logs for CI upload (docs/static-analysis.md)
#   5. crash-recovery the kill-mid-fit durability harness on its own line:
#                     SIGKILLs real fits between checkpoint writes and
#                     requires --resume to reach the bitwise-identical
#                     model (docs/robustness.md)
#   6. obs-scrape     end-to-end observability: runs a real `smfl fit
#                     --metrics-port=0`, scrapes /metrics, /healthz, and
#                     /statusz over loopback with bash's /dev/tcp (no curl
#                     dependency), and validates the Prometheus exposition
#                     line grammar (docs/observability.md)
#   7. bench          perf-regression gate (tools/run_bench.sh --gate):
#                     masked-reconstruct fusion and SIMD gemm speedups must
#                     stay above the committed thresholds; a regression
#                     fails the gate exactly like a lint finding would
#   8. asan           tier-1 suite under AddressSanitizer (+ leak check)
#   9. ubsan          tier-1 suite under UndefinedBehaviorSanitizer
#  10. tsan           threading-sensitive subset under ThreadSanitizer;
#                     auto-skipped (and recorded as such) when the toolchain
#                     lacks TSan support
#
# Every step's outcome lands in CHECKS.json ({"steps": [{name, status,
# seconds, detail}...], "ok": bool}); the script exits nonzero if any step
# fails. Skips are not failures. `--fast` runs only steps 1-6 (the bench
# gate wants an unloaded machine and the sanitizer suites are three extra
# full builds).
#
# Usage: tools/run_checks.sh [--fast] [--out CHECKS.json]

set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out_json="$repo_root/CHECKS.json"
fast=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) fast=1 ;;
    --out)
      shift
      out_json="${1:?--out needs a path}"
      ;;
    *)
      echo "usage: tools/run_checks.sh [--fast] [--out FILE]" >&2
      exit 2
      ;;
  esac
  shift
done

build_dir="$repo_root/build-checks"
log_dir="$build_dir/check-logs"
mkdir -p "$log_dir"

step_names=()
step_statuses=()
step_seconds=()
step_details=()
any_failed=0

# run_step NAME DETAIL_ON_PASS COMMAND...
# Runs COMMAND, captures its log, and records pass/fail + duration.
run_step() {
  local name="$1" detail="$2"
  shift 2
  local log="$log_dir/$name.log"
  local start=$SECONDS
  echo "==> $name"
  if "$@" >"$log" 2>&1; then
    local status=pass
    # The tsan runner reports a skipped suite with an explicit marker.
    if [[ "$name" == tsan ]] && grep -q "SKIPPED" "$log"; then
      status=skip
      detail="$(grep -m1 "SKIPPED" "$log")"
    fi
    step_statuses+=("$status")
  else
    step_statuses+=(fail)
    any_failed=1
    detail="failed; see $log"
    echo "==> $name: FAILED (log: $log)"
    tail -n 20 "$log"
  fi
  step_names+=("$name")
  step_seconds+=($((SECONDS - start)))
  step_details+=("$detail")
}

configure_and_build() {
  cmake -B "$build_dir" -S "$repo_root" -DSMFL_WERROR=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
    cmake --build "$build_dir" -j
}

# One raw HTTP GET over loopback with bash's /dev/tcp: no curl/netcat in
# the gate image. The server always answers Connection: close, so reading
# to EOF captures the whole response.
http_get() {  # http_get PORT PATH OUTFILE
  (exec 3<>"/dev/tcp/127.0.0.1/$1" &&
     printf 'GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n' "$2" >&3 &&
     cat <&3) > "$3"
}

# End-to-end observability scrape: launch a real fit with --metrics-port=0
# (+ a linger window so the endpoints outlive the fit), scrape all three
# endpoints, and validate the Prometheus text-exposition grammar.
obs_scrape() {
  local dir="$build_dir/obs-scrape"
  rm -rf "$dir" && mkdir -p "$dir" || return 1

  # Deterministic synthetic training CSV: 2 spatial columns, 4 attribute
  # columns, every 11th attribute cell missing.
  awk 'BEGIN {
    print "lat,lon,a,b,c,d";
    for (i = 0; i < 80; i++) {
      lat = 40 + i * 0.01; lon = -70 - i * 0.01;
      line = lat "," lon;
      for (j = 0; j < 4; j++) {
        if ((i * 4 + j) % 11 == 0) line = line ",";
        else line = line "," ((i * 7 + j * 13) % 50 / 50 + j);
      }
      print line;
    }
  }' > "$dir/train.csv" || return 1

  SMFL_METRICS_LINGER_MS=30000 "$build_dir/tools/smfl" fit \
      --in="$dir/train.csv" --model="$dir/model.txt" --rank=4 \
      --metrics-port=0 > "$dir/fit.log" 2>&1 &
  local fit_pid=$!

  local port="" i
  for i in $(seq 1 100); do
    port=$(sed -n 's|.*observability endpoints on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' \
           "$dir/fit.log" 2>/dev/null | head -1)
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "obs-scrape: no 'observability endpoints' line in fit.log"
    cat "$dir/fit.log"
    kill "$fit_pid" 2>/dev/null
    return 1
  fi

  # The model write is atomic (temp + rename): existence means the fit is
  # done and the exporter is in its linger window — scrape race-free.
  for i in $(seq 1 600); do
    [[ -f "$dir/model.txt" ]] && break
    sleep 0.05
  done

  local ok=0
  http_get "$port" /metrics "$dir/metrics.http" &&
    http_get "$port" /healthz "$dir/healthz.http" &&
    http_get "$port" /statusz "$dir/statusz.http" || ok=1
  kill -INT "$fit_pid" 2>/dev/null  # end the linger window early
  wait "$fit_pid" || { echo "obs-scrape: fit exited nonzero"; cat "$dir/fit.log"; return 1; }
  [[ $ok -eq 0 ]] || { echo "obs-scrape: scrape failed"; return 1; }

  head -1 "$dir/metrics.http" | grep -q "HTTP/1.1 200" ||
    { echo "obs-scrape: /metrics not 200"; head -1 "$dir/metrics.http"; return 1; }
  grep -q "^ok" "$dir/healthz.http" ||
    { echo "obs-scrape: /healthz body not ok"; return 1; }
  grep -q '"iteration":' "$dir/statusz.http" ||
    { echo "obs-scrape: /statusz missing fit progress"; return 1; }
  # The page must carry the fit, resource, and server self-instruments.
  local metric
  for metric in smfl_fit_iter_count process_rss_bytes obs_http_requests_total; do
    grep -q "^$metric " "$dir/metrics.http" ||
      { echo "obs-scrape: /metrics missing $metric"; return 1; }
  done
  # Exposition line grammar over the body: comments are HELP/TYPE only,
  # samples are <name>[{labels}] <value>.
  awk '
    BEGIN { body = 0; bad = 0 }
    /^\r?$/ { body = 1; next }
    body == 0 { next }
    /^# (HELP|TYPE) / { next }
    /^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? [^ ]+\r?$/ { next }
    { bad++; print "obs-scrape: bad exposition line: " $0 }
    END { exit bad > 0 }
  ' "$dir/metrics.http" || return 1
  echo "obs-scrape: all endpoints healthy on port $port"
}

run_step werror-build "warning-clean under -Wconversion -Wshadow -Werror" \
  configure_and_build

if [[ "${step_statuses[0]}" == pass ]]; then
  run_step tier1-tests "full ctest suite" \
    ctest --test-dir "$build_dir" --output-on-failure -j
  run_step smfl-lint "repo contracts clean (see $log_dir/smfl-lint.json)" \
    "$build_dir/tools/smfl_lint" --repo-root "$repo_root" \
    --json "$log_dir/smfl-lint.json" src
  run_step lint-graph "module DAG + R13 race pass clean (SARIF: $log_dir/smfl-lint.sarif)" \
    "$build_dir/tools/smfl_lint" --repo-root "$repo_root" --graph --race \
    --sarif "$log_dir/smfl-lint.sarif" \
    --json "$log_dir/smfl-lint-graph.json" src
  # Already part of tier1-tests, but durability regressions deserve their
  # own line in CHECKS.json: this is the harness that SIGKILLs real fits
  # and proves --resume is bitwise-identical.
  run_step crash-recovery "kill-mid-fit + resume bitwise-identical harness" \
    ctest --test-dir "$build_dir" --output-on-failure \
    -R '^crash_recovery_test$'
  run_step obs-scrape "live /metrics + /healthz + /statusz scrape of a real fit" \
    obs_scrape
else
  echo "==> skipping tests and lint: the gate build failed"
fi

if [[ $fast -eq 0 ]]; then
  if [[ "${step_statuses[0]}" == pass ]]; then
    run_step bench "fusion + SIMD + sparse masked-path thresholds (run_bench.sh --gate)" \
      "$repo_root/tools/run_bench.sh" --gate --build-dir="$build_dir"
  else
    echo "==> skipping bench gate: the gate build failed"
  fi
  run_step asan "tier-1 suite under AddressSanitizer" \
    "$repo_root/tools/run_sanitizers.sh" address
  run_step ubsan "tier-1 suite under UndefinedBehaviorSanitizer" \
    "$repo_root/tools/run_sanitizers.sh" undefined
  run_step tsan "threading subset under ThreadSanitizer" \
    "$repo_root/tools/run_sanitizers.sh" thread
fi

# ---------------------------------------------------------------------------
# CHECKS.json

json_escape() {
  local s="$1"
  s="${s//\\/\\\\}"
  s="${s//\"/\\\"}"
  printf '%s' "$s"
}

{
  echo "{"
  echo "  \"steps\": ["
  for i in "${!step_names[@]}"; do
    comma=","
    [[ $i -eq $((${#step_names[@]} - 1)) ]] && comma=""
    printf '    {"name": "%s", "status": "%s", "seconds": %s, "detail": "%s"}%s\n' \
      "${step_names[$i]}" "${step_statuses[$i]}" "${step_seconds[$i]}" \
      "$(json_escape "${step_details[$i]}")" "$comma"
  done
  echo "  ],"
  if [[ $any_failed -eq 0 ]]; then
    echo "  \"ok\": true"
  else
    echo "  \"ok\": false"
  fi
  echo "}"
} > "$out_json"

echo
echo "==> summary ($out_json)"
for i in "${!step_names[@]}"; do
  printf '    %-14s %s (%ss)\n' "${step_names[$i]}" "${step_statuses[$i]}" \
    "${step_seconds[$i]}"
done

exit $any_failed
