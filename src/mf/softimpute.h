// SoftImpute (Mazumder–Hastie–Tibshirani): iterative soft-thresholded SVD
// replacement of the unobserved entries.

#ifndef SMFL_MF_SOFTIMPUTE_H_
#define SMFL_MF_SOFTIMPUTE_H_

#include "src/common/status.h"
#include "src/data/mask.h"
#include "src/mf/factorization.h"

namespace smfl::mf {

using data::Mask;

struct SoftImputeOptions {
  // Shrinkage on singular values; <= 0 picks sigma_max/50 adaptively.
  double shrinkage = 0.0;
  int max_iterations = 100;
  // Stop on relative change of the completed matrix.
  double tolerance = 1e-5;
};

struct SoftImputeResult {
  Matrix completed;
  FitReport report;
};

Result<SoftImputeResult> CompleteSoftImpute(
    const Matrix& x, const Mask& observed,
    const SoftImputeOptions& options = {});

}  // namespace smfl::mf

#endif  // SMFL_MF_SOFTIMPUTE_H_
