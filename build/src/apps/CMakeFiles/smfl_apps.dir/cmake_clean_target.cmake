file(REMOVE_RECURSE
  "libsmfl_apps.a"
)
