// Dense row-major matrix and vector types — the numeric substrate for the
// whole library. No external BLAS/LAPACK: kernels live in ops.h, and
// decompositions (Cholesky, QR, SVD) in their own headers.
//
// Dimension mismatches are programmer errors and abort via SMFL_CHECK;
// data-dependent numeric failures return Status from the routines that can
// hit them.

#ifndef SMFL_LA_MATRIX_H_
#define SMFL_LA_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "src/common/logging.h"

namespace smfl::la {

using Index = std::ptrdiff_t;

// A dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(Index n, double fill = 0.0)
      : data_(static_cast<size_t>(n), fill) {
    SMFL_CHECK_GE(n, 0);
  }
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  Index size() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  double operator[](Index i) const {
    SMFL_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  double& operator[](Index i) {
    SMFL_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  const std::vector<double>& values() const { return data_; }

  void Fill(double v) { data_.assign(data_.size(), v); }
  void Resize(Index n, double fill = 0.0) {
    data_.resize(static_cast<size_t>(n), fill);
  }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::vector<double> data_;
};

// A dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  // n x m matrix filled with `fill`.
  Matrix(Index rows, Index cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), fill) {
    SMFL_CHECK_GE(rows, 0);
    SMFL_CHECK_GE(cols, 0);
  }

  // Row-major initializer: {{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix Identity(Index n);
  [[nodiscard]] static Matrix Diagonal(const Vector& d);

  // Builds from a row-major flat buffer of size rows*cols.
  [[nodiscard]] static Matrix FromRowMajor(Index rows, Index cols,
                                           std::vector<double> data);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  double operator()(Index i, Index j) const {
    SMFL_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  double& operator()(Index i, Index j) {
    SMFL_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  // Contiguous view of row i.
  std::span<double> Row(Index i) {
    SMFL_DCHECK(i >= 0 && i < rows_);
    return {data_.data() + i * cols_, static_cast<size_t>(cols_)};
  }
  std::span<const double> Row(Index i) const {
    SMFL_DCHECK(i >= 0 && i < rows_);
    return {data_.data() + i * cols_, static_cast<size_t>(cols_)};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double v) { data_.assign(data_.size(), v); }

  // Copies column j out / in.
  Vector Col(Index j) const;
  void SetCol(Index j, const Vector& v);
  void SetRow(Index i, const Vector& v);

  // Sub-block copy: rows [r0, r0+nr), cols [c0, c0+nc).
  Matrix Block(Index r0, Index c0, Index nr, Index nc) const;
  void SetBlock(Index r0, Index c0, const Matrix& b);

  Matrix Transposed() const;

  // Element-wise in-place ops.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // True if any entry is NaN or Inf.
  bool HasNonFinite() const;

  // Debug printing (small matrices).
  std::string ToString(int precision = 4) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

// Matrix product a*b (dispatches to the blocked kernel in ops.cc).
Matrix operator*(const Matrix& a, const Matrix& b);

// Matrix-vector product.
Vector operator*(const Matrix& a, const Vector& x);

}  // namespace smfl::la

#endif  // SMFL_LA_MATRIX_H_
