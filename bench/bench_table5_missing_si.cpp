// Reproduces Table V: imputation RMS when the spatial information columns
// also lose values (10% missing rate over ALL columns).
//
// Expected shape (paper): everyone degrades vs Table IV; SMFL still lowest.

#include "bench/bench_util.h"
#include "src/impute/registry.h"

using namespace smfl;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  const auto methods = impute::RegisteredImputers();
  std::vector<std::string> columns = {"Dataset"};
  columns.insert(columns.end(), methods.begin(), methods.end());
  exp::ReportTable table(columns);

  for (const std::string& dataset_name : bench::PaperDatasets()) {
    auto prepared = bench::ValueOrDie(
        exp::PrepareDataset(dataset_name, bench::RowsFor(config, dataset_name)));
    table.BeginRow(dataset_name);
    for (const std::string& method : methods) {
      auto imputer = bench::ValueOrDie(impute::MakeImputer(method));
      exp::TrialOptions options;
      options.trials = config.trials;
      options.missing_rate = 0.1;
      options.missing_in_spatial = true;
      auto result = exp::RunImputationTrials(prepared, *imputer, options);
      if (result.ok()) {
        table.AddNumber(result->mean_rms);
      } else {
        table.AddCell("ERR");
      }
    }
  }
  table.Print(
      "Table V: imputation RMS error with spatial information also missing");
  std::printf("%s", table.ToCsv().c_str());
  return 0;
}
