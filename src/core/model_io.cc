#include "src/core/model_io.h"

#include <sstream>
#include <vector>

#include "src/common/durable_io.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

namespace smfl::core {

namespace {

constexpr const char* kMagic = "smfl-model";
// v1: factors + landmarks + trace. v2 adds the fitted min-max normalizer
// so serving transforms fresh rows with the TRAINING ranges (see
// docs/serving.md). v3 wraps the same text body in the checksummed
// durable-io container (per-section CRC32, atomic replace on save) so a
// torn write or bit flip surfaces as a clean DataError instead of a
// silently wrong model. v1/v2 bare-text files still load.
constexpr int kVersion = 3;
constexpr int kMinSupportedVersion = 1;

// Section order of the v3 container; the concatenated payloads form
// exactly the legacy text body, so one parser serves every version.
constexpr const char* kSectionOrder[] = {"meta", "normalizer", "U",
                                         "V",    "C",          "trace"};

// A fitted model is N x K + K x M + K x L doubles — a corrupt or hostile
// header claiming more than these bounds is rejected before any
// allocation happens (a huge rows*cols would otherwise overflow or abort
// with bad_alloc).
constexpr long long kMaxMatrixDim = 1LL << 24;    // 16M rows or cols
constexpr long long kMaxMatrixElems = 1LL << 27;  // 128M doubles = 1 GiB
constexpr long long kMaxTraceLen = 1LL << 24;

void WriteMatrix(std::ostringstream& os, const char* name, const Matrix& m) {
  os << name << " " << m.rows() << " " << m.cols() << "\n";
  os.precision(17);
  for (Index i = 0; i < m.rows(); ++i) {
    for (Index j = 0; j < m.cols(); ++j) {
      os << m(i, j) << (j + 1 < m.cols() ? " " : "");
    }
    os << "\n";
  }
}

// Reads "name rows cols" then rows*cols doubles.
Result<Matrix> ReadMatrix(std::istringstream& is, const std::string& name) {
  std::string tag;
  long long rows = -1, cols = -1;
  if (!(is >> tag >> rows >> cols) || tag != name) {
    return Status::DataError("model file: expected matrix block '" + name +
                             "'");
  }
  if (rows < 0 || cols < 0) {
    return Status::DataError("model file: negative dimensions for '" + name +
                             "'");
  }
  if (rows > kMaxMatrixDim || cols > kMaxMatrixDim ||
      (rows > 0 && cols > kMaxMatrixElems / rows)) {
    return Status::DataError(
        "model file: implausible dimensions " + std::to_string(rows) + "x" +
        std::to_string(cols) + " for '" + name + "'");
  }
  Matrix m(static_cast<Index>(rows), static_cast<Index>(cols));
  for (Index i = 0; i < m.size(); ++i) {
    if (!(is >> m.data()[i])) {
      return Status::DataError("model file: truncated matrix '" + name + "'");
    }
  }
  return m;
}

}  // namespace

std::string SerializeModel(const SmflModel& model) {
  // Each logical block becomes one CRC-framed container section; joined in
  // kSectionOrder the payloads reproduce the legacy (v1/v2-shaped) text
  // body, just with a bumped version number.
  std::ostringstream meta;
  meta << kMagic << " " << kVersion << "\n";
  meta << "spatial_cols " << model.spatial_cols << "\n";
  meta << "iterations " << model.report.iterations << " converged "
       << (model.report.converged ? 1 : 0) << "\n";

  std::ostringstream norm;
  norm.precision(17);
  if (model.normalizer.has_value()) {
    norm << "normalizer " << model.normalizer->NumCols() << "\n";
    for (Index j = 0; j < model.normalizer->NumCols(); ++j) {
      norm << model.normalizer->ColMin(j) << " "
           << model.normalizer->ColMax(j) << "\n";
    }
  } else {
    norm << "normalizer 0\n";
  }

  std::ostringstream u_os, v_os, c_os;
  WriteMatrix(u_os, "U", model.u);
  WriteMatrix(v_os, "V", model.v);
  WriteMatrix(c_os, "C", model.landmarks);

  std::ostringstream trace;
  trace << "trace " << model.report.objective_trace.size() << "\n";
  trace.precision(17);
  for (double v : model.report.objective_trace) trace << v << "\n";

  SectionWriter writer;
  writer.Add("meta", meta.str());
  writer.Add("normalizer", norm.str());
  writer.Add("U", u_os.str());
  writer.Add("V", v_os.str());
  writer.Add("C", c_os.str());
  writer.Add("trace", trace.str());
  return writer.Finish();
}

Status SaveModel(const SmflModel& model, const std::string& path) {
  return WriteFileDurable(path, SerializeModel(model));
}

namespace {

// Parses the text body shared by every format version (the whole file for
// v1/v2, the concatenated section payloads for v3+).
Result<SmflModel> ParseModelBody(const std::string& content) {
  std::istringstream is(content);
  std::string magic;
  int version = -1;
  if (!(is >> magic >> version) || magic != kMagic) {
    return Status::DataError("not an smfl model file");
  }
  if (version < kMinSupportedVersion || version > kVersion) {
    return Status::DataError("unsupported model version " +
                             std::to_string(version));
  }
  SmflModel model;
  std::string tag;
  long long spatial_cols = -1;
  if (!(is >> tag >> spatial_cols) || tag != "spatial_cols" ||
      spatial_cols < 0 || spatial_cols > kMaxMatrixDim) {
    return Status::DataError("model file: bad spatial_cols");
  }
  model.spatial_cols = static_cast<Index>(spatial_cols);
  int converged = 0;
  std::string converged_tag;
  if (!(is >> tag >> model.report.iterations >> converged_tag >> converged) ||
      tag != "iterations" || converged_tag != "converged") {
    return Status::DataError("model file: bad iterations header");
  }
  model.report.converged = converged != 0;
  if (version >= 2) {
    long long norm_cols = -1;
    if (!(is >> tag >> norm_cols) || tag != "normalizer" || norm_cols < 0 ||
        norm_cols > kMaxMatrixDim) {
      return Status::DataError("model file: bad normalizer header");
    }
    if (norm_cols > 0) {
      std::vector<double> mins(static_cast<size_t>(norm_cols));
      std::vector<double> maxs(static_cast<size_t>(norm_cols));
      for (long long j = 0; j < norm_cols; ++j) {
        if (!(is >> mins[static_cast<size_t>(j)] >>
              maxs[static_cast<size_t>(j)])) {
          return Status::DataError("model file: truncated normalizer bounds");
        }
      }
      auto normalizer = data::MinMaxNormalizer::FromBounds(std::move(mins),
                                                           std::move(maxs));
      if (!normalizer.ok()) {
        Status st = normalizer.status();
        return st.WithContext("model file");
      }
      model.normalizer = std::move(normalizer).value();
    }
  } else {
    SMFL_LOG(Warning)
        << "model file is format v1 (no stored normalizer): `smfl apply` "
           "will re-fit normalization ranges on each fresh batch, which is "
           "only correct when the fresh data spans the training ranges; "
           "re-save with `smfl fit` to upgrade";
  }
  ASSIGN_OR_RETURN(model.u, ReadMatrix(is, "U"));
  ASSIGN_OR_RETURN(model.v, ReadMatrix(is, "V"));
  ASSIGN_OR_RETURN(model.landmarks, ReadMatrix(is, "C"));
  long long trace_size = -1;
  if (!(is >> tag >> trace_size) || tag != "trace" || trace_size < 0 ||
      trace_size > kMaxTraceLen) {
    return Status::DataError("model file: bad trace header");
  }
  model.report.objective_trace.resize(static_cast<size_t>(trace_size));
  for (double& v : model.report.objective_trace) {
    if (!(is >> v)) return Status::DataError("model file: truncated trace");
  }
  // Consistency checks.
  if (model.u.cols() != model.v.rows()) {
    return Status::DataError("model file: U/V rank mismatch");
  }
  if (model.landmarks.size() > 0 &&
      (model.landmarks.rows() != model.v.rows() ||
       model.landmarks.cols() > model.v.cols())) {
    return Status::DataError("model file: landmark shape mismatch");
  }
  if (model.spatial_cols > model.v.cols()) {
    return Status::DataError("model file: spatial_cols exceeds columns");
  }
  if (model.normalizer.has_value() &&
      model.normalizer->NumCols() != model.v.cols()) {
    return Status::DataError("model file: normalizer column-count mismatch");
  }
  return model;
}

}  // namespace

Result<SmflModel> DeserializeModel(const std::string& content) {
  if (!LooksLikeDurableContainer(content)) {
    // v1/v2 bare text file.
    return ParseModelBody(content);
  }
  ASSIGN_OR_RETURN(std::vector<Section> sections, ParseSections(content));
  constexpr size_t kNumSections =
      sizeof(kSectionOrder) / sizeof(kSectionOrder[0]);
  if (sections.size() != kNumSections) {
    return Status::DataError(StrFormat(
        "model file: expected %zu sections, found %zu", kNumSections,
        sections.size()));
  }
  std::string body;
  for (size_t i = 0; i < kNumSections; ++i) {
    if (sections[i].name != kSectionOrder[i]) {
      return Status::DataError(StrFormat(
          "model file: expected section '%s' at position %zu, found '%s'",
          kSectionOrder[i], i, sections[i].name.c_str()));
    }
    body += sections[i].payload;
  }
  return ParseModelBody(body);
}

Result<SmflModel> LoadModel(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) {
    Status st = content.status();
    return st.WithContext("while loading '" + path + "'");
  }
  auto model = DeserializeModel(content.value());
  if (!model.ok()) {
    Status st = model.status();
    return st.WithContext("while loading '" + path + "'");
  }
  return model;
}

}  // namespace smfl::core
