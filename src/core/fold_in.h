// Fold-in: impute NEW tuples against an already fitted SMFL model without
// refitting.
//
// Serving scenario: a model was fit on the historical table (and possibly
// reloaded via model_io); fresh sensor rows arrive with holes. Fold-in
// solves for each new row's coefficient vector u ≥ 0 against the frozen
// feature matrix V over the row's observed cells — the single-row analogue
// of the U update (Formula 13 without the Laplacian term, since a lone row
// has no graph edges) — then reconstructs the missing cells as u·V.
// Initialization reuses the landmark kernel when the row's coordinates are
// observed, so fold-in inherits SMFL's geographic anchoring.

#ifndef SMFL_CORE_FOLD_IN_H_
#define SMFL_CORE_FOLD_IN_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/smfl.h"

namespace smfl::core {

struct FoldInOptions {
  // Multiplicative updates on the row's coefficient vector.
  int max_iterations = 200;
  double tolerance = 1e-8;
};

// Imputes one new row. `row` has the model's column count; only entries
// with observed_row[j] true are read (the rest may hold anything). Returns
// the completed row: observed cells copied, missing cells reconstructed.
Result<la::Vector> FoldInRow(const SmflModel& model, const la::Vector& row,
                             const std::vector<bool>& observed_row,
                             const FoldInOptions& options = {});

// Batch version over the rows of `x` with a Mask; returns the completed
// matrix (observed entries preserved).
Result<Matrix> FoldIn(const SmflModel& model, const Matrix& x,
                      const Mask& observed,
                      const FoldInOptions& options = {});

}  // namespace smfl::core

#endif  // SMFL_CORE_FOLD_IN_H_
