// Deterministic random number generation.
//
// Every stochastic component in the library (initialization, injectors,
// generators, k-means++) draws from an explicitly seeded Rng so experiments
// are exactly reproducible. The engine is splitmix64 + xoshiro256**, which is
// fast, high quality, and has a stable cross-platform stream (unlike
// std::mt19937 distributions, whose output is implementation-defined for
// std::normal_distribution etc. — we implement our own transforms).

#ifndef SMFL_COMMON_RNG_H_
#define SMFL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smfl {

// Complete engine state, capturable and restorable bit-exactly. The cached
// Box–Muller normal is carried as raw bits so a checkpointed stream resumes
// on the same draw sequence down to the last ulp (src/core/checkpoint.*).
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool have_cached_normal = false;
  uint64_t cached_normal_bits = 0;
};

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  // Re-seeds the stream; same seed => same sequence on all platforms.
  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double Uniform();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal via Box–Muller (deterministic, platform-stable).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  // A random permutation of {0, ..., n-1} (Fisher–Yates).
  std::vector<size_t> Permutation(size_t n);

  // Samples k distinct indices from {0, ..., n-1}. Precondition: k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Derives an independent child stream (for per-worker determinism).
  Rng Fork();

  // Snapshot / restore of the full engine state (crash-safe checkpoints).
  // RestoreState(GetState()) is an exact no-op on the output stream.
  RngState GetState() const;
  void SetState(const RngState& state);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace smfl

#endif  // SMFL_COMMON_RNG_H_
