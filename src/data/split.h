// Row-level dataset splitting utilities: random train/test partitions and
// K-fold assignments, deterministic per seed. Used by model selection
// workflows and the fold-in evaluation.

#ifndef SMFL_DATA_SPLIT_H_
#define SMFL_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::data {

using la::Index;

struct TrainTestSplit {
  std::vector<Index> train_rows;  // ascending
  std::vector<Index> test_rows;   // ascending
};

// Randomly assigns `test_fraction` of the n rows to the test set. Requires
// 0 < test_fraction < 1 and that both sides end up non-empty.
Result<TrainTestSplit> SplitTrainTest(Index n, double test_fraction,
                                      uint64_t seed);

// fold_of[i] in [0, k): a random balanced K-fold assignment (fold sizes
// differ by at most one). Requires 2 <= k <= n.
Result<std::vector<Index>> AssignKFolds(Index n, Index k, uint64_t seed);

// The rows in / not in fold `fold` of an AssignKFolds result (ascending).
std::vector<Index> FoldRows(const std::vector<Index>& fold_of, Index fold);
std::vector<Index> NonFoldRows(const std::vector<Index>& fold_of, Index fold);

}  // namespace smfl::data

#endif  // SMFL_DATA_SPLIT_H_
