// Small string utilities shared by CSV parsing and report printing.

#ifndef SMFL_COMMON_STRINGS_H_
#define SMFL_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace smfl {

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

// Strict double parse: the whole (trimmed) string must be consumed.
Result<double> ParseDouble(std::string_view s);

// Strict integer parse.
Result<int64_t> ParseInt(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Joins items with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Lower-cases ASCII.
std::string ToLower(std::string_view s);

}  // namespace smfl

#endif  // SMFL_COMMON_STRINGS_H_
