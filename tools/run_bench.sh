#!/usr/bin/env bash
# Benchmark baseline: measures the deterministic parallel execution layer,
# the fused masked-reconstruction kernel, fold-in serving throughput, and
# the telemetry disabled-path overhead, and writes the results to
# BENCH_PR4.json at the repository root (superseding the PR 2 baseline,
# which lacked the host block and the telemetry guard).
#
# What runs:
#   1. bench_fig9_scalability (MF family: NMF / SMF / SMFL, lake dataset,
#      250/500/1000 rows) at SMFL_THREADS = 1, 2, 4 and the machine's
#      hardware concurrency — thread-scaling of the fit loop.
#   2. The same slice at 1 thread with SMFL_BENCH_LEGACY_RECONSTRUCT=1 —
#      the pre-fusion 3-reconstructions-per-iteration cost — to isolate
#      the single-threaded win of MaskedReconstruct + hoisting.
#   3. bench_kernels: MatMul/MatMulAtB/MatMulABt at each thread count,
#      fused MaskedReconstruct vs unfused ApplyMask(MatMul) at observed
#      rates 90/50/10% (the fused kernel computes only Ω entries, so its
#      advantage grows as the mask gets sparser), and BM_FoldInBatch —
#      batched fold-in serving throughput, reported as rows/sec per
#      thread count.
#   4. bench_table4_imputation (all methods, all datasets, 1 trial) at the
#      same thread counts, timed end to end.
#   5. BM_TelemetryOverhead (inside bench_kernels): the per-instrument cost
#      with collection off (must stay at nanoseconds — the disabled-path
#      guard) and on (the number quoted in docs/observability.md).
#
# Results are bitwise identical across thread counts by construction (see
# docs/performance.md); this script only measures wall clock. Speedups are
# whatever the hardware gives: on a single-core container the threaded
# numbers will hover near 1.0x and only the fusion win is visible.
#
# Usage: tools/run_bench.sh [--quick]
#   --quick  fewer rows for table4 (smoke-test the harness, not a baseline)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build"
out_json="$repo_root/BENCH_PR4.json"

table4_rows=400
table4_trials=1
if [[ "${1:-}" == "--quick" ]]; then
  table4_rows=150
fi

if [[ ! -x "$build_dir/bench/bench_fig9_scalability" ]]; then
  echo "==> bench binaries missing; building $build_dir"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j
fi

ncores="$(nproc)"
cpu_model="$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo \
             2>/dev/null || true)"
cpu_model="${cpu_model:-unknown}"
thread_counts="1 2 4 $ncores"
# Deduplicate while preserving order (e.g. ncores = 1, 2 or 4).
thread_counts="$(tr ' ' '\n' <<<"$thread_counts" | awk '!seen[$0]++' | tr '\n' ' ')"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

fig9_filter='Fig9/lake/(NMF|SMF|SMFL)'

echo "==> machine: $ncores hardware thread(s); thread counts: $thread_counts"

# Median of 5 repetitions: each repetition is one full Impute() call
# (Iterations(1) manual timing in the bench), so the median is robust to
# scheduler noise without inflating runtime much.
fig9_flags=(--benchmark_filter="$fig9_filter" --benchmark_repetitions=5
            --benchmark_report_aggregates_only=true
            --benchmark_out_format=json)

for t in $thread_counts; do
  echo "==> fig9 scalability slice @ $t thread(s)"
  SMFL_THREADS="$t" "$build_dir/bench/bench_fig9_scalability" \
      "${fig9_flags[@]}" --benchmark_out="$scratch/fig9_t$t.json" >/dev/null
done

echo "==> fig9 slice @ 1 thread, legacy (unfused) reconstruction"
SMFL_THREADS=1 SMFL_BENCH_LEGACY_RECONSTRUCT=1 \
    "$build_dir/bench/bench_fig9_scalability" \
    "${fig9_flags[@]}" --benchmark_out="$scratch/fig9_legacy.json" >/dev/null

kernel_flags=(--benchmark_repetitions=3 --benchmark_report_aggregates_only=true
              --benchmark_out_format=json)
for t in $thread_counts; do
  echo "==> kernel microbench @ $t thread(s)"
  SMFL_THREADS="$t" "$build_dir/bench/bench_kernels" \
      "${kernel_flags[@]}" --benchmark_out="$scratch/kernels_t$t.json" \
      >/dev/null
done

for t in $thread_counts; do
  echo "==> table4 imputation @ $t thread(s) (rows=$table4_rows)"
  start_ns="$(date +%s%N)"
  SMFL_THREADS="$t" "$build_dir/bench/bench_table4_imputation" \
      --rows="$table4_rows" --trials="$table4_trials" \
      >"$scratch/table4_t$t.txt"
  end_ns="$(date +%s%N)"
  echo "$(( (end_ns - start_ns) / 1000000 ))" >"$scratch/table4_t$t.ms"
done

echo "==> merging results into $out_json"
SCRATCH="$scratch" NCORES="$ncores" CPU_MODEL="$cpu_model" \
THREAD_COUNTS="$thread_counts" \
TABLE4_ROWS="$table4_rows" OUT_JSON="$out_json" python3 - <<'PY'
import json, os, re

scratch = os.environ["SCRATCH"]
threads = [int(t) for t in os.environ["THREAD_COUNTS"].split()]
ncores = int(os.environ["NCORES"])

def fig9_times(path):
    """base benchmark name -> median real_time in ms across repetitions."""
    with open(path) as f:
        doc = json.load(f)
    return {b["run_name"]: b["real_time"] for b in doc["benchmarks"]
            if b.get("aggregate_name") == "median"}

per_thread = {t: fig9_times(f"{scratch}/fig9_t{t}.json") for t in threads}
legacy = fig9_times(f"{scratch}/fig9_legacy.json")
base = per_thread[1]

fig9 = {}
for name in sorted(base):
    m = re.match(r"Fig9/(\w+)/(\w+)/(\d+)", name)
    entry = {
        "dataset": m.group(1), "method": m.group(2), "rows": int(m.group(3)),
        "ms_per_thread_count": {str(t): round(per_thread[t][name], 3)
                                for t in threads},
        "speedup_vs_1_thread": {str(t): round(base[name] / per_thread[t][name], 3)
                                for t in threads},
    }
    if name in legacy:
        entry["legacy_unfused_ms_1_thread"] = round(legacy[name], 3)
        entry["fusion_speedup_1_thread"] = round(legacy[name] / base[name], 3)
    fig9[name] = entry

kernels_per_thread = {t: fig9_times(f"{scratch}/kernels_t{t}.json")
                      for t in threads}
kbase = kernels_per_thread[1]
kernels = {}
for name in sorted(kbase):
    if name.startswith("BM_TelemetryOverhead"):
        continue  # nanosecond-scale; reported in its own block below
    kernels[name] = {
        "ms_per_thread_count": {str(t): round(kernels_per_thread[t][name], 4)
                                for t in threads},
        "speedup_vs_1_thread": {
            str(t): round(kbase[name] / kernels_per_thread[t][name], 3)
            for t in threads},
    }
fusion = {}
for arg in (90, 50, 10):
    fused = kbase[f"BM_MaskedReconstructFused/{arg}"]
    unfused = kbase[f"BM_MaskedReconstructUnfused/{arg}"]
    fusion[f"observed_{arg}pct"] = {
        "fused_ms": round(fused, 4), "unfused_ms": round(unfused, 4),
        "speedup": round(unfused / fused, 3),
    }

# Fold-in serving throughput: median real_time is ms per FoldIn() batch,
# so rows / (ms / 1000) = rows served per second at that thread count.
foldin = {}
for arg in (64, 512, 2048):
    name = f"BM_FoldInBatch/{arg}"
    if name not in kbase:
        continue
    per_thread_rps = {
        str(t): round(arg / (kernels_per_thread[t][name] / 1000.0), 1)
        for t in threads}
    foldin[f"batch_{arg}_rows"] = {
        "ms_per_batch_per_thread_count": {
            str(t): round(kernels_per_thread[t][name], 4) for t in threads},
        "rows_per_sec_per_thread_count": per_thread_rps,
        "speedup_vs_1_thread": {
            str(t): round(kbase[name] / kernels_per_thread[t][name], 3)
            for t in threads},
    }

# Telemetry overhead: median real_time is ns per loop iteration, and each
# iteration runs 3 instruments (counter + histogram + span), so ns/3 is
# the per-instrument cost. Arg 0 = collection off (the disabled-path
# guard), Arg 1 = on.
with open(f"{scratch}/kernels_t1.json") as f:
    kdoc = json.load(f)
telemetry_units = {b["run_name"]: b.get("time_unit", "ns")
                   for b in kdoc["benchmarks"]
                   if b.get("aggregate_name") == "median"}
telemetry = {}
for arg, label in ((0, "disabled"), (1, "enabled")):
    name = f"BM_TelemetryOverhead/{arg}"
    if name in kbase:
        telemetry[label] = {
            "per_iteration": round(kbase[name], 3),
            "per_instrument": round(kbase[name] / 3.0, 3),
            "time_unit": telemetry_units.get(name, "ns"),
        }
if "disabled" in telemetry and "enabled" in telemetry:
    telemetry["enabled_vs_disabled_ratio"] = round(
        telemetry["enabled"]["per_iteration"] /
        max(telemetry["disabled"]["per_iteration"], 1e-9), 2)

table4 = {}
for t in threads:
    with open(f"{scratch}/table4_t{t}.ms") as f:
        table4[str(t)] = {"wall_ms": int(f.read().strip())}
t4_base = table4["1"]["wall_ms"]
for t in threads:
    table4[str(t)]["speedup_vs_1_thread"] = round(
        t4_base / table4[str(t)]["wall_ms"], 3)

largest = max((e for e in fig9.values() if e["method"] == "SMFL"),
              key=lambda e: e["rows"])
out = {
    "pr": 4,
    "generated_by": "tools/run_bench.sh",
    "host": {
        "cores": ncores,
        "cpu_model": os.environ["CPU_MODEL"],
        "thread_counts": threads,
        "note": ("thread-scaling numbers are bounded by physical cores; "
                 "on a 1-core machine only the fusion speedup is visible"),
    },
    "determinism": "outputs bitwise identical across all thread counts "
                   "and with telemetry on or off "
                   "(tests/kernel_equivalence_test.cc)",
    "fig9_scalability_mf_family": fig9,
    "kernel_microbench": kernels,
    "masked_reconstruct_fusion_1_thread": fusion,
    "foldin_serving_throughput": foldin,
    "telemetry_overhead": telemetry,
    "table4_imputation_end_to_end": {
        "rows": int(os.environ["TABLE4_ROWS"]),
        "per_thread_count": table4,
    },
    "headline": {
        "largest_config": f"Fig9/lake/SMFL/{largest['rows']}",
        "end_to_end_fusion_speedup_1_thread":
            largest.get("fusion_speedup_1_thread"),
        "kernel_fusion_speedup_10pct_observed":
            fusion["observed_10pct"]["speedup"],
        "threaded_speedup_at_max":
            largest["speedup_vs_1_thread"][str(threads[-1])],
        "foldin_rows_per_sec_at_max_threads": foldin.get(
            "batch_2048_rows", {}).get(
            "rows_per_sec_per_thread_count", {}).get(str(threads[-1])),
        "telemetry_disabled_ns_per_instrument": telemetry.get(
            "disabled", {}).get("per_instrument"),
    },
}
with open(os.environ["OUT_JSON"], "w") as f:
    json.dump(out, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {os.environ['OUT_JSON']}")
print(json.dumps(out["headline"], indent=2))
PY
