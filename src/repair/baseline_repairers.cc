#include "src/repair/baseline_repairers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/impute/neighbor_util.h"

namespace smfl::repair {

namespace {

Status ValidateShape(const Matrix& dirty, const Mask& dirty_cells) {
  if (dirty.rows() == 0 || dirty.cols() == 0) {
    return Status::InvalidArgument("Repair: empty matrix");
  }
  if (dirty_cells.rows() != dirty.rows() ||
      dirty_cells.cols() != dirty.cols()) {
    return Status::InvalidArgument("Repair: mask shape mismatch");
  }
  return Status::OK();
}

// Median of the clean values in column j; falls back to 0.5 (mid-range of
// normalized data) when the column has no clean cells.
double CleanColumnMedian(const Matrix& x, const Mask& dirty_cells, Index j) {
  std::vector<double> vals;
  for (Index i = 0; i < x.rows(); ++i) {
    if (!dirty_cells.Contains(i, j)) vals.push_back(x(i, j));
  }
  if (vals.empty()) return 0.5;
  const size_t mid = vals.size() / 2;
  std::nth_element(vals.begin(), vals.begin() + mid, vals.end());
  return vals[mid];
}

// Per-column equal-width histogram over clean cells; returns bin centers
// and counts.
struct ColumnHistogram {
  double lo = 0.0, hi = 1.0;
  std::vector<double> counts;

  Index NumBins() const { return static_cast<Index>(counts.size()); }
  Index BinOf(double v) const {
    if (hi <= lo) return 0;
    const double t = (v - lo) / (hi - lo);
    const Index b = static_cast<Index>(t * static_cast<double>(NumBins()));
    return std::clamp<Index>(b, 0, NumBins() - 1);
  }
  double Center(Index b) const {
    return lo + (static_cast<double>(b) + 0.5) * (hi - lo) /
                    static_cast<double>(NumBins());
  }
};

ColumnHistogram BuildHistogram(const Matrix& x, const Mask& dirty_cells,
                               Index j, Index bins) {
  ColumnHistogram h;
  h.lo = std::numeric_limits<double>::infinity();
  h.hi = -std::numeric_limits<double>::infinity();
  for (Index i = 0; i < x.rows(); ++i) {
    if (dirty_cells.Contains(i, j)) continue;
    h.lo = std::min(h.lo, x(i, j));
    h.hi = std::max(h.hi, x(i, j));
  }
  if (!std::isfinite(h.lo)) {
    h.lo = 0.0;
    h.hi = 1.0;
  }
  if (h.hi - h.lo < 1e-12) h.hi = h.lo + 1e-12;
  h.counts.assign(static_cast<size_t>(bins), 0.0);
  for (Index i = 0; i < x.rows(); ++i) {
    if (dirty_cells.Contains(i, j)) continue;
    h.counts[static_cast<size_t>(h.BinOf(x(i, j)))] += 1.0;
  }
  return h;
}

}  // namespace

Result<Matrix> BaranLikeRepairer::Repair(const Matrix& dirty,
                                         const Mask& dirty_cells,
                                         Index /*spatial_cols*/) const {
  RETURN_NOT_OK(ValidateShape(dirty, dirty_cells));
  const Index n = dirty.rows(), m = dirty.cols();
  const Mask clean = dirty_cells.Complement();
  Matrix out = dirty;

  // Precompute the per-column correctors that do not depend on the tuple.
  std::vector<double> medians(static_cast<size_t>(m));
  std::vector<double> mode_centers(static_cast<size_t>(m));
  for (Index j = 0; j < m; ++j) {
    medians[static_cast<size_t>(j)] = CleanColumnMedian(dirty, dirty_cells, j);
    ColumnHistogram h = BuildHistogram(dirty, dirty_cells, j, options_.bins);
    Index best = 0;
    for (Index b = 1; b < h.NumBins(); ++b) {
      if (h.counts[static_cast<size_t>(b)] >
          h.counts[static_cast<size_t>(best)]) {
        best = b;
      }
    }
    mode_centers[static_cast<size_t>(j)] = h.Center(best);
  }

  for (Index i = 0; i < n; ++i) {
    if (clean.RowFullySet(i)) continue;
    const std::vector<Index> clean_cols = impute::ObservedColumns(clean, i);
    for (Index j = 0; j < m; ++j) {
      if (!dirty_cells.Contains(i, j)) continue;
      double acc = 0.0;
      int correctors = 0;
      // Value corrector.
      acc += medians[static_cast<size_t>(j)];
      ++correctors;
      // Domain corrector.
      acc += mode_centers[static_cast<size_t>(j)];
      ++correctors;
      // Vicinity corrector: average over nearest tuples that are clean on
      // the matching columns and on the target column.
      if (!clean_cols.empty()) {
        std::vector<Index> needed = clean_cols;
        needed.push_back(j);
        std::vector<Index> donors = impute::RowsCompleteOn(clean, needed);
        auto nn = impute::NearestAmong(dirty, i, donors, clean_cols,
                                       options_.k);
        if (!nn.empty()) {
          double v = 0.0;
          for (const auto& s : nn) v += dirty(s.row, j);
          acc += v / static_cast<double>(nn.size());
          ++correctors;
        }
      }
      out(i, j) = acc / static_cast<double>(correctors);
    }
  }
  return out;
}

Result<Matrix> HolocleanLikeRepairer::Repair(const Matrix& dirty,
                                             const Mask& dirty_cells,
                                             Index /*spatial_cols*/) const {
  RETURN_NOT_OK(ValidateShape(dirty, dirty_cells));
  const Index n = dirty.rows(), m = dirty.cols();
  const Index bins = options_.bins;
  Matrix out = dirty;

  // Statistical signals: per-column histograms and pairwise co-occurrence
  // counts over rows where both cells are clean.
  std::vector<ColumnHistogram> hist;
  hist.reserve(static_cast<size_t>(m));
  for (Index j = 0; j < m; ++j) {
    hist.push_back(BuildHistogram(dirty, dirty_cells, j, bins));
  }
  // cooc[j][k](b_j, b_k): joint clean counts of (column j in bin b_j,
  // column k in bin b_k).
  std::vector<std::vector<Matrix>> cooc(
      static_cast<size_t>(m),
      std::vector<Matrix>(static_cast<size_t>(m), Matrix(bins, bins)));
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < m; ++j) {
      if (dirty_cells.Contains(i, j)) continue;
      const Index bj = hist[static_cast<size_t>(j)].BinOf(dirty(i, j));
      for (Index k = 0; k < m; ++k) {
        if (k == j || dirty_cells.Contains(i, k)) continue;
        const Index bk = hist[static_cast<size_t>(k)].BinOf(dirty(i, k));
        cooc[static_cast<size_t>(j)][static_cast<size_t>(k)](bj, bk) += 1.0;
      }
    }
  }

  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < m; ++j) {
      if (!dirty_cells.Contains(i, j)) continue;
      // Posterior over candidate bins of column j, from the product of
      // pairwise conditionals given the tuple's clean cells (log space).
      std::vector<double> logp(static_cast<size_t>(bins), 0.0);
      // Prior: the column's own histogram.
      for (Index b = 0; b < bins; ++b) {
        logp[static_cast<size_t>(b)] = std::log(
            hist[static_cast<size_t>(j)].counts[static_cast<size_t>(b)] +
            options_.smoothing);
      }
      for (Index k = 0; k < m; ++k) {
        if (k == j || dirty_cells.Contains(i, k)) continue;
        const Index bk = hist[static_cast<size_t>(k)].BinOf(dirty(i, k));
        const Matrix& joint =
            cooc[static_cast<size_t>(j)][static_cast<size_t>(k)];
        for (Index b = 0; b < bins; ++b) {
          logp[static_cast<size_t>(b)] +=
              std::log(joint(b, bk) + options_.smoothing);
        }
      }
      // MAP repair: HoloClean predicts the highest-probability candidate
      // value from its (pruned, discretized) domain, so the repair is the
      // center of the most probable bin — not a posterior expectation.
      const Index best = static_cast<Index>(
          std::max_element(logp.begin(), logp.end()) - logp.begin());
      out(i, j) = hist[static_cast<size_t>(j)].Center(best);
    }
  }
  return out;
}

}  // namespace smfl::repair
