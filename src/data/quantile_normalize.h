// Robust quantile normalization to [0, 1] per column, mask-aware.
//
// Min-max normalization collapses when a column contains outliers: one bad
// sensor reading compresses the entire healthy range into a sliver. The
// quantile normalizer maps [q_lo, q_hi] (default the 1st..99th percentile
// of the observed cells) onto [0, 1] and clamps values outside — the
// robust preprocessing choice for raw field data. The inverse transform is
// exact for values inside the quantile band (clamped values are not
// recoverable, by construction).

#ifndef SMFL_DATA_QUANTILE_NORMALIZE_H_
#define SMFL_DATA_QUANTILE_NORMALIZE_H_

#include <vector>

#include "src/common/status.h"
#include "src/data/mask.h"

namespace smfl::data {

class QuantileNormalizer {
 public:
  // Learns per-column [quantile(q_lo), quantile(q_hi)] over the observed
  // cells. Requires 0 <= q_lo < q_hi <= 1 and at least one observed cell
  // per column (fully-unobserved columns get the identity band [0, 1]).
  static Result<QuantileNormalizer> Fit(const Matrix& x, const Mask& observed,
                                        double q_lo = 0.01,
                                        double q_hi = 0.99);

  static Result<QuantileNormalizer> Fit(const Matrix& x, double q_lo = 0.01,
                                        double q_hi = 0.99);

  // Maps into [0, 1], clamping outside the quantile band.
  Matrix Transform(const Matrix& x) const;

  // Inverse map; exact for in-band values.
  Matrix InverseTransform(const Matrix& x) const;
  double InverseTransformCell(double v, Index col) const;

  Index NumCols() const { return static_cast<Index>(lo_.size()); }
  double BandLo(Index j) const { return lo_[static_cast<size_t>(j)]; }
  double BandHi(Index j) const { return hi_[static_cast<size_t>(j)]; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace smfl::data

#endif  // SMFL_DATA_QUANTILE_NORMALIZE_H_
