#include "src/data/inject.h"

#include <algorithm>

#include "src/common/rng.h"

namespace smfl::data {

namespace {

// Validates shared options; returns the sorted set of protected rows.
Result<std::vector<Index>> PickProtectedRows(const Table& table, double rate,
                                             Index preserve, Rng& rng) {
  if (!(rate >= 0.0 && rate < 1.0)) {
    return Status::InvalidArgument("injection rate must be in [0, 1)");
  }
  const Index n = table.NumRows();
  const Index keep = std::min(preserve, n);
  auto picks = rng.SampleWithoutReplacement(static_cast<size_t>(n),
                                            static_cast<size_t>(keep));
  std::vector<Index> rows(picks.size());
  for (size_t i = 0; i < picks.size(); ++i) {
    rows[i] = static_cast<Index>(picks[i]);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool IsProtected(const std::vector<Index>& rows, Index i) {
  return std::binary_search(rows.begin(), rows.end(), i);
}

}  // namespace

Result<MissingInjection> InjectMissing(
    const Table& table, const MissingInjectionOptions& options) {
  Rng rng(options.seed);
  ASSIGN_OR_RETURN(std::vector<Index> protected_rows,
                   PickProtectedRows(table, options.missing_rate,
                                     options.preserve_complete_rows, rng));
  const Index n = table.NumRows(), m = table.NumCols();
  const Index first_col =
      options.include_spatial_cols ? 0 : table.SpatialCols();
  Mask observed = Mask::AllSet(n, m);
  for (Index i = 0; i < n; ++i) {
    if (IsProtected(protected_rows, i)) continue;
    bool removed_all = true;
    for (Index j = first_col; j < m; ++j) {
      if (rng.Bernoulli(options.missing_rate)) {
        observed.Set(i, j, false);
      } else {
        removed_all = false;
      }
    }
    // Never empty an entire tuple's eligible block: keep one value so the
    // row still carries information (matches the paper's setup where rows
    // are partially observed, not absent).
    if (removed_all && m > first_col) {
      const Index j = first_col + static_cast<Index>(rng.UniformInt(
                                      static_cast<uint64_t>(m - first_col)));
      observed.Set(i, j, true);
    }
  }
  return MissingInjection{std::move(observed)};
}

Result<ErrorInjection> InjectErrors(const Table& table,
                                    const ErrorInjectionOptions& options) {
  Rng rng(options.seed);
  ASSIGN_OR_RETURN(std::vector<Index> protected_rows,
                   PickProtectedRows(table, options.error_rate,
                                     options.preserve_complete_rows, rng));
  const Index n = table.NumRows(), m = table.NumCols();
  const Index first_col =
      options.include_spatial_cols ? 0 : table.SpatialCols();
  Matrix dirty = table.values();
  Mask dirty_cells(n, m);
  if (n < 2) return ErrorInjection{std::move(dirty), std::move(dirty_cells)};
  for (Index i = 0; i < n; ++i) {
    if (IsProtected(protected_rows, i)) continue;
    for (Index j = first_col; j < m; ++j) {
      if (!rng.Bernoulli(options.error_rate)) continue;
      // Replace with a value from another tuple in the same column
      // ("other values in the same domain").
      Index src;
      do {
        src = static_cast<Index>(rng.UniformInt(static_cast<uint64_t>(n)));
      } while (src == i);
      dirty(i, j) = table.values()(src, j);
      dirty_cells.Set(i, j);
    }
  }
  return ErrorInjection{std::move(dirty), std::move(dirty_cells)};
}

}  // namespace smfl::data
