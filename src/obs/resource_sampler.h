// Periodic /proc/self sampler feeding process-level gauges into the
// telemetry registry, so a /metrics scrape carries host-resource context
// next to the solver's own instruments:
//
//   process.rss_bytes      resident set size (statm * page size)
//   process.cpu_seconds    user + system CPU consumed (utime + stime)
//   process.open_fds       open file-descriptor count (/proc/self/fd)
//   process.threads        thread count (/proc/self/status Threads:)
//
// The sampler runs one background thread outside the deterministic
// parallel pool; it only READS /proc and writes gauges, never anything
// numeric code consumes. On platforms without /proc the gauges simply
// stay at their last (or zero) values — Start() still succeeds.

#ifndef SMFL_OBS_RESOURCE_SAMPLER_H_
#define SMFL_OBS_RESOURCE_SAMPLER_H_

#include <condition_variable>
#include <mutex>
#include <thread>

namespace smfl::obs {

struct ResourceSample {
  double rss_bytes = 0.0;
  double cpu_seconds = 0.0;
  double open_fds = 0.0;
  double threads = 0.0;
};

// Reads /proc/self once. Fields that cannot be read are left at zero.
ResourceSample ReadResourceSample();

class ResourceSampler {
 public:
  ResourceSampler() = default;
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  // Samples immediately, then every `interval_ms` until Stop().
  void Start(int interval_ms = 1000);
  void Stop();

  // One synchronous sample into the gauges (also what the thread does).
  static void SampleOnce();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  // smfl-lint: allow(thread) observational sampler thread, not a worker
  std::thread thread_;
};

}  // namespace smfl::obs

#endif  // SMFL_OBS_RESOURCE_SAMPLER_H_
