#include "src/common/strings.h"
#include "src/repair/baseline_repairers.h"
#include "src/repair/fallback.h"
#include "src/repair/mf_repairers.h"
#include "src/repair/repairer.h"

namespace smfl::repair {

Result<std::unique_ptr<Repairer>> MakeRepairer(const std::string& name) {
  const std::string key = ToLower(name);
  if (key == "baran") {
    return std::unique_ptr<Repairer>(new BaranLikeRepairer());
  }
  if (key == "holoclean") {
    return std::unique_ptr<Repairer>(new HolocleanLikeRepairer());
  }
  if (key == "nmf") return std::unique_ptr<Repairer>(new NmfRepairer());
  if (key == "smf") return std::unique_ptr<Repairer>(new SmfRepairer());
  if (key == "smfl") return std::unique_ptr<Repairer>(new SmflRepairer());
  if (key == "fallback") {
    return std::unique_ptr<Repairer>(new FallbackRepairer());
  }
  return Status::NotFound("no repairer named '" + name + "'");
}

std::vector<std::string> RegisteredRepairers() {
  return {"Baran", "HoloClean", "NMF", "SMF", "SMFL"};
}

}  // namespace smfl::repair
