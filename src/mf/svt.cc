#include "src/mf/svt.h"

#include <cmath>

#include "src/la/ops.h"
#include "src/la/svd.h"

namespace smfl::mf {

Result<SvtResult> CompleteSvt(const Matrix& x, const Mask& observed,
                              const SvtOptions& options) {
  const Index n = x.rows(), m = x.cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("CompleteSvt: empty matrix");
  }
  if (observed.rows() != n || observed.cols() != m) {
    return Status::InvalidArgument("CompleteSvt: mask shape mismatch");
  }
  const Index num_observed = observed.Count();
  if (num_observed == 0) {
    return Status::InvalidArgument("CompleteSvt: no observed entries");
  }
  const double tau =
      options.tau > 0.0
          ? options.tau
          : 5.0 * std::sqrt(static_cast<double>(n) * static_cast<double>(m));
  const double delta =
      options.step > 0.0
          ? options.step
          : 1.2 * static_cast<double>(n) * static_cast<double>(m) /
                static_cast<double>(num_observed);

  const Matrix x_observed = data::ApplyMask(x, observed);
  const double x_norm = std::max(la::FrobeniusNorm(x_observed), 1e-300);

  SvtResult result;
  result.completed = Matrix(n, m);
  Matrix y = x_observed * delta;  // dual variable
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.report.iterations = iter + 1;
    ASSIGN_OR_RETURN(result.completed, la::SoftThresholdSvd(y, tau));
    Matrix residual = data::ApplyMask(x - result.completed, observed);
    const double rel = la::FrobeniusNorm(residual) / x_norm;
    result.report.objective_trace.push_back(rel);
    if (rel < options.tolerance) {
      result.report.converged = true;
      break;
    }
    residual *= delta;
    y += residual;
  }
  return result;
}

}  // namespace smfl::mf
