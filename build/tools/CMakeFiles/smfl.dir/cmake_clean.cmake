file(REMOVE_RECURSE
  "CMakeFiles/smfl.dir/smfl_main.cpp.o"
  "CMakeFiles/smfl.dir/smfl_main.cpp.o.d"
  "smfl"
  "smfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
