// Landmark generation and injection (paper §III-A).
//
// Landmarks are the K centers of a K-means clustering of the spatial
// information SI. They are written into the first L columns of the feature
// matrix V (the set Φ of Definition 1) and frozen: their gradients are zero
// throughout training, which (a) pins the learned features to geography,
// (b) makes features interpretable as per-cluster profiles, and (c) skips
// the update work for those columns.

#ifndef SMFL_CORE_LANDMARKS_H_
#define SMFL_CORE_LANDMARKS_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::core {

using la::Index;
using la::Matrix;

struct LandmarkOptions {
  // K-means iteration budget (paper default t2 = 300, early stop).
  int kmeans_max_iterations = 300;
  uint64_t seed = 17;
};

// Runs K-means(K = rank) over the rows of `si` (N x L) and returns the
// center matrix C (rank x L). Formula 9's landmark values.
Result<Matrix> GenerateLandmarks(const Matrix& si, Index rank,
                                 const LandmarkOptions& options = {});

// Writes C into the first L columns of V (v_ij = c_ij for (i,j) in Φ).
// Requires V to be rank x M with M >= L.
void InjectLandmarks(Matrix& v, const Matrix& landmarks);

// True iff the first C.cols() columns of V equal C exactly (test hook for
// the frozen-landmark invariant).
bool LandmarksIntact(const Matrix& v, const Matrix& landmarks);

}  // namespace smfl::core

#endif  // SMFL_CORE_LANDMARKS_H_
