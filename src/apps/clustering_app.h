// Clustering-with-missing-values application (paper §IV-B4, Fig 4b).
//
// MF-based methods cluster incomplete data by factorizing the (masked)
// matrix and grouping tuples on the learned coefficient rows U (or PCA
// scores). Accuracy is measured against ground-truth labels under the
// optimal label permutation (Kuhn–Munkres).

#ifndef SMFL_APPS_CLUSTERING_APP_H_
#define SMFL_APPS_CLUSTERING_APP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/mask.h"

namespace smfl::apps {

using data::Mask;
using la::Index;
using la::Matrix;

enum class ClusterMethod {
  kPca,       // PCA scores + K-means
  kNmf,       // masked NMF coefficients + K-means
  kSmf,       // SMF coefficients + K-means
  kSmfl,      // SMFL coefficients + K-means
  kSpectral,  // spectral clustering of the spatial neighbor graph
              // (extension beyond the paper's method set; uses ONLY the
              // coordinates, so it calibrates how much of the clustering
              // signal is purely geographic)
};

const char* ClusterMethodName(ClusterMethod method);

struct ClusterAppOptions {
  Index num_clusters = 5;
  // Latent rank of the factorization (K); also the PCA dimension.
  Index rank = 5;
  uint64_t seed = 41;
};

// Clusters the partially observed matrix x (first `spatial_cols` columns
// spatial) and returns predicted labels.
Result<std::vector<Index>> ClusterIncomplete(ClusterMethod method,
                                             const Matrix& x,
                                             const Mask& observed,
                                             Index spatial_cols,
                                             const ClusterAppOptions& options);

// End-to-end: cluster and score against truth labels.
Result<double> ClusteringAccuracyOnIncomplete(
    ClusterMethod method, const Matrix& x, const Mask& observed,
    Index spatial_cols, const std::vector<Index>& truth,
    const ClusterAppOptions& options);

}  // namespace smfl::apps

#endif  // SMFL_APPS_CLUSTERING_APP_H_
