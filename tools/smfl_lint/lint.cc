// Driver for smfl_lint: file walking, per-path rule scoping, suppression
// matching, and output formatting. See lint.h for the rule catalogue.

#include "tools/smfl_lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/smfl_lint/rules.h"

namespace smfl::lint {

namespace {

namespace fs = std::filesystem;

const std::set<std::string> kKnownRules = {
    "thread",   "nondet",   "unordered-iter", "discard-status",
    "float-eq", "raw-log",  "raw-file-write", "raw-simd",
    "const-ref", "mask-scan", "raw-socket", "header-hygiene", "all",
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Test files are exempt from several rules: they intentionally compare
// exact values, print, and stress threading primitives.
bool IsTestFile(const std::string& rel) {
  if (rel.find("tests/") != std::string::npos) return true;
  const size_t slash = rel.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? rel : rel.substr(slash + 1);
  return base.find("_test.") != std::string::npos;
}

bool RuleApplies(const std::string& rule, const std::string& rel,
                 const LintOptions& options) {
  const bool test = IsTestFile(rel);
  if (rule == "thread") {
    return !test && !StartsWith(rel, "src/common/parallel.");
  }
  if (rule == "nondet") {
    return !test && !StartsWith(rel, "bench/") &&
           !StartsWith(rel, "src/common/rng.") &&
           rel != "src/common/stopwatch.h" && rel != "src/common/telemetry.cc";
  }
  if (rule == "unordered-iter") {
    return StartsWith(rel, "src/la/") || StartsWith(rel, "src/core/") ||
           StartsWith(rel, "src/mf/");
  }
  if (rule == "discard-status") return true;
  if (rule == "float-eq") {
    if (test || StartsWith(rel, "bench/")) return false;
    for (const std::string& prefix : options.float_eq_allowlist) {
      if (StartsWith(rel, prefix)) return false;
    }
    return true;
  }
  if (rule == "raw-log") {
    return !test && rel != "src/common/logging.cc";
  }
  if (rule == "raw-file-write") {
    // The durability layer itself and the logger's sink are the only places
    // allowed to open files for writing directly.
    return !test && rel != "src/common/durable_io.cc" &&
           rel != "src/common/logging.cc";
  }
  if (rule == "raw-simd") {
    // The dispatch layer is the single home for raw intrinsics; everywhere
    // else (tests included) goes through the la::simd kernel table.
    return !StartsWith(rel, "src/la/simd.");
  }
  if (rule == "const-ref") {
    // Tests and benches copy small fixtures freely; production code must
    // not deep-copy Matrix/Table/Mask per call.
    return !test && !StartsWith(rel, "bench/");
  }
  if (rule == "mask-scan") {
    // Fit/serving loops must consume the once-per-fit data::ObservedIndex
    // instead of rescanning the Mask byte grid; mask.cc (src/data) is the
    // single production home for raw row scans.
    return !test &&
           (StartsWith(rel, "src/core/") || StartsWith(rel, "src/mf/"));
  }
  if (rule == "raw-socket") {
    // The obs HTTP server is the single production home for raw socket
    // syscalls; tests scrape it over loopback sockets freely.
    return !test && rel != "src/obs/http_server.cc";
  }
  if (rule == "header-hygiene") {
    return !test && rel.size() >= 2 &&
           rel.compare(rel.size() - 2, 2, ".h") == 0;
  }
  return true;
}

// Finds a suppression covering (rule, line): either on the same line, or a
// comment-only line directly above. Marks it used.
const Suppression* FindSuppression(const LexedFile& file,
                                   const std::string& rule, int line) {
  for (const Suppression& s : file.suppressions) {
    if (!s.rules.count(rule) && !s.rules.count("all")) continue;
    if (s.line == line || (s.own_line && s.line == line - 1)) {
      s.used = true;
      return &s;
    }
  }
  return nullptr;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop controls
        out += c;
    }
  }
  return out;
}

void AppendDiagJson(const Diagnostic& d, std::ostringstream* os) {
  *os << "    {\"rule\": \"" << JsonEscape(d.rule) << "\", \"file\": \""
      << JsonEscape(d.rel_path) << "\", \"line\": " << d.line
      << ", \"message\": \"" << JsonEscape(d.message) << "\"}";
}

bool IsCppSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

void LintFile(const LexedFile& file, const StatusFnRegistry& registry,
              const LintOptions& options, LintResult* result) {
  std::vector<Diagnostic> raw;
  if (RuleApplies("thread", file.rel_path, options)) {
    CheckThread(file, &raw);
  }
  if (RuleApplies("nondet", file.rel_path, options)) {
    CheckNondet(file, &raw);
  }
  if (RuleApplies("unordered-iter", file.rel_path, options)) {
    CheckUnorderedIter(file, &raw);
  }
  if (RuleApplies("discard-status", file.rel_path, options)) {
    CheckDiscardStatus(file, registry, &raw);
  }
  if (RuleApplies("float-eq", file.rel_path, options)) {
    CheckFloatEq(file, &raw);
  }
  if (RuleApplies("raw-log", file.rel_path, options)) {
    CheckRawLog(file, &raw);
  }
  if (RuleApplies("raw-file-write", file.rel_path, options)) {
    CheckRawFileWrite(file, &raw);
  }
  if (RuleApplies("raw-simd", file.rel_path, options)) {
    CheckRawSimd(file, &raw);
  }
  if (RuleApplies("const-ref", file.rel_path, options)) {
    CheckConstRef(file, &raw);
  }
  if (RuleApplies("mask-scan", file.rel_path, options)) {
    CheckMaskScan(file, &raw);
  }
  if (RuleApplies("raw-socket", file.rel_path, options)) {
    CheckRawSocket(file, &raw);
  }
  if (RuleApplies("header-hygiene", file.rel_path, options)) {
    CheckHeaderHygiene(file, &raw);
  }

  for (Diagnostic& d : raw) {
    if (FindSuppression(file, d.rule, d.line) != nullptr) {
      result->suppressed.push_back(std::move(d));
    } else {
      result->violations.push_back(std::move(d));
    }
  }

  // Validate the suppressions themselves: they must name known rules and
  // carry a justification. A suppression is an exception to a contract;
  // an unexplained exception is itself a violation.
  for (const Suppression& s : file.suppressions) {
    if (s.rules.empty()) {
      result->violations.push_back(Diagnostic{
          "bad-suppression", file.rel_path, s.line,
          "malformed smfl-lint directive; expected "
          "'smfl-lint: allow(<rule>) <reason>'"});
      continue;
    }
    for (const std::string& rule : s.rules) {
      if (!kKnownRules.count(rule)) {
        result->violations.push_back(
            Diagnostic{"bad-suppression", file.rel_path, s.line,
                       "unknown rule '" + rule + "' in smfl-lint directive"});
      }
    }
    if (s.reason.empty()) {
      result->violations.push_back(Diagnostic{
          "bad-suppression", file.rel_path, s.line,
          "smfl-lint suppression without a reason; justify the exception "
          "after the closing parenthesis"});
    }
  }
}

bool RunLint(const LintOptions& options, LintResult* result,
             std::string* error) {
  std::vector<fs::path> files;
  for (const std::string& root : options.roots) {
    const fs::path base = fs::path(options.repo_root) / root;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base, ec)) {
      *error = "scan root not found: " + base.string();
      return false;
    }
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_regular_file() && IsCppSource(it->path())) {
        files.push_back(it->path());
      }
    }
    if (ec) {
      *error = "error walking " + base.string() + ": " + ec.message();
      return false;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  StatusFnRegistry registry;
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      *error = "cannot read " + p.string();
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel =
        fs::relative(p, options.repo_root).generic_string();
    lexed.push_back(Lex(rel, buf.str()));
    HarvestStatusFunctions(lexed.back(), &registry);
  }

  result->files_scanned = static_cast<int>(lexed.size());
  for (const LexedFile& file : lexed) {
    LintFile(file, registry, options, result);
  }
  return true;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.rel_path << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

std::string ResultToJson(const LintResult& result) {
  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << result.files_scanned
     << ",\n  \"violation_count\": " << result.violations.size()
     << ",\n  \"suppressed_count\": " << result.suppressed.size()
     << ",\n  \"violations\": [\n";
  for (size_t i = 0; i < result.violations.size(); ++i) {
    AppendDiagJson(result.violations[i], &os);
    if (i + 1 < result.violations.size()) os << ",";
    os << "\n";
  }
  os << "  ],\n  \"suppressed\": [\n";
  for (size_t i = 0; i < result.suppressed.size(); ++i) {
    AppendDiagJson(result.suppressed[i], &os);
    if (i + 1 < result.suppressed.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace smfl::lint
