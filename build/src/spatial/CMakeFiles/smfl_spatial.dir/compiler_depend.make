# Empty compiler generated dependencies file for smfl_spatial.
# This may be replaced when dependencies are built.
