// smfl_lint CLI. Scans the repo source tree for contract violations and
// exits nonzero when any are found. See docs/static-analysis.md.
//
//   smfl_lint [--repo-root DIR] [--json FILE] [PATH...]
//
//   --repo-root DIR  repo root used for rule scoping (default: cwd)
//   --json FILE      also write a machine-readable summary to FILE
//   PATH...          directories/files to scan, relative to the repo root
//                    (default: src)

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/smfl_lint/lint.h"

namespace {

int Usage() {
  std::cout << "usage: smfl_lint [--repo-root DIR] [--json FILE] [PATH...]\n"
               "Checks repo contracts (see docs/static-analysis.md):\n"
               "  thread          parallelism only via src/common/parallel.*\n"
               "  nondet          no rand()/random_device/time()/system_clock\n"
               "  unordered-iter  no hash-order iteration in la/core/mf\n"
               "  discard-status  Status/Result results must be consumed\n"
               "  float-eq        no ==/!= against float literals\n"
               "  raw-log         no std::cerr outside logging.cc\n"
               "  raw-file-write  file writes only via WriteFileDurable\n"
               "Suppress inline: // smfl-lint: allow(<rule>) <reason>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  smfl::lint::LintOptions options;
  options.roots.clear();
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root" && i + 1 < argc) {
      options.repo_root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cout << "unknown flag: " << arg << "\n";
      return Usage();
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) options.roots = {"src"};

  smfl::lint::LintResult result;
  std::string error;
  if (!smfl::lint::RunLint(options, &result, &error)) {
    std::cout << "smfl_lint: " << error << "\n";
    return 2;
  }

  for (const auto& d : result.violations) {
    std::cout << smfl::lint::FormatDiagnostic(d) << "\n";
  }
  std::cout << "smfl_lint: " << result.files_scanned << " files, "
            << result.violations.size() << " violation(s), "
            << result.suppressed.size() << " suppressed\n";

  if (!json_path.empty()) {
    // smfl-lint: allow(raw-file-write) lint cannot depend on what it checks
    std::ofstream out(json_path);
    if (!out) {
      std::cout << "smfl_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << smfl::lint::ResultToJson(result);
  }
  return result.violations.empty() ? 0 : 1;
}
