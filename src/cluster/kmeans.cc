#include "src/cluster/kmeans.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/la/ops.h"

namespace smfl::cluster {

namespace {

Index NearestCenter(const Matrix& points, Index row, const Matrix& centers,
                    double* out_d2) {
  double best = std::numeric_limits<double>::infinity();
  Index best_c = 0;
  for (Index c = 0; c < centers.rows(); ++c) {
    const double d2 = la::SquaredDistance(points.Row(row), centers.Row(c));
    if (d2 < best) {
      best = d2;
      best_c = c;
    }
  }
  if (out_d2 != nullptr) *out_d2 = best;
  return best_c;
}

// k-means++ seeding: first center uniform, then proportional to squared
// distance to the nearest already-chosen center.
Matrix PlusPlusInit(const Matrix& points, Index k, Rng& rng) {
  const Index n = points.rows();
  Matrix centers(k, points.cols());
  std::vector<double> d2(static_cast<size_t>(n),
                         std::numeric_limits<double>::infinity());
  Index first = static_cast<Index>(rng.UniformInt(static_cast<uint64_t>(n)));
  for (Index j = 0; j < points.cols(); ++j) {
    centers(0, j) = points(first, j);
  }
  for (Index c = 1; c < k; ++c) {
    double total = 0.0;
    for (Index i = 0; i < n; ++i) {
      const double d = la::SquaredDistance(points.Row(i), centers.Row(c - 1));
      d2[static_cast<size_t>(i)] = std::min(d2[static_cast<size_t>(i)], d);
      total += d2[static_cast<size_t>(i)];
    }
    Index pick;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centers.
      pick = static_cast<Index>(rng.UniformInt(static_cast<uint64_t>(n)));
    } else {
      double r = rng.Uniform() * total;
      pick = n - 1;
      for (Index i = 0; i < n; ++i) {
        r -= d2[static_cast<size_t>(i)];
        if (r <= 0.0) {
          pick = i;
          break;
        }
      }
    }
    for (Index j = 0; j < points.cols(); ++j) {
      centers(c, j) = points(pick, j);
    }
  }
  return centers;
}

}  // namespace

Result<KMeansResult> KMeans(const Matrix& points,
                            const KMeansOptions& options) {
  const Index n = points.rows();
  if (n == 0 || points.cols() == 0) {
    return Status::InvalidArgument("KMeans: empty input");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("KMeans: k must be >= 1");
  }
  if (options.k > n) {
    return Status::InvalidArgument(
        "KMeans: k exceeds the number of points (k=" +
        std::to_string(options.k) + ", n=" + std::to_string(n) + ")");
  }
  Rng rng(options.seed);
  KMeansResult result;
  result.centers = PlusPlusInit(points, options.k, rng);
  result.assignments.assign(static_cast<size_t>(n), 0);

  // Assignment-step scratch: per-point squared distances land here from
  // the parallel chunks and are summed serially afterwards (ascending i,
  // single accumulator — the exact serial order, at any thread count).
  std::vector<double> nearest_d2(static_cast<size_t>(n), 0.0);
  constexpr Index kAssignGrain = 64;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: each chunk owns a disjoint range of points.
    std::atomic<bool> changed{false};
    parallel::ParallelFor(0, n, kAssignGrain, [&](Index r0, Index r1) {
      bool chunk_changed = false;
      for (Index i = r0; i < r1; ++i) {
        const Index c = NearestCenter(points, i, result.centers,
                                      &nearest_d2[static_cast<size_t>(i)]);
        if (result.assignments[static_cast<size_t>(i)] != c) {
          result.assignments[static_cast<size_t>(i)] = c;
          chunk_changed = true;
        }
      }
      if (chunk_changed) changed.store(true, std::memory_order_relaxed);
    });
    double inertia = 0.0;
    for (Index i = 0; i < n; ++i) {
      inertia += nearest_d2[static_cast<size_t>(i)];
    }
    result.inertia = inertia;

    // Update step.
    Matrix new_centers(options.k, points.cols());
    std::vector<Index> counts(static_cast<size_t>(options.k), 0);
    for (Index i = 0; i < n; ++i) {
      const Index c = result.assignments[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      auto row = points.Row(i);
      for (Index j = 0; j < points.cols(); ++j) new_centers(c, j) += row[j];
    }
    for (Index c = 0; c < options.k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Empty cluster: re-seed at the point farthest from its center.
        double worst = -1.0;
        Index worst_i = 0;
        for (Index i = 0; i < n; ++i) {
          const Index a = result.assignments[static_cast<size_t>(i)];
          const double d2 =
              la::SquaredDistance(points.Row(i), result.centers.Row(a));
          if (d2 > worst) {
            worst = d2;
            worst_i = i;
          }
        }
        for (Index j = 0; j < points.cols(); ++j) {
          new_centers(c, j) = points(worst_i, j);
        }
      } else {
        const double inv = 1.0 / static_cast<double>(
                                     counts[static_cast<size_t>(c)]);
        for (Index j = 0; j < points.cols(); ++j) new_centers(c, j) *= inv;
      }
    }
    const double movement = la::MaxAbsDiff(new_centers, result.centers);
    result.centers = std::move(new_centers);
    if (!changed.load(std::memory_order_relaxed) ||
        movement < options.tolerance) {
      break;
    }
  }
  return result;
}

std::vector<Index> AssignToCenters(const Matrix& points,
                                   const Matrix& centers) {
  SMFL_CHECK_EQ(points.cols(), centers.cols());
  std::vector<Index> out(static_cast<size_t>(points.rows()));
  parallel::ParallelFor(0, points.rows(), 64, [&](Index r0, Index r1) {
    for (Index i = r0; i < r1; ++i) {
      out[static_cast<size_t>(i)] = NearestCenter(points, i, centers, nullptr);
    }
  });
  return out;
}

}  // namespace smfl::cluster
