
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/flags_test.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/flags_test.dir/flags_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/smfl_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/smfl_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/smfl_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/smfl_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/impute/CMakeFiles/smfl_impute.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mf/CMakeFiles/smfl_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/smfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/smfl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/smfl_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/smfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/smfl_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
