// Lightweight semantic parsing layer for smfl_lint, shared by the
// include-graph pass (graph.h) and the ParallelFor race detector (race.h).
// Still zero third-party deps and no real C++ frontend: everything here
// works on the token stream produced by lexer.cc, plus just enough
// structure — include-directive extraction, brace/scope tracking, and
// lambda-capture parsing — for the passes to reason about layering and
// parallel-body writes. The blind spots this buys are documented in
// docs/static-analysis.md ("What the checker is (and is not)").

#ifndef SMFL_TOOLS_SMFL_LINT_PARSE_H_
#define SMFL_TOOLS_SMFL_LINT_PARSE_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "tools/smfl_lint/lint.h"

namespace smfl::lint {

// ---------------------------------------------------------------------------
// Token-walking helpers (shared with rules.cc).

bool TokIs(const Token& t, Token::Kind kind, const char* text);
bool TokIsIdent(const Token& t, const char* text);
bool TokIsPunct(const Token& t, const char* text);

// Advances past a balanced template argument list; tokens[i] must be "<".
// Returns the index one past the matching ">", or tokens.size() when
// unbalanced. ">>" closes two levels; a ";" aborts.
size_t SkipTemplateArgList(const std::vector<Token>& toks, size_t i);

// Returns the index of the ")" matching the "(" at i, or tokens.size().
size_t MatchingParen(const std::vector<Token>& toks, size_t i);

// Returns the index of the "}" matching the "{" at i, or tokens.size().
size_t MatchingBrace(const std::vector<Token>& toks, size_t i);

// Returns the index of the "]" matching the "[" at i, or tokens.size().
size_t MatchingBracket(const std::vector<Token>& toks, size_t i);

// ---------------------------------------------------------------------------
// Include directives.

struct IncludeDirective {
  std::string path;  // as written between the delimiters
  bool angled;       // <...> (system) vs "..." (project/local)
  int line;          // line of the #include
};

// Extracts every #include from the file's preprocessor tokens, regardless
// of surrounding #if conditions (the lexer keeps all branches).
std::vector<IncludeDirective> ParseIncludes(const LexedFile& file);

// ---------------------------------------------------------------------------
// Declared-symbol harvesting (IWYU-lite).
//
// Collects the names a header offers to its includers: namespace-scope
// function and variable names, type names (class/struct/union/enum at any
// depth), enumerators, `using` aliases, typedefs, and object-like /
// function-like macro names. Member function names are deliberately NOT
// harvested (too generic — size(), data() — they would mark every include
// "used"); an includer that touches a class only through members still
// names the type somewhere in practice. Include-guard macros (*_H_) are
// skipped.
std::set<std::string> HarvestDeclaredSymbols(const LexedFile& file);

// ---------------------------------------------------------------------------
// Lambda parsing (for the race detector).

struct LambdaCapture {
  std::string name;  // empty for the "&" / "=" defaults and for "this"
  bool by_ref;
  bool is_this;
  bool is_default;  // the bare "&" or "=" entry
};

struct LambdaInfo {
  bool default_by_ref = false;    // [&...]
  bool default_by_value = false;  // [=...]
  std::vector<LambdaCapture> captures;
  std::set<std::string> by_ref_names;    // explicitly &name
  std::set<std::string> by_value_names;  // explicitly name / name = expr
  std::vector<std::string> params;       // parameter names, in order
  // Token index range of the body, EXCLUDING the braces: [body_begin,
  // body_end). Zero-length when the lambda has no body (parse failure).
  size_t body_begin = 0;
  size_t body_end = 0;
  int line = 0;  // line of the "["
};

// Parses a lambda whose "[" is at toks[open_bracket]. Returns false when
// the brackets do not introduce a lambda (subscript, attribute) or the
// shape cannot be parsed.
bool ParseLambda(const std::vector<Token>& toks, size_t open_bracket,
                 LambdaInfo* out);

}  // namespace smfl::lint

#endif  // SMFL_TOOLS_SMFL_LINT_PARSE_H_
