// Error injection for the two evaluation tasks (paper §IV-A1).
//
// Imputation task: values are removed at random from (by default non-spatial)
// columns at a given missing rate; the ground truth stays in the Table and
// methods only see R_Ω(X).
//
// Repair task: cell values are replaced with other values drawn from the same
// column's domain at a given error rate; repairers receive the dirty matrix
// plus the dirty-cell set (as produced by an error detector such as Raha).
//
// Both injectors preserve a pool of complete tuples (the paper keeps 100)
// because several baselines need complete neighbors to operate.

#ifndef SMFL_DATA_INJECT_H_
#define SMFL_DATA_INJECT_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/data/mask.h"
#include "src/data/table.h"

namespace smfl::data {

struct MissingInjectionOptions {
  // Fraction of eligible cells to remove, in [0, 1).
  double missing_rate = 0.1;
  // Whether spatial-information columns are eligible (Table V setting).
  bool include_spatial_cols = false;
  // Number of rows randomly chosen to stay fully complete.
  Index preserve_complete_rows = 100;
  uint64_t seed = 1;
};

struct MissingInjection {
  // Ω: true = still observed.
  Mask observed;
};

// Computes an observation mask over `table` by removing values at random.
Result<MissingInjection> InjectMissing(const Table& table,
                                       const MissingInjectionOptions& options);

struct ErrorInjectionOptions {
  // Fraction of eligible cells to corrupt, in [0, 1).
  double error_rate = 0.1;
  // Errors are injected into all columns in the paper's repair task.
  bool include_spatial_cols = true;
  Index preserve_complete_rows = 100;
  uint64_t seed = 1;
};

struct ErrorInjection {
  // The corrupted copy of the data.
  Matrix dirty;
  // Ψ for the repair task: true = cell was corrupted.
  Mask dirty_cells;
};

// Corrupts cells by swapping in a different value from the same column.
Result<ErrorInjection> InjectErrors(const Table& table,
                                    const ErrorInjectionOptions& options);

}  // namespace smfl::data

#endif  // SMFL_DATA_INJECT_H_
