#include "src/nn/mlp.h"

#include <cmath>

#include "src/common/rng.h"
#include "src/la/ops.h"

namespace smfl::nn {

Result<Mlp> Mlp::Create(Index input_dim, std::vector<LayerSpec> layers,
                        uint64_t seed) {
  if (input_dim <= 0) {
    return Status::InvalidArgument("Mlp: input_dim must be positive");
  }
  if (layers.empty()) {
    return Status::InvalidArgument("Mlp: need at least one layer");
  }
  Mlp mlp;
  mlp.input_dim_ = input_dim;
  Rng rng(seed);
  Index in = input_dim;
  for (const LayerSpec& spec : layers) {
    if (spec.output_dim <= 0) {
      return Status::InvalidArgument("Mlp: layer output_dim must be positive");
    }
    Layer layer;
    layer.activation = spec.activation;
    layer.w = Matrix(in, spec.output_dim);
    // Xavier/Glorot init.
    const double scale =
        std::sqrt(2.0 / static_cast<double>(in + spec.output_dim));
    for (Index i = 0; i < layer.w.size(); ++i) {
      layer.w.data()[i] = rng.Normal(0.0, scale);
    }
    layer.b = Vector(spec.output_dim);
    layer.dw = Matrix(in, spec.output_dim);
    layer.db = Vector(spec.output_dim);
    layer.mw = Matrix(in, spec.output_dim);
    layer.vw = Matrix(in, spec.output_dim);
    layer.mb = Vector(spec.output_dim);
    layer.vb = Vector(spec.output_dim);
    mlp.layers_.push_back(std::move(layer));
    in = spec.output_dim;
  }
  return mlp;
}

Index Mlp::output_dim() const {
  return layers_.back().w.cols();
}

Matrix Mlp::Forward(const Matrix& x) {
  SMFL_CHECK_EQ(x.cols(), input_dim_);
  Matrix h = x;
  for (Layer& layer : layers_) {
    layer.input = h;
    Matrix z = la::MatMul(h, layer.w);
    for (Index i = 0; i < z.rows(); ++i) {
      auto row = z.Row(i);
      for (Index j = 0; j < z.cols(); ++j) row[j] += layer.b[j];
    }
    layer.output = Apply(layer.activation, z);
    h = layer.output;
  }
  return h;
}

Matrix Mlp::Predict(const Matrix& x) const {
  SMFL_CHECK_EQ(x.cols(), input_dim_);
  Matrix h = x;
  for (const Layer& layer : layers_) {
    Matrix z = la::MatMul(h, layer.w);
    for (Index i = 0; i < z.rows(); ++i) {
      auto row = z.Row(i);
      for (Index j = 0; j < z.cols(); ++j) row[j] += layer.b[j];
    }
    h = Apply(layer.activation, z);
  }
  return h;
}

Matrix Mlp::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    Layer& layer = *it;
    SMFL_CHECK(grad.SameShape(layer.output));
    // Through the activation.
    Matrix dz = Backprop(layer.activation, layer.output, grad);
    // Parameter gradients: dW = Xᵀ dZ, db = column sums of dZ.
    layer.dw += la::MatMulAtB(layer.input, dz);
    for (Index i = 0; i < dz.rows(); ++i) {
      auto row = dz.Row(i);
      for (Index j = 0; j < dz.cols(); ++j) layer.db[j] += row[j];
    }
    // Input gradient: dX = dZ Wᵀ.
    grad = la::MatMulABt(dz, layer.w);
  }
  return grad;
}

void Mlp::Step(const AdamOptions& options) {
  ++step_count_;
  const double b1 = options.beta1, b2 = options.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(step_count_));
  for (Layer& layer : layers_) {
    for (Index i = 0; i < layer.w.size(); ++i) {
      double& m = layer.mw.data()[i];
      double& v = layer.vw.data()[i];
      const double g = layer.dw.data()[i];
      m = b1 * m + (1.0 - b1) * g;
      v = b2 * v + (1.0 - b2) * g * g;
      layer.w.data()[i] -= options.learning_rate * (m / bias1) /
                           (std::sqrt(v / bias2) + options.epsilon);
    }
    for (Index j = 0; j < layer.b.size(); ++j) {
      double& m = layer.mb[j];
      double& v = layer.vb[j];
      const double g = layer.db[j];
      m = b1 * m + (1.0 - b1) * g;
      v = b2 * v + (1.0 - b2) * g * g;
      layer.b[j] -= options.learning_rate * (m / bias1) /
                    (std::sqrt(v / bias2) + options.epsilon);
    }
  }
  ZeroGradients();
}

void Mlp::ZeroGradients() {
  for (Layer& layer : layers_) {
    layer.dw.Fill(0.0);
    layer.db.Fill(0.0);
  }
}

Index Mlp::NumParameters() const {
  Index total = 0;
  for (const Layer& layer : layers_) {
    total += layer.w.size() + layer.b.size();
  }
  return total;
}

double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  SMFL_CHECK(pred.SameShape(target));
  const double n = static_cast<double>(pred.size());
  double loss = 0.0;
  if (grad != nullptr) *grad = Matrix(pred.rows(), pred.cols());
  for (Index i = 0; i < pred.size(); ++i) {
    const double diff = pred.data()[i] - target.data()[i];
    loss += diff * diff;
    if (grad != nullptr) grad->data()[i] = 2.0 * diff / n;
  }
  return loss / n;
}

double MaskedMseLoss(const Matrix& pred, const Matrix& target,
                     const Matrix& mask, Matrix* grad) {
  SMFL_CHECK(pred.SameShape(target));
  SMFL_CHECK(pred.SameShape(mask));
  Index observed = 0;
  // smfl-lint: allow(float-eq) mask entries are exactly 0.0 or 1.0
  for (Index i = 0; i < mask.size(); ++i) observed += mask.data()[i] != 0.0;
  const double count = observed > 0 ? static_cast<double>(observed) : 1.0;
  double loss = 0.0;
  if (grad != nullptr) *grad = Matrix(pred.rows(), pred.cols());
  for (Index i = 0; i < pred.size(); ++i) {
    // smfl-lint: allow(float-eq) mask entries are exactly 0.0 or 1.0
    if (mask.data()[i] == 0.0) continue;
    const double diff = pred.data()[i] - target.data()[i];
    loss += diff * diff;
    if (grad != nullptr) grad->data()[i] = 2.0 * diff / count;
  }
  return loss / count;
}

double BceLoss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  SMFL_CHECK(pred.SameShape(target));
  constexpr double kEps = 1e-8;
  const double n = static_cast<double>(pred.size());
  double loss = 0.0;
  if (grad != nullptr) *grad = Matrix(pred.rows(), pred.cols());
  for (Index i = 0; i < pred.size(); ++i) {
    const double p =
        std::min(std::max(pred.data()[i], kEps), 1.0 - kEps);
    const double t = target.data()[i];
    loss += -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
    if (grad != nullptr) {
      grad->data()[i] = (p - t) / (p * (1.0 - p)) / n;
    }
  }
  return loss / n;
}

}  // namespace smfl::nn
