file(REMOVE_RECURSE
  "CMakeFiles/smfl_nn.dir/activations.cc.o"
  "CMakeFiles/smfl_nn.dir/activations.cc.o.d"
  "CMakeFiles/smfl_nn.dir/mlp.cc.o"
  "CMakeFiles/smfl_nn.dir/mlp.cc.o.d"
  "libsmfl_nn.a"
  "libsmfl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
