
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/impute/eracer.cc" "src/impute/CMakeFiles/smfl_impute.dir/eracer.cc.o" "gcc" "src/impute/CMakeFiles/smfl_impute.dir/eracer.cc.o.d"
  "/root/repo/src/impute/gan.cc" "src/impute/CMakeFiles/smfl_impute.dir/gan.cc.o" "gcc" "src/impute/CMakeFiles/smfl_impute.dir/gan.cc.o.d"
  "/root/repo/src/impute/mf_imputers.cc" "src/impute/CMakeFiles/smfl_impute.dir/mf_imputers.cc.o" "gcc" "src/impute/CMakeFiles/smfl_impute.dir/mf_imputers.cc.o.d"
  "/root/repo/src/impute/neighbor_util.cc" "src/impute/CMakeFiles/smfl_impute.dir/neighbor_util.cc.o" "gcc" "src/impute/CMakeFiles/smfl_impute.dir/neighbor_util.cc.o.d"
  "/root/repo/src/impute/registry.cc" "src/impute/CMakeFiles/smfl_impute.dir/registry.cc.o" "gcc" "src/impute/CMakeFiles/smfl_impute.dir/registry.cc.o.d"
  "/root/repo/src/impute/regression.cc" "src/impute/CMakeFiles/smfl_impute.dir/regression.cc.o" "gcc" "src/impute/CMakeFiles/smfl_impute.dir/regression.cc.o.d"
  "/root/repo/src/impute/simple.cc" "src/impute/CMakeFiles/smfl_impute.dir/simple.cc.o" "gcc" "src/impute/CMakeFiles/smfl_impute.dir/simple.cc.o.d"
  "/root/repo/src/impute/statistical.cc" "src/impute/CMakeFiles/smfl_impute.dir/statistical.cc.o" "gcc" "src/impute/CMakeFiles/smfl_impute.dir/statistical.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/smfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mf/CMakeFiles/smfl_mf.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/smfl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/smfl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/smfl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/smfl_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/smfl_spatial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
