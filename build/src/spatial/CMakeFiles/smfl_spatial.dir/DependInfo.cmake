
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/graph.cc" "src/spatial/CMakeFiles/smfl_spatial.dir/graph.cc.o" "gcc" "src/spatial/CMakeFiles/smfl_spatial.dir/graph.cc.o.d"
  "/root/repo/src/spatial/grid_index.cc" "src/spatial/CMakeFiles/smfl_spatial.dir/grid_index.cc.o" "gcc" "src/spatial/CMakeFiles/smfl_spatial.dir/grid_index.cc.o.d"
  "/root/repo/src/spatial/knn.cc" "src/spatial/CMakeFiles/smfl_spatial.dir/knn.cc.o" "gcc" "src/spatial/CMakeFiles/smfl_spatial.dir/knn.cc.o.d"
  "/root/repo/src/spatial/metrics.cc" "src/spatial/CMakeFiles/smfl_spatial.dir/metrics.cc.o" "gcc" "src/spatial/CMakeFiles/smfl_spatial.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/smfl_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
