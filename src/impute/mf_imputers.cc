#include "src/impute/mf_imputers.h"

namespace smfl::impute {

Result<Matrix> McImputer::Impute(const Matrix& x, const Mask& observed,
                                 Index /*spatial_cols*/) const {
  ASSIGN_OR_RETURN(mf::SvtResult result,
                   mf::CompleteSvt(x, observed, options_));
  return data::CombineByMask(x, result.completed, observed);
}

Result<Matrix> SoftImputeImputer::Impute(const Matrix& x, const Mask& observed,
                                         Index /*spatial_cols*/) const {
  ASSIGN_OR_RETURN(mf::SoftImputeResult result,
                   mf::CompleteSoftImpute(x, observed, options_));
  return data::CombineByMask(x, result.completed, observed);
}

Result<Matrix> NmfImputer::Impute(const Matrix& x, const Mask& observed,
                                  Index /*spatial_cols*/) const {
  ASSIGN_OR_RETURN(mf::NmfModel model, mf::FitNmf(x, observed, options_));
  return mf::ImputeWithModel(x, observed, model);
}

SmfImputer::SmfImputer(core::SmflOptions options) : options_(options) {
  options_.use_landmarks = false;
}

Result<Matrix> SmfImputer::Impute(const Matrix& x, const Mask& observed,
                                  Index spatial_cols) const {
  return core::SmflImpute(x, observed, spatial_cols, options_);
}

SmflImputer::SmflImputer(core::SmflOptions options) : options_(options) {
  options_.use_landmarks = true;
}

Result<Matrix> SmflImputer::Impute(const Matrix& x, const Mask& observed,
                                   Index spatial_cols) const {
  return core::SmflImpute(x, observed, spatial_cols, options_);
}

}  // namespace smfl::impute
