// Kernel-level microbenchmarks for the parallel execution + SIMD layers:
//
//   * MatMul / MatMulAtB / MatMulABt at --threads-controlled parallelism
//     (set SMFL_THREADS before launching; results are bitwise identical at
//     any setting, so only wall clock varies). SMFL_SIMD=0 pins the scalar
//     microkernel tier — tools/run_bench.sh runs the suite twice to
//     publish scalar-vs-SIMD ratios, which are valid on any host because
//     both runs share one core count.
//   * MaskedReconstruct (fused R_Ω(UV)) against the unfused
//     ApplyMask(MatMul(u, v)) it replaced, across observed rates down to
//     1%. The fused kernel computes only the Ω entries, so its advantage
//     grows as the mask gets sparser — the regime of the paper's Table VII
//     high-missing-rate experiments.
//   * MaskedReconstructIndexed: the same kernel consuming a prebuilt
//     data::ObservedIndex (what the fit loop actually runs since PR 8) —
//     the mask-vs-index gap is the per-call row-scan cost the CSR layout
//     eliminates.
//   * MaskedSquaredError at the same observed rates (the objective half of
//     every fit iteration, SIMD-dispatched on dense rows).
//   * Batched fold-in serving throughput (rows/sec) against a frozen model
//     at the process thread count (PR 3): grouped-gemm numerators plus the
//     threaded per-row multiplicative solves of core::FoldIn.
//
// tools/run_bench.sh aggregates this into BENCH_PR8.json.

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/telemetry.h"
#include "src/core/fold_in.h"
#include "src/data/mask.h"
#include "src/data/observed_index.h"
#include "src/la/ops.h"
#include "src/la/simd.h"

using namespace smfl;
using data::Mask;
using la::Index;
using la::Matrix;

namespace {

Matrix RandomMatrix(Index rows, Index cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (Index i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(0.01, 1.0);
  return m;
}

Mask RandomMask(Index rows, Index cols, uint64_t seed, double set_rate) {
  Rng rng(seed);
  Mask mask(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) mask.Set(i, j, rng.Bernoulli(set_rate));
  }
  return mask;
}

void BM_MatMul(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    Matrix c = la::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMul)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_MatMulAtB(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix a = RandomMatrix(n, 64, 1);
  const Matrix b = RandomMatrix(n, 64, 2);
  for (auto _ : state) {
    Matrix c = la::MatMulAtB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulAtB)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_MatMulABt(benchmark::State& state) {
  const Index n = state.range(0);
  const Matrix a = RandomMatrix(n, 64, 1);
  const Matrix b = RandomMatrix(256, 64, 2);
  for (auto _ : state) {
    Matrix c = la::MatMulABt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatMulABt)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

// The fit-loop hot pair: R_Ω(UV) for an N x M data matrix at rank K = 16.
// Arg is the observed percentage of the mask.
constexpr Index kReconN = 2000, kReconM = 64, kReconK = 16;

void BM_MaskedReconstructFused(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  const Matrix u = RandomMatrix(kReconN, kReconK, 3);
  const Matrix v = RandomMatrix(kReconK, kReconM, 4);
  const Mask mask = RandomMask(kReconN, kReconM, 5, rate);
  for (auto _ : state) {
    Matrix r = data::MaskedReconstruct(u, v, mask);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_MaskedReconstructFused)->Arg(90)->Arg(50)->Arg(10)->Arg(5)
    ->Arg(1)->Unit(benchmark::kMillisecond);

// The same fused kernel fed a prebuilt CSR index (built once per fit, so
// its O(n·m) construction is amortized away from the per-iteration cost
// being measured here).
void BM_MaskedReconstructIndexed(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  const Matrix u = RandomMatrix(kReconN, kReconK, 3);
  const Matrix v = RandomMatrix(kReconK, kReconM, 4);
  const Mask mask = RandomMask(kReconN, kReconM, 5, rate);
  const data::ObservedIndex omega = data::ObservedIndex::FromMask(mask);
  for (auto _ : state) {
    Matrix r = data::MaskedReconstruct(u, v, omega);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_MaskedReconstructIndexed)->Arg(90)->Arg(50)->Arg(10)->Arg(5)
    ->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MaskedReconstructUnfused(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  const Matrix u = RandomMatrix(kReconN, kReconK, 3);
  const Matrix v = RandomMatrix(kReconK, kReconM, 4);
  const Mask mask = RandomMask(kReconN, kReconM, 5, rate);
  for (auto _ : state) {
    Matrix r = data::ApplyMask(la::MatMul(u, v), mask);
    benchmark::DoNotOptimize(r.data());
  }
}
BENCHMARK(BM_MaskedReconstructUnfused)->Arg(90)->Arg(50)->Arg(10)->Arg(5)
    ->Arg(1)->Unit(benchmark::kMillisecond);

// The objective evaluation paired with every reconstruction: sum of
// squared residuals over Ω. Dense rows take the SIMD sq_diff kernel.
void BM_MaskedSquaredError(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  const Matrix u = RandomMatrix(kReconN, kReconK, 3);
  const Matrix v = RandomMatrix(kReconK, kReconM, 4);
  const Mask mask = RandomMask(kReconN, kReconM, 5, rate);
  const Matrix x = RandomMatrix(kReconN, kReconM, 6);
  const Matrix r = data::MaskedReconstruct(u, v, mask);
  for (auto _ : state) {
    double err = data::MaskedSquaredError(x, mask, r);
    benchmark::DoNotOptimize(err);
  }
}
BENCHMARK(BM_MaskedSquaredError)->Arg(90)->Arg(50)->Arg(10)->Arg(5)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// Batched fold-in serving: Arg(0) fresh rows against a synthetic frozen
// model (rank 12, 16 columns, 2 spatial). ~80% observed with coordinates
// always present, so most rows take the landmark-kernel tier. Throughput
// is reported as rows/sec via SetItemsProcessed.
void BM_FoldInBatch(benchmark::State& state) {
  const Index rows = state.range(0);
  constexpr Index kRank = 12, kCols = 16, kSpatial = 2;
  core::SmflModel model;
  model.v = RandomMatrix(kRank, kCols, 11);
  model.u = RandomMatrix(512, kRank, 12);
  model.landmarks = RandomMatrix(kRank, kSpatial, 13);
  model.spatial_cols = kSpatial;
  const Matrix x = RandomMatrix(rows, kCols, 14);
  Mask observed = RandomMask(rows, kCols, 15, 0.8);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < kSpatial; ++j) observed.Set(i, j, true);
  }
  for (auto _ : state) {
    auto folded = core::FoldIn(model, x, observed);
    SMFL_CHECK(folded.ok());
    benchmark::DoNotOptimize(folded->data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_FoldInBatch)->Arg(64)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// Guard on the telemetry disabled path: Arg(0) runs one counter add, one
// histogram record, and one scoped span per iteration with collection OFF
// — each must cost a relaxed load plus an untaken branch, i.e. the whole
// iteration stays in the low single-digit nanoseconds. Arg(1) measures the
// enabled cost (the overhead table in docs/observability.md comes from
// this run; the span also exercises the trace buffer's bounded-drop path
// once kMaxEvents fills).
void BM_TelemetryOverhead(benchmark::State& state) {
  telemetry::SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    SMFL_COUNTER_INC("bench.telemetry_counter");
    SMFL_HISTOGRAM_RECORD("bench.telemetry_hist", 3.0);
    SMFL_TRACE_SPAN("bench.telemetry_span");
  }
  telemetry::SetEnabled(false);
  telemetry::MetricsRegistry::Global().ResetForTesting();
  telemetry::TraceRecorder::Global().Clear();
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1);

}  // namespace

// Custom main instead of BENCHMARK_MAIN so the resolved SIMD tier lands in
// the JSON context block — tools/run_bench.sh records it in BENCH_PR8.json
// and refuses to gate on SIMD speedups when the tier is "scalar".
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext(
      "simd_tier", la::simd::TierName(la::simd::ActiveTier()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
