file(REMOVE_RECURSE
  "libsmfl_exp.a"
)
