// Fold-in: impute NEW tuples against an already fitted SMFL model without
// refitting.
//
// Serving scenario: a model was fit on the historical table (and possibly
// reloaded via model_io); fresh sensor rows arrive with holes. Fold-in
// solves for each new row's coefficient vector u ≥ 0 against the frozen
// feature matrix V over the row's observed cells — the single-row analogue
// of the U update (Formula 13 without the Laplacian term, since a lone row
// has no graph edges) — then reconstructs the missing cells as u·V.
// Initialization reuses the landmark kernel when the row's coordinates are
// observed, so fold-in inherits SMFL's geographic anchoring.
//
// The batch entry point is built for serving throughput and fault
// isolation:
//
//  * Rows are grouped by observed-column pattern and each group's
//    iteration-invariant numerator (Σ_j x_j v_cj for every row and latent
//    factor) is computed with ONE MatMulABt gemm against the frozen V,
//    instead of per-row scalar loops.
//  * The per-row multiplicative solves are threaded with
//    parallel::ParallelFor under the PR 2 determinism contract: batched
//    output is bitwise identical to row-at-a-time FoldInRow at any thread
//    count.
//  * A bad row never aborts the batch. Per-row faults (no observed
//    entries, non-finite or negative observed cells) degrade that row to
//    a lower serving tier and are recorded in a FoldInReport:
//      landmark-kernel -> uniform-u -> column-mean.

#ifndef SMFL_CORE_FOLD_IN_H_
#define SMFL_CORE_FOLD_IN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/smfl.h"

namespace smfl::core {

struct FoldInOptions {
  // Multiplicative updates on the row's coefficient vector.
  int max_iterations = 200;
  double tolerance = 1e-8;
};

// Serving tier that produced a row, best first.
enum class FoldInTier : int8_t {
  // Landmark-kernel initialization over the row's observed coordinates,
  // then the multiplicative solve — the full-quality path.
  kLandmarkKernel = 0,
  // Multiplicative solve from a uniform coefficient vector (no landmarks
  // in the model, or the row's coordinates are all missing).
  kUniformU = 1,
  // No usable observed entries: the row is served as the model's average
  // row, mean(U)·V — the fold-in analogue of column-mean imputation.
  kColumnMean = 2,
};

const char* FoldInTierName(FoldInTier tier);

// Outcome of serving one batch row.
struct FoldInRowOutcome {
  Index row = 0;
  // OK when the row was served cleanly; otherwise describes the fault
  // that degraded it (the row is still served — see served_by).
  Status status;
  FoldInTier served_by = FoldInTier::kLandmarkKernel;
  // Multiplicative iterations run (0 for the column-mean tier).
  int iterations = 0;
};

// Per-row serving report for a FoldIn batch; rows[i] describes input row i.
struct FoldInReport {
  std::vector<FoldInRowOutcome> rows;

  // Rows served by `tier`.
  Index CountTier(FoldInTier tier) const;
  // Rows with a non-OK status (served by a degraded tier or with invalid
  // observed cells dropped).
  Index DegradedCount() const;
  // e.g. "5 rows: 3 landmark-kernel, 1 uniform-u, 1 column-mean
  //       (1 degraded)".
  std::string ToString() const;
};

// Imputes one new row. `row` has the model's column count; only entries
// with observed_row[j] true are read (the rest may hold anything). Returns
// the completed row: observed cells copied, missing cells reconstructed.
// Strict: invalid input (no observed entries, negative or non-finite
// observed values) is an error. The batch FoldIn below degrades such rows
// instead; for valid rows the two paths are bitwise identical.
Result<la::Vector> FoldInRow(const SmflModel& model, const la::Vector& row,
                             const std::vector<bool>& observed_row,
                             const FoldInOptions& options = {});

// Batch version over the rows of `x` with a Mask; returns the completed
// matrix (valid observed entries preserved). Per-row faults are isolated:
// a row with no usable observed cells is served by the column-mean tier,
// and non-finite / negative observed cells are dropped from that row's
// solve — both recorded in `report` (optional) — rather than failing the
// batch. Batch-level shape mismatches still error.
Result<Matrix> FoldIn(const SmflModel& model, const Matrix& x,
                      const Mask& observed, const FoldInOptions& options = {},
                      FoldInReport* report = nullptr);

// Kernel width (sigma²) of the landmark initialization: mean
// nearest-landmark squared distance. With fewer than two distinct
// landmarks no pairwise distance exists; falls back to the mean squared
// distance of uniform points in [0,1]^L (L/6) instead of collapsing to
// 1e-8. Exposed for tests.
[[nodiscard]] double FoldInKernelWidth(const Matrix& landmarks);

}  // namespace smfl::core

#endif  // SMFL_CORE_FOLD_IN_H_
