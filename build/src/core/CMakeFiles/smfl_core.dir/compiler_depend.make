# Empty compiler generated dependencies file for smfl_core.
# This may be replaced when dependencies are built.
