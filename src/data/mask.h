// Observed/unobserved entry bookkeeping (the paper's Ω and Ψ sets).
//
// A Mask is an N x M boolean grid; true marks an entry as belonging to the
// set. By convention throughout the library, an "observation mask" has
// true = observed (Ω) and its complement is Ψ. The same type represents the
// dirty-cell set for the repair task and the landmark set Φ over V.

#ifndef SMFL_DATA_MASK_H_
#define SMFL_DATA_MASK_H_

#include <cstdint>
#include <vector>

#include "src/la/matrix.h"

namespace smfl::data {

using la::Index;
using la::Matrix;

// One (row, col) cell address.
struct Entry {
  Index row = 0;
  Index col = 0;

  friend bool operator==(const Entry& a, const Entry& b) {
    return a.row == b.row && a.col == b.col;
  }
  friend bool operator<(const Entry& a, const Entry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  }
};

class Mask {
 public:
  Mask() = default;

  // All entries initialized to `value`.
  Mask(Index rows, Index cols, bool value = false)
      : rows_(rows), cols_(cols),
        bits_(static_cast<size_t>(rows * cols), value ? 1 : 0) {
    SMFL_CHECK_GE(rows, 0);
    SMFL_CHECK_GE(cols, 0);
  }

  static Mask AllSet(Index rows, Index cols) { return Mask(rows, cols, true); }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  bool Contains(Index i, Index j) const {
    SMFL_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return bits_[static_cast<size_t>(i * cols_ + j)] != 0;
  }

  void Set(Index i, Index j, bool value = true) {
    SMFL_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    bits_[static_cast<size_t>(i * cols_ + j)] = value ? 1 : 0;
  }

  // Number of set entries.
  Index Count() const;

  // Entries NOT in this mask (Ψ when *this is Ω).
  Mask Complement() const;

  // All set entries in row-major order.
  std::vector<Entry> Entries() const;

  // True if every entry in row i is set.
  bool RowFullySet(Index i) const;

  // Indices of fully-set rows (complete tuples).
  std::vector<Index> FullySetRows() const;

  // Set-intersection / union with another mask of the same shape.
  Mask And(const Mask& other) const;
  Mask Or(const Mask& other) const;

  // Raw row-major bit row (1 = set), for kernels that stream a row's
  // membership without per-entry bounds checks.
  const uint8_t* RowData(Index i) const {
    SMFL_DCHECK(i >= 0 && i < rows_);
    return bits_.data() + static_cast<size_t>(i * cols_);
  }

  // Number of set entries in row i.
  Index RowCount(Index i) const;

  bool SameShape(const Mask& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  friend bool operator==(const Mask& a, const Mask& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.bits_ == b.bits_;
  }

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<uint8_t> bits_;
};

// R_mask(X): zero out entries not in the mask (the paper's R_Ω operator).
[[nodiscard]] Matrix ApplyMask(const Matrix& x, const Mask& mask);

// R_Ω(X) + R_Ψ(X*): take masked entries from `x`, the rest from `x_star`
// (the paper's Formula 8 recovery step).
[[nodiscard]] Matrix CombineByMask(const Matrix& x, const Matrix& x_star, const Mask& mask);

// R_Ω(U V) in one fused pass — the per-iteration hot path of the masked
// multiplicative updates (Formulas 13/14). Equivalent to
// ApplyMask(MatMul(u, v), mask) bit for bit (same ascending-k summation
// order and zero-skip per entry), but computes only what the mask needs
// and never materializes the unmasked product or a second masking pass.
// Rows are processed in parallel chunks (deterministic; see
// common/parallel.h); rows below the active SIMD tier's measured density
// crossover fall back to per-entry dots. The fit loops use the
// ObservedIndex overload (observed_index.h), which skips the per-call
// mask-row scans; this Mask form remains for one-shot callers.
[[nodiscard]] Matrix MaskedReconstruct(const Matrix& u, const Matrix& v, const Mask& mask);

// ||R_Ω(X) − UV_Ω||_F² given a reconstruction already restricted to Ω
// (as produced by MaskedReconstruct). Deterministic chunked reduction.
[[nodiscard]] double MaskedSquaredError(const Matrix& x, const Mask& mask,
                          const Matrix& uv_masked);

}  // namespace smfl::data

#endif  // SMFL_DATA_MASK_H_
