# Empty compiler generated dependencies file for smfl_apps.
# This may be replaced when dependencies are built.
