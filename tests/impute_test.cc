#include <gtest/gtest.h>

#include <cmath>

#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/exp/metrics.h"
#include "src/la/ops.h"
#include "src/impute/gan.h"
#include "src/impute/mf_imputers.h"
#include "src/impute/neighbor_util.h"
#include "src/impute/registry.h"
#include "src/impute/regression.h"
#include "src/impute/simple.h"
#include "src/impute/statistical.h"

namespace smfl::impute {
namespace {

struct Scenario {
  Matrix truth;
  Mask observed;
  Matrix input;
  double mean_rms = 0.0;  // RMS of plain column-mean imputation
};

Scenario MakeScenario(Index rows, double missing_rate, uint64_t seed,
                      bool vehicle = false) {
  auto dataset = vehicle ? data::MakeVehicleLike(rows, seed)
                         : data::MakeLakeLike(rows, seed);
  SMFL_CHECK(dataset.ok());
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Scenario s;
  s.truth = normalizer->Transform(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = missing_rate;
  inject.preserve_complete_rows = 40;
  inject.seed = seed + 100;
  auto injection = data::InjectMissing(dataset->table, inject);
  SMFL_CHECK(injection.ok());
  s.observed = injection->observed;
  s.input = data::ApplyMask(s.truth, s.observed);
  MeanImputer mean;
  auto mean_imputed = mean.Impute(s.input, s.observed, 2);
  SMFL_CHECK(mean_imputed.ok());
  s.mean_rms =
      *exp::RmsOverMask(*mean_imputed, s.truth, s.observed.Complement());
  return s;
}

double RunRms(const Imputer& imputer, const Scenario& s) {
  auto imputed = imputer.Impute(s.input, s.observed, 2);
  SMFL_CHECK(imputed.ok()) << imputer.name() << ": "
                           << imputed.status().ToString();
  auto rms = exp::RmsOverMask(*imputed, s.truth, s.observed.Complement());
  SMFL_CHECK(rms.ok());
  return *rms;
}

void CheckObservedPreserved(const Imputer& imputer, const Scenario& s) {
  auto imputed = imputer.Impute(s.input, s.observed, 2);
  ASSERT_TRUE(imputed.ok()) << imputer.name();
  for (Index i = 0; i < s.input.rows(); ++i) {
    for (Index j = 0; j < s.input.cols(); ++j) {
      if (s.observed.Contains(i, j)) {
        EXPECT_DOUBLE_EQ((*imputed)(i, j), s.input(i, j))
            << imputer.name() << " modified observed cell (" << i << ","
            << j << ")";
      }
    }
  }
  EXPECT_FALSE(imputed->HasNonFinite()) << imputer.name();
}

// ------------------------------------------------------------ contracts

// Every registered imputer must preserve observed entries and return
// finite values.
class ImputerContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ImputerContractTest, PreservesObservedAndFinite) {
  auto imputer = MakeImputer(GetParam());
  ASSERT_TRUE(imputer.ok());
  Scenario s = MakeScenario(120, 0.15, 7);
  CheckObservedPreserved(**imputer, s);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ImputerContractTest,
    ::testing::Values("Mean", "kNN", "kNNE", "LOESS", "IIM", "MC", "DLM",
                      "GAIN", "SoftImpute", "Iterative", "CAMF", "NMF",
                      "SMF", "SMFL"));

TEST(RegistryTest, KnownNamesResolveCaseInsensitive) {
  EXPECT_TRUE(MakeImputer("smfl").ok());
  EXPECT_TRUE(MakeImputer("SoftImpute").ok());
  EXPECT_TRUE(MakeImputer("KNNE").ok());
  auto missing = MakeImputer("oracle");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, TableIvOrder) {
  auto names = RegisteredImputers();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_EQ(names.front(), "kNNE");
  EXPECT_EQ(names.back(), "SMFL");
}

TEST(RegistryTest, NamesMatchInstances) {
  for (const auto& name : RegisteredImputers()) {
    auto imputer = MakeImputer(name);
    ASSERT_TRUE(imputer.ok()) << name;
    EXPECT_EQ((*imputer)->name(), name);
  }
}

// ------------------------------------------------------------ quality

TEST(ImputeQualityTest, NeighborAndRegressionBeatMean) {
  Scenario s = MakeScenario(400, 0.1, 11);
  EXPECT_LT(RunRms(KnnImputer(), s), s.mean_rms);
  EXPECT_LT(RunRms(IterativeImputer(), s), s.mean_rms);
  EXPECT_LT(RunRms(DlmImputer(), s), s.mean_rms);
}

TEST(ImputeQualityTest, SmflIsBestOfMfFamily) {
  // Averaged over several dataset seeds: individual draws have enough
  // variance that single-seed comparisons are not meaningful.
  double nmf = 0.0, smf = 0.0, smfl = 0.0;
  for (uint64_t seed : {13u, 29u, 47u}) {
    Scenario s = MakeScenario(800, 0.1, seed, /*vehicle=*/true);
    nmf += RunRms(NmfImputer(), s);
    smf += RunRms(SmfImputer(), s);
    smfl += RunRms(SmflImputer(), s);
  }
  EXPECT_LT(smf, nmf);
  // SMFL matches SMF within run-to-run variance and beats plain NMF by a
  // clear margin (the paper's Table IV ordering).
  EXPECT_LE(smfl, smf * 1.15);
  EXPECT_LT(smfl, nmf);
}

TEST(ImputeQualityTest, SoftImputeReasonable) {
  Scenario s = MakeScenario(300, 0.1, 17);
  EXPECT_LT(RunRms(SoftImputeImputer(), s), s.mean_rms * 1.2);
}

// ------------------------------------------------------------ edge cases

TEST(ImputeEdgeTest, FullyObservedInputIsIdentity) {
  Scenario s = MakeScenario(60, 0.1, 19);
  Mask all = Mask::AllSet(s.truth.rows(), s.truth.cols());
  for (const char* name : {"Mean", "kNN", "DLM", "Iterative"}) {
    auto imputer = MakeImputer(name);
    ASSERT_TRUE(imputer.ok());
    auto imputed = (*imputer)->Impute(s.truth, all, 2);
    ASSERT_TRUE(imputed.ok()) << name;
    EXPECT_LT(la::MaxAbsDiff(*imputed, s.truth), 1e-12) << name;
  }
}

TEST(ImputeEdgeTest, EmptyMatrixRejected) {
  for (const char* name : {"Mean", "kNN", "LOESS", "DLM"}) {
    auto imputer = MakeImputer(name);
    ASSERT_TRUE(imputer.ok());
    EXPECT_FALSE((*imputer)->Impute(Matrix(), Mask(), 2).ok()) << name;
  }
}

TEST(ImputeEdgeTest, MaskShapeMismatchRejected) {
  Matrix x(4, 4, 0.5);
  Mask wrong(2, 2);
  for (const char* name : {"Mean", "kNN", "Iterative", "NMF"}) {
    auto imputer = MakeImputer(name);
    ASSERT_TRUE(imputer.ok());
    EXPECT_FALSE((*imputer)->Impute(x, wrong, 2).ok()) << name;
  }
}

TEST(ImputeEdgeTest, HighMissingRateStillFinite) {
  Scenario s = MakeScenario(200, 0.6, 23);
  for (const char* name : {"Mean", "kNN", "kNNE", "DLM", "Iterative",
                           "SMFL"}) {
    auto imputer = MakeImputer(name);
    ASSERT_TRUE(imputer.ok());
    auto imputed = (*imputer)->Impute(s.input, s.observed, 2);
    ASSERT_TRUE(imputed.ok()) << name;
    EXPECT_FALSE(imputed->HasNonFinite()) << name;
  }
}

// ------------------------------------------------------------ neighbor util

TEST(NeighborUtilTest, PartialRowDistance) {
  Matrix x{{0, 0, 9}, {3, 4, -9}};
  EXPECT_DOUBLE_EQ(PartialRowDistance(x, 0, 1, {0, 1}), 5.0);
  EXPECT_TRUE(std::isinf(PartialRowDistance(x, 0, 1, {})));
}

TEST(NeighborUtilTest, ObservedColumns) {
  Mask m(1, 3);
  m.Set(0, 0);
  m.Set(0, 2);
  EXPECT_EQ(ObservedColumns(m, 0), (std::vector<Index>{0, 2}));
}

TEST(NeighborUtilTest, RowsCompleteOn) {
  Mask m(3, 2);
  m.Set(0, 0);
  m.Set(0, 1);
  m.Set(1, 0);
  m.Set(2, 0);
  m.Set(2, 1);
  EXPECT_EQ(RowsCompleteOn(m, {0, 1}), (std::vector<Index>{0, 2}));
  EXPECT_EQ(RowsCompleteOn(m, {0}), (std::vector<Index>{0, 1, 2}));
}

TEST(NeighborUtilTest, NearestAmongExcludesSelfAndSorts) {
  Matrix x{{0.0}, {1.0}, {3.0}, {0.5}};
  auto nn = NearestAmong(x, 0, {0, 1, 2, 3}, {0}, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].row, 3);
  EXPECT_EQ(nn[1].row, 1);
  EXPECT_LE(nn[0].distance, nn[1].distance);
}

}  // namespace
}  // namespace smfl::impute
