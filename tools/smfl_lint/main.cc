// smfl_lint CLI. Scans the repo source tree for contract violations and
// exits nonzero when any are found. See docs/static-analysis.md.
//
//   smfl_lint [--repo-root DIR] [--json FILE] [--graph] [--race]
//             [--dot FILE] [--sarif FILE] [--baseline FILE]
//             [--write-baseline] [--fix] [--dry-run] [PATH...]
//
//   --repo-root DIR   repo root used for rule scoping (default: cwd)
//   --json FILE       also write a machine-readable summary to FILE
//   --graph           run the module-layering / include-graph pass
//                     (layering, include-cycle, cc-include, unused-include)
//   --race            run the R13 ParallelFor race/determinism detector
//   --dot FILE        write the module include graph as Graphviz DOT
//                     (requires --graph)
//   --sarif FILE      write violations as SARIF 2.1.0 for CI annotation
//   --baseline FILE   accepted findings (rule|path|message keys); matches
//                     are reported but do not fail the run
//   --write-baseline  rewrite the --baseline file from this run's findings
//   --fix             remove the #include lines of unused-include findings
//   --dry-run         with --fix: print the would-be removals, touch nothing
//   PATH...           directories/files to scan, relative to the repo root
//                     (default: src)

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/smfl_lint/lint.h"

namespace {

int Usage() {
  std::cout
      << "usage: smfl_lint [--repo-root DIR] [--json FILE] [--graph] "
         "[--race]\n"
         "                 [--dot FILE] [--sarif FILE] [--baseline FILE]\n"
         "                 [--write-baseline] [--fix] [--dry-run] "
         "[PATH...]\n"
         "Checks repo contracts (see docs/static-analysis.md):\n"
         "  thread          parallelism only via src/common/parallel.*\n"
         "  nondet          no rand()/random_device/time()/system_clock\n"
         "  unordered-iter  no hash-order iteration in la/core/mf\n"
         "  discard-status  Status/Result results must be consumed\n"
         "  float-eq        no ==/!= against float literals\n"
         "  raw-log         no std::cerr outside logging.cc\n"
         "  raw-file-write  file writes only via WriteFileDurable\n"
         "With --graph: layering, include-cycle, cc-include, "
         "unused-include\n"
         "With --race:  race (R13) — shared writes / RNG / telemetry "
         "inside\n"
         "              ParallelFor-ParallelReduce bodies\n"
         "Suppress inline: // smfl-lint: allow(<rule>) <reason>\n";
  return 2;
}

bool WriteTextFile(const std::string& path, const std::string& content,
                   const char* what) {
  // smfl-lint: allow(raw-file-write) lint cannot depend on what it checks
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cout << "smfl_lint: cannot write " << what << " " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  smfl::lint::LintOptions options;
  options.roots.clear();
  std::string json_path;
  std::string dot_path;
  std::string sarif_path;
  bool write_baseline = false;
  bool fix = false;
  bool dry_run = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root" && i + 1 < argc) {
      options.repo_root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--graph") {
      options.graph_pass = true;
    } else if (arg == "--race") {
      options.race_pass = true;
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      options.baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cout << "unknown flag: " << arg << "\n";
      return Usage();
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) options.roots = {"src"};
  if (!dot_path.empty() && !options.graph_pass) {
    std::cout << "smfl_lint: --dot requires --graph\n";
    return 2;
  }
  if (write_baseline && options.baseline_path.empty()) {
    std::cout << "smfl_lint: --write-baseline requires --baseline FILE\n";
    return 2;
  }
  if (dry_run && !fix) {
    std::cout << "smfl_lint: --dry-run requires --fix\n";
    return 2;
  }

  smfl::lint::LintResult result;
  std::string error;
  if (!smfl::lint::RunLint(options, &result, &error)) {
    std::cout << "smfl_lint: " << error << "\n";
    return 2;
  }

  for (const auto& d : result.violations) {
    std::cout << smfl::lint::FormatDiagnostic(d) << "\n";
  }
  std::cout << "smfl_lint: " << result.files_scanned << " files, "
            << result.violations.size() << " violation(s), "
            << result.suppressed.size() << " suppressed, "
            << result.baselined.size() << " baselined\n";

  if (!json_path.empty() &&
      !WriteTextFile(json_path, smfl::lint::ResultToJson(result), "json")) {
    return 2;
  }
  if (!sarif_path.empty() &&
      !WriteTextFile(sarif_path, smfl::lint::ResultToSarif(result),
                     "sarif")) {
    return 2;
  }
  if (!dot_path.empty() &&
      !WriteTextFile(dot_path, result.dot, "dot")) {
    return 2;
  }
  if (write_baseline) {
    if (!WriteTextFile(options.baseline_path,
                       smfl::lint::BaselineFromResult(result), "baseline")) {
      return 2;
    }
    std::cout << "smfl_lint: baseline written to " << options.baseline_path
              << " (" << result.violations.size() + result.baselined.size()
              << " finding(s))\n";
    return 0;
  }

  if (fix) {
    std::vector<smfl::lint::Diagnostic> fixable = result.violations;
    fixable.insert(fixable.end(), result.baselined.begin(),
                   result.baselined.end());
    std::string report;
    int fixed = 0;
    if (!smfl::lint::ApplyUnusedIncludeFixes(options, fixable, dry_run,
                                             &report, &fixed, &error)) {
      std::cout << "smfl_lint: " << error << "\n";
      return 2;
    }
    if (!report.empty()) std::cout << report;
    std::cout << "smfl_lint: " << (dry_run ? "would remove " : "removed ")
              << fixed << " unused include(s)\n";
    if (!dry_run) {
      // Exit status reflects what remains after the mechanical fixes.
      int remaining = 0;
      for (const auto& d : result.violations) {
        if (d.rule != "unused-include") ++remaining;
      }
      return remaining == 0 ? 0 : 1;
    }
  }

  return result.violations.empty() ? 0 : 1;
}
