// The paper's spatial similarity structures (§II-C):
//   D: symmetric p-NN adjacency over spatial information (Formula 3),
//   W: diagonal degree matrix (Formula 4),
//   L = W - D: graph Laplacian.
//
// NeighborGraph stores D as adjacency lists so the products D*U and W*U that
// the multiplicative update (Formula 13) needs run in O(|E|·K) instead of
// O(N²·K); dense forms exist for tests and small problems.
//
// Edges carry weights. The paper's Formula 3 is binary (weight 1), which is
// what Build produces; ApplyHeatKernelWeights re-weights the same topology
// with w_ij = exp(-d_ij^2 / (2 sigma^2)) — the GNMF-style similarity the
// paper's related work ([9]) uses — for the weighted-Laplacian extension.

#ifndef SMFL_SPATIAL_GRAPH_H_
#define SMFL_SPATIAL_GRAPH_H_

#include <vector>

#include "src/common/status.h"
#include "src/la/matrix.h"
#include "src/la/sparse.h"

namespace smfl::spatial {

using la::Index;
using la::Matrix;
using la::Vector;

class NeighborGraph {
 public:
  // Builds the symmetric p-NN graph over the rows of `si` (the spatial
  // information block). Edge (i, j) exists iff i is among j's p nearest
  // neighbors or vice versa; no self loops. p must be in [1, n-1].
  static Result<NeighborGraph> Build(const Matrix& si, Index p);

  // Same, but rows with valid_rows[i] == false are isolated (no edges).
  // Used when some rows' spatial information is unobserved/dirty: a
  // mean-filled location would wire those rows to arbitrary map-center
  // neighbors, so they are excluded from the smoothness term instead.
  // p must be in [1, (#valid rows) - 1]; with fewer than 2 valid rows the
  // graph is edgeless.
  static Result<NeighborGraph> Build(const Matrix& si, Index p,
                                     const std::vector<bool>& valid_rows);

  // Builds the symmetric p-NN graph under the GREAT-CIRCLE metric over
  // (lat, lon) degree coordinates — the physically correct choice when
  // spatial information is geographic and the region is large. si must be
  // N x 2.
  static Result<NeighborGraph> BuildHaversine(const Matrix& si, Index p);

  // Adds an undirected unit-weight edge (deduplicated, self loops
  // ignored). Used to attach rows with partially observed spatial
  // information to their partial-distance neighbors after the main Build.
  void AddSymmetricEdge(Index a, Index b);

  // Replaces every edge's weight with exp(-d_ij^2 / (2 sigma^2)) computed
  // from the point coordinates; sigma <= 0 picks the mean edge length.
  // Degrees are recomputed. `points` must have num_vertices() rows.
  Status ApplyHeatKernelWeights(const Matrix& points, double sigma = 0.0);

  Index num_vertices() const { return static_cast<Index>(adj_.size()); }
  Index num_edges() const { return num_edges_; }

  // One weighted edge endpoint.
  struct Edge {
    Index to = 0;
    double weight = 1.0;

    friend bool operator==(const Edge& a, const Edge& b) {
      return a.to == b.to && a.weight == b.weight;
    }
  };

  const std::vector<Edge>& NeighborsOf(Index i) const {
    return adj_[static_cast<size_t>(i)];
  }

  // Vertex degree d_i = w_ii (sum of incident edge weights).
  double Degree(Index i) const { return degree_[i]; }

  // (D U): for each row i, the sum of U rows over i's neighbors.
  Matrix MultiplyD(const Matrix& u) const;

  // (W U): row i of U scaled by its degree.
  Matrix MultiplyW(const Matrix& u) const;

  // Tr(Uᵀ L U) = ½ Σ_{ij} d_ij ||u_i − u_j||² — the spatial regularizer
  // O_SR(U), computed edge-wise without forming L.
  double LaplacianQuadraticForm(const Matrix& u) const;

  // Dense D / W / L for verification and small-scale math.
  Matrix DenseD() const;
  Matrix DenseW() const;
  Matrix DenseL() const;

  // CSR exports of the adjacency D and the Laplacian L = W − D, for
  // spectral analysis and interop with la::SparseMatrix consumers.
  la::SparseMatrix SparseD() const;
  la::SparseMatrix SparseLaplacian() const;

 private:
  void RecomputeDegrees();

  std::vector<std::vector<Edge>> adj_;
  Vector degree_;
  Index num_edges_ = 0;
};

}  // namespace smfl::spatial

#endif  // SMFL_SPATIAL_GRAPH_H_
