#include "tools/smfl_lint/parse.h"

#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace smfl::lint {

namespace {

using Kind = Token::Kind;

// Keywords that can never be declared names or type heads we harvest.
bool IsCppKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "alignas",   "alignof",  "auto",      "bool",      "break",
      "case",      "catch",    "char",      "class",     "const",
      "constexpr", "consteval","constinit", "continue",  "decltype",
      "default",   "delete",   "do",        "double",    "else",
      "enum",      "explicit", "export",    "extern",    "false",
      "final",     "float",    "for",       "friend",    "goto",
      "if",        "inline",   "int",       "long",      "mutable",
      "namespace", "new",      "noexcept",  "nullptr",   "operator",
      "override",  "private",  "protected", "public",    "register",
      "requires",  "return",   "short",     "signed",    "sizeof",
      "static",    "struct",   "switch",    "template",  "this",
      "throw",     "true",     "try",       "typedef",   "typeid",
      "typename",  "union",    "unsigned",  "using",     "virtual",
      "void",      "volatile", "while",
  };
  return kKeywords.count(s) > 0;
}

// First word of a preprocessor directive ("include", "define", ...).
// The directive token text keeps the leading '#'.
std::string DirectiveKeyword(const std::string& text, size_t* after) {
  size_t p = 1;  // skip '#'
  while (p < text.size() &&
         (text[p] == ' ' || text[p] == '\t')) {
    ++p;
  }
  size_t start = p;
  while (p < text.size() && text[p] != ' ' && text[p] != '\t' &&
         text[p] != '<' && text[p] != '"') {
    ++p;
  }
  if (after != nullptr) *after = p;
  return text.substr(start, p - start);
}

}  // namespace

bool TokIs(const Token& t, Kind kind, const char* text) {
  return t.kind == kind && t.text == text;
}
bool TokIsIdent(const Token& t, const char* text) {
  return TokIs(t, Kind::kIdent, text);
}
bool TokIsPunct(const Token& t, const char* text) {
  return TokIs(t, Kind::kPunct, text);
}

size_t SkipTemplateArgList(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (TokIsPunct(toks[i], "<")) {
      ++depth;
    } else if (TokIsPunct(toks[i], ">")) {
      if (--depth == 0) return i + 1;
    } else if (TokIsPunct(toks[i], ">>")) {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (TokIsPunct(toks[i], ";")) {
      return toks.size();
    }
  }
  return toks.size();
}

namespace {

size_t MatchingDelim(const std::vector<Token>& toks, size_t i,
                     const char* open, const char* close) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (TokIsPunct(toks[i], open)) {
      ++depth;
    } else if (TokIsPunct(toks[i], close)) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

}  // namespace

size_t MatchingParen(const std::vector<Token>& toks, size_t i) {
  return MatchingDelim(toks, i, "(", ")");
}
size_t MatchingBrace(const std::vector<Token>& toks, size_t i) {
  return MatchingDelim(toks, i, "{", "}");
}
size_t MatchingBracket(const std::vector<Token>& toks, size_t i) {
  return MatchingDelim(toks, i, "[", "]");
}

// ---------------------------------------------------------------------------
// Includes

std::vector<IncludeDirective> ParseIncludes(const LexedFile& file) {
  std::vector<IncludeDirective> out;
  for (const Token& t : file.tokens) {
    if (t.kind != Kind::kPreproc) continue;
    size_t after = 0;
    if (DirectiveKeyword(t.text, &after) != "include") continue;
    size_t p = after;
    while (p < t.text.size() && (t.text[p] == ' ' || t.text[p] == '\t')) ++p;
    if (p >= t.text.size()) continue;
    const char open = t.text[p];
    if (open != '"' && open != '<') continue;  // computed include; skip
    const char close = open == '<' ? '>' : '"';
    const size_t end = t.text.find(close, p + 1);
    if (end == std::string::npos) continue;
    out.push_back(IncludeDirective{t.text.substr(p + 1, end - p - 1),
                                   open == '<', t.line});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Declared-symbol harvesting

namespace {

// Scope kinds for the brace tracker. "Transparent" scopes (namespaces,
// extern "C" blocks) keep us at harvesting depth; type scopes harvest
// nested type names and enumerators; everything else (function bodies,
// initializer lists) is opaque.
enum class ScopeKind { kNamespace, kType, kEnum, kOpaque };

}  // namespace

std::set<std::string> HarvestDeclaredSymbols(const LexedFile& file) {
  std::set<std::string> out;
  const auto& toks = file.tokens;
  std::vector<ScopeKind> scopes;

  auto at_harvest_depth = [&]() {
    for (ScopeKind k : scopes) {
      if (k == ScopeKind::kOpaque) return false;
    }
    return true;
  };
  auto in_enum = [&]() {
    return !scopes.empty() && scopes.back() == ScopeKind::kEnum;
  };
  auto add = [&](const std::string& name) {
    if (name.empty() || IsCppKeyword(name)) return;
    // Include-guard macros are structural, not part of the header's API.
    if (name.size() >= 3 &&
        name.compare(name.size() - 3, 3, "_H_") == 0) {
      return;
    }
    out.insert(name);
  };

  // Kind of the next '{': decided by the tokens since the last statement
  // boundary. Updated as we walk.
  size_t stmt_start = 0;  // token index where the current "statement" began

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    if (t.kind == Kind::kPreproc) {
      size_t after = 0;
      if (DirectiveKeyword(t.text, &after) == "define") {
        size_t p = after;
        while (p < t.text.size() && (t.text[p] == ' ' || t.text[p] == '\t')) {
          ++p;
        }
        size_t start = p;
        while (p < t.text.size() &&
               (std::isalnum(static_cast<unsigned char>(t.text[p])) ||
                t.text[p] == '_')) {
          ++p;
        }
        add(t.text.substr(start, p - start));
      }
      stmt_start = i + 1;
      continue;
    }

    if (TokIsPunct(t, "{")) {
      // Classify this scope from the statement tokens before it.
      ScopeKind kind = ScopeKind::kOpaque;
      bool saw_paren = false;
      bool saw_assign = false;
      for (size_t j = stmt_start; j < i; ++j) {
        if (TokIsPunct(toks[j], "(")) saw_paren = true;
        if (TokIsPunct(toks[j], "=")) saw_assign = true;
      }
      for (size_t j = stmt_start; j < i; ++j) {
        if (toks[j].kind != Kind::kIdent) continue;
        if (toks[j].text == "namespace") {
          kind = ScopeKind::kNamespace;
          break;
        }
        if (toks[j].text == "enum") {
          kind = ScopeKind::kEnum;
          break;
        }
        if ((toks[j].text == "class" || toks[j].text == "struct" ||
             toks[j].text == "union") &&
            !saw_paren && !saw_assign) {
          kind = ScopeKind::kType;
          break;
        }
        if (toks[j].text == "extern") {
          kind = ScopeKind::kNamespace;  // extern "C" { ... }
          break;
        }
      }
      scopes.push_back(kind);
      stmt_start = i + 1;
      continue;
    }
    if (TokIsPunct(t, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      stmt_start = i + 1;
      continue;
    }
    if (TokIsPunct(t, ";")) {
      stmt_start = i + 1;
      continue;
    }

    if (t.kind != Kind::kIdent) continue;

    // Type names: `class X` / `struct X` / `union X` / `enum [class] X`,
    // at any depth (nested types are part of the API via Outer::Inner).
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum") {
      size_t j = i + 1;
      if (j < toks.size() && t.text == "enum" &&
          (TokIsIdent(toks[j], "class") || TokIsIdent(toks[j], "struct"))) {
        ++j;
      }
      // Skip attributes: [[nodiscard]] etc.
      while (j + 1 < toks.size() && TokIsPunct(toks[j], "[") &&
             TokIsPunct(toks[j + 1], "[")) {
        j = MatchingBracket(toks, j);
        if (j >= toks.size()) break;
        ++j;
      }
      if (j < toks.size() && toks[j].kind == Kind::kIdent &&
          !IsCppKeyword(toks[j].text)) {
        add(toks[j].text);
      }
      continue;
    }

    // `using X = ...` and `typedef ... X;`
    if (t.text == "using" && i + 2 < toks.size() &&
        toks[i + 1].kind == Kind::kIdent && TokIsPunct(toks[i + 2], "=")) {
      add(toks[i + 1].text);
      continue;
    }
    if (t.text == "typedef") {
      // The declared name is the identifier right before the ';'.
      size_t j = i + 1;
      size_t last_ident = 0;
      bool found = false;
      for (; j < toks.size() && !TokIsPunct(toks[j], ";"); ++j) {
        if (toks[j].kind == Kind::kIdent && !IsCppKeyword(toks[j].text)) {
          last_ident = j;
          found = true;
        }
      }
      if (found) add(toks[last_ident].text);
      i = j;
      stmt_start = j + 1;
      continue;
    }

    if (!at_harvest_depth()) continue;

    // Enumerators: inside an enum scope, any identifier followed by ','
    // '}' or '=' is a value name.
    if (in_enum()) {
      if (i + 1 < toks.size() &&
          (TokIsPunct(toks[i + 1], ",") || TokIsPunct(toks[i + 1], "}") ||
           TokIsPunct(toks[i + 1], "="))) {
        add(t.text);
      }
      continue;
    }

    // Only harvest free functions/variables at namespace depth, not
    // class-member names (see header comment).
    bool only_transparent = true;
    for (ScopeKind k : scopes) {
      if (k != ScopeKind::kNamespace) {
        only_transparent = false;
        break;
      }
    }
    if (!only_transparent) continue;

    if (IsCppKeyword(t.text)) continue;
    if (i + 1 >= toks.size()) continue;

    // Function (or function-style macro invocation that declares, e.g.
    // factory wrappers): `Name(` where the previous token is type-ish.
    if (TokIsPunct(toks[i + 1], "(")) {
      if (i == 0) continue;
      const Token& prev = toks[i - 1];
      // ">>" closes two template levels in one token
      // (Result<std::unique_ptr<T>> Name).
      const bool typeish_before =
          prev.kind == Kind::kIdent || TokIsPunct(prev, "&") ||
          TokIsPunct(prev, "*") || TokIsPunct(prev, ">") ||
          TokIsPunct(prev, ">>");
      if (typeish_before && !TokIsIdent(prev, "return") &&
          !TokIsIdent(prev, "new")) {
        add(t.text);
      }
      continue;
    }

    // Namespace-scope variable/constant: `... Name = ...;` or
    // `... Name;` or `... Name[...]` where the previous token closes a
    // type (identifier, '>', '&', '*').
    if (TokIsPunct(toks[i + 1], "=") || TokIsPunct(toks[i + 1], ";") ||
        TokIsPunct(toks[i + 1], "[")) {
      if (i == 0) continue;
      const Token& prev = toks[i - 1];
      // Builtin type keywords legitimately precede a variable name
      // (`inline constexpr double kDivEps = ...`); other keywords
      // (`return x;`, `case x:`) do not.
      static const std::set<std::string> kTypeKeywords = {
          "auto", "bool",  "char",  "char8_t",  "char16_t", "char32_t",
          "double", "float", "int", "long", "short", "signed", "unsigned",
          "wchar_t"};
      const bool typeish_before =
          (prev.kind == Kind::kIdent &&
           (!IsCppKeyword(prev.text) || kTypeKeywords.count(prev.text))) ||
          TokIsPunct(prev, "&") || TokIsPunct(prev, "*") ||
          TokIsPunct(prev, ">") || TokIsPunct(prev, ">>");
      if (typeish_before && !TokIsIdent(prev, "return")) {
        add(t.text);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lambda parsing

bool ParseLambda(const std::vector<Token>& toks, size_t open_bracket,
                 LambdaInfo* out) {
  if (open_bracket >= toks.size() ||
      !TokIsPunct(toks[open_bracket], "[")) {
    return false;
  }
  // A subscript has a postfix expression before it: ident, ')', ']', or a
  // string/number. `[[` is an attribute.
  if (open_bracket > 0) {
    const Token& prev = toks[open_bracket - 1];
    if (prev.kind == Kind::kIdent && !IsCppKeyword(prev.text)) return false;
    if (prev.kind == Kind::kNumber || prev.kind == Kind::kString) {
      return false;
    }
    if (TokIsPunct(prev, ")") || TokIsPunct(prev, "]")) return false;
  }
  if (open_bracket + 1 < toks.size() &&
      TokIsPunct(toks[open_bracket + 1], "[")) {
    return false;  // [[attribute]]
  }

  const size_t close = MatchingBracket(toks, open_bracket);
  if (close >= toks.size()) return false;

  *out = LambdaInfo{};
  out->line = toks[open_bracket].line;

  // Split the capture list on top-level commas.
  size_t entry_start = open_bracket + 1;
  int depth = 0;
  for (size_t i = open_bracket + 1; i <= close; ++i) {
    const bool at_end = i == close;
    if (!at_end) {
      if (TokIsPunct(toks[i], "(") || TokIsPunct(toks[i], "[") ||
          TokIsPunct(toks[i], "{") || TokIsPunct(toks[i], "<")) {
        ++depth;
        continue;
      }
      if (TokIsPunct(toks[i], ")") || TokIsPunct(toks[i], "]") ||
          TokIsPunct(toks[i], "}") || TokIsPunct(toks[i], ">")) {
        --depth;
        continue;
      }
    }
    if (!at_end && !(depth == 0 && TokIsPunct(toks[i], ","))) continue;

    // Entry tokens: [entry_start, i).
    if (i > entry_start) {
      LambdaCapture cap{};
      size_t j = entry_start;
      if (TokIsPunct(toks[j], "&")) {
        cap.by_ref = true;
        ++j;
      } else if (TokIsPunct(toks[j], "=")) {
        cap.is_default = true;
        out->default_by_value = true;
        out->captures.push_back(cap);
        entry_start = i + 1;
        continue;
      } else if (TokIsPunct(toks[j], "*") && j + 1 < toks.size() &&
                 TokIsIdent(toks[j + 1], "this")) {
        cap.is_this = true;
        cap.name = "this";
        out->captures.push_back(cap);
        entry_start = i + 1;
        continue;
      }
      if (j >= i) {
        // Bare '&' default capture.
        if (cap.by_ref) {
          cap.is_default = true;
          out->default_by_ref = true;
          out->captures.push_back(cap);
        }
      } else if (TokIsIdent(toks[j], "this")) {
        cap.is_this = true;
        cap.name = "this";
        out->captures.push_back(cap);
      } else if (toks[j].kind == Kind::kIdent) {
        cap.name = toks[j].text;
        out->captures.push_back(cap);
        // Init-captures (`x = expr`) and plain names both bind the NAME
        // inside the body; by_ref tracks how the outer state is reached.
        if (cap.by_ref) {
          out->by_ref_names.insert(cap.name);
        } else {
          out->by_value_names.insert(cap.name);
        }
      }
    }
    entry_start = i + 1;
  }

  // Optional parameter list.
  size_t i = close + 1;
  if (i < toks.size() && TokIsPunct(toks[i], "(")) {
    const size_t params_close = MatchingParen(toks, i);
    if (params_close >= toks.size()) return false;
    // Each parameter's name is the last identifier before a top-level ','
    // or the ')' (skipping over nested template/paren groups).
    int d = 0;
    std::string last_ident;
    for (size_t j = i + 1; j <= params_close; ++j) {
      if (j < params_close) {
        if (TokIsPunct(toks[j], "(") || TokIsPunct(toks[j], "<") ||
            TokIsPunct(toks[j], "[")) {
          ++d;
          continue;
        }
        if (TokIsPunct(toks[j], ")") || TokIsPunct(toks[j], ">") ||
            TokIsPunct(toks[j], "]")) {
          --d;
          continue;
        }
      }
      if (d == 0 && toks[j].kind == Kind::kIdent &&
          !IsCppKeyword(toks[j].text)) {
        last_ident = toks[j].text;
      }
      if (j == params_close || (d == 0 && TokIsPunct(toks[j], ","))) {
        if (!last_ident.empty()) out->params.push_back(last_ident);
        last_ident.clear();
      }
    }
    i = params_close + 1;
  }

  // Skip mutable / noexcept / -> return-type up to the body brace.
  while (i < toks.size() && !TokIsPunct(toks[i], "{")) {
    if (TokIsPunct(toks[i], ";") || TokIsPunct(toks[i], ")")) return false;
    ++i;
  }
  if (i >= toks.size()) return false;
  const size_t body_close = MatchingBrace(toks, i);
  if (body_close >= toks.size()) return false;
  out->body_begin = i + 1;
  out->body_end = body_close;
  return true;
}

}  // namespace smfl::lint
