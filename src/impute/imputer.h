// Common interface for all imputation methods (paper §IV-A3).
//
// Contract: `x` is the (min-max normalized) data matrix whose first
// `spatial_cols` columns are spatial information; only entries marked true
// in `observed` may be read. The result must equal x on observed entries and
// hold predictions elsewhere. Implementations must not consult ground truth.

#ifndef SMFL_IMPUTE_IMPUTER_H_
#define SMFL_IMPUTE_IMPUTER_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/data/mask.h"

namespace smfl::impute {

using data::Mask;
using la::Index;
using la::Matrix;

class Imputer {
 public:
  virtual ~Imputer() = default;

  // Display name used in experiment tables ("kNNE", "DLM", "SMFL", ...).
  virtual std::string name() const = 0;

  virtual Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                                Index spatial_cols) const = 0;
};

}  // namespace smfl::impute

#endif  // SMFL_IMPUTE_IMPUTER_H_
