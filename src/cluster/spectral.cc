#include "src/cluster/spectral.h"

#include <cmath>

#include "src/cluster/kmeans.h"
#include "src/la/eigen.h"

namespace smfl::cluster {

Result<SpectralResult> SpectralClustering(const spatial::NeighborGraph& graph,
                                          const SpectralOptions& options) {
  const Index n = graph.num_vertices();
  if (n == 0) {
    return Status::InvalidArgument("SpectralClustering: empty graph");
  }
  if (options.k < 1 || options.k > n) {
    return Status::InvalidArgument("SpectralClustering: bad cluster count");
  }
  ASSIGN_OR_RETURN(la::EigenDecomposition eigen,
                   la::SymmetricEigen(graph.DenseL()));
  // Embedding: the k eigenvectors of smallest eigenvalue, rows normalized
  // (Ng–Jordan–Weiss style).
  Matrix embedding = eigen.vectors.Block(0, 0, n, options.k);
  for (Index i = 0; i < n; ++i) {
    auto row = embedding.Row(i);
    double norm = 0.0;
    for (double v : row) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (double& v : row) v /= norm;
    }
  }
  KMeansOptions km;
  km.k = options.k;
  km.seed = options.seed;
  ASSIGN_OR_RETURN(KMeansResult kmeans, KMeans(embedding, km));

  SpectralResult result;
  result.assignments = std::move(kmeans.assignments);
  result.eigenvalues = la::Vector(options.k);
  for (Index i = 0; i < options.k; ++i) {
    result.eigenvalues[i] = eigen.values[i];
  }
  return result;
}

}  // namespace smfl::cluster
