// Householder QR and least-squares solves.

#ifndef SMFL_LA_QR_H_
#define SMFL_LA_QR_H_

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::la {

// Thin QR of an n x m matrix (n >= m): A = Q R with Q n x m orthonormal
// columns and R m x m upper triangular.
struct QrDecomposition {
  Matrix q;
  Matrix r;
};

Result<QrDecomposition> QrFactor(const Matrix& a);

// Minimum-norm least squares solution of min ||A x - b||_2 via QR.
// Fails with NumericError if A is numerically rank-deficient.
Result<Vector> LeastSquares(const Matrix& a, const Vector& b);

// Ridge (Tikhonov) least squares: solves (A^T A + lambda I) x = A^T b.
// lambda > 0 makes the system SPD even for rank-deficient A, which is what
// the regression-based imputers rely on.
Result<Vector> RidgeSolve(const Matrix& a, const Vector& b, double lambda);

}  // namespace smfl::la

#endif  // SMFL_LA_QR_H_
