// Edge-case and property coverage for the core SMFL machinery beyond
// core_test.cc: degenerate geometries, extreme ranks, option interactions,
// and the efficiency claim (landmark columns of V skip their update).

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stopwatch.h"
#include "src/core/landmarks.h"
#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/la/ops.h"
#include "src/mf/nmf.h"

namespace smfl::core {
namespace {

using data::Mask;

struct Scenario {
  Matrix truth;
  Mask observed;
  Matrix input;
};

Scenario MakeScenario(Index rows, double missing_rate, uint64_t seed) {
  auto dataset = data::MakeLakeLike(rows, seed);
  SMFL_CHECK(dataset.ok());
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Scenario s;
  s.truth = normalizer->Transform(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = missing_rate;
  inject.preserve_complete_rows = 20;
  inject.seed = seed + 5;
  auto injection = data::InjectMissing(dataset->table, inject);
  SMFL_CHECK(injection.ok());
  s.observed = injection->observed;
  s.input = data::ApplyMask(s.truth, s.observed);
  return s;
}

TEST(SmflEdgeTest, AllColumnsSpatial) {
  // A matrix that is ONLY coordinates: legal (L = M); V has no free
  // columns, so only U updates.
  Scenario s = MakeScenario(60, 0.0, 3);
  Matrix si = s.truth.Block(0, 0, 60, 2);
  SmflOptions options;
  options.rank = 4;
  options.max_iterations = 30;
  auto model = FitSmfl(si, Mask::AllSet(60, 2), 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(LandmarksIntact(model->v, model->landmarks));
  EXPECT_EQ(model->v.cols(), 2);
}

TEST(SmflEdgeTest, RankOne) {
  Scenario s = MakeScenario(80, 0.1, 5);
  SmflOptions options;
  options.rank = 1;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->u.cols(), 1);
  EXPECT_FALSE(model->Reconstruct().HasNonFinite());
}

TEST(SmflEdgeTest, RankEqualsRowCount) {
  Scenario s = MakeScenario(20, 0.1, 7);
  SmflOptions options;
  options.rank = 20;  // K = N: one landmark per observation is legal
  options.max_iterations = 20;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->landmarks.rows(), 20);
}

TEST(SmflEdgeTest, DuplicateLocations) {
  // All rows at the same location: K-means centers coincide; the fit must
  // still be finite and monotone.
  Scenario s = MakeScenario(40, 0.1, 9);
  for (Index i = 0; i < 40; ++i) {
    s.input(i, 0) = 0.5;
    s.input(i, 1) = 0.5;
  }
  SmflOptions options;
  options.rank = 5;
  options.max_iterations = 40;
  options.tolerance = 0.0;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  const auto& trace = model->report.objective_trace;
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-9));
  }
}

TEST(SmflEdgeTest, LambdaZeroEqualsLandmarkedNmf) {
  // With lambda = 0 the Laplacian term vanishes; the objective trace must
  // equal the masked reconstruction error exactly.
  Scenario s = MakeScenario(60, 0.1, 11);
  SmflOptions options;
  options.lambda = 0.0;
  options.max_iterations = 10;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  const double reconstruction =
      mf::MaskedReconstructionError(s.input, s.observed, model->u, model->v);
  EXPECT_NEAR(model->report.final_objective(), reconstruction, 1e-9);
}

TEST(SmflEdgeTest, TraceLengthMatchesIterations) {
  Scenario s = MakeScenario(50, 0.1, 13);
  SmflOptions options;
  options.max_iterations = 17;
  options.tolerance = 0.0;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->report.iterations, 17);
  // Initial objective + one entry per iteration.
  EXPECT_EQ(model->report.objective_trace.size(), 18u);
  EXPECT_FALSE(model->report.converged);
}

TEST(SmflEdgeTest, TinyMatrix) {
  Matrix x{{0.1, 0.2, 0.5}, {0.9, 0.8, 0.4}};
  SmflOptions options;
  options.rank = 2;
  options.num_neighbors = 1;
  options.max_iterations = 20;
  auto model = FitSmfl(x, Mask::AllSet(2, 3), 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->Reconstruct().HasNonFinite());
}

TEST(SmflEdgeTest, NeighborsClampedToDataSize) {
  // p defaults to 3 but only 2 rows exist: the fit must clamp, not fail.
  Matrix x{{0.1, 0.2, 0.5}, {0.9, 0.8, 0.4}};
  SmflOptions options;
  options.rank = 2;
  options.num_neighbors = 50;
  options.max_iterations = 5;
  EXPECT_TRUE(FitSmfl(x, Mask::AllSet(2, 3), 2, options).ok());
}

TEST(SmflEdgeTest, SmflImputeDeterministicEndToEnd) {
  Scenario s = MakeScenario(70, 0.15, 17);
  SmflOptions options;
  options.max_iterations = 25;
  auto a = SmflImpute(s.input, s.observed, 2, options);
  auto b = SmflImpute(s.input, s.observed, 2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(*a, *b), 0.0);
}

TEST(SmflEdgeTest, LandmarkColumnsUntouchedUnderGradientDescent) {
  Scenario s = MakeScenario(60, 0.1, 19);
  SmflOptions options;
  options.update = UpdateMethod::kGradientDescent;
  options.learning_rate = 1e-3;
  options.max_iterations = 40;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(LandmarksIntact(model->v, model->landmarks));
}

// The efficiency claim of §III-A / Fig 9: SMFL's V update skips the first
// L columns, so its per-fit time must not exceed SMF's by more than noise
// (both run the same U update; SMFL adds K-means once).
TEST(SmflEdgeTest, LandmarkFreezingDoesNotSlowDown) {
  Scenario s = MakeScenario(600, 0.1, 23);
  SmflOptions options;
  options.max_iterations = 60;
  options.tolerance = 0.0;

  const auto time_fit = [&](bool landmarks) {
    SmflOptions o = options;
    o.use_landmarks = landmarks;
    // Warm-up + timed run; coarse but stable enough for a 1.5x bound.
    (void)FitSmfl(s.input, s.observed, 2, o);
    smfl::Stopwatch watch;
    auto model = FitSmfl(s.input, s.observed, 2, o);
    SMFL_CHECK(model.ok());
    return watch.ElapsedSeconds();
  };
  const double smf_seconds = time_fit(false);
  const double smfl_seconds = time_fit(true);
  EXPECT_LT(smfl_seconds, smf_seconds * 1.5)
      << "SMFL " << smfl_seconds << "s vs SMF " << smf_seconds << "s";
}

TEST(SmflEdgeTest, RestartsNeverWorsenObjective) {
  Scenario s = MakeScenario(120, 0.1, 29);
  SmflOptions single;
  single.use_landmarks = false;  // SMF: random init, restarts matter
  single.max_iterations = 40;
  auto one = FitSmfl(s.input, s.observed, 2, single);
  ASSERT_TRUE(one.ok());
  SmflOptions multi = single;
  multi.num_restarts = 4;
  auto best = FitSmfl(s.input, s.observed, 2, multi);
  ASSERT_TRUE(best.ok());
  // The best-of-4 includes seed variations; its objective cannot exceed
  // the single fit's (same first seed).
  EXPECT_LE(best->report.final_objective(),
            one->report.final_objective() * (1.0 + 1e-12));
}

TEST(SmflEdgeTest, RestartsValidation) {
  Scenario s = MakeScenario(30, 0.1, 31);
  SmflOptions options;
  options.num_restarts = 0;
  EXPECT_FALSE(FitSmfl(s.input, s.observed, 2, options).ok());
}

TEST(LandmarkEdgeTest, SingleLandmark) {
  auto dataset = data::MakeLakeLike(50, 25);
  Matrix si = dataset->table.SpatialInfo();
  auto landmarks = GenerateLandmarks(si, 1);
  ASSERT_TRUE(landmarks.ok());
  // One cluster: its center is the centroid.
  la::Vector mean = la::ColMeans(si);
  EXPECT_NEAR((*landmarks)(0, 0), mean[0], 1e-9);
  EXPECT_NEAR((*landmarks)(0, 1), mean[1], 1e-9);
}

TEST(LandmarkEdgeTest, DeterministicAcrossCalls) {
  auto dataset = data::MakeLakeLike(200, 27);
  Matrix si = dataset->table.SpatialInfo();
  auto a = GenerateLandmarks(si, 6);
  auto b = GenerateLandmarks(si, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(*a, *b), 0.0);
}

}  // namespace
}  // namespace smfl::core
