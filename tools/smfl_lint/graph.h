// Include-graph / module-layering pass for smfl_lint (enabled by
// --graph). Builds the full project include graph of the scanned files
// and enforces the declared module DAG
//
//   common -> la -> data -> spatial -> cluster -> nn -> mf -> core
//          -> impute/repair -> obs -> exp/apps/cli
//
// (an arrow means "may be included by everything to its right"; impute
// and repair share a layer, with the single sanctioned same-layer edge
// repair -> impute for the degradation chains). Findings:
//
//   layering        an include edge against the DAG (a back-edge such as
//                   src/la including src/core, or a same-layer edge that
//                   is not sanctioned)
//   include-cycle   a cycle in the file-level include graph
//   cc-include      a #include of a .cc/.cpp file
//   unused-include  IWYU-lite: a direct project include none of whose
//                   harvested declared symbols (parse.h) appear in the
//                   includer's token stream
//
// The graph can be exported as Graphviz DOT (module-level, one edge per
// module pair) for docs/module-graph.dot.

#ifndef SMFL_TOOLS_SMFL_LINT_GRAPH_H_
#define SMFL_TOOLS_SMFL_LINT_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "tools/smfl_lint/lint.h"
#include "tools/smfl_lint/parse.h"

namespace smfl::lint {

struct IncludeEdge {
  std::string from;  // includer rel path
  std::string to;    // resolved included rel path (project files only)
  int line;          // line of the #include in `from`
};

struct IncludeGraph {
  // Direct project-include edges per scanned file, in directive order.
  // External (<...> or unresolvable) includes are not represented.
  std::map<std::string, std::vector<IncludeEdge>> edges;
};

// The module of a rel path: the path component after src/ ("src/core/x.h"
// -> "core"). Paths outside src/ map to their first component ("tools").
std::string ModuleOf(const std::string& rel_path);

// The declared layer rank of a module, or -1 for unknown modules (which
// the layering check reports). Lower ranks are more fundamental.
int ModuleRank(const std::string& module);

// Builds the graph from already-lexed files. A quoted include is resolved
// against repo_root first, then against the includer's directory; files
// that do not exist on disk are treated as external and skipped.
IncludeGraph BuildIncludeGraph(const std::vector<LexedFile>& files,
                               const std::string& repo_root);

// Runs the layering, cycle, cc-include, and unused-include checks over
// the graph, appending raw findings per file to `raw` (keyed by the
// includer's rel path so the driver can apply that file's suppressions).
// `lexed_by_path` must contain every scanned file; headers outside it are
// lexed on demand from repo_root for symbol harvesting.
void CheckIncludeGraph(const IncludeGraph& graph,
                       const std::map<std::string, const LexedFile*>&
                           lexed_by_path,
                       const std::string& repo_root,
                       std::map<std::string, std::vector<Diagnostic>>* raw);

// Module-level DOT rendering of the graph, deterministic (sorted nodes
// and edges), one edge per (from-module, to-module) pair, annotated with
// the layer rank. Self-edges are omitted.
std::string GraphToDot(const IncludeGraph& graph);

}  // namespace smfl::lint

#endif  // SMFL_TOOLS_SMFL_LINT_GRAPH_H_
