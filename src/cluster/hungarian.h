// Kuhn–Munkres (Hungarian) assignment and clustering accuracy.
//
// The paper evaluates clustering (Fig 4b) with
//   Accuracy = max_σ (1/n) Σ δ(truth[i], σ(pred[i]))
// where σ is the label permutation maximizing agreement, found by
// Kuhn–Munkres over the label co-occurrence matrix.

#ifndef SMFL_CLUSTER_HUNGARIAN_H_
#define SMFL_CLUSTER_HUNGARIAN_H_

#include <vector>

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::cluster {

using la::Index;
using la::Matrix;

// Minimum-cost perfect assignment on a square cost matrix.
// Returns assignment[row] = column. O(n^3).
Result<std::vector<Index>> SolveAssignment(const Matrix& cost);

// Clustering accuracy with optimal label matching. Label values may be any
// nonnegative integers; the two labelings may use different label sets.
Result<double> ClusteringAccuracy(const std::vector<Index>& truth,
                                  const std::vector<Index>& pred);

}  // namespace smfl::cluster

#endif  // SMFL_CLUSTER_HUNGARIAN_H_
