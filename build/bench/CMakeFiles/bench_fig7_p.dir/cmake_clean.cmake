file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_p.dir/bench_fig7_p.cpp.o"
  "CMakeFiles/bench_fig7_p.dir/bench_fig7_p.cpp.o.d"
  "bench_fig7_p"
  "bench_fig7_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
