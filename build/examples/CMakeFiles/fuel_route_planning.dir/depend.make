# Empty dependencies file for fuel_route_planning.
# This may be replaced when dependencies are built.
