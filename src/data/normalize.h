// Min-max normalization to [0, 1] per column, mask-aware.
//
// The paper normalizes every dataset column into [0, 1] before running any
// method so that RMS errors are comparable across columns. Fitting must only
// look at observed entries; the inverse transform restores original units.

#ifndef SMFL_DATA_NORMALIZE_H_
#define SMFL_DATA_NORMALIZE_H_

#include <vector>

#include "src/common/status.h"
#include "src/data/mask.h"

namespace smfl::data {

class MinMaxNormalizer {
 public:
  // Learns per-column [min, max] over the entries in `observed`.
  // Columns with no observed entries or constant value get range [v, v+1]
  // so Transform stays well-defined (maps to 0).
  static Result<MinMaxNormalizer> Fit(const Matrix& x, const Mask& observed);

  // Fit over all entries.
  static Result<MinMaxNormalizer> Fit(const Matrix& x);

  // Reconstructs a fitted normalizer from per-column bounds, as persisted
  // by core/model_io. Requires equal sizes, finite values, and
  // max > min per column.
  static Result<MinMaxNormalizer> FromBounds(std::vector<double> mins,
                                             std::vector<double> maxs);

  // (x - min) / (max - min), column-wise.
  Matrix Transform(const Matrix& x) const;

  // Inverse map back to original units.
  Matrix InverseTransform(const Matrix& x) const;

  // Inverse for a single cell.
  double InverseTransformCell(double v, Index col) const;

  Index NumCols() const { return static_cast<Index>(mins_.size()); }
  double ColMin(Index j) const { return mins_[static_cast<size_t>(j)]; }
  double ColMax(Index j) const { return maxs_[static_cast<size_t>(j)]; }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

// Replaces unobserved entries with the column mean of the observed entries
// (0.5 for fully-unobserved columns of normalized data). The paper uses this
// to initialize missing spatial-information cells before computing the
// similarity matrix D (§II-C); it is NOT the final imputation.
Matrix FillWithColumnMeans(const Matrix& x, const Mask& observed);

}  // namespace smfl::data

#endif  // SMFL_DATA_NORMALIZE_H_
