#include "src/common/rng.h"

#include <bit>
#include <cmath>

#include "src/common/logging.h"

namespace smfl {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  have_cached_normal_ = false;
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  SMFL_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = static_cast<size_t>(UniformInt(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SMFL_CHECK_LE(k, n);
  // Partial Fisher–Yates over an index array.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextU64()); }

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.have_cached_normal = have_cached_normal_;
  state.cached_normal_bits = std::bit_cast<uint64_t>(cached_normal_);
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = std::bit_cast<double>(state.cached_normal_bits);
}

}  // namespace smfl
