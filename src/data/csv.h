// CSV I/O for Tables. Empty cells are legal and come back as unobserved
// entries (value 0 in the matrix, false in the returned observation mask).
//
// Two ingestion modes (CsvReadOptions::mode):
//  * kStrict (default)  — any malformed row (wrong arity, non-numeric cell,
//    non-finite value) fails the whole file with kDataError.
//  * kLenient           — malformed rows are quarantined into
//    CsvTable::row_errors and parsing continues; the returned table holds
//    only the clean rows. The file still fails when nothing clean remains.

#ifndef SMFL_DATA_CSV_H_
#define SMFL_DATA_CSV_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/mask.h"
#include "src/data/table.h"

namespace smfl::data {

// One quarantined input row (lenient mode only).
struct CsvRowError {
  // 1-based line number in the original file (header included in the count).
  size_t line = 0;
  std::string message;
};

struct CsvTable {
  Table table;
  // Observation mask Ω: true where the cell held a value.
  Mask observed;
  // Rows dropped by lenient ingestion, in file order. Empty in strict mode
  // (strict fails instead of quarantining).
  std::vector<CsvRowError> row_errors;
};

enum class CsvMode {
  kStrict,
  kLenient,
};

struct CsvReadOptions {
  char delimiter = ',';
  bool has_header = true;
  // How many leading columns are spatial information (the paper's L).
  Index spatial_cols = 2;
  CsvMode mode = CsvMode::kStrict;
};

// Reads a numeric CSV file. Strict mode fails with DataError on ragged
// rows, non-numeric non-empty cells, or non-finite values (a NaN spatial
// coordinate is malformed input, not a missing value); lenient mode
// quarantines such rows into `row_errors`. IoError if the file cannot be
// opened.
Result<CsvTable> ReadCsv(const std::string& path,
                         const CsvReadOptions& options = {});

// Parses CSV from an in-memory string (same semantics as ReadCsv).
Result<CsvTable> ParseCsv(const std::string& content,
                          const CsvReadOptions& options = {});

// Writes a table; entries not in `observed` are emitted as empty cells.
Status WriteCsv(const std::string& path, const Table& table,
                const Mask& observed, char delimiter = ',');

// Convenience overload: all entries observed.
Status WriteCsv(const std::string& path, const Table& table,
                char delimiter = ',');

// One line per quarantined row: "line 7: row has 3 fields, expected 4".
std::string FormatRowErrors(const std::vector<CsvRowError>& errors);

}  // namespace smfl::data

#endif  // SMFL_DATA_CSV_H_
