# Empty dependencies file for bench_table5_missing_si.
# This may be replaced when dependencies are built.
