// Durable, corruption-detecting file I/O.
//
// Two independent pieces that compose into crash-safe persistence:
//
//  1. Atomic replace (`WriteFileDurable`): content is written to a
//     same-directory temp file, flushed to the device with fsync, and
//     moved into place with rename(2) — which POSIX guarantees atomic
//     within a filesystem — followed by an fsync of the parent directory
//     so the rename itself survives a power cut. A reader therefore sees
//     either the complete old file or the complete new file, never a
//     truncated in-between.
//
//  2. Checksummed section framing (`SectionWriter` / `ParseSections`):
//     a container format holding named, length-prefixed, CRC32-checksummed
//     byte sections. Torn writes, partial reads, and single-byte
//     corruption that slip past the rename protocol (a lying disk, a
//     cosmic ray, an fsync the kernel only pretended to do) are detected
//     at read time as a clean DataError instead of garbage being parsed.
//
// Model format v3 (src/core/model_io.*) and training checkpoints
// (src/core/checkpoint.*) both persist through this layer; the smfl-lint
// `raw-file-write` rule keeps other code from bypassing it.
//
// Fault points (docs/robustness.md): `io.write.torn` truncates the
// payload mid-write but lets the rename proceed (simulating a crash
// window a checksummed reader must catch), `io.write.fsync_fail` fails
// the data fsync, and `io.read.partial` returns a prefix of the file.

#ifndef SMFL_COMMON_DURABLE_IO_H_
#define SMFL_COMMON_DURABLE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace smfl {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`, optionally
// continuing from a previous partial checksum.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

// Atomically replaces `path` with `content`: temp file in the same
// directory, fsync, rename, parent-directory fsync. On any failure the
// temp file is removed and `path` is left untouched.
Status WriteFileDurable(const std::string& path, std::string_view content);

// Reads an entire file (binary-safe). IoError when unreadable.
Result<std::string> ReadFileToString(const std::string& path);

// ---------------------------------------------------------------------------
// Section framing.
//
// Container layout (lengths are explicit, so payloads are binary-safe):
//
//   smfl-durable 1 <section_count>\n
//   section <name> <payload_bytes> <crc32_hex8>\n
//   <payload bytes>\n
//   ... repeated per section ...

struct Section {
  std::string name;
  std::string payload;
};

// Accumulates named sections and renders the container.
class SectionWriter {
 public:
  // `name` must be non-empty and free of whitespace/newlines.
  void Add(std::string_view name, std::string_view payload);

  // The complete container for the sections added so far.
  std::string Finish() const;

 private:
  std::vector<Section> sections_;
};

// Parses a container, verifying structure and every section's CRC.
// Returns DataError naming the offending section on any mismatch,
// truncation, or trailing garbage.
Result<std::vector<Section>> ParseSections(const std::string& content);

// True when `content` begins with the container magic (cheap dispatch
// between framed and legacy formats).
bool LooksLikeDurableContainer(std::string_view content);

}  // namespace smfl

#endif  // SMFL_COMMON_DURABLE_IO_H_
