# Empty dependencies file for bench_fig1_map.
# This may be replaced when dependencies are built.
