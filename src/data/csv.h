// CSV I/O for Tables. Empty cells are legal and come back as unobserved
// entries (value 0 in the matrix, false in the returned observation mask).

#ifndef SMFL_DATA_CSV_H_
#define SMFL_DATA_CSV_H_

#include <string>

#include "src/common/status.h"
#include "src/data/mask.h"
#include "src/data/table.h"

namespace smfl::data {

struct CsvTable {
  Table table;
  // Observation mask Ω: true where the cell held a value.
  Mask observed;
};

struct CsvReadOptions {
  char delimiter = ',';
  bool has_header = true;
  // How many leading columns are spatial information (the paper's L).
  Index spatial_cols = 2;
};

// Reads a numeric CSV file. Fails with DataError on ragged rows or
// non-numeric non-empty cells, IoError if the file cannot be opened.
Result<CsvTable> ReadCsv(const std::string& path,
                         const CsvReadOptions& options = {});

// Parses CSV from an in-memory string (same semantics as ReadCsv).
Result<CsvTable> ParseCsv(const std::string& content,
                          const CsvReadOptions& options = {});

// Writes a table; entries not in `observed` are emitted as empty cells.
Status WriteCsv(const std::string& path, const Table& table,
                const Mask& observed, char delimiter = ',');

// Convenience overload: all entries observed.
Status WriteCsv(const std::string& path, const Table& table,
                char delimiter = ',');

}  // namespace smfl::data

#endif  // SMFL_DATA_CSV_H_
