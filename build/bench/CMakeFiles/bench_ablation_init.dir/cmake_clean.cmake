file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_init.dir/bench_ablation_init.cpp.o"
  "CMakeFiles/bench_ablation_init.dir/bench_ablation_init.cpp.o.d"
  "bench_ablation_init"
  "bench_ablation_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
