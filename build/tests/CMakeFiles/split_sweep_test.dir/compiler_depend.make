# Empty compiler generated dependencies file for split_sweep_test.
# This may be replaced when dependencies are built.
