// Element-wise activations for the MLP substrate.

#ifndef SMFL_NN_ACTIVATIONS_H_
#define SMFL_NN_ACTIVATIONS_H_

#include "src/la/matrix.h"

namespace smfl::nn {

using la::Index;
using la::Matrix;

enum class Activation { kIdentity, kRelu, kSigmoid, kTanh };

// y = act(x), element-wise.
Matrix Apply(Activation act, const Matrix& x);

// Given y = act(x) and upstream gradient dy, returns dx. All supported
// activations admit a derivative expressed in terms of the output y, so we
// never need to retain x.
Matrix Backprop(Activation act, const Matrix& y, const Matrix& dy);

}  // namespace smfl::nn

#endif  // SMFL_NN_ACTIVATIONS_H_
