#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/la/cholesky.h"
#include "src/la/matrix.h"
#include "src/la/ops.h"
#include "src/la/qr.h"
#include "src/la/svd.h"

namespace smfl::la {
namespace {

Matrix RandomMatrix(Index rows, Index cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (Index i = 0; i < m.size(); ++i) m.data()[i] = rng.Normal();
  return m;
}

// Random SPD matrix A = B Bᵀ + n I.
Matrix RandomSpd(Index n, uint64_t seed) {
  Matrix b = RandomMatrix(n, n, seed);
  Matrix a = MatMulABt(b, b);
  for (Index i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

// ---------------------------------------------------------------- Cholesky

TEST(CholeskyTest, FactorReconstructs) {
  Matrix a = RandomSpd(6, 1);
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix rec = MatMulABt(*l, *l);
  EXPECT_LT(MaxAbsDiff(a, rec), 1e-9);
}

TEST(CholeskyTest, FactorIsLowerTriangular) {
  auto l = CholeskyFactor(RandomSpd(5, 2));
  ASSERT_TRUE(l.ok());
  for (Index i = 0; i < 5; ++i) {
    for (Index j = i + 1; j < 5; ++j) EXPECT_DOUBLE_EQ((*l)(i, j), 0.0);
  }
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  auto result = CholeskyFactor(a);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNumericError);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Matrix a = RandomSpd(8, 3);
  Vector x_true(8);
  for (Index i = 0; i < 8; ++i) x_true[i] = static_cast<double>(i) - 3.5;
  Vector b = a * x_true;
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  for (Index i = 0; i < 8; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, SolveMatrixMultipleRhs) {
  Matrix a = RandomSpd(5, 4);
  Matrix x_true = RandomMatrix(5, 3, 5);
  Matrix b = a * x_true;
  auto x = CholeskySolveMatrix(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(MaxAbsDiff(*x, x_true), 1e-8);
}

TEST(CholeskyTest, SubstitutionRoundTrip) {
  auto l = CholeskyFactor(RandomSpd(4, 6));
  ASSERT_TRUE(l.ok());
  Vector b{1.0, 2.0, 3.0, 4.0};
  Vector y = ForwardSubstitute(*l, b);
  // L y should equal b.
  Vector check = *l * y;
  for (Index i = 0; i < 4; ++i) EXPECT_NEAR(check[i], b[i], 1e-10);
}

// ---------------------------------------------------------------- QR

class QrShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrShapeTest, ReconstructsAndOrthogonal) {
  const auto [n, m] = GetParam();
  Matrix a = RandomMatrix(n, m, 100 + n + m);
  auto qr = QrFactor(a);
  ASSERT_TRUE(qr.ok());
  // A = Q R.
  Matrix rec = qr->q * qr->r;
  EXPECT_LT(MaxAbsDiff(a, rec), 1e-9);
  // QᵀQ = I.
  Matrix qtq = MatMulAtB(qr->q, qr->q);
  EXPECT_LT(MaxAbsDiff(qtq, Matrix::Identity(m)), 1e-9);
  // R upper triangular.
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(qr->r(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapeTest,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(5, 5),
                                           std::make_pair(10, 3),
                                           std::make_pair(50, 7),
                                           std::make_pair(4, 4),
                                           std::make_pair(100, 13)));

TEST(QrTest, RejectsWideMatrix) { EXPECT_FALSE(QrFactor(Matrix(2, 5)).ok()); }

TEST(QrTest, LeastSquaresExactOnConsistentSystem) {
  Matrix a = RandomMatrix(10, 4, 7);
  Vector x_true{1.0, -2.0, 0.5, 3.0};
  Vector b = a * x_true;
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  for (Index i = 0; i < 4; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
}

TEST(QrTest, LeastSquaresResidualOrthogonalToColumns) {
  Matrix a = RandomMatrix(12, 3, 9);
  Vector b(12);
  Rng rng(10);
  for (Index i = 0; i < 12; ++i) b[i] = rng.Normal();
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  Vector residual = b;
  Vector ax = a * *x;
  for (Index i = 0; i < 12; ++i) residual[i] -= ax[i];
  // Aᵀ r = 0 at the optimum.
  for (Index j = 0; j < 3; ++j) {
    double dot = 0.0;
    for (Index i = 0; i < 12; ++i) dot += a(i, j) * residual[i];
    EXPECT_NEAR(dot, 0.0, 1e-8);
  }
}

TEST(QrTest, LeastSquaresDetectsRankDeficiency) {
  Matrix a(6, 2);
  for (Index i = 0; i < 6; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);  // linearly dependent
  }
  Vector b(6, 1.0);
  auto x = LeastSquares(a, b);
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericError);
}

TEST(QrTest, RidgeHandlesRankDeficiency) {
  Matrix a(6, 2);
  for (Index i = 0; i < 6; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);
  }
  Vector b(6, 1.0);
  auto x = RidgeSolve(a, b, 1e-3);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(std::isfinite((*x)[0]));
}

TEST(QrTest, RidgeShrinksTowardZero) {
  Matrix a = RandomMatrix(20, 3, 21);
  Vector x_true{2.0, -1.0, 4.0};
  Vector b = a * x_true;
  auto small = RidgeSolve(a, b, 1e-8);
  auto large = RidgeSolve(a, b, 1e6);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_NEAR((*small)[2], 4.0, 1e-4);
  EXPECT_LT(std::fabs((*large)[2]), 0.1);
}

TEST(QrTest, RidgeRejectsBadLambda) {
  EXPECT_FALSE(RidgeSolve(Matrix(3, 2), Vector(3), 0.0).ok());
  EXPECT_FALSE(RidgeSolve(Matrix(3, 2), Vector(3), -1.0).ok());
}

// ---------------------------------------------------------------- SVD

class SvdShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapeTest, ReconstructsAndOrthonormal) {
  const auto [n, m] = GetParam();
  Matrix a = RandomMatrix(n, m, 300 + n * 17 + m);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  const Index r = std::min<Index>(n, m);
  ASSERT_EQ(svd->s.size(), r);
  // Reconstruction.
  Matrix rec = SvdReconstruct(*svd);
  EXPECT_LT(MaxAbsDiff(a, rec), 1e-8);
  // Orthonormal columns.
  Matrix utu = MatMulAtB(svd->u, svd->u);
  EXPECT_LT(MaxAbsDiff(utu, Matrix::Identity(r)), 1e-8);
  Matrix vtv = MatMulAtB(svd->v, svd->v);
  EXPECT_LT(MaxAbsDiff(vtv, Matrix::Identity(r)), 1e-8);
  // Nonnegative, sorted singular values.
  for (Index i = 0; i < r; ++i) {
    EXPECT_GE(svd->s[i], 0.0);
    if (i > 0) {
      EXPECT_LE(svd->s[i], svd->s[i - 1]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeTest,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(3, 3),
                                           std::make_pair(10, 4),
                                           std::make_pair(4, 10),
                                           std::make_pair(40, 7),
                                           std::make_pair(7, 40),
                                           std::make_pair(100, 13)));

TEST(SvdTest, KnownDiagonal) {
  Matrix a{{3, 0}, {0, 4}};
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->s[0], 4.0, 1e-12);
  EXPECT_NEAR(svd->s[1], 3.0, 1e-12);
}

TEST(SvdTest, FrobeniusMatchesSingularValues) {
  Matrix a = RandomMatrix(8, 5, 31);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  double s2 = 0.0;
  for (Index i = 0; i < svd->s.size(); ++i) s2 += svd->s[i] * svd->s[i];
  EXPECT_NEAR(s2, FrobeniusNormSquared(a), 1e-8);
}

TEST(SvdTest, RankDeficientHasZeroSingularValues) {
  // Rank-1 matrix.
  Matrix a(5, 4);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 4; ++j) {
      a(i, j) = static_cast<double>(i + 1) * static_cast<double>(j + 1);
    }
  }
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GT(svd->s[0], 1.0);
  for (Index i = 1; i < svd->s.size(); ++i) EXPECT_NEAR(svd->s[i], 0.0, 1e-9);
}

TEST(SvdTest, TruncationGivesBestLowRank) {
  // Build a matrix with known decaying spectrum; the rank-2 truncation
  // error must equal the tail singular values' energy.
  Rng rng(37);
  Matrix u = RandomMatrix(10, 4, 41);
  auto qu = QrFactor(u);
  ASSERT_TRUE(qu.ok());
  Vector s{5.0, 3.0, 1.0, 0.5};
  Matrix v = RandomMatrix(6, 4, 43);
  auto qv = QrFactor(v);
  ASSERT_TRUE(qv.ok());
  Matrix us = qu->q;
  for (Index i = 0; i < us.rows(); ++i) {
    for (Index j = 0; j < us.cols(); ++j) us(i, j) *= s[j];
  }
  Matrix a = MatMulABt(us, qv->q);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  Matrix rank2 = SvdReconstruct(TruncateSvd(*svd, 2));
  const double err2 = FrobeniusNormSquared(a - rank2);
  EXPECT_NEAR(err2, 1.0 * 1.0 + 0.5 * 0.5, 1e-6);
}

TEST(SvdTest, SoftThresholdShrinks) {
  Matrix a{{3, 0}, {0, 1}};
  auto z = SoftThresholdSvd(a, 1.0);
  ASSERT_TRUE(z.ok());
  auto svd = Svd(*z);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->s[0], 2.0, 1e-9);
  EXPECT_NEAR(svd->s[1], 0.0, 1e-9);
}

TEST(SvdTest, SoftThresholdAllZeroWhenTauLarge) {
  Matrix a = RandomMatrix(4, 4, 51);
  auto z = SoftThresholdSvd(a, 1e9);
  ASSERT_TRUE(z.ok());
  EXPECT_LT(FrobeniusNorm(*z), 1e-12);
}

TEST(SvdTest, NuclearNorm) {
  Matrix a{{3, 0}, {0, 4}};
  auto nn = NuclearNorm(a);
  ASSERT_TRUE(nn.ok());
  EXPECT_NEAR(*nn, 7.0, 1e-10);
}

TEST(SvdTest, RejectsEmptyAndNonFinite) {
  EXPECT_FALSE(Svd(Matrix()).ok());
  Matrix bad(2, 2, 1.0);
  bad(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(Svd(bad).ok());
}

}  // namespace
}  // namespace smfl::la
