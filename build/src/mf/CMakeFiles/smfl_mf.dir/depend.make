# Empty dependencies file for smfl_mf.
# This may be replaced when dependencies are built.
