// Symmetric eigendecomposition via the classical Jacobi rotation method.
//
// Used for spectral analysis of the neighbor-graph Laplacian (its spectrum
// certifies positive semidefiniteness and connectivity) and by the spectral
// clustering extension in src/cluster.

#ifndef SMFL_LA_EIGEN_H_
#define SMFL_LA_EIGEN_H_

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::la {

// A = V diag(w) Vᵀ with orthonormal eigenvector columns in V and
// eigenvalues in `values`, sorted ascending.
struct EigenDecomposition {
  Vector values;
  Matrix vectors;
};

struct EigenOptions {
  double tolerance = 1e-12;
  int max_sweeps = 64;
};

// Eigendecomposition of a symmetric matrix. Fails on non-square or
// non-finite input; symmetry is enforced by averaging A and Aᵀ, and inputs
// whose asymmetry exceeds a tolerance are rejected.
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          const EigenOptions& options = {});

}  // namespace smfl::la

#endif  // SMFL_LA_EIGEN_H_
