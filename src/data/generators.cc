#include "src/data/generators.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/common/strings.h"

namespace smfl::data {

namespace {

// A smooth scalar field over the plane: a sum of Gaussian RBF bumps.
class RbfField {
 public:
  RbfField(Index bumps, double lat_lo, double lat_hi, double lon_lo,
           double lon_hi, double scale_fraction, Rng& rng) {
    const double diag = std::hypot(lat_hi - lat_lo, lon_hi - lon_lo);
    const double sigma = scale_fraction * diag;
    for (Index b = 0; b < bumps; ++b) {
      Bump bump;
      bump.lat = rng.Uniform(lat_lo, lat_hi);
      bump.lon = rng.Uniform(lon_lo, lon_hi);
      bump.weight = rng.Normal();
      // Jitter widths so the field has multiple spatial frequencies.
      bump.inv_two_sigma2 =
          1.0 / (2.0 * sigma * sigma * rng.Uniform(0.5, 1.5));
      bumps_.push_back(bump);
    }
  }

  double Value(double lat, double lon) const {
    double acc = 0.0;
    for (const Bump& b : bumps_) {
      const double dlat = lat - b.lat;
      const double dlon = lon - b.lon;
      acc += b.weight *
             std::exp(-(dlat * dlat + dlon * dlon) * b.inv_two_sigma2);
    }
    return acc;
  }

 private:
  struct Bump {
    double lat, lon, weight, inv_two_sigma2;
  };
  std::vector<Bump> bumps_;
};

}  // namespace

Result<SyntheticDataset> MakeSynthetic(const SyntheticSpec& spec) {
  if (spec.rows <= 0 || spec.cols < 3) {
    return Status::InvalidArgument(
        "synthetic spec needs rows > 0 and cols >= 3 (2 spatial + 1)");
  }
  if (spec.num_clusters <= 0 || spec.latent_fields <= 0) {
    return Status::InvalidArgument(
        "synthetic spec needs positive cluster and field counts");
  }
  Rng rng(spec.seed);

  // 1. Location blobs.
  struct Blob {
    double lat, lon;
  };
  std::vector<Blob> blobs;
  for (Index c = 0; c < spec.num_clusters; ++c) {
    blobs.push_back({rng.Uniform(spec.lat_lo, spec.lat_hi),
                     rng.Uniform(spec.lon_lo, spec.lon_hi)});
  }
  const double lat_spread = spec.cluster_spread * (spec.lat_hi - spec.lat_lo);
  const double lon_spread = spec.cluster_spread * (spec.lon_hi - spec.lon_lo);

  std::vector<Index> labels(static_cast<size_t>(spec.rows));
  Matrix values(spec.rows, spec.cols);
  const Index visits = std::max<Index>(spec.visits_per_location, 1);
  Index next_row = 0;
  while (next_row < spec.rows) {
    const Index c =
        static_cast<Index>(rng.UniformInt(static_cast<uint64_t>(
            spec.num_clusters)));
    const Blob& b = blobs[static_cast<size_t>(c)];
    double lat = rng.Normal(b.lat, lat_spread);
    double lon = rng.Normal(b.lon, lon_spread);
    lat = std::min(std::max(lat, spec.lat_lo), spec.lat_hi);
    lon = std::min(std::max(lon, spec.lon_lo), spec.lon_hi);
    // 1..2*visits-1 readings at (almost) this location; tiny GPS jitter.
    const Index burst = 1 + static_cast<Index>(rng.UniformInt(
                                static_cast<uint64_t>(2 * visits - 1)));
    for (Index v = 0; v < burst && next_row < spec.rows; ++v, ++next_row) {
      labels[static_cast<size_t>(next_row)] = c;
      const double jlat =
          lat + rng.Normal(0.0, 1e-4 * (spec.lat_hi - spec.lat_lo));
      const double jlon =
          lon + rng.Normal(0.0, 1e-4 * (spec.lon_hi - spec.lon_lo));
      values(next_row, 0) = std::min(std::max(jlat, spec.lat_lo), spec.lat_hi);
      values(next_row, 1) = std::min(std::max(jlon, spec.lon_lo), spec.lon_hi);
    }
  }

  // 2. Shared latent fields.
  std::vector<RbfField> fields;
  for (Index f = 0; f < spec.latent_fields; ++f) {
    fields.emplace_back(spec.field_bumps, spec.lat_lo, spec.lat_hi,
                        spec.lon_lo, spec.lon_hi, spec.field_scale, rng);
  }

  // 3. Attribute columns: random nonnegative mixtures of the latent fields
  // plus a per-cluster offset (so clusters are separable in attribute space)
  // plus noise. Mixing weights are shared across rows, which gives the
  // attribute block its low-rank structure.
  const Index num_attrs = spec.cols - 2;
  Matrix mix(num_attrs, spec.latent_fields);
  la::Vector cluster_offset_scale(num_attrs);
  for (Index a = 0; a < num_attrs; ++a) {
    for (Index f = 0; f < spec.latent_fields; ++f) {
      mix(a, f) = rng.Uniform(0.2, 1.0);
    }
    cluster_offset_scale[a] = rng.Uniform(0.3, 0.8);
  }
  Matrix cluster_offsets(spec.num_clusters, num_attrs);
  for (Index c = 0; c < spec.num_clusters; ++c) {
    for (Index a = 0; a < num_attrs; ++a) {
      cluster_offsets(c, a) = rng.Normal();
    }
  }

  const Index num_factors = std::max<Index>(spec.row_factors, 0);
  Matrix factor_loadings(num_attrs, std::max<Index>(num_factors, 1));
  for (Index a = 0; a < num_attrs; ++a) {
    for (Index f = 0; f < num_factors; ++f) {
      factor_loadings(a, f) = rng.Uniform(0.2, 1.0);
    }
  }
  // Mark a deterministic subset of attributes as weakly spatial (never the
  // last column, which may carry the planted east gradient).
  std::vector<bool> weak(static_cast<size_t>(num_attrs), false);
  const Index num_weak = static_cast<Index>(
      spec.weak_attr_fraction * static_cast<double>(num_attrs));
  for (Index w = 0; w < num_weak && num_attrs > 1; ++w) {
    const Index a = (w * 2 + 1) % (num_attrs - 1);
    weak[static_cast<size_t>(a)] = true;
  }

  const double lon_mid = 0.5 * (spec.lon_lo + spec.lon_hi);
  const double lon_half = 0.5 * (spec.lon_hi - spec.lon_lo);
  for (Index i = 0; i < spec.rows; ++i) {
    const double lat = values(i, 0);
    const double lon = values(i, 1);
    la::Vector row_factor(std::max<Index>(num_factors, 1));
    for (Index f = 0; f < num_factors; ++f) {
      row_factor[f] = spec.row_effect * rng.Normal();
    }
    la::Vector field_vals(spec.latent_fields);
    for (Index f = 0; f < spec.latent_fields; ++f) {
      field_vals[f] = fields[static_cast<size_t>(f)].Value(lat, lon);
    }
    const Index c = labels[static_cast<size_t>(i)];
    for (Index a = 0; a < num_attrs; ++a) {
      double v = 0.0;
      for (Index f = 0; f < spec.latent_fields; ++f) {
        v += mix(a, f) * field_vals[f];
      }
      if (weak[static_cast<size_t>(a)]) v *= 0.15;
      v += cluster_offset_scale[a] * cluster_offsets(c, a);
      // smfl-lint: allow(float-eq) 0.0 is the gradient-disabled sentinel
      if (a == num_attrs - 1 && spec.east_gradient != 0.0) {
        // Fig 1 geography: the last attribute rises toward the east, on
        // top of the usual field mixture (the gradient is a trend, not a
        // deterministic function of longitude).
        v = 0.5 * v + spec.east_gradient * (lon - lon_mid) / lon_half;
      }
      for (Index f = 0; f < num_factors; ++f) {
        v += row_factor[f] * factor_loadings(a, f);
      }
      const double col_noise = weak[static_cast<size_t>(a)]
                                   ? spec.noise * spec.weak_attr_noise_boost
                                   : spec.noise;
      v += rng.Normal(0.0, col_noise);
      values(i, 2 + a) = v;
    }
  }

  // Shift every attribute column so its minimum sits just above zero:
  // sensor quantities (fuel rate, speed, lake area, ...) are nonnegative
  // in raw units. Min-max normalization makes this shift invisible to all
  // algorithms; it only keeps raw-unit outputs (e.g. route fuel costs)
  // physically plausible.
  for (Index a = 0; a < num_attrs; ++a) {
    double lo = values(0, 2 + a);
    for (Index r = 1; r < spec.rows; ++r) lo = std::min(lo, values(r, 2 + a));
    const double shift = 0.1 - lo;
    for (Index r = 0; r < spec.rows; ++r) values(r, 2 + a) += shift;
  }

  std::vector<std::string> names = {"latitude", "longitude"};
  for (Index a = 0; a < num_attrs; ++a) {
    names.push_back(StrFormat("%s_attr%lld", spec.name.c_str(),
                              static_cast<long long>(a)));
  }
  ASSIGN_OR_RETURN(Table table,
                   Table::Create(std::move(names), std::move(values), 2));
  return SyntheticDataset{std::move(table), std::move(labels)};
}

Result<SyntheticDataset> MakeEconomicLike(Index rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "economic";
  spec.rows = rows;
  spec.cols = 13;
  spec.num_clusters = 8;
  spec.latent_fields = 4;
  spec.field_bumps = 18;
  spec.field_scale = 0.14;  // climate-like fields with regional texture
  spec.noise = 0.30;
  spec.row_factors = 5;
  spec.row_effect = 0.9;
  spec.cluster_spread = 0.10;
  spec.seed = seed;
  return MakeSynthetic(spec);
}

Result<SyntheticDataset> MakeFarmLike(Index rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "farm";
  spec.rows = rows;
  spec.cols = 13;
  spec.num_clusters = 4;
  spec.latent_fields = 3;
  spec.field_bumps = 28;
  spec.field_scale = 0.08;  // within-farm variation: rough
  spec.noise = 0.35;
  spec.row_factors = 5;
  spec.row_effect = 0.9;
  // A single farm: one compact region.
  spec.lat_lo = 33.0;
  spec.lat_hi = 33.2;
  spec.lon_lo = -63.9;
  spec.lon_hi = -63.6;
  spec.cluster_spread = 0.2;
  spec.seed = seed;
  return MakeSynthetic(spec);
}

Result<SyntheticDataset> MakeLakeLike(Index rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "lake";
  spec.rows = rows;
  spec.cols = 7;
  spec.num_clusters = 5;
  spec.latent_fields = 3;
  spec.field_bumps = 22;
  spec.field_scale = 0.12;
  spec.noise = 0.30;
  // Upper-midwest-like region; well-separated lake districts.
  spec.lat_lo = 41.0;
  spec.lat_hi = 49.0;
  spec.lon_lo = -97.0;
  spec.lon_hi = -67.0;
  spec.cluster_spread = 0.05;
  spec.seed = seed;
  return MakeSynthetic(spec);
}

Result<SyntheticDataset> MakeVehicleLike(Index rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "vehicle";
  spec.rows = rows;
  spec.cols = 7;
  spec.num_clusters = 6;
  spec.latent_fields = 3;
  spec.field_bumps = 22;
  spec.field_scale = 0.12;
  spec.noise = 0.30;
  // North-east China region of Fig 1.
  spec.lat_lo = 40.0;
  spec.lat_hi = 47.0;
  spec.lon_lo = 120.0;
  spec.lon_hi = 132.0;
  spec.cluster_spread = 0.07;
  spec.east_gradient = 1.6;  // fuel rate higher in the east (Fig 1)
  spec.seed = seed;
  return MakeSynthetic(spec);
}

Result<SyntheticDataset> MakeDatasetByName(const std::string& name,
                                           Index rows, uint64_t seed) {
  const std::string lower = ToLower(name);
  if (lower == "economic") return MakeEconomicLike(rows, seed);
  if (lower == "farm") return MakeFarmLike(rows, seed);
  if (lower == "lake") return MakeLakeLike(rows, seed);
  if (lower == "vehicle") return MakeVehicleLike(rows, seed);
  return Status::NotFound("unknown dataset '" + name + "'");
}

}  // namespace smfl::data
