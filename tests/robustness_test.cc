// Guarded-training and graceful-degradation acceptance tests: fault
// injection drives the TrainingGuard's checkpoint/rollback machinery, the
// RetryPolicy, and the fallback chains end to end.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/fault.h"
#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/impute/fallback.h"
#include "src/la/ops.h"
#include "src/repair/fallback.h"

namespace smfl::core {
namespace {

using data::Mask;

struct Scenario {
  Matrix truth;
  Mask observed;
  Matrix input;
};

Scenario MakeScenario(Index rows, double missing_rate, uint64_t seed) {
  auto dataset = data::MakeVehicleLike(rows, seed);
  SMFL_CHECK(dataset.ok());
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Scenario s;
  s.truth = normalizer->Transform(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = missing_rate;
  inject.preserve_complete_rows = 20;
  inject.seed = seed + 1;
  auto injection = data::InjectMissing(dataset->table, inject);
  SMFL_CHECK(injection.ok());
  s.observed = injection->observed;
  s.input = data::ApplyMask(s.truth, s.observed);
  return s;
}

bool AllNonnegative(const Matrix& m) {
  for (Index i = 0; i < m.size(); ++i) {
    if (m.data()[i] < 0.0) return false;
  }
  return true;
}

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

// Acceptance criterion 1: a NaN injected mid-training is detected by the
// guard, the fit rolls back to the last checkpoint, recovers, and still
// converges to a finite nonnegative factorization.
TEST_F(RobustnessTest, GuardRecoversFromInjectedNanMidTraining) {
  Scenario s = MakeScenario(80, 0.1, 42);
  FaultSpec spec;
  spec.skip = 7;  // let 7 iterations pass, poison the 8th
  spec.count = 1;
  ScopedFault fault("smfl.update.nan", spec);

  SmflOptions options;
  options.rank = 5;
  options.max_iterations = 120;
  options.guard.checkpoint_interval = 5;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  // The fault actually fired and the guard actually rolled back.
  EXPECT_EQ(FaultRegistry::Global().fires("smfl.update.nan"), 1);
  EXPECT_GE(model->report.rollbacks, 1);
  EXPECT_GE(model->report.recovery_attempts, 1);

  // The fit recovered: finite objective, finite nonnegative factors.
  EXPECT_TRUE(std::isfinite(model->report.final_objective()));
  EXPECT_FALSE(model->u.HasNonFinite());
  EXPECT_FALSE(model->v.HasNonFinite());
  EXPECT_TRUE(AllNonnegative(model->u));
  EXPECT_TRUE(AllNonnegative(model->v));
  // The violating objective never entered the trace.
  const auto& trace = model->report.objective_trace;
  for (double obj : trace) EXPECT_TRUE(std::isfinite(obj));
}

// An objective *increase* (monotonicity-invariant violation, Propositions
// 5/7) triggers the same rollback path even though every value is finite.
TEST_F(RobustnessTest, GuardRollsBackOnObjectiveSpike) {
  Scenario s = MakeScenario(70, 0.1, 43);
  FaultSpec spec;
  spec.skip = 10;
  spec.count = 1;
  ScopedFault fault("smfl.update.spike", spec);

  SmflOptions options;
  options.rank = 4;
  options.max_iterations = 100;
  options.guard.checkpoint_interval = 5;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GE(model->report.rollbacks, 1);
  // Trace stays monotone despite the spike: the guard discarded it.
  const auto& trace = model->report.objective_trace;
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-6) + 1e-9);
  }
}

// Acceptance criterion 2a: a permanent fault exhausts the recovery budget
// and the RetryPolicy, and the final NumericError carries the violation
// iteration and objective context.
TEST_F(RobustnessTest, ExhaustedRetryBudgetSurfacesNumericErrorWithContext) {
  Scenario s = MakeScenario(60, 0.1, 44);
  FaultSpec spec;
  spec.count = -1;  // permanent: every iteration of every attempt poisoned
  ScopedFault fault("smfl.update.nan", spec);

  SmflOptions options;
  options.rank = 4;
  options.max_iterations = 50;
  options.guard.checkpoint_interval = 5;
  options.guard.max_recovery_attempts = 2;
  options.max_numeric_retries = 1;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNumericError);
  const std::string& msg = model.status().message();
  // Context: divergence marker, iteration index, objective, attempts.
  EXPECT_NE(msg.find("diverged"), std::string::npos) << msg;
  EXPECT_NE(msg.find("iteration"), std::string::npos) << msg;
  EXPECT_NE(msg.find("objective"), std::string::npos) << msg;
  EXPECT_NE(msg.find("recovery attempt"), std::string::npos) << msg;
  // The restart loop surfaced the real error, not a generic Internal one.
  EXPECT_NE(msg.find("restart"), std::string::npos) << msg;
}

// The RetryPolicy burns its retry budget on numeric failures.
TEST_F(RobustnessTest, RetryPolicyRetriesNumericFailures) {
  Scenario s = MakeScenario(60, 0.1, 45);
  FaultSpec spec;
  spec.count = 4;  // poison attempt 1's first iterations, then relent
  spec.probability = 1.0;
  ScopedFault fault("smfl.update.nan", spec);

  SmflOptions options;
  options.rank = 4;
  options.max_iterations = 60;
  // No recovery attempts: the first NaN kills an attempt outright, so the
  // retry (not the guard) must save the fit.
  options.guard.max_recovery_attempts = 0;
  options.max_numeric_retries = 8;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GE(model->report.numeric_retries, 1);
  EXPECT_TRUE(std::isfinite(model->report.final_objective()));
}

// With the guard disabled the injected NaN is only caught by the final
// non-finite scan — the fit fails instead of recovering.
TEST_F(RobustnessTest, GuardDisabledFailsClosed) {
  Scenario s = MakeScenario(60, 0.1, 46);
  FaultSpec spec;
  spec.skip = 3;
  spec.count = 1;
  ScopedFault fault("smfl.update.nan", spec);

  SmflOptions options;
  options.rank = 4;
  options.max_iterations = 30;
  options.guard.enabled = false;
  options.max_numeric_retries = 0;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNumericError);
  EXPECT_NE(model.status().message().find("iteration"), std::string::npos);
}

// Unarmed fault points must not change results: the guarded fit with no
// faults is bit-identical to the same fit with the guard disabled.
TEST_F(RobustnessTest, GuardIsTransparentWithoutFaults) {
  Scenario s = MakeScenario(60, 0.1, 47);
  SmflOptions guarded;
  guarded.rank = 4;
  guarded.max_iterations = 40;
  SmflOptions unguarded = guarded;
  unguarded.guard.enabled = false;
  auto a = FitSmfl(s.input, s.observed, 2, guarded);
  auto b = FitSmfl(s.input, s.observed, 2, unguarded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(a->u, b->u), 0.0);
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(a->v, b->v), 0.0);
  EXPECT_EQ(a->report.rollbacks, 0);
}

// Acceptance criterion 2b: when the paper's method is unavailable, the
// degradation chain serves a simpler tier and records it.
TEST_F(RobustnessTest, DegradationChainServesFallbackTier) {
  Scenario s = MakeScenario(60, 0.15, 48);
  FaultSpec spec;
  spec.count = -1;  // SMFL and SMF both permanently poisoned
  ScopedFault fault("smfl.update.nan", spec);

  impute::FallbackImputer chain;  // SMFL -> SMF -> NMF -> Mean
  mf::DegradationReport report;
  auto result = chain.ImputeWithReport(s.input, s.observed, 2, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->HasNonFinite());

  // NMF does not share the SMFL update loop, so it serves.
  EXPECT_EQ(report.served_by, "NMF");
  EXPECT_TRUE(report.degraded());
  ASSERT_EQ(report.attempts.size(), 3u);
  EXPECT_EQ(report.attempts[0].tier, "SMFL");
  EXPECT_NE(report.attempts[0].error.find("Numeric error"),
            std::string::npos);
  EXPECT_EQ(report.attempts[1].tier, "SMF");
  EXPECT_FALSE(report.attempts[1].error.empty());
  EXPECT_EQ(report.attempts[2].tier, "NMF");
  EXPECT_TRUE(report.attempts[2].error.empty());
}

TEST_F(RobustnessTest, DegradationChainHealthyPathServesPrimaryTier) {
  Scenario s = MakeScenario(60, 0.15, 49);
  impute::FallbackImputer chain;
  mf::DegradationReport report;
  auto result = chain.ImputeWithReport(s.input, s.observed, 2, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.served_by, "SMFL");
  EXPECT_FALSE(report.degraded());
  ASSERT_EQ(report.attempts.size(), 1u);
}

TEST_F(RobustnessTest, DegradationChainFailsWhenEveryTierFails) {
  Scenario s = MakeScenario(60, 0.15, 50);
  impute::FallbackImputer chain({"NoSuchMethod", "AlsoMissing"});
  mf::DegradationReport report;
  auto result = chain.ImputeWithReport(s.input, s.observed, 2, &report);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("fallback tiers failed"),
            std::string::npos);
  EXPECT_TRUE(report.served_by.empty());
  EXPECT_EQ(report.attempts.size(), 2u);
}

TEST_F(RobustnessTest, RepairDegradationChainServesFallbackTier) {
  Scenario s = MakeScenario(60, 0.0, 51);
  // Flag a handful of cells as dirty.
  Mask dirty(60, s.truth.cols());
  for (Index i = 0; i < 10; ++i) dirty.Set(i, 2);

  FaultSpec spec;
  spec.count = -1;
  ScopedFault fault("smfl.update.nan", spec);

  repair::FallbackRepairer chain;  // SMFL -> SMF -> NMF -> HoloClean
  mf::DegradationReport report;
  auto result = chain.RepairWithReport(s.truth, dirty, 2, &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(report.served_by, "NMF");
  EXPECT_TRUE(report.degraded());
}

}  // namespace
}  // namespace smfl::core
