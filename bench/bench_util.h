// Shared glue for the table/figure reproduction binaries.

#ifndef SMFL_BENCH_BENCH_UTIL_H_
#define SMFL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/exp/experiment.h"
#include "src/exp/report.h"

namespace smfl::bench {

using la::Index;

// The paper's four datasets (Table III), at the scaled-down default sizes
// from exp::DefaultRowsFor (see DESIGN.md substitutions).
inline std::vector<std::string> PaperDatasets() {
  return {"economic", "farm", "lake", "vehicle"};
}

inline void Fail(const Status& status) {
  std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T ValueOrDie(Result<T> result) {
  if (!result.ok()) Fail(result.status());
  return std::move(result).value();
}

// Parses the common bench flags: --trials=N (default 3) and --rows=N
// (0 = per-dataset default). Exits on malformed flags.
struct BenchConfig {
  int trials = 3;
  Index rows_override = 0;
};

inline BenchConfig ParseBenchConfig(int argc, const char* const* argv) {
  auto flags = ValueOrDie(Flags::Parse(argc, argv));
  BenchConfig config;
  config.trials = static_cast<int>(ValueOrDie(flags.GetInt("trials", 3)));
  config.rows_override =
      static_cast<Index>(ValueOrDie(flags.GetInt("rows", 0)));
  return config;
}

// Row count for `name`: the --rows override when given, else the default.
inline Index RowsFor(const BenchConfig& config, const std::string& name) {
  return config.rows_override > 0 ? config.rows_override
                                  : exp::DefaultRowsFor(name);
}

}  // namespace smfl::bench

#endif  // SMFL_BENCH_BENCH_UTIL_H_
