// Reproduces Fig 6: imputation RMS of SMF and SMFL as the regularization
// weight lambda varies from 0.001 to 10.
//
// Expected shape (paper): U-shaped curves with the sweet spot around
// 0.05-0.1; large lambda over-smooths and degrades both methods; SMFL at or
// below SMF across the sweep. (On the synthetic stand-ins the minimum sits
// near 0.5-1; see EXPERIMENTS.md divergence D4.)

#include "bench/bench_util.h"
#include "src/exp/sweep.h"

using namespace smfl;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  const std::vector<double> lambdas = {0.001, 0.005, 0.01, 0.05,
                                       0.1,   0.5,   1.0,  10.0};
  exp::SweepSpec spec;
  for (double l : lambdas) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", l);
    spec.value_labels.push_back(buf);
  }
  spec.apply = [&](size_t v, core::SmflOptions* options) {
    options->lambda = lambdas[v];
  };
  spec.trial.trials = config.trials;
  spec.rows_override = config.rows_override;
  auto table = bench::ValueOrDie(exp::RunSmflSweep(spec));
  table.Print("Fig 6: imputation RMS vs regularization weight lambda");
  std::printf("%s", table.ToCsv().c_str());
  return 0;
}
