# Empty compiler generated dependencies file for bench_table7_missing_rate.
# This may be replaced when dependencies are built.
