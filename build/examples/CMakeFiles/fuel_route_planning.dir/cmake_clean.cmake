file(REMOVE_RECURSE
  "CMakeFiles/fuel_route_planning.dir/fuel_route_planning.cpp.o"
  "CMakeFiles/fuel_route_planning.dir/fuel_route_planning.cpp.o.d"
  "fuel_route_planning"
  "fuel_route_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuel_route_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
