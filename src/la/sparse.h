// Compressed sparse row (CSR) matrix.
//
// The neighbor-graph operators D·U / W·U and the Laplacian quadratic form
// are sparse computations; CSR gives them a standard, testable form and is
// the interchange format NeighborGraph exports (graph.h). Only the
// operations the library needs are implemented — this is not a general
// sparse-algebra package.

#ifndef SMFL_LA_SPARSE_H_
#define SMFL_LA_SPARSE_H_

#include <vector>

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::la {

// One explicit entry of a sparse matrix.
struct Triplet {
  Index row = 0;
  Index col = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // Builds CSR from unordered triplets; duplicate (row, col) entries are
  // summed, in ascending value-bit-pattern order, so the stored sum is
  // bitwise independent of the incoming triplet order. Fails on
  // out-of-range coordinates.
  static Result<SparseMatrix> FromTriplets(Index rows, Index cols,
                                           std::vector<Triplet> triplets);

  // Dense -> sparse, dropping entries with |v| <= drop_tolerance.
  static SparseMatrix FromDense(const Matrix& dense,
                                double drop_tolerance = 0.0);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index NumNonZeros() const { return static_cast<Index>(values_.size()); }

  // y = A * x.
  Vector Multiply(const Vector& x) const;

  // C = A * B for dense B (the D·U / W·U use case).
  Matrix MultiplyDense(const Matrix& b) const;

  // xᵀ A x (for symmetric A; used for Laplacian quadratic forms).
  double QuadraticForm(const Vector& x) const;

  // Dense copy for tests and small problems.
  Matrix ToDense() const;

  // Row i's column indices / values (parallel spans).
  std::span<const Index> RowIndices(Index i) const;
  std::span<const double> RowValues(Index i) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> row_offsets_;  // size rows_ + 1
  std::vector<Index> col_indices_;
  std::vector<double> values_;
};

}  // namespace smfl::la

#endif  // SMFL_LA_SPARSE_H_
