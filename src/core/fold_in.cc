#include "src/core/fold_in.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/la/ops.h"
#include "src/mf/factorization.h"

namespace smfl::core {

Result<la::Vector> FoldInRow(const SmflModel& model, const la::Vector& row,
                             const std::vector<bool>& observed_row,
                             const FoldInOptions& options) {
  const Index m = model.v.cols();
  const Index k = model.v.rows();
  if (k == 0 || m == 0) {
    return Status::FailedPrecondition("FoldInRow: empty model");
  }
  if (row.size() != m ||
      static_cast<Index>(observed_row.size()) != m) {
    return Status::InvalidArgument("FoldInRow: row width mismatch");
  }
  std::vector<Index> obs;
  for (Index j = 0; j < m; ++j) {
    if (observed_row[static_cast<size_t>(j)]) {
      if (row[j] < 0.0) {
        return Status::InvalidArgument(
            "FoldInRow: observed entries must be nonnegative");
      }
      if (!std::isfinite(row[j])) {
        return Status::NumericError("FoldInRow: non-finite observed entry");
      }
      obs.push_back(j);
    }
  }
  if (obs.empty()) {
    return Status::InvalidArgument("FoldInRow: no observed entries");
  }

  // Initialize u: landmark kernel over observed coordinates when
  // available, uniform otherwise (mirrors the training initialization).
  la::Vector u(k, 1.0 / static_cast<double>(k));
  const Index l = std::min(model.spatial_cols, model.landmarks.cols());
  if (model.landmarks.size() > 0 && l > 0) {
    std::vector<Index> obs_si;
    for (Index j = 0; j < l; ++j) {
      if (observed_row[static_cast<size_t>(j)]) obs_si.push_back(j);
    }
    if (!obs_si.empty()) {
      // Kernel width: mean nearest-landmark distance proxy from the
      // landmark spread itself.
      double sigma2 = 0.0;
      for (Index c = 0; c < k; ++c) {
        double best = std::numeric_limits<double>::infinity();
        for (Index c2 = 0; c2 < k; ++c2) {
          if (c2 == c) continue;
          best = std::min(best,
                          la::SquaredDistance(model.landmarks.Row(c),
                                              model.landmarks.Row(c2)));
        }
        if (std::isfinite(best)) sigma2 += best;
      }
      sigma2 = std::max(sigma2 / static_cast<double>(k), 1e-8);
      double sum = 0.0;
      for (Index c = 0; c < k; ++c) {
        double d2 = 0.0;
        for (Index j : obs_si) {
          const double diff = row[j] - model.landmarks(c, j);
          d2 += diff * diff;
        }
        d2 *= static_cast<double>(l) / static_cast<double>(obs_si.size());
        u[c] = std::exp(-d2 / (2.0 * sigma2)) + 1e-4;
        sum += u[c];
      }
      for (Index c = 0; c < k; ++c) u[c] /= sum;
    }
  }

  // Multiplicative updates restricted to the observed columns:
  //   u_c <- u_c * (Σ_j x_j v_cj) / (Σ_j (uV)_j v_cj)
  double prev_err = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Current reconstruction on observed columns.
    double err = 0.0;
    la::Vector recon(static_cast<Index>(obs.size()));
    for (size_t oj = 0; oj < obs.size(); ++oj) {
      double acc = 0.0;
      for (Index c = 0; c < k; ++c) acc += u[c] * model.v(c, obs[oj]);
      recon[static_cast<Index>(oj)] = acc;
      const double d = row[obs[oj]] - acc;
      err += d * d;
    }
    if (prev_err - err < options.tolerance * std::max(prev_err, 1e-300)) {
      break;
    }
    prev_err = err;
    for (Index c = 0; c < k; ++c) {
      double num = 0.0, den = 0.0;
      for (size_t oj = 0; oj < obs.size(); ++oj) {
        num += row[obs[oj]] * model.v(c, obs[oj]);
        den += recon[static_cast<Index>(oj)] * model.v(c, obs[oj]);
      }
      u[c] *= num / std::max(den, mf::kDivEps);
    }
  }

  la::Vector completed(m);
  for (Index j = 0; j < m; ++j) {
    if (observed_row[static_cast<size_t>(j)]) {
      completed[j] = row[j];
    } else {
      double acc = 0.0;
      for (Index c = 0; c < k; ++c) acc += u[c] * model.v(c, j);
      completed[j] = acc;
    }
  }
  return completed;
}

Result<Matrix> FoldIn(const SmflModel& model, const Matrix& x,
                      const Mask& observed, const FoldInOptions& options) {
  if (observed.rows() != x.rows() || observed.cols() != x.cols()) {
    return Status::InvalidArgument("FoldIn: mask shape mismatch");
  }
  if (x.cols() != model.v.cols()) {
    return Status::InvalidArgument("FoldIn: column count mismatch");
  }
  Matrix out(x.rows(), x.cols());
  std::vector<bool> observed_row(static_cast<size_t>(x.cols()));
  for (Index i = 0; i < x.rows(); ++i) {
    la::Vector row(x.cols());
    for (Index j = 0; j < x.cols(); ++j) {
      row[j] = x(i, j);
      observed_row[static_cast<size_t>(j)] = observed.Contains(i, j);
    }
    ASSIGN_OR_RETURN(la::Vector completed,
                     FoldInRow(model, row, observed_row, options));
    out.SetRow(i, completed);
  }
  return out;
}

}  // namespace smfl::core
