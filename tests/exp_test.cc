#include <gtest/gtest.h>

#include <cmath>

#include "src/exp/experiment.h"
#include "src/exp/metrics.h"
#include "src/la/ops.h"
#include "src/exp/report.h"
#include "src/impute/mf_imputers.h"
#include "src/impute/simple.h"
#include "src/repair/mf_repairers.h"

namespace smfl::exp {
namespace {

// ---------------------------------------------------------------- metrics

TEST(RmsTest, KnownValue) {
  Matrix estimate{{1, 2}, {3, 4}};
  Matrix truth{{1, 0}, {3, 0}};
  Mask psi(2, 2);
  psi.Set(0, 1);
  psi.Set(1, 1);
  auto rms = RmsOverMask(estimate, truth, psi);
  ASSERT_TRUE(rms.ok());
  EXPECT_DOUBLE_EQ(*rms, std::sqrt((4.0 + 16.0) / 2.0));
}

TEST(RmsTest, ZeroWhenEqual) {
  Matrix x{{1, 2}, {3, 4}};
  auto rms = RmsOverMask(x, x, Mask::AllSet(2, 2));
  ASSERT_TRUE(rms.ok());
  EXPECT_DOUBLE_EQ(*rms, 0.0);
}

TEST(RmsTest, Validation) {
  Matrix x{{1, 2}};
  EXPECT_FALSE(RmsOverMask(x, Matrix{{1, 2, 3}}, Mask(1, 2)).ok());
  EXPECT_FALSE(RmsOverMask(x, x, Mask(2, 2)).ok());
  EXPECT_FALSE(RmsOverMask(x, x, Mask(1, 2)).ok());  // empty mask
}

// ---------------------------------------------------------------- prepare

TEST(PrepareDatasetTest, NormalizedToUnitInterval) {
  auto prepared = PrepareDataset("lake", 200, 3);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->truth.rows(), 200);
  EXPECT_EQ(prepared->spatial_cols, 2);
  for (Index i = 0; i < prepared->truth.size(); ++i) {
    EXPECT_GE(prepared->truth.data()[i], 0.0);
    EXPECT_LE(prepared->truth.data()[i], 1.0);
  }
  // Inverse transform must recover the raw values.
  Matrix back = prepared->normalizer.InverseTransform(prepared->truth);
  EXPECT_LT(la::MaxAbsDiff(back, prepared->raw), 1e-8);
}

TEST(PrepareDatasetTest, UnknownNameFails) {
  EXPECT_FALSE(PrepareDataset("pluto", 100).ok());
}

TEST(PrepareDatasetTest, DefaultRows) {
  EXPECT_GT(DefaultRowsFor("vehicle"), DefaultRowsFor("farm"));
  EXPECT_EQ(DefaultRowsFor("unknown"), 1000);
}

// ---------------------------------------------------------------- trials

TEST(TrialsTest, ImputationRunsAndAverages) {
  auto prepared = PrepareDataset("lake", 250, 5);
  ASSERT_TRUE(prepared.ok());
  TrialOptions options;
  options.trials = 2;
  options.missing_rate = 0.1;
  impute::SmflImputer smfl;
  auto result = RunImputationTrials(*prepared, smfl, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->mean_rms, 0.0);
  EXPECT_LT(result->mean_rms, 0.5);
  EXPECT_GT(result->mean_seconds, 0.0);
  EXPECT_EQ(result->failures, 0);
}

TEST(TrialsTest, ImputationDeterministicPerSeed) {
  auto prepared = PrepareDataset("lake", 150, 7);
  ASSERT_TRUE(prepared.ok());
  TrialOptions options;
  options.trials = 1;
  options.seed = 99;
  impute::MeanImputer mean;
  auto a = RunImputationTrials(*prepared, mean, options);
  auto b = RunImputationTrials(*prepared, mean, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->mean_rms, b->mean_rms);
}

TEST(TrialsTest, MissingInSpatialIsHarder) {
  auto prepared = PrepareDataset("lake", 300, 9);
  ASSERT_TRUE(prepared.ok());
  impute::SmflImputer smfl;
  TrialOptions easy;
  easy.trials = 2;
  TrialOptions hard = easy;
  hard.missing_in_spatial = true;
  auto easy_result = RunImputationTrials(*prepared, smfl, easy);
  auto hard_result = RunImputationTrials(*prepared, smfl, hard);
  ASSERT_TRUE(easy_result.ok());
  ASSERT_TRUE(hard_result.ok());
  // Not guaranteed per-trial, but with SI missing the task cannot be
  // dramatically easier.
  EXPECT_GT(hard_result->mean_rms, easy_result->mean_rms * 0.8);
}

TEST(TrialsTest, RepairRunsAndBeatsDirty) {
  auto prepared = PrepareDataset("lake", 250, 11);
  ASSERT_TRUE(prepared.ok());
  TrialOptions options;
  options.trials = 2;
  options.error_rate = 0.1;
  repair::SmflRepairer smfl;
  auto result = RunRepairTrials(*prepared, smfl, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->mean_rms, 0.0);
  EXPECT_LT(result->mean_rms, 0.4);
}

TEST(TrialsTest, RejectsZeroTrials) {
  auto prepared = PrepareDataset("lake", 100, 13);
  ASSERT_TRUE(prepared.ok());
  TrialOptions options;
  options.trials = 0;
  impute::MeanImputer mean;
  EXPECT_FALSE(RunImputationTrials(*prepared, mean, options).ok());
}

// ---------------------------------------------------------------- report

TEST(ReportTableTest, TextLayout) {
  ReportTable table({"Dataset", "NMF", "SMFL"});
  table.BeginRow("lake");
  table.AddNumber(0.086);
  table.AddNumber(0.048);
  const std::string text = table.ToText();
  EXPECT_NE(text.find("Dataset"), std::string::npos);
  EXPECT_NE(text.find("0.086"), std::string::npos);
  EXPECT_NE(text.find("lake"), std::string::npos);
}

TEST(ReportTableTest, CsvLayout) {
  ReportTable table({"a", "b"});
  table.BeginRow("r1");
  table.AddCell("x");
  EXPECT_EQ(table.ToCsv(), "a,b\nr1,x\n");
}

TEST(ReportTableTest, MarkdownLayout) {
  ReportTable table({"a", "b"});
  table.BeginRow("r1");
  table.AddCell("x");
  EXPECT_EQ(table.ToMarkdown(), "| a | b |\n|---|---|\n| r1 | x |\n");
}

TEST(ReportTableTest, NumberPrecision) {
  ReportTable table({"a", "b"});
  table.BeginRow("r");
  table.AddNumber(1.23456, 2);
  EXPECT_NE(table.ToCsv().find("1.23"), std::string::npos);
  EXPECT_EQ(table.ToCsv().find("1.235"), std::string::npos);
}

}  // namespace
}  // namespace smfl::exp
