#include "src/data/mask.h"

#include <vector>

#include "src/common/parallel.h"
#include "src/common/telemetry.h"
#include "src/la/simd.h"

namespace smfl::data {

Index Mask::Count() const {
  Index n = 0;
  for (uint8_t b : bits_) n += b;
  return n;
}

Index Mask::RowCount(Index i) const {
  const uint8_t* row = RowData(i);
  Index n = 0;
  for (Index j = 0; j < cols_; ++j) n += row[j];
  return n;
}

Mask Mask::Complement() const {
  Mask out(rows_, cols_);
  for (size_t i = 0; i < bits_.size(); ++i) out.bits_[i] = bits_[i] ? 0 : 1;
  return out;
}

std::vector<Entry> Mask::Entries() const {
  std::vector<Entry> out;
  out.reserve(static_cast<size_t>(Count()));
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = 0; j < cols_; ++j) {
      if (Contains(i, j)) out.push_back({i, j});
    }
  }
  return out;
}

bool Mask::RowFullySet(Index i) const {
  for (Index j = 0; j < cols_; ++j) {
    if (!Contains(i, j)) return false;
  }
  return true;
}

std::vector<Index> Mask::FullySetRows() const {
  std::vector<Index> out;
  for (Index i = 0; i < rows_; ++i) {
    if (RowFullySet(i)) out.push_back(i);
  }
  return out;
}

Mask Mask::And(const Mask& other) const {
  SMFL_CHECK(SameShape(other));
  Mask out(rows_, cols_);
  for (size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = (bits_[i] && other.bits_[i]) ? 1 : 0;
  }
  return out;
}

Mask Mask::Or(const Mask& other) const {
  SMFL_CHECK(SameShape(other));
  Mask out(rows_, cols_);
  for (size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = (bits_[i] || other.bits_[i]) ? 1 : 0;
  }
  return out;
}

Matrix ApplyMask(const Matrix& x, const Mask& mask) {
  SMFL_CHECK_EQ(x.rows(), mask.rows());
  SMFL_CHECK_EQ(x.cols(), mask.cols());
  Matrix out(x.rows(), x.cols());
  for (Index i = 0; i < x.rows(); ++i) {
    for (Index j = 0; j < x.cols(); ++j) {
      if (mask.Contains(i, j)) out(i, j) = x(i, j);
    }
  }
  return out;
}

Matrix CombineByMask(const Matrix& x, const Matrix& x_star, const Mask& mask) {
  SMFL_CHECK(x.SameShape(x_star));
  SMFL_CHECK_EQ(x.rows(), mask.rows());
  SMFL_CHECK_EQ(x.cols(), mask.cols());
  Matrix out(x.rows(), x.cols());
  for (Index i = 0; i < x.rows(); ++i) {
    for (Index j = 0; j < x.cols(); ++j) {
      out(i, j) = mask.Contains(i, j) ? x(i, j) : x_star(i, j);
    }
  }
  return out;
}

Matrix MaskedReconstruct(const Matrix& u, const Matrix& v, const Mask& mask) {
  SMFL_CHECK_EQ(u.cols(), v.rows());
  SMFL_CHECK_EQ(u.rows(), mask.rows());
  SMFL_CHECK_EQ(v.cols(), mask.cols());
  const Index n = u.rows(), k = u.cols(), m = v.cols();
  Matrix out(n, m);
  const double* ud = u.data();
  const double* vd = v.data();
  double* od = out.data();
  constexpr Index kRowGrain = 16;
  // Kernel table resolved on the calling thread (thread-local ScopedSimd
  // overrides must reach the pool workers running the chunks — simd.h).
  const la::simd::Kernels& ker = la::simd::Active();
  if (ker.tier != la::simd::Tier::kScalar) {
    SMFL_COUNTER_INC("la.simd.dispatch.masked_reconstruct");
  }
  parallel::ParallelFor(0, n, kRowGrain, [&](Index r0, Index r1) {
    std::vector<Index> cols;
    for (Index i = r0; i < r1; ++i) {
      const uint8_t* obs = mask.RowData(i);
      const double* urow = ud + i * k;
      double* orow = od + i * m;
      const Index observed = mask.RowCount(i);
      if (observed == 0) continue;
      // Dense row path: stream the rows of V in ascending-k order (the
      // per-element summation order of la::MatMul, zero-skip included),
      // then zero the unobserved entries. For rows with few observed
      // entries the gathered per-entry dot is cheaper despite the column
      // stride.
      if (observed * 4 >= m) {
        for (Index p = 0; p < k; ++p) {
          const double uv = urow[p];
          // smfl-lint: allow(float-eq) exact zero-skip: 0.0 adds nothing
          if (uv == 0.0) continue;
          ker.axpy(m, uv, vd + p * m, orow);
        }
        if (observed != m) {
          for (Index j = 0; j < m; ++j) {
            if (!obs[j]) orow[j] = 0.0;
          }
        }
      } else {
        cols.clear();
        for (Index j = 0; j < m; ++j) {
          if (obs[j]) cols.push_back(j);
        }
        ker.masked_dot_cols(k, m, urow, vd, cols.data(),
                            static_cast<Index>(cols.size()), orow);
      }
    }
  });
  return out;
}

double MaskedSquaredError(const Matrix& x, const Mask& mask,
                          const Matrix& uv_masked) {
  SMFL_CHECK(x.SameShape(uv_masked));
  SMFL_CHECK_EQ(x.rows(), mask.rows());
  SMFL_CHECK_EQ(x.cols(), mask.cols());
  const Index m = x.cols();
  constexpr Index kRowGrain = 64;
  const la::simd::Kernels& ker = la::simd::Active();
  if (ker.tier != la::simd::Tier::kScalar) {
    SMFL_COUNTER_INC("la.simd.dispatch.masked_sq_err");
  }
  return parallel::ParallelReduce(
      0, x.rows(), kRowGrain, [&](Index r0, Index r1) {
        std::vector<double> sq(static_cast<size_t>(m));
        double acc = 0.0;
        for (Index i = r0; i < r1; ++i) {
          const uint8_t* obs = mask.RowData(i);
          const double* xrow = x.data() + i * m;
          const double* rrow = uv_masked.data() + i * m;
          const Index observed = mask.RowCount(i);
          if (observed == 0) continue;
          // Dense rows: vectorize the elementwise (x - r)^2 into a scratch
          // row, then fold the observed entries in the same ascending-j
          // order the scalar loop used — each d*d is one sub and one mul
          // in both paths, and the accumulation itself never vectorizes,
          // so the chunk sum is bitwise identical across tiers.
          if (observed * 4 >= m) {
            ker.sq_diff(m, xrow, rrow, sq.data());
            for (Index j = 0; j < m; ++j) {
              if (obs[j]) acc += sq[j];
            }
          } else {
            for (Index j = 0; j < m; ++j) {
              if (!obs[j]) continue;
              const double d = xrow[j] - rrow[j];
              acc += d * d;
            }
          }
        }
        return acc;
      });
}

}  // namespace smfl::data
