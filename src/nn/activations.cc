#include "src/nn/activations.h"

#include <cmath>

namespace smfl::nn {

Matrix Apply(Activation act, const Matrix& x) {
  Matrix y(x.rows(), x.cols());
  const double* xd = x.data();
  double* yd = y.data();
  switch (act) {
    case Activation::kIdentity:
      y = x;
      break;
    case Activation::kRelu:
      for (Index i = 0; i < x.size(); ++i) yd[i] = xd[i] > 0 ? xd[i] : 0.0;
      break;
    case Activation::kSigmoid:
      for (Index i = 0; i < x.size(); ++i) {
        yd[i] = 1.0 / (1.0 + std::exp(-xd[i]));
      }
      break;
    case Activation::kTanh:
      for (Index i = 0; i < x.size(); ++i) yd[i] = std::tanh(xd[i]);
      break;
  }
  return y;
}

Matrix Backprop(Activation act, const Matrix& y, const Matrix& dy) {
  SMFL_CHECK(y.SameShape(dy));
  Matrix dx(y.rows(), y.cols());
  const double* yd = y.data();
  const double* gd = dy.data();
  double* xd = dx.data();
  switch (act) {
    case Activation::kIdentity:
      dx = dy;
      break;
    case Activation::kRelu:
      for (Index i = 0; i < y.size(); ++i) xd[i] = yd[i] > 0 ? gd[i] : 0.0;
      break;
    case Activation::kSigmoid:
      for (Index i = 0; i < y.size(); ++i) {
        xd[i] = gd[i] * yd[i] * (1.0 - yd[i]);
      }
      break;
    case Activation::kTanh:
      for (Index i = 0; i < y.size(); ++i) {
        xd[i] = gd[i] * (1.0 - yd[i] * yd[i]);
      }
      break;
  }
  return dx;
}

}  // namespace smfl::nn
