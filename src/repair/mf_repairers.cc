#include "src/repair/mf_repairers.h"

namespace smfl::repair {

Result<Matrix> NmfRepairer::Repair(const Matrix& dirty,
                                   const Mask& dirty_cells,
                                   Index /*spatial_cols*/) const {
  const Mask clean = dirty_cells.Complement();
  ASSIGN_OR_RETURN(mf::NmfModel model, mf::FitNmf(dirty, clean, options_));
  return mf::ImputeWithModel(dirty, clean, model);
}

SmfRepairer::SmfRepairer(core::SmflOptions options) : options_(options) {
  options_.use_landmarks = false;
}

Result<Matrix> SmfRepairer::Repair(const Matrix& dirty,
                                   const Mask& dirty_cells,
                                   Index spatial_cols) const {
  return core::SmflRepair(dirty, dirty_cells, spatial_cols, options_);
}

SmflRepairer::SmflRepairer(core::SmflOptions options) : options_(options) {
  options_.use_landmarks = true;
}

Result<Matrix> SmflRepairer::Repair(const Matrix& dirty,
                                    const Mask& dirty_cells,
                                    Index spatial_cols) const {
  return core::SmflRepair(dirty, dirty_cells, spatial_cols, options_);
}

}  // namespace smfl::repair
