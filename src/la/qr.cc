#include "src/la/qr.h"

#include <cmath>

#include "src/la/cholesky.h"
#include "src/la/ops.h"

namespace smfl::la {

Result<QrDecomposition> QrFactor(const Matrix& a) {
  const Index n = a.rows(), m = a.cols();
  if (n < m) {
    return Status::InvalidArgument("QrFactor requires rows >= cols");
  }
  // Householder in-place on a working copy; accumulate reflectors.
  Matrix r = a;
  std::vector<Vector> reflectors;
  reflectors.reserve(static_cast<size_t>(m));
  for (Index j = 0; j < m; ++j) {
    // Build the Householder vector for column j below the diagonal.
    double norm = 0.0;
    for (Index i = j; i < n; ++i) norm += r(i, j) * r(i, j);
    norm = std::sqrt(norm);
    Vector v(n - j);
    // smfl-lint: allow(float-eq) exactly-zero column needs no reflector
    if (norm == 0.0) {
      reflectors.push_back(std::move(v));  // zero reflector: identity
      continue;
    }
    const double alpha = r(j, j) >= 0 ? -norm : norm;
    for (Index i = j; i < n; ++i) v[i - j] = r(i, j);
    v[0] -= alpha;
    double vnorm2 = 0.0;
    for (Index i = 0; i < v.size(); ++i) vnorm2 += v[i] * v[i];
    // smfl-lint: allow(float-eq) guards division by an exact zero norm
    if (vnorm2 == 0.0) {
      reflectors.push_back(std::move(v));
      continue;
    }
    // Apply H = I - 2 v v^T / (v^T v) to the trailing submatrix.
    for (Index c = j; c < m; ++c) {
      double dot = 0.0;
      for (Index i = j; i < n; ++i) dot += v[i - j] * r(i, c);
      const double f = 2.0 * dot / vnorm2;
      for (Index i = j; i < n; ++i) r(i, c) -= f * v[i - j];
    }
    reflectors.push_back(std::move(v));
  }
  // Form thin Q by applying reflectors (in reverse) to the first m columns
  // of the identity.
  Matrix q(n, m);
  for (Index j = 0; j < m; ++j) q(j, j) = 1.0;
  for (Index j = m - 1; j >= 0; --j) {
    const Vector& v = reflectors[static_cast<size_t>(j)];
    double vnorm2 = 0.0;
    for (Index i = 0; i < v.size(); ++i) vnorm2 += v[i] * v[i];
    // smfl-lint: allow(float-eq) guards division by an exact zero norm
    if (vnorm2 == 0.0) continue;
    for (Index c = 0; c < m; ++c) {
      double dot = 0.0;
      for (Index i = j; i < n; ++i) dot += v[i - j] * q(i, c);
      const double f = 2.0 * dot / vnorm2;
      for (Index i = j; i < n; ++i) q(i, c) -= f * v[i - j];
    }
  }
  // Zero out the strictly-lower part of R (numerical noise) and shrink.
  Matrix r_thin(m, m);
  for (Index i = 0; i < m; ++i) {
    for (Index j2 = i; j2 < m; ++j2) r_thin(i, j2) = r(i, j2);
  }
  return QrDecomposition{std::move(q), std::move(r_thin)};
}

Result<Vector> LeastSquares(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LeastSquares: dimension mismatch");
  }
  ASSIGN_OR_RETURN(QrDecomposition qr, QrFactor(a));
  const Index m = a.cols();
  // x = R^{-1} Q^T b.
  Vector qtb(m);
  for (Index j = 0; j < m; ++j) {
    double acc = 0.0;
    for (Index i = 0; i < a.rows(); ++i) acc += qr.q(i, j) * b[i];
    qtb[j] = acc;
  }
  // Rank check on the diagonal of R.
  double rmax = 0.0;
  for (Index i = 0; i < m; ++i) rmax = std::max(rmax, std::fabs(qr.r(i, i)));
  const double tol = rmax * 1e-12;
  Vector x(m);
  for (Index i = m - 1; i >= 0; --i) {
    if (std::fabs(qr.r(i, i)) <= tol) {
      return Status::NumericError("LeastSquares: rank-deficient system");
    }
    double v = qtb[i];
    for (Index j = i + 1; j < m; ++j) v -= qr.r(i, j) * x[j];
    x[i] = v / qr.r(i, i);
  }
  return x;
}

Result<Vector> RidgeSolve(const Matrix& a, const Vector& b, double lambda) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("RidgeSolve: dimension mismatch");
  }
  if (!(lambda > 0.0)) {
    return Status::InvalidArgument("RidgeSolve: lambda must be > 0");
  }
  Matrix ata = MatMulAtB(a, a);
  for (Index i = 0; i < ata.rows(); ++i) ata(i, i) += lambda;
  Vector atb(a.cols());
  for (Index j = 0; j < a.cols(); ++j) {
    double acc = 0.0;
    for (Index i = 0; i < a.rows(); ++i) acc += a(i, j) * b[i];
    atb[j] = acc;
  }
  return CholeskySolve(ata, atb);
}

}  // namespace smfl::la
