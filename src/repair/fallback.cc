#include "src/repair/fallback.h"

#include "src/common/strings.h"

namespace smfl::repair {

std::vector<std::string> DefaultRepairFallbackChain() {
  return {"SMFL", "SMF", "NMF", "HoloClean"};
}

FallbackRepairer::FallbackRepairer(std::vector<std::string> chain)
    : chain_(std::move(chain)) {}

std::string FallbackRepairer::name() const {
  return "Fallback(" + Join(chain_, "->") + ")";
}

Result<Matrix> FallbackRepairer::Repair(const Matrix& dirty,
                                        const Mask& dirty_cells,
                                        Index spatial_cols) const {
  return RepairWithReport(dirty, dirty_cells, spatial_cols, nullptr);
}

Result<Matrix> FallbackRepairer::RepairWithReport(
    const Matrix& dirty, const Mask& dirty_cells, Index spatial_cols,
    mf::DegradationReport* report) const {
  if (chain_.empty()) {
    return Status::InvalidArgument("FallbackRepairer: empty chain");
  }
  if (report) *report = mf::DegradationReport{};
  Status last_error = Status::OK();
  for (const std::string& tier : chain_) {
    auto repairer = MakeRepairer(tier);
    Result<Matrix> result =
        repairer.ok() ? (*repairer)->Repair(dirty, dirty_cells, spatial_cols)
                      : Result<Matrix>(repairer.status());
    if (result.ok()) {
      if (report) {
        report->served_by = tier;
        report->attempts.push_back({tier, ""});
      }
      return result;
    }
    if (report) {
      report->attempts.push_back({tier, result.status().ToString()});
    }
    last_error = result.status();
  }
  last_error.WithContext(StrFormat("all %zu fallback tiers failed",
                                   chain_.size()));
  return last_error;
}

}  // namespace smfl::repair
