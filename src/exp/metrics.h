// Evaluation metrics (paper §IV-A2).

#ifndef SMFL_EXP_METRICS_H_
#define SMFL_EXP_METRICS_H_

#include "src/common/status.h"
#include "src/data/mask.h"

namespace smfl::exp {

using data::Mask;
using la::Index;
using la::Matrix;

// RMS = sqrt(||R_Ψ(X* − X#)||_F² / |Ψ|): root-mean-square error between
// estimate and ground truth over the entries in `mask` (Ψ). Fails if the
// mask is empty.
Result<double> RmsOverMask(const Matrix& estimate, const Matrix& truth,
                           const Mask& mask);

}  // namespace smfl::exp

#endif  // SMFL_EXP_METRICS_H_
