// Serving bench (implementation extension, DESIGN.md §4): fold-in of fresh
// rows against a fitted model vs refitting SMFL from scratch on the union.
//
// Reports, per dataset: imputation RMS of (a) fold-in and (b) full refit on
// the fresh rows' hidden cells, plus per-row serving latency for both —
// the accuracy cost you pay for a ~1000x cheaper serving path.

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/fold_in.h"
#include "src/data/inject.h"
#include "src/exp/metrics.h"

using namespace smfl;
using data::Mask;
using la::Index;
using la::Matrix;

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  (void)config;
  exp::ReportTable table({"Dataset", "RMS(fold-in)", "RMS(refit)",
                          "ms/row(fold-in)", "ms/row(refit)"});
  for (const std::string& dataset_name : bench::PaperDatasets()) {
    const Index total = exp::DefaultRowsFor(dataset_name);
    const Index train_rows = total * 3 / 4;
    const Index fresh = total - train_rows;
    auto prepared =
        bench::ValueOrDie(exp::PrepareDataset(dataset_name, total));

    // Fit once on the training block.
    Matrix train =
        prepared.truth.Block(0, 0, train_rows, prepared.truth.cols());
    core::SmflOptions options;
    auto model = bench::ValueOrDie(core::FitSmfl(
        train, Mask::AllSet(train_rows, train.cols()), 2, options));

    // Fresh rows with ~20% of their attribute cells hidden.
    Matrix x(fresh, prepared.truth.cols());
    Mask observed(fresh, prepared.truth.cols());
    Mask psi(fresh, prepared.truth.cols());
    Rng rng(99);
    for (Index i = 0; i < fresh; ++i) {
      for (Index j = 0; j < prepared.truth.cols(); ++j) {
        x(i, j) = prepared.truth(train_rows + i, j);
        const bool hide = j >= 2 && rng.Bernoulli(0.2);
        observed.Set(i, j, !hide);
        if (hide) {
          psi.Set(i, j);
          x(i, j) = 0.0;
        }
      }
    }
    Matrix truth_block =
        prepared.truth.Block(train_rows, 0, fresh, prepared.truth.cols());

    // (a) Fold-in.
    Stopwatch fold_watch;
    auto folded = bench::ValueOrDie(core::FoldIn(model, x, observed));
    const double fold_ms = fold_watch.ElapsedMillis();
    const double fold_rms =
        bench::ValueOrDie(exp::RmsOverMask(folded, truth_block, psi));

    // (b) Full refit on train + fresh.
    Matrix all(train_rows + fresh, prepared.truth.cols());
    Mask all_mask(train_rows + fresh, prepared.truth.cols());
    for (Index i = 0; i < train_rows; ++i) {
      for (Index j = 0; j < prepared.truth.cols(); ++j) {
        all(i, j) = prepared.truth(i, j);
        all_mask.Set(i, j);
      }
    }
    for (Index i = 0; i < fresh; ++i) {
      for (Index j = 0; j < prepared.truth.cols(); ++j) {
        all(train_rows + i, j) = x(i, j);
        all_mask.Set(train_rows + i, j, observed.Contains(i, j));
      }
    }
    Stopwatch refit_watch;
    auto refit = bench::ValueOrDie(core::SmflImpute(all, all_mask, 2, options));
    const double refit_ms = refit_watch.ElapsedMillis();
    Matrix refit_fresh =
        refit.Block(train_rows, 0, fresh, prepared.truth.cols());
    const double refit_rms =
        bench::ValueOrDie(exp::RmsOverMask(refit_fresh, truth_block, psi));

    table.BeginRow(dataset_name);
    table.AddNumber(fold_rms);
    table.AddNumber(refit_rms);
    table.AddNumber(fold_ms / static_cast<double>(fresh), 3);
    table.AddNumber(refit_ms / static_cast<double>(fresh), 3);
  }
  table.Print("Serving: fold-in vs full refit on fresh rows");
  std::printf("%s", table.ToCsv().c_str());
  return 0;
}
