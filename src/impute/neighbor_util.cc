#include "src/impute/neighbor_util.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace smfl::impute {

double PartialRowDistance(const Matrix& x, Index a, Index b,
                          const std::vector<Index>& cols) {
  if (cols.empty()) return std::numeric_limits<double>::infinity();
  double acc = 0.0;
  for (Index c : cols) {
    const double d = x(a, c) - x(b, c);
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::vector<Index> ObservedColumns(const Mask& observed, Index i) {
  std::vector<Index> cols;
  for (Index j = 0; j < observed.cols(); ++j) {
    if (observed.Contains(i, j)) cols.push_back(j);
  }
  return cols;
}

std::vector<Index> RowsCompleteOn(const Mask& observed,
                                  const std::vector<Index>& cols) {
  std::vector<Index> rows;
  for (Index i = 0; i < observed.rows(); ++i) {
    bool complete = true;
    for (Index c : cols) {
      if (!observed.Contains(i, c)) {
        complete = false;
        break;
      }
    }
    if (complete) rows.push_back(i);
  }
  return rows;
}

std::vector<ScoredRow> NearestAmong(const Matrix& x, Index self,
                                    const std::vector<Index>& candidates,
                                    const std::vector<Index>& cols, Index k) {
  auto farther = [](const ScoredRow& a, const ScoredRow& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.row < b.row;
  };
  std::priority_queue<ScoredRow, std::vector<ScoredRow>, decltype(farther)>
      heap(farther);
  for (Index row : candidates) {
    if (row == self) continue;
    const double d = PartialRowDistance(x, self, row, cols);
    if (!std::isfinite(d)) continue;
    if (static_cast<Index>(heap.size()) < k) {
      heap.push({row, d});
    } else if (farther({row, d}, heap.top())) {
      heap.pop();
      heap.push({row, d});
    }
  }
  std::vector<ScoredRow> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::sort(out.begin(), out.end(), [](const ScoredRow& a, const ScoredRow& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.row < b.row;
  });
  return out;
}

}  // namespace smfl::impute
