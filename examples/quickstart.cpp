// Quickstart: generate a spatial dataset, knock out 10% of the values,
// impute them with NMF, SMF, and SMFL, and compare RMS errors.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/exp/metrics.h"
#include "src/mf/nmf.h"

using namespace smfl;  // examples favor brevity; library code never does this

int main() {
  // 1. A Vehicle-like spatial dataset: lat/lon + speed/torque/fuel columns.
  auto dataset = data::MakeVehicleLike(/*rows=*/800, /*seed=*/42);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const data::Table& table = dataset->table;
  std::printf("dataset: %lld rows x %lld cols (%lld spatial)\n",
              static_cast<long long>(table.NumRows()),
              static_cast<long long>(table.NumCols()),
              static_cast<long long>(table.SpatialCols()));

  // 2. Normalize to [0, 1] and inject 10% missing values.
  auto normalizer = data::MinMaxNormalizer::Fit(table.values());
  la::Matrix truth = normalizer->Transform(table.values());

  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = 7;
  auto injection = data::InjectMissing(table, inject);
  const data::Mask& observed = injection->observed;
  la::Matrix input = data::ApplyMask(truth, observed);
  std::printf("observed entries: %lld of %lld\n",
              static_cast<long long>(observed.Count()),
              static_cast<long long>(truth.size()));

  // 3. Impute with plain NMF, SMF (spatial regularization), and SMFL
  //    (spatial regularization + landmarks).
  auto report = [&](const char* name, const Result<la::Matrix>& imputed) {
    if (!imputed.ok()) {
      std::printf("%-5s failed: %s\n", name,
                  imputed.status().ToString().c_str());
      return;
    }
    auto rms = exp::RmsOverMask(*imputed, truth, observed.Complement());
    std::printf("%-5s imputation RMS: %.4f\n", name, *rms);
  };

  {
    mf::NmfOptions options;
    options.rank = 5;
    auto model = mf::FitNmf(input, observed, options);
    if (model.ok()) {
      report("NMF", mf::ImputeWithModel(input, observed, *model));
    }
  }
  {
    core::SmflOptions options;
    options.rank = 5;
    options.use_landmarks = false;  // SMF
    report("SMF", core::SmflImpute(input, observed, table.SpatialCols(),
                                   options));
  }
  {
    core::SmflOptions options;
    options.rank = 5;
    options.use_landmarks = true;  // SMFL: the paper's method
    auto model = core::FitSmfl(input, observed, table.SpatialCols(), options);
    if (!model.ok()) {
      std::printf("SMFL failed: %s\n", model.status().ToString().c_str());
      return 1;
    }
    report("SMFL", Result<la::Matrix>(data::CombineByMask(
                       input, model->Reconstruct(), observed)));
    std::printf(
        "SMFL converged after %d iterations (objective %.4f -> %.4f)\n",
        model->report.iterations, model->report.objective_trace.front(),
        model->report.final_objective());
    // Landmarks live in the first L columns of V.
    la::Matrix landmarks = model->FeatureLocations();
    std::printf("landmark locations (normalized lat, lon):\n");
    for (la::Index k = 0; k < landmarks.rows(); ++k) {
      std::printf("  feature %lld: (%.3f, %.3f)\n", static_cast<long long>(k),
                  landmarks(k, 0), landmarks(k, 1));
    }
  }
  return 0;
}
