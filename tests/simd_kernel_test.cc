// Bitwise-equivalence contract of the SIMD dispatch layer (src/la/simd.*):
// every dispatched microkernel and every op built on them must produce
// byte-identical results with vector kernels forced on vs pinned to the
// scalar tier, at any thread count — including remainder lanes (n % 4,
// n % 8), empty inputs, and 1x1 shapes. Full SMFL/SMF fits must serialize
// to byte-identical model files under SMFL_SIMD=0/1 x threads {1, 4} x
// multiple seeds (the acceptance bar of the dispatch layer). On hosts
// whose probe resolves to the scalar tier these tests still run — both
// sides execute the same table, so they degrade to self-consistency.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/core/model_io.h"
#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/mask.h"
#include "src/data/normalize.h"
#include "src/la/ops.h"
#include "src/la/simd.h"

namespace smfl {
namespace {

using data::Mask;
using la::Index;
using la::Matrix;
namespace simd = la::simd;

Matrix RandomMatrix(Index rows, Index cols, uint64_t seed,
                    double zero_rate = 0.0) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (Index i = 0; i < m.size(); ++i) {
    const double v = rng.Uniform(-1.0, 1.0);
    m.data()[i] = (zero_rate > 0.0 && rng.Uniform() < zero_rate) ? 0.0 : v;
  }
  return m;
}

Mask RandomMask(Index rows, Index cols, uint64_t seed, double set_rate) {
  Rng rng(seed);
  Mask mask(rows, cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      mask.Set(i, j, rng.Uniform() < set_rate);
    }
  }
  return mask;
}

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b,
                        const std::string& label) {
  ASSERT_EQ(a.rows(), b.rows()) << label;
  ASSERT_EQ(a.cols(), b.cols()) << label;
  for (Index i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i])
        << label << " differs at flat index " << i;
  }
}

// Runs `fn` with the vector tier forced on and with scalar pinned, and
// asserts byte-identical Matrix results.
template <typename Fn>
void ExpectSimdInvariant(const Fn& fn, const std::string& label) {
  Matrix vec, scalar;
  {
    simd::ScopedSimd on(1);
    vec = fn();
  }
  {
    simd::ScopedSimd off(0);
    scalar = fn();
  }
  ExpectBitwiseEqual(vec, scalar, label + " (simd on vs off)");
}

// --------------------------------------------------------------------------
// Dispatch plumbing

TEST(SimdDispatchTest, EnvValueParsing) {
  EXPECT_TRUE(simd::SimdEnvValueEnabled(nullptr));
  EXPECT_TRUE(simd::SimdEnvValueEnabled(""));
  EXPECT_TRUE(simd::SimdEnvValueEnabled("1"));
  EXPECT_TRUE(simd::SimdEnvValueEnabled("on"));
  EXPECT_FALSE(simd::SimdEnvValueEnabled("0"));
  EXPECT_FALSE(simd::SimdEnvValueEnabled("off"));
  EXPECT_FALSE(simd::SimdEnvValueEnabled("OFF"));
  EXPECT_FALSE(simd::SimdEnvValueEnabled("false"));
  EXPECT_FALSE(simd::SimdEnvValueEnabled("FALSE"));
}

TEST(SimdDispatchTest, TierNames) {
  EXPECT_STREQ(simd::TierName(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::TierName(simd::Tier::kAvx2), "avx2");
  EXPECT_STREQ(simd::TierName(simd::Tier::kNeon), "neon");
}

TEST(SimdDispatchTest, ScopedOverrideForcesScalarAndRestores) {
  const simd::Tier ambient = simd::ActiveTier();
  {
    simd::ScopedSimd off(0);
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
    EXPECT_EQ(simd::Active().tier, simd::Tier::kScalar);
    {
      simd::ScopedSimd on(1);  // nesting: innermost wins
      EXPECT_EQ(simd::ActiveTier(), simd::HardwareTier());
    }
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  }
  EXPECT_EQ(simd::ActiveTier(), ambient);
}

TEST(SimdDispatchTest, InheritModeIsANoOp) {
  const simd::Tier ambient = simd::ActiveTier();
  simd::ScopedSimd inherit(-1);
  EXPECT_EQ(simd::ActiveTier(), ambient);
}

TEST(SimdDispatchTest, ActiveTableMatchesTier) {
  simd::ScopedSimd on(1);
  EXPECT_EQ(simd::Active().tier, simd::HardwareTier());
}

// --------------------------------------------------------------------------
// Raw microkernels: vector tier vs scalar tier, element for element.
// Sizes cover every remainder class of the 4-wide (AVX2) and 2-wide
// (NEON) loops plus empty and single-element inputs.

const Index kEdgeSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 100};

TEST(SimdKernelTest, AxpyMatchesScalarTier) {
  for (const Index n : kEdgeSizes) {
    const Matrix x = RandomMatrix(1, std::max<Index>(n, 1), 11);
    Matrix y_vec = RandomMatrix(1, std::max<Index>(n, 1), 12);
    Matrix y_sca = y_vec;
    {
      simd::ScopedSimd on(1);
      simd::Active().axpy(n, 0.37, x.data(), y_vec.data());
    }
    {
      simd::ScopedSimd off(0);
      simd::Active().axpy(n, 0.37, x.data(), y_sca.data());
    }
    ExpectBitwiseEqual(y_vec, y_sca, "axpy n=" + std::to_string(n));
  }
}

TEST(SimdKernelTest, DotPanelMatchesScalarTier) {
  for (const Index k : kEdgeSizes) {
    for (const Index lanes :
         {Index{1}, Index{3}, Index{5}, simd::kPanelWidth}) {
      const Matrix a = RandomMatrix(1, std::max<Index>(k, 1), 21, 0.2);
      const Matrix b = RandomMatrix(std::max<Index>(lanes, 1),
                                    std::max<Index>(k, 1), 22);
      std::vector<double> panel(
          static_cast<size_t>(simd::kPanelWidth * std::max<Index>(k, 1)));
      simd::PackRowPanel(b.data(), k, lanes, k, panel.data());
      std::vector<double> out_vec(static_cast<size_t>(lanes), -1.0);
      std::vector<double> out_sca(static_cast<size_t>(lanes), -2.0);
      {
        simd::ScopedSimd on(1);
        simd::Active().dot_panel(k, a.data(), panel.data(), lanes,
                                 out_vec.data());
      }
      {
        simd::ScopedSimd off(0);
        simd::Active().dot_panel(k, a.data(), panel.data(), lanes,
                                 out_sca.data());
      }
      for (Index l = 0; l < lanes; ++l) {
        ASSERT_EQ(out_vec[static_cast<size_t>(l)],
                  out_sca[static_cast<size_t>(l)])
            << "dot_panel k=" << k << " lanes=" << lanes << " lane " << l;
      }
    }
  }
}

TEST(SimdKernelTest, MaskedDotColsMatchesScalarTier) {
  for (const Index k : {Index{0}, Index{1}, Index{7}, Index{16}}) {
    for (const Index m : {Index{1}, Index{5}, Index{33}}) {
      const Matrix u = RandomMatrix(1, std::max<Index>(k, 1), 31, 0.3);
      const Matrix v =
          RandomMatrix(std::max<Index>(k, 1), m, 32);
      // Every subset size of observed columns, including sizes that leave
      // a remainder for the 4-wide gather loop.
      Rng rng(33);
      std::vector<Index> cols;
      for (Index j = 0; j < m; ++j) {
        if (rng.Uniform() < 0.6) cols.push_back(j);
      }
      std::vector<double> o_vec(static_cast<size_t>(m), 0.0);
      std::vector<double> o_sca(static_cast<size_t>(m), 0.0);
      {
        simd::ScopedSimd on(1);
        simd::Active().masked_dot_cols(k, m, u.data(), v.data(), cols.data(),
                                       static_cast<Index>(cols.size()),
                                       o_vec.data());
      }
      {
        simd::ScopedSimd off(0);
        simd::Active().masked_dot_cols(k, m, u.data(), v.data(), cols.data(),
                                       static_cast<Index>(cols.size()),
                                       o_sca.data());
      }
      for (Index j = 0; j < m; ++j) {
        ASSERT_EQ(o_vec[static_cast<size_t>(j)], o_sca[static_cast<size_t>(j)])
            << "masked_dot_cols k=" << k << " m=" << m << " col " << j;
      }
    }
  }
}

TEST(SimdKernelTest, SqDiffMatchesScalarTier) {
  for (const Index n : kEdgeSizes) {
    const Matrix x = RandomMatrix(1, std::max<Index>(n, 1), 41);
    const Matrix r = RandomMatrix(1, std::max<Index>(n, 1), 42);
    std::vector<double> out_vec(static_cast<size_t>(std::max<Index>(n, 1)));
    std::vector<double> out_sca(static_cast<size_t>(std::max<Index>(n, 1)));
    {
      simd::ScopedSimd on(1);
      simd::Active().sq_diff(n, x.data(), r.data(), out_vec.data());
    }
    {
      simd::ScopedSimd off(0);
      simd::Active().sq_diff(n, x.data(), r.data(), out_sca.data());
    }
    for (Index j = 0; j < n; ++j) {
      ASSERT_EQ(out_vec[static_cast<size_t>(j)],
                out_sca[static_cast<size_t>(j)])
          << "sq_diff n=" << n << " index " << j;
    }
  }
}

TEST(SimdKernelTest, PackRowPanelZeroPadsMissingLanes) {
  const Index k = 5;
  const Matrix b = RandomMatrix(3, k, 51);
  std::vector<double> panel(static_cast<size_t>(simd::kPanelWidth * k), -9.0);
  simd::PackRowPanel(b.data(), k, 3, k, panel.data());
  for (Index p = 0; p < k; ++p) {
    for (Index l = 0; l < simd::kPanelWidth; ++l) {
      const double expect = l < 3 ? b(l, p) : 0.0;
      ASSERT_EQ(panel[static_cast<size_t>(p * simd::kPanelWidth + l)], expect)
          << "p=" << p << " lane " << l;
    }
  }
}

// --------------------------------------------------------------------------
// Ops built on the kernels: random shapes including every remainder class
// of the panel/lane widths, empty, and 1x1.

TEST(SimdKernelTest, MatMulSimdInvariant) {
  const struct { Index n, k, m; } shapes[] = {
      {1, 1, 1}, {3, 2, 5}, {17, 9, 23}, {64, 16, 64},
      {70, 33, 65},  // ragged blocks: m % 8 = 1, m % 4 = 1
      {5, 0, 7},     // empty reduction
      {0, 4, 4},     // empty output
  };
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s.n, s.k, 61, 0.2);
    const Matrix b = RandomMatrix(s.k, s.m, 62);
    ExpectSimdInvariant([&] { return la::MatMul(a, b); },
                        "MatMul " + std::to_string(s.n) + "x" +
                            std::to_string(s.k) + "x" + std::to_string(s.m));
  }
}

TEST(SimdKernelTest, MatMulAtBSimdInvariant) {
  const struct { Index k, n, m; } shapes[] = {
      {1, 1, 1}, {9, 3, 7}, {151, 70, 43}, {32, 16, 33},
  };
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s.k, s.n, 63, 0.2);
    const Matrix b = RandomMatrix(s.k, s.m, 64);
    ExpectSimdInvariant([&] { return la::MatMulAtB(a, b); },
                        "MatMulAtB " + std::to_string(s.k) + "x" +
                            std::to_string(s.n) + "x" + std::to_string(s.m));
  }
}

TEST(SimdKernelTest, MatMulABtSimdInvariant) {
  const struct { Index n, k, m; } shapes[] = {
      {1, 1, 1}, {5, 3, 9},   // m % 8 = 1
      {29, 31, 57},           // m % 8 = 1, odd k
      {16, 8, 8}, {12, 7, 15},
  };
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s.n, s.k, 65);
    const Matrix b = RandomMatrix(s.m, s.k, 66);
    ExpectSimdInvariant([&] { return la::MatMulABt(a, b); },
                        "MatMulABt " + std::to_string(s.n) + "x" +
                            std::to_string(s.k) + "x" + std::to_string(s.m));
  }
}

TEST(SimdKernelTest, MaskedReconstructSimdInvariant) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const Matrix u = RandomMatrix(101, 12, seed * 7 + 1, 0.15);
    const Matrix v = RandomMatrix(12, 53, seed * 7 + 2);
    // Low and high rates hit both the gathered-dot and dense-row paths.
    for (double rate : {0.1, 0.9}) {
      const Mask mask = RandomMask(101, 53, seed * 7 + 3, rate);
      ExpectSimdInvariant(
          [&] { return data::MaskedReconstruct(u, v, mask); },
          "MaskedReconstruct seed " + std::to_string(seed) + " rate " +
              std::to_string(rate));
    }
  }
}

TEST(SimdKernelTest, MaskedSquaredErrorSimdInvariant) {
  const Matrix x = RandomMatrix(211, 29, 5);
  const Matrix r = RandomMatrix(211, 29, 6);
  for (double rate : {0.1, 0.7, 1.0}) {
    const Mask mask = RandomMask(211, 29, 7, rate);
    double vec, scalar;
    {
      simd::ScopedSimd on(1);
      vec = data::MaskedSquaredError(x, mask, r);
    }
    {
      simd::ScopedSimd off(0);
      scalar = data::MaskedSquaredError(x, mask, r);
    }
    EXPECT_EQ(vec, scalar) << "MaskedSquaredError rate " << rate;
  }
}

// SIMD choice must also compose with threading: vector-on at 4 threads ==
// scalar at 1 thread, bit for bit.
TEST(SimdKernelTest, SimdAndThreadingComposeBitwise) {
  const Matrix a = RandomMatrix(173, 37, 71, 0.2);
  const Matrix b = RandomMatrix(37, 91, 72);
  Matrix baseline;
  {
    parallel::ScopedParallelism threads(1);
    simd::ScopedSimd off(0);
    baseline = la::MatMul(a, b);
  }
  {
    parallel::ScopedParallelism threads(4);
    simd::ScopedSimd on(1);
    ExpectBitwiseEqual(baseline, la::MatMul(a, b),
                       "scalar@1thread vs simd@4threads");
  }
}

// --------------------------------------------------------------------------
// Full fits: the acceptance bar. SMFL and SMF models serialized after
// fitting with vector kernels on vs scalar pinned must be byte-identical
// files, at 1 and 4 threads, across seeds.

TEST(SimdKernelTest, FitModelsByteIdenticalSimdOnVsOff) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    auto dataset = data::MakeVehicleLike(50, 200 + seed);
    ASSERT_TRUE(dataset.ok());
    auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
    ASSERT_TRUE(normalizer.ok());
    const Matrix truth = normalizer->Transform(dataset->table.values());
    data::MissingInjectionOptions inject;
    inject.missing_rate = 0.2;
    inject.seed = seed * 31 + 1;
    auto injection = data::InjectMissing(dataset->table, inject);
    ASSERT_TRUE(injection.ok());
    const Matrix x_in = data::ApplyMask(truth, injection->observed);

    for (bool landmarks : {true, false}) {
      core::SmflOptions options;
      options.rank = 4;
      options.max_iterations = 25;
      options.tolerance = 0.0;
      options.seed = seed * 7919 + 3;
      options.use_landmarks = landmarks;

      std::string reference;
      for (int threads : {1, 4}) {
        options.threads = threads;
        options.simd = 1;
        auto on = core::FitSmfl(x_in, injection->observed, 2, options);
        ASSERT_TRUE(on.ok()) << on.status().ToString();
        options.simd = 0;
        auto off = core::FitSmfl(x_in, injection->observed, 2, options);
        ASSERT_TRUE(off.ok()) << off.status().ToString();

        const std::string serialized_on = core::SerializeModel(*on);
        const std::string serialized_off = core::SerializeModel(*off);
        const std::string label = std::string(landmarks ? "SMFL" : "SMF") +
                                  " seed " + std::to_string(seed) + " @ " +
                                  std::to_string(threads) + " threads";
        ASSERT_EQ(serialized_on, serialized_off) << label;
        // And across thread counts too: one model per (seed, landmarks).
        if (reference.empty()) {
          reference = serialized_on;
        } else {
          ASSERT_EQ(serialized_on, reference) << label << " vs 1 thread";
        }
      }
    }
  }
}

}  // namespace
}  // namespace smfl
