#include "src/common/flags.h"

#include "src/common/strings.h"

namespace smfl {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      // A bare "--": treat the rest as positional (POSIX convention).
      for (int j = i + 1; j < argc; ++j) {
        flags.positional_.emplace_back(argv[j]);
      }
      break;
    }
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      std::string name(arg.substr(0, eq));
      if (name.empty()) {
        return Status::DataError("malformed flag '--" + std::string(arg) +
                                 "'");
      }
      flags.values_[name] = std::string(arg.substr(eq + 1));
      continue;
    }
    std::string name(arg);
    // "--name value" when the next token is not a flag; else boolean.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[name] = argv[++i];
    } else {
      flags.values_[name] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  auto parsed = ParseInt(it->second);
  if (!parsed.ok()) {
    Status st = parsed.status();
    return st.WithContext("flag --" + name);
  }
  return parsed;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    Status st = parsed.status();
    return st.WithContext("flag --" + name);
  }
  return parsed;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<bool> Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::DataError("flag --" + name + ": expected a boolean, got '" +
                           it->second + "'");
}

std::vector<std::string> Flags::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

}  // namespace smfl
