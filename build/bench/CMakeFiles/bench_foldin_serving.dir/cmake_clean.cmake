file(REMOVE_RECURSE
  "CMakeFiles/bench_foldin_serving.dir/bench_foldin_serving.cpp.o"
  "CMakeFiles/bench_foldin_serving.dir/bench_foldin_serving.cpp.o.d"
  "bench_foldin_serving"
  "bench_foldin_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_foldin_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
