#include "src/common/durable_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/fault.h"
#include "src/common/strings.h"

namespace smfl {

namespace {

// CRC-32 lookup table for the reflected IEEE polynomial, built once.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Writes all of `data` to `fd`, riding out short writes and EINTR.
Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write failed for '" + path + "': " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// fsync of the directory containing `path`, so a completed rename is
// durable. Best-effort on filesystems that refuse O_DIRECTORY opens.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return;
  ::fsync(dfd);
  ::close(dfd);
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  const uint32_t* table = Crc32Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status WriteFileDurable(const std::string& path, std::string_view content) {
  // Same-directory temp name: rename(2) is only atomic within one
  // filesystem. The pid suffix keeps concurrent writers from clobbering
  // each other's temp file (last rename still wins the final name).
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp + "' for writing: " +
                           std::strerror(errno));
  }
  // Torn-write fault: persist only a prefix, skip the durability fsync,
  // and let the rename go through — the crash window where the kernel
  // reordered data and rename. Readers must catch this via checksums.
  const bool torn = SMFL_FAULT_FIRED("io.write.torn");
  const std::string_view effective =
      torn ? content.substr(0, content.size() / 2) : content;
  Status write_status = WriteAll(fd, effective, tmp);
  if (!write_status.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return write_status;
  }
  if (!torn) {
    if (SMFL_FAULT_FIRED("io.write.fsync_fail") || ::fsync(fd) != 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IoError("fsync failed for '" + tmp + "'");
    }
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("close failed for '" + tmp + "': " +
                           std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("rename '" + tmp + "' -> '" + path + "' failed: " +
                           std::strerror(errno));
  }
  SyncParentDir(path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for '" + path + "'");
  std::string content = std::move(buf).str();
  // Partial-read fault: hand back a prefix, as a half-synced page cache
  // or a mid-copy snapshot would.
  if (SMFL_FAULT_FIRED("io.read.partial")) {
    content.resize(content.size() / 2);
  }
  return content;
}

// ---------------------------------------------------------------------------
// Section framing.

namespace {
constexpr const char* kContainerMagic = "smfl-durable";
constexpr int kContainerVersion = 1;
// A hostile section count or length is rejected before any allocation.
constexpr long long kMaxSections = 1 << 10;
}  // namespace

bool LooksLikeDurableContainer(std::string_view content) {
  return StartsWith(content, kContainerMagic);
}

void SectionWriter::Add(std::string_view name, std::string_view payload) {
  sections_.push_back(Section{std::string(name), std::string(payload)});
}

std::string SectionWriter::Finish() const {
  std::string out = StrFormat("%s %d %zu\n", kContainerMagic,
                              kContainerVersion, sections_.size());
  for (const Section& s : sections_) {
    out += StrFormat("section %s %zu %08x\n", s.name.c_str(),
                     s.payload.size(), Crc32(s.payload));
    out += s.payload;
    out += '\n';
  }
  return out;
}

Result<std::vector<Section>> ParseSections(const std::string& content) {
  size_t pos = 0;
  // Header line.
  const size_t header_end = content.find('\n');
  if (header_end == std::string::npos) {
    return Status::DataError("durable container: missing header line");
  }
  {
    std::istringstream header(content.substr(0, header_end));
    std::string magic;
    int version = -1;
    long long count = -1;
    if (!(header >> magic >> version >> count) || magic != kContainerMagic) {
      return Status::DataError("durable container: bad magic");
    }
    if (version != kContainerVersion) {
      return Status::DataError(
          StrFormat("durable container: unsupported version %d", version));
    }
    if (count < 0 || count > kMaxSections) {
      return Status::DataError(
          StrFormat("durable container: implausible section count %lld",
                    count));
    }
    pos = header_end + 1;
    std::vector<Section> sections;
    sections.reserve(static_cast<size_t>(count));
    for (long long i = 0; i < count; ++i) {
      const size_t line_end = content.find('\n', pos);
      if (line_end == std::string::npos) {
        return Status::DataError(StrFormat(
            "durable container: truncated before section %lld header", i));
      }
      std::istringstream line(content.substr(pos, line_end - pos));
      std::string tag, name, crc_hex;
      long long length = -1;
      if (!(line >> tag >> name >> length >> crc_hex) || tag != "section") {
        return Status::DataError(
            StrFormat("durable container: malformed section %lld header", i));
      }
      if (length < 0 ||
          static_cast<unsigned long long>(length) >
              content.size() - (line_end + 1)) {
        return Status::DataError(
            "durable container: section '" + name +
            "' length exceeds the file (torn write or truncation)");
      }
      uint32_t expected = 0;
      {
        std::istringstream crc_in(crc_hex);
        crc_in >> std::hex >> expected;
        if (crc_in.fail() || crc_hex.size() != 8) {
          return Status::DataError("durable container: section '" + name +
                                   "' has a malformed checksum");
        }
      }
      pos = line_end + 1;
      std::string payload = content.substr(pos, static_cast<size_t>(length));
      pos += static_cast<size_t>(length);
      if (pos >= content.size() || content[pos] != '\n') {
        return Status::DataError("durable container: section '" + name +
                                 "' payload is not newline-terminated "
                                 "(torn write or truncation)");
      }
      ++pos;
      const uint32_t actual = Crc32(payload);
      if (actual != expected) {
        return Status::DataError(StrFormat(
            "durable container: section '%s' checksum mismatch "
            "(expected %08x, got %08x) — the file is corrupt",
            name.c_str(), expected, actual));
      }
      sections.push_back(Section{std::move(name), std::move(payload)});
    }
    if (pos != content.size()) {
      return Status::DataError(
          "durable container: trailing bytes after the last section");
    }
    return sections;
  }
}

}  // namespace smfl
