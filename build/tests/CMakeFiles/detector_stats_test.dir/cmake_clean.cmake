file(REMOVE_RECURSE
  "CMakeFiles/detector_stats_test.dir/detector_stats_test.cc.o"
  "CMakeFiles/detector_stats_test.dir/detector_stats_test.cc.o.d"
  "detector_stats_test"
  "detector_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
