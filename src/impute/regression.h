// Regression-based imputers: LOESS, IIM, and IterativeImputer
// (paper baselines §IV-A3 (2), (3), (9)).

#ifndef SMFL_IMPUTE_REGRESSION_H_
#define SMFL_IMPUTE_REGRESSION_H_

#include "src/impute/imputer.h"

namespace smfl::impute {

struct LoessOptions {
  // Neighborhood size for the local fit.
  Index k = 20;
  // Ridge term keeping the weighted normal equations well-posed.
  double ridge = 1e-6;
};

// LOESS [13]: per missing cell, fit a locally weighted linear regression of
// the target column on the tuple's observed columns over the k nearest
// complete donors, with tricube distance weights.
class LoessImputer : public Imputer {
 public:
  explicit LoessImputer(LoessOptions options = {}) : options_(options) {}
  std::string name() const override { return "LOESS"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  LoessOptions options_;
};

struct IimOptions {
  // Neighbors learned from, per tuple ("learning individually").
  Index k = 10;
  double ridge = 1e-6;
};

// IIM [47]: learns an individual (unweighted) regression model per
// incomplete tuple from its k nearest complete neighbors. Deliberately
// heavier than LOESS per tuple — the paper reports it OOT on Vehicle.
class IimImputer : public Imputer {
 public:
  explicit IimImputer(IimOptions options = {}) : options_(options) {}
  std::string name() const override { return "IIM"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  IimOptions options_;
};

struct IterativeOptions {
  // MICE-style rounds over all incomplete columns.
  int rounds = 10;
  double ridge = 1e-3;
  double tolerance = 1e-4;
};

// scikit-learn-style IterativeImputer [4]: round-robin ridge regression of
// each incomplete column on all other columns, repeated until stable.
class IterativeImputer : public Imputer {
 public:
  explicit IterativeImputer(IterativeOptions options = {})
      : options_(options) {}
  std::string name() const override { return "Iterative"; }
  Result<Matrix> Impute(const Matrix& x, const Mask& observed,
                        Index spatial_cols) const override;

 private:
  IterativeOptions options_;
};

}  // namespace smfl::impute

#endif  // SMFL_IMPUTE_REGRESSION_H_
