// Ablation: oracle dirty masks vs statistical error detection
// (DESIGN.md §4.5 / src/repair/detector.h).
//
// The paper's repair experiments assume a detector (Raha) supplies the
// dirty-cell set Ψ. This bench runs the full detect->repair pipeline with
// our statistical detector and compares against the oracle mask, reporting
// the detector's precision/recall and the downstream repair RMS of SMFL
// under both masks. Whole-table RMS (not just Ψ) is reported for the
// detected case, since a detector can also flag clean cells.

#include "bench/bench_util.h"
#include "src/data/inject.h"
#include "src/exp/metrics.h"
#include "src/repair/detector.h"
#include "src/repair/mf_repairers.h"

using namespace smfl;
using la::Index;
using la::Matrix;

int main() {
  exp::ReportTable table({"Dataset", "DetP", "DetR", "DetF1",
                          "RMS(oracle)", "RMS(detected)", "RMS(dirty)"});
  for (const std::string& dataset_name : bench::PaperDatasets()) {
    auto prepared = bench::ValueOrDie(
        exp::PrepareDataset(dataset_name, exp::DefaultRowsFor(dataset_name)));
    std::vector<std::string> names;
    for (Index j = 0; j < prepared.truth.cols(); ++j) {
      names.push_back("c" + std::to_string(j));
    }
    auto tbl = bench::ValueOrDie(
        data::Table::Create(names, prepared.truth, 2));
    data::ErrorInjectionOptions inject;
    inject.error_rate = 0.1;
    inject.seed = 4242;
    auto injection = bench::ValueOrDie(data::InjectErrors(tbl, inject));

    auto detection = bench::ValueOrDie(
        repair::DetectErrors(injection.dirty, prepared.spatial_cols));
    auto quality =
        repair::EvaluateDetection(detection.flagged, injection.dirty_cells);

    repair::SmflRepairer smfl;
    auto oracle_repair = bench::ValueOrDie(
        smfl.Repair(injection.dirty, injection.dirty_cells, 2));
    auto detected_repair = bench::ValueOrDie(
        smfl.Repair(injection.dirty, detection.flagged, 2));

    // Whole-table RMS so the three columns are comparable.
    const data::Mask everything =
        data::Mask::AllSet(prepared.truth.rows(), prepared.truth.cols());
    table.BeginRow(dataset_name);
    table.AddNumber(quality.precision, 2);
    table.AddNumber(quality.recall, 2);
    table.AddNumber(quality.f1, 2);
    table.AddNumber(bench::ValueOrDie(
        exp::RmsOverMask(oracle_repair, prepared.truth, everything)));
    table.AddNumber(bench::ValueOrDie(
        exp::RmsOverMask(detected_repair, prepared.truth, everything)));
    table.AddNumber(bench::ValueOrDie(
        exp::RmsOverMask(injection.dirty, prepared.truth, everything)));
  }
  table.Print(
      "Ablation: end-to-end repair with a statistical detector vs oracle");
  std::printf("%s", table.ToCsv().c_str());
  return 0;
}
