#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/common/durable_io.h"
#include "src/core/model_io.h"
#include "src/core/model_selection.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/exp/metrics.h"
#include "src/impute/eracer.h"
#include "src/impute/registry.h"
#include "src/la/ops.h"

namespace smfl::core {
namespace {

using data::Mask;

struct Scenario {
  Matrix truth;
  Mask observed;
  Matrix input;
};

Scenario MakeScenario(Index rows, uint64_t seed) {
  auto dataset = data::MakeLakeLike(rows, seed);
  SMFL_CHECK(dataset.ok());
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Scenario s;
  s.truth = normalizer->Transform(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = seed + 1;
  auto injection = data::InjectMissing(dataset->table, inject);
  SMFL_CHECK(injection.ok());
  s.observed = injection->observed;
  s.input = data::ApplyMask(s.truth, s.observed);
  return s;
}

SmflModel FitSmall(const Scenario& s) {
  SmflOptions options;
  options.rank = 4;
  options.max_iterations = 15;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  SMFL_CHECK(model.ok());
  return std::move(model).value();
}

// --------------------------------------------------------------- model io

TEST(ModelIoTest, SerializeRoundTripIsExact) {
  Scenario s = MakeScenario(60, 3);
  SmflModel model = FitSmall(s);
  auto restored = DeserializeModel(SerializeModel(model));
  ASSERT_TRUE(restored.ok());
  // Bit-exact: the format writes round-trip precision.
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(restored->u, model.u), 0.0);
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(restored->v, model.v), 0.0);
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(restored->landmarks, model.landmarks), 0.0);
  EXPECT_EQ(restored->spatial_cols, model.spatial_cols);
  EXPECT_EQ(restored->report.iterations, model.report.iterations);
  EXPECT_EQ(restored->report.converged, model.report.converged);
  ASSERT_EQ(restored->report.objective_trace.size(),
            model.report.objective_trace.size());
  for (size_t i = 0; i < model.report.objective_trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored->report.objective_trace[i],
                     model.report.objective_trace[i]);
  }
}

TEST(ModelIoTest, FileRoundTrip) {
  Scenario s = MakeScenario(50, 5);
  SmflModel model = FitSmall(s);
  const std::string path =
      (std::filesystem::temp_directory_path() / "smfl_model_test.txt")
          .string();
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto restored = LoadModel(path);
  std::remove(path.c_str());
  ASSERT_TRUE(restored.ok());
  // The reconstruction — what a serving process uses — must match exactly.
  EXPECT_DOUBLE_EQ(
      la::MaxAbsDiff(restored->Reconstruct(), model.Reconstruct()), 0.0);
}

TEST(ModelIoTest, SmfModelWithoutLandmarks) {
  Scenario s = MakeScenario(40, 7);
  SmflOptions options;
  options.rank = 3;
  options.use_landmarks = false;
  options.max_iterations = 10;
  auto model = FitSmfl(s.input, s.observed, 2, options);
  ASSERT_TRUE(model.ok());
  auto restored = DeserializeModel(SerializeModel(*model));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->landmarks.size(), 0);
}

TEST(ModelIoTest, RejectsCorruptInput) {
  EXPECT_FALSE(DeserializeModel("").ok());
  EXPECT_FALSE(DeserializeModel("not-a-model 1").ok());
  EXPECT_FALSE(DeserializeModel("smfl-model 999\n").ok());  // bad version
  Scenario s = MakeScenario(30, 9);
  std::string good = SerializeModel(FitSmall(s));
  // Truncation anywhere must be caught by the section framing.
  EXPECT_FALSE(DeserializeModel(good.substr(0, good.size() / 2)).ok());
  // A single flipped byte anywhere in the container is a CRC (or framing)
  // mismatch -> clean DataError, never a silently wrong model.
  std::string flipped = good;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x01);
  auto bitrot = DeserializeModel(flipped);
  ASSERT_FALSE(bitrot.ok());
  EXPECT_EQ(bitrot.status().code(), StatusCode::kDataError);
  // Tampered rank consistency on the bare text body (the legacy v1/v2
  // surface, which carries no checksums).
  auto sections = ParseSections(good);
  ASSERT_TRUE(sections.ok());
  std::string tampered;
  for (const Section& sec : *sections) tampered += sec.payload;
  const size_t pos = tampered.find("U ");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 3, "U 9");
  EXPECT_FALSE(DeserializeModel(tampered).ok());
}

TEST(ModelIoTest, V3ContainerShapeAndLegacyBodyEquivalence) {
  Scenario s = MakeScenario(40, 13);
  SmflModel model = FitSmall(s);
  const std::string serialized = SerializeModel(model);
  ASSERT_TRUE(LooksLikeDurableContainer(serialized));
  auto sections = ParseSections(serialized);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections->size(), 6u);
  const char* expected[] = {"meta", "normalizer", "U", "V", "C", "trace"};
  std::string body;
  for (size_t i = 0; i < sections->size(); ++i) {
    EXPECT_EQ((*sections)[i].name, expected[i]);
    body += (*sections)[i].payload;
  }
  // The concatenated payloads are themselves a loadable text body, and
  // parse to the same model as the container.
  EXPECT_EQ(body.rfind("smfl-model 3", 0), 0u);
  auto from_body = DeserializeModel(body);
  ASSERT_TRUE(from_body.ok());
  auto from_container = DeserializeModel(serialized);
  ASSERT_TRUE(from_container.ok());
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(from_body->u, from_container->u), 0.0);
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(from_body->v, from_container->v), 0.0);
}

TEST(ModelIoTest, LoadMissingFileFails) {
  auto result = LoadModel("/nonexistent/model.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

// --------------------------------------------------------- model selection

TEST(ModelSelectionTest, PicksAReasonableCandidate) {
  Scenario s = MakeScenario(300, 11);
  SelectionGrid grid;
  grid.lambdas = {0.01, 0.5};
  grid.ranks = {2, 10};
  grid.base.max_iterations = 60;
  auto selection = SelectSmflOptions(s.input, s.observed, 2, grid);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->candidates.size(), 4u);
  // The winner's validation RMS is the minimum of the candidates.
  for (const auto& c : selection->candidates) {
    EXPECT_GE(c.validation_rms, selection->best_validation_rms);
  }
  // The selected options must fit successfully on the full data.
  auto final_model = FitSmfl(s.input, s.observed, 2, selection->best);
  EXPECT_TRUE(final_model.ok());
}

TEST(ModelSelectionTest, SelectionImprovesOverWorstCandidate) {
  Scenario s = MakeScenario(400, 13);
  SelectionGrid grid;
  grid.lambdas = {0.001, 0.5};
  grid.ranks = {2, 10};
  grid.base.max_iterations = 80;
  auto selection = SelectSmflOptions(s.input, s.observed, 2, grid);
  ASSERT_TRUE(selection.ok());
  // Test-set check: the selected config beats the worst grid config when
  // both are refit on the full observed data and scored on ground truth.
  auto score = [&](const SmflOptions& options) {
    auto imputed = SmflImpute(s.input, s.observed, 2, options);
    SMFL_CHECK(imputed.ok());
    return *exp::RmsOverMask(*imputed, s.truth, s.observed.Complement());
  };
  double worst_rms = -1.0;
  SmflOptions worst = grid.base;
  for (const auto& c : selection->candidates) {
    if (c.validation_rms > worst_rms) {
      worst_rms = c.validation_rms;
      worst.lambda = c.lambda;
      worst.rank = c.rank;
      worst.num_neighbors = c.num_neighbors;
    }
  }
  EXPECT_LE(score(selection->best), score(worst) * 1.02);
}

TEST(ModelSelectionTest, Validation) {
  Scenario s = MakeScenario(50, 17);
  SelectionGrid grid;
  grid.lambdas = {};
  EXPECT_FALSE(SelectSmflOptions(s.input, s.observed, 2, grid).ok());
  grid = SelectionGrid{};
  grid.validation_fraction = 0.0;
  EXPECT_FALSE(SelectSmflOptions(s.input, s.observed, 2, grid).ok());
  grid.validation_fraction = 1.5;
  EXPECT_FALSE(SelectSmflOptions(s.input, s.observed, 2, grid).ok());
}

TEST(ModelSelectionTest, InfeasibleCandidatesSkipped) {
  Scenario s = MakeScenario(30, 19);
  SelectionGrid grid;
  grid.ranks = {5, 500};  // 500 > N: infeasible, must be skipped not fatal
  grid.lambdas = {0.1};
  grid.base.max_iterations = 20;
  auto selection = SelectSmflOptions(s.input, s.observed, 2, grid);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->candidates.size(), 1u);
  EXPECT_EQ(selection->best.rank, 5);
}

// --------------------------------------------------------------- ERACER

TEST(EracerTest, RegisteredAndContractHolds) {
  auto imputer = impute::MakeImputer("ERACER");
  ASSERT_TRUE(imputer.ok());
  EXPECT_EQ((*imputer)->name(), "ERACER");
  Scenario s = MakeScenario(150, 21);
  auto imputed = (*imputer)->Impute(s.input, s.observed, 2);
  ASSERT_TRUE(imputed.ok());
  EXPECT_FALSE(imputed->HasNonFinite());
  for (Index i = 0; i < s.input.rows(); ++i) {
    for (Index j = 0; j < s.input.cols(); ++j) {
      if (s.observed.Contains(i, j)) {
        EXPECT_DOUBLE_EQ((*imputed)(i, j), s.input(i, j));
      }
    }
  }
}

TEST(EracerTest, BeatsColumnMeans) {
  Scenario s = MakeScenario(400, 23);
  impute::EracerImputer eracer;
  auto imputed = eracer.Impute(s.input, s.observed, 2);
  ASSERT_TRUE(imputed.ok());
  auto mean_imputer = impute::MakeImputer("Mean");
  auto mean_imputed = (*mean_imputer)->Impute(s.input, s.observed, 2);
  ASSERT_TRUE(mean_imputed.ok());
  const Mask psi = s.observed.Complement();
  EXPECT_LT(*exp::RmsOverMask(*imputed, s.truth, psi),
            *exp::RmsOverMask(*mean_imputed, s.truth, psi));
}

TEST(EracerTest, Validation) {
  impute::EracerImputer eracer;
  EXPECT_FALSE(eracer.Impute(Matrix(), Mask(), 2).ok());
  EXPECT_FALSE(eracer.Impute(Matrix(3, 3, 0.5), Mask(1, 1), 2).ok());
}

}  // namespace
}  // namespace smfl::core
