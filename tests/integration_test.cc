// End-to-end pipelines across modules: CSV -> normalize -> inject -> impute
// -> denormalize; repair round trips; multi-dataset sweeps; the apps driven
// from imputed matrices — the flows a downstream user of the library runs.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/apps/clustering_app.h"
#include "src/apps/route.h"
#include "src/core/fold_in.h"
#include "src/core/model_io.h"
#include "src/core/smfl.h"
#include "src/data/csv.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/data/quantile_normalize.h"
#include "src/exp/experiment.h"
#include "src/exp/metrics.h"
#include "src/impute/registry.h"
#include "src/la/ops.h"
#include "src/repair/repairer.h"

namespace smfl {
namespace {

using data::Mask;
using la::Index;
using la::Matrix;

TEST(IntegrationTest, CsvToImputationPipeline) {
  // 1. Generate a dataset and persist it as CSV with holes.
  auto dataset = data::MakeLakeLike(200, 3);
  ASSERT_TRUE(dataset.ok());
  const auto path =
      (std::filesystem::temp_directory_path() / "smfl_integration.csv")
          .string();
  std::vector<std::string> names;
  for (Index j = 0; j < dataset->table.NumCols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table = data::Table::Create(names, dataset->table.values(), 2);
  ASSERT_TRUE(table.ok());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.15;
  inject.seed = 5;
  auto injection = data::InjectMissing(*table, inject);
  ASSERT_TRUE(injection.ok());
  ASSERT_TRUE(data::WriteCsv(path, *table, injection->observed).ok());

  // 2. Read it back: the mask must match what we wrote.
  data::CsvReadOptions read_options;
  read_options.spatial_cols = 2;
  auto csv = data::ReadCsv(path, read_options);
  std::remove(path.c_str());
  ASSERT_TRUE(csv.ok());
  ASSERT_TRUE(csv->observed == injection->observed);

  // 3. Normalize from observed entries only, impute, denormalize.
  auto normalizer =
      data::MinMaxNormalizer::Fit(csv->table.values(), csv->observed);
  ASSERT_TRUE(normalizer.ok());
  Matrix normalized = data::ApplyMask(
      normalizer->Transform(csv->table.values()), csv->observed);
  core::SmflOptions options;
  options.rank = 5;
  auto imputed = core::SmflImpute(normalized, csv->observed, 2, options);
  ASSERT_TRUE(imputed.ok());
  Matrix restored = normalizer->InverseTransform(*imputed);

  // 4. Against the generator's ground truth, imputation must beat a
  //    mean-fill of the raw values.
  Matrix truth = dataset->table.values();
  Mask psi = injection->observed.Complement();
  auto rms_smfl = exp::RmsOverMask(restored, truth, psi);
  Matrix mean_filled =
      data::FillWithColumnMeans(data::ApplyMask(truth, injection->observed),
                                injection->observed);
  auto rms_mean = exp::RmsOverMask(mean_filled, truth, psi);
  ASSERT_TRUE(rms_smfl.ok());
  ASSERT_TRUE(rms_mean.ok());
  EXPECT_LT(*rms_smfl, *rms_mean);
}

TEST(IntegrationTest, AllImputersOnAllDatasetsSmall) {
  // A miniature Table IV: every registered imputer on every dataset,
  // tiny sizes — validates the whole harness wiring.
  for (const char* name : {"economic", "farm", "lake", "vehicle"}) {
    auto prepared = exp::PrepareDataset(name, 120, 17);
    ASSERT_TRUE(prepared.ok()) << name;
    exp::TrialOptions trial;
    trial.trials = 1;
    trial.missing_rate = 0.1;
    for (const char* method : {"Mean", "kNN", "DLM", "SoftImpute",
                               "Iterative", "NMF", "SMF", "SMFL"}) {
      auto imputer = impute::MakeImputer(method);
      ASSERT_TRUE(imputer.ok());
      auto result = exp::RunImputationTrials(*prepared, **imputer, trial);
      ASSERT_TRUE(result.ok()) << name << "/" << method << ": "
                               << result.status().ToString();
      EXPECT_LT(result->mean_rms, 0.6) << name << "/" << method;
    }
  }
}

TEST(IntegrationTest, RepairThenClusterPipeline) {
  auto prepared = exp::PrepareDataset("lake", 250, 19);
  ASSERT_TRUE(prepared.ok());
  std::vector<std::string> names;
  for (Index j = 0; j < prepared->truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table = data::Table::Create(names, prepared->truth, 2);
  ASSERT_TRUE(table.ok());
  data::ErrorInjectionOptions inject;
  inject.error_rate = 0.1;
  inject.seed = 23;
  auto injection = data::InjectErrors(*table, inject);
  ASSERT_TRUE(injection.ok());

  auto repairer = repair::MakeRepairer("SMFL");
  ASSERT_TRUE(repairer.ok());
  auto repaired =
      (*repairer)->Repair(injection->dirty, injection->dirty_cells, 2);
  ASSERT_TRUE(repaired.ok());

  // Cluster the repaired matrix; accuracy must beat chance (5 clusters).
  apps::ClusterAppOptions cluster_options;
  cluster_options.num_clusters = 5;
  cluster_options.rank = 5;
  auto acc = apps::ClusteringAccuracyOnIncomplete(
      apps::ClusterMethod::kSmfl, *repaired,
      Mask::AllSet(repaired->rows(), repaired->cols()), 2,
      prepared->cluster_labels, cluster_options);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.35);
}

TEST(IntegrationTest, RouteAppWithRealImputer) {
  auto prepared = exp::PrepareDataset("vehicle", 300, 29);
  ASSERT_TRUE(prepared.ok());
  std::vector<std::string> names;
  for (Index j = 0; j < prepared->truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table = data::Table::Create(names, prepared->truth, 2);
  ASSERT_TRUE(table.ok());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.2;
  inject.seed = 31;
  auto injection = data::InjectMissing(*table, inject);
  ASSERT_TRUE(injection.ok());
  Matrix input = data::ApplyMask(prepared->truth, injection->observed);

  core::SmflOptions options;
  options.rank = 5;
  auto imputed = core::SmflImpute(input, injection->observed, 2, options);
  ASSERT_TRUE(imputed.ok());

  // Fuel rates in original units via the inverse transform.
  const Index fuel_col = prepared->truth.cols() - 1;
  Matrix si = prepared->raw.Block(0, 0, prepared->raw.rows(), 2);
  std::vector<double> fuel_truth(static_cast<size_t>(prepared->raw.rows()));
  std::vector<double> fuel_imputed(fuel_truth.size());
  for (Index i = 0; i < prepared->raw.rows(); ++i) {
    fuel_truth[static_cast<size_t>(i)] = prepared->raw(i, fuel_col);
    fuel_imputed[static_cast<size_t>(i)] =
        prepared->normalizer.InverseTransformCell((*imputed)(i, fuel_col),
                                                  fuel_col);
  }
  std::vector<apps::Route> routes;
  for (uint64_t s = 0; s < 4; ++s) {
    auto route = apps::SampleRoute(si, 15, 400 + s);
    ASSERT_TRUE(route.ok());
    routes.push_back(*route);
  }
  auto err = apps::MeanRouteFuelError(si, fuel_truth, fuel_imputed, routes);
  ASSERT_TRUE(err.ok());
  EXPECT_GE(*err, 0.0);
  // A constant-zero "imputation" must be much worse.
  std::vector<double> zeros(fuel_truth.size(), 0.0);
  auto err_zero = apps::MeanRouteFuelError(si, fuel_truth, zeros, routes);
  ASSERT_TRUE(err_zero.ok());
  EXPECT_LT(*err, *err_zero);
}

TEST(IntegrationTest, SaveLoadFoldInPipeline) {
  // Fit -> serialize -> deserialize -> fold fresh rows: the full serving
  // path across core modules.
  auto prepared = exp::PrepareDataset("vehicle", 500, 41);
  ASSERT_TRUE(prepared.ok());
  const Index train_rows = 400;
  Matrix train = prepared->truth.Block(0, 0, train_rows,
                                       prepared->truth.cols());
  core::SmflOptions options;
  options.rank = 8;
  options.max_iterations = 120;
  auto model = core::FitSmfl(
      train, Mask::AllSet(train_rows, train.cols()), 2, options);
  ASSERT_TRUE(model.ok());
  auto reloaded = core::DeserializeModel(core::SerializeModel(*model));
  ASSERT_TRUE(reloaded.ok());

  const Index fresh = prepared->truth.rows() - train_rows;
  Matrix x(fresh, prepared->truth.cols());
  Mask observed(fresh, prepared->truth.cols());
  Mask psi(fresh, prepared->truth.cols());
  for (Index i = 0; i < fresh; ++i) {
    for (Index j = 0; j < prepared->truth.cols(); ++j) {
      x(i, j) = prepared->truth(train_rows + i, j);
      const bool hide = j == 4;
      observed.Set(i, j, !hide);
      if (hide) {
        psi.Set(i, j);
        x(i, j) = 0.0;
      }
    }
  }
  auto from_original = core::FoldIn(*model, x, observed);
  auto from_reloaded = core::FoldIn(*reloaded, x, observed);
  ASSERT_TRUE(from_original.ok());
  ASSERT_TRUE(from_reloaded.ok());
  // Serialization must not change serving results at all.
  EXPECT_DOUBLE_EQ(la::MaxAbsDiff(*from_original, *from_reloaded), 0.0);
  // And serving must beat the trivial 0.5 constant on the hidden column.
  Matrix truth_block =
      prepared->truth.Block(train_rows, 0, fresh, prepared->truth.cols());
  Matrix constant = x;
  for (const auto& entry : psi.Entries()) {
    constant(entry.row, entry.col) = 0.5;
  }
  auto rms_fold = exp::RmsOverMask(*from_reloaded, truth_block, psi);
  auto rms_const = exp::RmsOverMask(constant, truth_block, psi);
  ASSERT_TRUE(rms_fold.ok());
  ASSERT_TRUE(rms_const.ok());
  EXPECT_LT(*rms_fold, *rms_const);
}

TEST(IntegrationTest, QuantileNormalizedPipeline) {
  // The SMFL pipeline on quantile-normalized data with planted outliers:
  // the robust band keeps imputation usable where min-max would collapse.
  auto dataset = data::MakeLakeLike(300, 43);
  ASSERT_TRUE(dataset.ok());
  Matrix raw = dataset->table.values();
  // Plant gross outliers in one attribute column.
  raw(5, 3) = 1e7;
  raw(17, 3) = -1e7;
  auto table = data::Table::Create(dataset->table.column_names(), raw, 2);
  ASSERT_TRUE(table.ok());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.preserve_complete_rows = 20;
  inject.seed = 45;
  auto injection = data::InjectMissing(*table, inject);
  ASSERT_TRUE(injection.ok());

  auto quantile = data::QuantileNormalizer::Fit(raw, injection->observed);
  ASSERT_TRUE(quantile.ok());
  Matrix x = data::ApplyMask(quantile->Transform(raw), injection->observed);
  core::SmflOptions options;
  options.max_iterations = 80;
  auto completed = core::SmflImpute(x, injection->observed, 2, options);
  ASSERT_TRUE(completed.ok());
  EXPECT_FALSE(completed->HasNonFinite());

  // Against the clean generator truth (outlier cells excluded), the
  // quantile pipeline must beat the min-max pipeline distorted by the
  // planted outliers.
  Matrix clean_truth = dataset->table.values();
  Mask eval = injection->observed.Complement();
  eval.Set(5, 3, false);
  eval.Set(17, 3, false);
  Matrix restored_q = quantile->InverseTransform(*completed);
  auto rms_quantile = exp::RmsOverMask(restored_q, clean_truth, eval);
  ASSERT_TRUE(rms_quantile.ok());

  auto minmax = data::MinMaxNormalizer::Fit(raw, injection->observed);
  ASSERT_TRUE(minmax.ok());
  Matrix x2 = data::ApplyMask(minmax->Transform(raw), injection->observed);
  auto completed2 = core::SmflImpute(x2, injection->observed, 2, options);
  ASSERT_TRUE(completed2.ok());
  Matrix restored_m = minmax->InverseTransform(*completed2);
  auto rms_minmax = exp::RmsOverMask(restored_m, clean_truth, eval);
  ASSERT_TRUE(rms_minmax.ok());
  EXPECT_LT(*rms_quantile, *rms_minmax);
}

TEST(IntegrationTest, Table5SettingSmflStillWorks) {
  // Missing values in the spatial columns too (Table V): the pipeline must
  // mean-fill SI for graph construction and still produce sane output.
  auto prepared = exp::PrepareDataset("economic", 200, 37);
  ASSERT_TRUE(prepared.ok());
  exp::TrialOptions trial;
  trial.trials = 1;
  trial.missing_rate = 0.1;
  trial.missing_in_spatial = true;
  auto imputer = impute::MakeImputer("SMFL");
  ASSERT_TRUE(imputer.ok());
  auto result = exp::RunImputationTrials(*prepared, **imputer, trial);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->mean_rms, 0.5);
}

}  // namespace
}  // namespace smfl
