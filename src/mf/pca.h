// Principal component analysis via the library's SVD — the "PCA" clustering
// baseline of Fig 4(b).

#ifndef SMFL_MF_PCA_H_
#define SMFL_MF_PCA_H_

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::mf {

using la::Index;
using la::Matrix;
using la::Vector;

struct PcaModel {
  // Column means used for centering (length M).
  Vector mean;
  // M x k principal axes (right singular vectors).
  Matrix components;
  // Top-k singular values.
  Vector singular_values;

  // Projects rows of x (N x M) onto the k components -> N x k scores.
  Matrix Transform(const Matrix& x) const;
};

// Fits PCA keeping `k` components (clamped to min(N, M)).
Result<PcaModel> FitPca(const Matrix& x, Index k);

}  // namespace smfl::mf

#endif  // SMFL_MF_PCA_H_
