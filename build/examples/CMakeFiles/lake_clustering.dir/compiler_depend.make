# Empty compiler generated dependencies file for lake_clustering.
# This may be replaced when dependencies are built.
