// Ablation: cluster-consistent initialization of SMFL (DESIGN.md §4.1).
//
// With the first L columns of V frozen at the K-means centers, a randomly
// initialized U starts far from satisfying U·C ≈ SI and the multiplicative
// updates settle in poor local optima. This bench quantifies the effect by
// comparing full SMFL against SMFL whose landmark anchoring is the only
// spatial ingredient (lambda = 0), against SMF, and against plain NMF —
// isolating each ingredient's contribution:
//   NMF            : no spatial information at all
//   SMF            : + Laplacian smoothness
//   SMFL(lambda=0) : + landmarks & cluster-consistent init only
//   SMFL           : + both (the shipped method)

#include "bench/bench_util.h"
#include "src/impute/mf_imputers.h"

using namespace smfl;

int main(int argc, char** argv) {
  auto flags = bench::ValueOrDie(Flags::Parse(argc, argv));
  const int trials =
      static_cast<int>(bench::ValueOrDie(flags.GetInt("trials", 3)));

  exp::ReportTable table({"Dataset", "NMF", "SMF", "SMFL(lam=0)", "SMFL"});
  for (const std::string& dataset_name : bench::PaperDatasets()) {
    auto prepared = bench::ValueOrDie(
        exp::PrepareDataset(dataset_name, exp::DefaultRowsFor(dataset_name)));
    exp::TrialOptions trial;
    trial.trials = trials;
    table.BeginRow(dataset_name);

    const impute::NmfImputer nmf;
    table.AddNumber(
        bench::ValueOrDie(exp::RunImputationTrials(prepared, nmf, trial))
            .mean_rms);
    const impute::SmfImputer smf;
    table.AddNumber(
        bench::ValueOrDie(exp::RunImputationTrials(prepared, smf, trial))
            .mean_rms);
    core::SmflOptions landmarks_only;
    landmarks_only.lambda = 0.0;
    const impute::SmflImputer smfl_no_reg(landmarks_only);
    table.AddNumber(
        bench::ValueOrDie(
            exp::RunImputationTrials(prepared, smfl_no_reg, trial))
            .mean_rms);
    const impute::SmflImputer smfl;
    table.AddNumber(
        bench::ValueOrDie(exp::RunImputationTrials(prepared, smfl, trial))
            .mean_rms);
  }
  table.Print("Ablation: ingredient contributions (imputation RMS, 10%)");
  std::printf("%s", table.ToCsv().c_str());
  return 0;
}
