file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_feature_locations.dir/bench_fig5_feature_locations.cpp.o"
  "CMakeFiles/bench_fig5_feature_locations.dir/bench_fig5_feature_locations.cpp.o.d"
  "bench_fig5_feature_locations"
  "bench_fig5_feature_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_feature_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
