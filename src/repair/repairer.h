// Common interface for data-repair methods (paper §IV-B2, Table VI).
//
// Contract: `dirty` is the (normalized) data matrix with injected cell
// errors; `dirty_cells` is the output of an error detector (e.g. Raha) —
// true marks a cell known to be wrong. Repairers must replace exactly the
// dirty cells with predictions and keep every clean cell untouched.

#ifndef SMFL_REPAIR_REPAIRER_H_
#define SMFL_REPAIR_REPAIRER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/mask.h"

namespace smfl::repair {

using data::Mask;
using la::Index;
using la::Matrix;

class Repairer {
 public:
  virtual ~Repairer() = default;

  virtual std::string name() const = 0;

  virtual Result<Matrix> Repair(const Matrix& dirty, const Mask& dirty_cells,
                                Index spatial_cols) const = 0;
};

// Creates the repairer registered under `name`. Known names: Baran,
// HoloClean, NMF, SMF, SMFL, and Fallback (the graceful degradation chain
// SMFL -> SMF -> NMF -> HoloClean).
Result<std::unique_ptr<Repairer>> MakeRepairer(const std::string& name);

// All registered names, in the paper's Table VI column order.
std::vector<std::string> RegisteredRepairers();

}  // namespace smfl::repair

#endif  // SMFL_REPAIR_REPAIRER_H_
