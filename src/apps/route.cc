#include "src/apps/route.h"

#include <cmath>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/spatial/metrics.h"

namespace smfl::apps {

Result<Route> SampleRoute(const Matrix& si, Index length, uint64_t seed) {
  const Index n = si.rows();
  if (n == 0 || si.cols() < 2) {
    return Status::InvalidArgument("SampleRoute: need an N x 2 SI block");
  }
  if (length < 2 || length > n) {
    return Status::InvalidArgument(
        "SampleRoute: route length must be in [2, n]");
  }
  Rng rng(seed);
  Route route;
  std::vector<bool> visited(static_cast<size_t>(n), false);
  Index current = static_cast<Index>(rng.UniformInt(static_cast<uint64_t>(n)));
  route.waypoints.push_back(current);
  visited[static_cast<size_t>(current)] = true;
  for (Index step = 1; step < length; ++step) {
    // Greedy nearest unvisited hop (linear scan keeps this dependency-free;
    // routes are short relative to N).
    double best = std::numeric_limits<double>::infinity();
    Index next = -1;
    for (Index i = 0; i < n; ++i) {
      if (visited[static_cast<size_t>(i)]) continue;
      const double d = spatial::HaversineKm(si(current, 0), si(current, 1),
                                            si(i, 0), si(i, 1));
      if (d < best) {
        best = d;
        next = i;
      }
    }
    if (next < 0) break;
    route.waypoints.push_back(next);
    visited[static_cast<size_t>(next)] = true;
    current = next;
  }
  return route;
}

Result<double> AccumulatedFuel(const Matrix& si,
                               const std::vector<double>& fuel_rate,
                               const Route& route) {
  if (static_cast<Index>(fuel_rate.size()) != si.rows()) {
    return Status::InvalidArgument("AccumulatedFuel: fuel vector size");
  }
  if (route.waypoints.size() < 2) {
    return Status::InvalidArgument("AccumulatedFuel: route too short");
  }
  double total = 0.0;
  for (size_t s = 1; s < route.waypoints.size(); ++s) {
    const Index a = route.waypoints[s - 1];
    const Index b = route.waypoints[s];
    if (a < 0 || a >= si.rows() || b < 0 || b >= si.rows()) {
      return Status::OutOfRange("AccumulatedFuel: waypoint out of range");
    }
    const double km =
        spatial::HaversineKm(si(a, 0), si(a, 1), si(b, 0), si(b, 1));
    const double rate = 0.5 * (fuel_rate[static_cast<size_t>(a)] +
                               fuel_rate[static_cast<size_t>(b)]);
    total += km * rate;
  }
  return total;
}

Result<RoutePlan> PlanRoute(const Matrix& si,
                            const std::vector<double>& fuel_rate,
                            const std::vector<Route>& candidates) {
  if (candidates.empty()) {
    return Status::InvalidArgument("PlanRoute: no candidate routes");
  }
  RoutePlan plan;
  plan.costs.reserve(candidates.size());
  for (size_t r = 0; r < candidates.size(); ++r) {
    ASSIGN_OR_RETURN(double cost,
                     AccumulatedFuel(si, fuel_rate, candidates[r]));
    plan.costs.push_back(cost);
    if (cost < plan.costs[plan.chosen]) plan.chosen = r;
  }
  return plan;
}

Result<double> MeanRouteFuelError(const Matrix& si,
                                  const std::vector<double>& fuel_truth,
                                  const std::vector<double>& fuel_imputed,
                                  const std::vector<Route>& routes) {
  if (routes.empty()) {
    return Status::InvalidArgument("MeanRouteFuelError: no routes");
  }
  double acc = 0.0;
  for (const Route& route : routes) {
    ASSIGN_OR_RETURN(double truth, AccumulatedFuel(si, fuel_truth, route));
    ASSIGN_OR_RETURN(double imputed, AccumulatedFuel(si, fuel_imputed, route));
    acc += std::fabs(truth - imputed);
  }
  return acc / static_cast<double>(routes.size());
}

}  // namespace smfl::apps
