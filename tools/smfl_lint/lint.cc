// Driver for smfl_lint: file walking, per-path rule scoping, suppression
// matching, and output formatting. See lint.h for the rule catalogue.

#include "tools/smfl_lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/smfl_lint/graph.h"
#include "tools/smfl_lint/parse.h"
#include "tools/smfl_lint/race.h"
#include "tools/smfl_lint/rules.h"

namespace smfl::lint {

namespace {

namespace fs = std::filesystem;

const std::set<std::string> kKnownRules = {
    "thread",   "nondet",   "unordered-iter", "discard-status",
    "float-eq", "raw-log",  "raw-file-write", "raw-simd",
    "const-ref", "mask-scan", "raw-socket", "header-hygiene",
    "layering", "include-cycle", "cc-include", "unused-include",
    "race", "all",
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Test files are exempt from several rules: they intentionally compare
// exact values, print, and stress threading primitives.
bool IsTestFile(const std::string& rel) {
  if (rel.find("tests/") != std::string::npos) return true;
  const size_t slash = rel.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? rel : rel.substr(slash + 1);
  return base.find("_test.") != std::string::npos;
}

bool RuleApplies(const std::string& rule, const std::string& rel,
                 const LintOptions& options) {
  const bool test = IsTestFile(rel);
  if (rule == "thread") {
    return !test && !StartsWith(rel, "src/common/parallel.");
  }
  if (rule == "nondet") {
    return !test && !StartsWith(rel, "bench/") &&
           !StartsWith(rel, "src/common/rng.") &&
           rel != "src/common/stopwatch.h" && rel != "src/common/telemetry.cc";
  }
  if (rule == "unordered-iter") {
    return StartsWith(rel, "src/la/") || StartsWith(rel, "src/core/") ||
           StartsWith(rel, "src/mf/");
  }
  if (rule == "discard-status") return true;
  if (rule == "float-eq") {
    if (test || StartsWith(rel, "bench/")) return false;
    for (const std::string& prefix : options.float_eq_allowlist) {
      if (StartsWith(rel, prefix)) return false;
    }
    return true;
  }
  if (rule == "raw-log") {
    return !test && rel != "src/common/logging.cc";
  }
  if (rule == "raw-file-write") {
    // The durability layer itself and the logger's sink are the only places
    // allowed to open files for writing directly.
    return !test && rel != "src/common/durable_io.cc" &&
           rel != "src/common/logging.cc";
  }
  if (rule == "raw-simd") {
    // The dispatch layer is the single home for raw intrinsics; everywhere
    // else (tests included) goes through the la::simd kernel table.
    return !StartsWith(rel, "src/la/simd.");
  }
  if (rule == "const-ref") {
    // Tests and benches copy small fixtures freely; production code must
    // not deep-copy Matrix/Table/Mask per call.
    return !test && !StartsWith(rel, "bench/");
  }
  if (rule == "mask-scan") {
    // Fit/serving loops must consume the once-per-fit data::ObservedIndex
    // instead of rescanning the Mask byte grid; mask.cc (src/data) is the
    // single production home for raw row scans.
    return !test &&
           (StartsWith(rel, "src/core/") || StartsWith(rel, "src/mf/"));
  }
  if (rule == "raw-socket") {
    // The obs HTTP server is the single production home for raw socket
    // syscalls; tests scrape it over loopback sockets freely.
    return !test && rel != "src/obs/http_server.cc";
  }
  if (rule == "header-hygiene") {
    return !test && rel.size() >= 2 &&
           rel.compare(rel.size() - 2, 2, ".h") == 0;
  }
  if (rule == "race") {
    // The parallel layer's own implementation legitimately touches shared
    // scheduler state; tests stress the contract deliberately.
    return !test && StartsWith(rel, "src/") &&
           !StartsWith(rel, "src/common/parallel.");
  }
  return true;
}

// Finds a suppression covering (rule, line): either on the same line, or a
// comment-only line directly above. Marks it used.
const Suppression* FindSuppression(const LexedFile& file,
                                   const std::string& rule, int line) {
  for (const Suppression& s : file.suppressions) {
    if (!s.rules.count(rule) && !s.rules.count("all")) continue;
    if (s.line == line || (s.own_line && s.line == line - 1)) {
      s.used = true;
      return &s;
    }
  }
  return nullptr;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop controls
        out += c;
    }
  }
  return out;
}

void AppendDiagJson(const Diagnostic& d, std::ostringstream* os) {
  *os << "    {\"rule\": \"" << JsonEscape(d.rule) << "\", \"file\": \""
      << JsonEscape(d.rel_path) << "\", \"line\": " << d.line
      << ", \"message\": \"" << JsonEscape(d.message) << "\"}";
}

bool IsCppSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

// Resolves a quoted include against the repo root, then the includer's
// directory. Returns "" for externals (not on disk).
std::string ResolveInclude(const std::string& repo_root,
                           const std::string& includer_rel,
                           const std::string& path) {
  std::error_code ec;
  const fs::path root(repo_root);
  if (fs::is_regular_file(root / path, ec)) {
    return fs::path(path).lexically_normal().generic_string();
  }
  const fs::path sibling =
      (fs::path(includer_rel).parent_path() / path).lexically_normal();
  if (fs::is_regular_file(root / sibling, ec)) {
    return sibling.generic_string();
  }
  return "";
}

// Loads a baseline file: one `rule|path|message` key per line, blank lines
// and '#' comments skipped. A missing file is an empty baseline.
std::set<std::string> LoadBaseline(const std::string& path) {
  std::set<std::string> keys;
  if (path.empty()) return keys;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

// Routes one raw finding through suppression matching into *result.
void EmitDiagnostic(const LexedFile& file, Diagnostic d, LintResult* result) {
  if (FindSuppression(file, d.rule, d.line) != nullptr) {
    result->suppressed.push_back(std::move(d));
  } else {
    result->violations.push_back(std::move(d));
  }
}

}  // namespace

void LintFile(const LexedFile& file, const StatusFnRegistry& registry,
              const LintOptions& options, LintResult* result) {
  std::vector<Diagnostic> raw;
  if (RuleApplies("thread", file.rel_path, options)) {
    CheckThread(file, &raw);
  }
  if (RuleApplies("nondet", file.rel_path, options)) {
    CheckNondet(file, &raw);
  }
  if (RuleApplies("unordered-iter", file.rel_path, options)) {
    CheckUnorderedIter(file, &raw);
  }
  if (RuleApplies("discard-status", file.rel_path, options)) {
    CheckDiscardStatus(file, registry, &raw);
  }
  if (RuleApplies("float-eq", file.rel_path, options)) {
    CheckFloatEq(file, &raw);
  }
  if (RuleApplies("raw-log", file.rel_path, options)) {
    CheckRawLog(file, &raw);
  }
  if (RuleApplies("raw-file-write", file.rel_path, options)) {
    CheckRawFileWrite(file, &raw);
  }
  if (RuleApplies("raw-simd", file.rel_path, options)) {
    CheckRawSimd(file, &raw);
  }
  if (RuleApplies("const-ref", file.rel_path, options)) {
    CheckConstRef(file, &raw);
  }
  if (RuleApplies("mask-scan", file.rel_path, options)) {
    CheckMaskScan(file, &raw);
  }
  if (RuleApplies("raw-socket", file.rel_path, options)) {
    CheckRawSocket(file, &raw);
  }
  if (RuleApplies("header-hygiene", file.rel_path, options)) {
    CheckHeaderHygiene(file, &raw);
  }

  for (Diagnostic& d : raw) {
    if (FindSuppression(file, d.rule, d.line) != nullptr) {
      result->suppressed.push_back(std::move(d));
    } else {
      result->violations.push_back(std::move(d));
    }
  }

  // Validate the suppressions themselves: they must name known rules and
  // carry a justification. A suppression is an exception to a contract;
  // an unexplained exception is itself a violation.
  for (const Suppression& s : file.suppressions) {
    if (s.rules.empty()) {
      result->violations.push_back(Diagnostic{
          "bad-suppression", file.rel_path, s.line,
          "malformed smfl-lint directive; expected "
          "'smfl-lint: allow(<rule>) <reason>'"});
      continue;
    }
    for (const std::string& rule : s.rules) {
      if (!kKnownRules.count(rule)) {
        result->violations.push_back(
            Diagnostic{"bad-suppression", file.rel_path, s.line,
                       "unknown rule '" + rule + "' in smfl-lint directive"});
      }
    }
    if (s.reason.empty()) {
      result->violations.push_back(Diagnostic{
          "bad-suppression", file.rel_path, s.line,
          "smfl-lint suppression without a reason; justify the exception "
          "after the closing parenthesis"});
    }
  }
}

bool RunLint(const LintOptions& options, LintResult* result,
             std::string* error) {
  std::vector<fs::path> files;
  for (const std::string& root : options.roots) {
    const fs::path base = fs::path(options.repo_root) / root;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base, ec)) {
      *error = "scan root not found: " + base.string();
      return false;
    }
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_regular_file() && IsCppSource(it->path())) {
        files.push_back(it->path());
      }
    }
    if (ec) {
      *error = "error walking " + base.string() + ": " + ec.message();
      return false;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  StatusFnRegistry registry;
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      *error = "cannot read " + p.string();
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel =
        fs::relative(p, options.repo_root).generic_string();
    lexed.push_back(Lex(rel, buf.str()));
    HarvestStatusFunctions(lexed.back(), &registry);
  }

  // Cross-file Status registry (R4): also harvest declarations from the
  // transitive closure of included project headers, so a single-file scan
  // still knows that a function declared in an included header returns
  // Status/Result and catches its discarded calls.
  std::set<std::string> visited;
  std::vector<std::string> worklist;
  for (const LexedFile& f : lexed) visited.insert(f.rel_path);
  for (const LexedFile& f : lexed) {
    for (const IncludeDirective& inc : ParseIncludes(f)) {
      if (inc.angled) continue;
      const std::string rel =
          ResolveInclude(options.repo_root, f.rel_path, inc.path);
      if (!rel.empty() && !visited.count(rel)) worklist.push_back(rel);
    }
  }
  while (!worklist.empty()) {
    const std::string rel = worklist.back();
    worklist.pop_back();
    if (!visited.insert(rel).second) continue;
    std::ifstream in(fs::path(options.repo_root) / rel, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    const LexedFile header = Lex(rel, buf.str());
    HarvestStatusFunctions(header, &registry);
    for (const IncludeDirective& inc : ParseIncludes(header)) {
      if (inc.angled) continue;
      const std::string next =
          ResolveInclude(options.repo_root, rel, inc.path);
      if (!next.empty() && !visited.count(next)) worklist.push_back(next);
    }
  }

  result->files_scanned = static_cast<int>(lexed.size());
  for (const LexedFile& file : lexed) {
    LintFile(file, registry, options, result);
  }

  if (options.graph_pass) {
    std::map<std::string, const LexedFile*> by_path;
    for (const LexedFile& f : lexed) by_path[f.rel_path] = &f;
    const IncludeGraph graph = BuildIncludeGraph(lexed, options.repo_root);
    std::map<std::string, std::vector<Diagnostic>> raw;
    CheckIncludeGraph(graph, by_path, options.repo_root, &raw);
    for (auto& [rel, diags] : raw) {
      const auto it = by_path.find(rel);
      for (Diagnostic& d : diags) {
        if (it != by_path.end()) {
          EmitDiagnostic(*it->second, std::move(d), result);
        } else {
          result->violations.push_back(std::move(d));
        }
      }
    }
    result->dot = GraphToDot(graph);
  }

  if (options.race_pass) {
    for (const LexedFile& f : lexed) {
      if (!RuleApplies("race", f.rel_path, options)) continue;
      std::vector<Diagnostic> raw;
      CheckParallelRaces(f, &raw);
      for (Diagnostic& d : raw) EmitDiagnostic(f, std::move(d), result);
    }
  }

  const std::set<std::string> baseline = LoadBaseline(options.baseline_path);
  if (!baseline.empty()) {
    std::vector<Diagnostic> keep;
    keep.reserve(result->violations.size());
    for (Diagnostic& d : result->violations) {
      if (baseline.count(BaselineKey(d))) {
        result->baselined.push_back(std::move(d));
      } else {
        keep.push_back(std::move(d));
      }
    }
    result->violations = std::move(keep);
  }
  return true;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.rel_path << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

std::string ResultToJson(const LintResult& result) {
  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << result.files_scanned
     << ",\n  \"violation_count\": " << result.violations.size()
     << ",\n  \"suppressed_count\": " << result.suppressed.size()
     << ",\n  \"baselined_count\": " << result.baselined.size()
     << ",\n  \"violations\": [\n";
  for (size_t i = 0; i < result.violations.size(); ++i) {
    AppendDiagJson(result.violations[i], &os);
    if (i + 1 < result.violations.size()) os << ",";
    os << "\n";
  }
  os << "  ],\n  \"suppressed\": [\n";
  for (size_t i = 0; i < result.suppressed.size(); ++i) {
    AppendDiagJson(result.suppressed[i], &os);
    if (i + 1 < result.suppressed.size()) os << ",";
    os << "\n";
  }
  os << "  ],\n  \"baselined\": [\n";
  for (size_t i = 0; i < result.baselined.size(); ++i) {
    AppendDiagJson(result.baselined[i], &os);
    if (i + 1 < result.baselined.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string ResultToSarif(const LintResult& result) {
  // Rule metadata: one reportingDescriptor per distinct rule id seen.
  std::set<std::string> rule_ids;
  for (const Diagnostic& d : result.violations) rule_ids.insert(d.rule);

  std::ostringstream os;
  os << "{\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n"
     << "          \"name\": \"smfl_lint\",\n"
     << "          \"informationUri\": \"docs/static-analysis.md\",\n"
     << "          \"rules\": [\n";
  size_t ri = 0;
  for (const std::string& id : rule_ids) {
    os << "            {\"id\": \"" << JsonEscape(id) << "\"}";
    if (++ri < rule_ids.size()) os << ",";
    os << "\n";
  }
  os << "          ]\n        }\n      },\n      \"results\": [\n";
  for (size_t i = 0; i < result.violations.size(); ++i) {
    const Diagnostic& d = result.violations[i];
    os << "        {\"ruleId\": \"" << JsonEscape(d.rule)
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << JsonEscape(d.message)
       << "\"}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \""
       << JsonEscape(d.rel_path) << "\"}, \"region\": {\"startLine\": "
       << (d.line > 0 ? d.line : 1) << "}}}]}";
    if (i + 1 < result.violations.size()) os << ",";
    os << "\n";
  }
  os << "      ]\n    }\n  ]\n}\n";
  return os.str();
}

std::string BaselineKey(const Diagnostic& d) {
  return d.rule + "|" + d.rel_path + "|" + d.message;
}

std::string BaselineFromResult(const LintResult& result) {
  std::set<std::string> keys;
  for (const Diagnostic& d : result.violations) keys.insert(BaselineKey(d));
  for (const Diagnostic& d : result.baselined) keys.insert(BaselineKey(d));
  std::ostringstream os;
  os << "# smfl_lint baseline: accepted findings, one `rule|path|message`\n"
     << "# key per line. Regenerate with `smfl_lint ... --write-baseline`.\n";
  for (const std::string& k : keys) os << k << "\n";
  return os.str();
}

bool ApplyUnusedIncludeFixes(const LintOptions& options,
                             const std::vector<Diagnostic>& diags,
                             bool dry_run, std::string* report,
                             int* fixed_count, std::string* error) {
  *fixed_count = 0;
  report->clear();
  // Line numbers to drop, per file, descending so removal indices stay
  // valid while erasing.
  std::map<std::string, std::set<int>> by_file;
  for (const Diagnostic& d : diags) {
    if (d.rule == "unused-include" && d.line > 0) {
      by_file[d.rel_path].insert(d.line);
    }
  }

  std::ostringstream out;
  for (const auto& [rel, lines] : by_file) {
    const fs::path abs = fs::path(options.repo_root) / rel;
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      *error = "cannot read " + abs.string();
      return false;
    }
    std::vector<std::string> content;
    std::string line;
    while (std::getline(in, line)) content.push_back(line);
    in.close();

    std::vector<int> removed;
    for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
      const int ln = *it;
      if (ln < 1 || static_cast<size_t>(ln) > content.size()) continue;
      // Stale-finding guard: only ever delete an #include line.
      if (content[static_cast<size_t>(ln - 1)].find("#include") ==
          std::string::npos) {
        continue;
      }
      out << "--- " << rel << ":" << ln << "\n-"
          << content[static_cast<size_t>(ln - 1)] << "\n";
      content.erase(content.begin() + (ln - 1));
      removed.push_back(ln);
    }
    if (removed.empty()) continue;
    *fixed_count += static_cast<int>(removed.size());

    if (!dry_run) {
      // smfl-lint: allow(raw-file-write) the fixer edits source in place
      std::ofstream w(abs, std::ios::binary | std::ios::trunc);
      if (!w) {
        *error = "cannot write " + abs.string();
        return false;
      }
      for (const std::string& l : content) w << l << "\n";
    }
  }
  *report = out.str();
  return true;
}

}  // namespace smfl::lint
