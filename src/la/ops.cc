#include "src/la/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/telemetry.h"
#include "src/la/simd.h"

namespace smfl::la {

namespace {
// Block edge for the gemm kernels; sized so three blocks fit in L2.
constexpr Index kBlock = 64;

// ParallelFor grains. Row partitions are static (size-derived only, see
// parallel.h), and every output element is accumulated entirely inside one
// chunk in the serial loop order — so kernel results are bitwise identical
// at any thread count. kGemmRowGrain equals kBlock so the parallel row
// partition coincides with the serial i0 blocking. kAtBRowGrain keeps the
// common rank-sized (K <= 16) outputs on the single-chunk serial path,
// where splitting would only re-stream B.
constexpr Index kGemmRowGrain = kBlock;
constexpr Index kAtBRowGrain = 16;
constexpr Index kDotRowGrain = 8;
}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  SMFL_CHECK_EQ(a.cols(), b.rows());
  const Index n = a.rows(), k = a.cols(), m = b.cols();
  Matrix c(n, m);
  double* cd = c.data();
  const double* ad = a.data();
  const double* bd = b.data();
  // Resolve the microkernel table on the calling thread: ScopedSimd is a
  // thread-local override, and the chunks below execute on pool workers
  // that must inherit the caller's choice (simd.h, dispatch resolution).
  const simd::Kernels& ker = simd::Active();
  if (ker.tier != simd::Tier::kScalar) SMFL_COUNTER_INC("la.simd.dispatch.matmul");
  parallel::ParallelFor(0, n, kGemmRowGrain, [&](Index r0, Index r1) {
    for (Index i0 = r0; i0 < r1; i0 += kBlock) {
      const Index i1 = std::min(i0 + kBlock, r1);
      for (Index p0 = 0; p0 < k; p0 += kBlock) {
        const Index p1 = std::min(p0 + kBlock, k);
        for (Index j0 = 0; j0 < m; j0 += kBlock) {
          const Index j1 = std::min(j0 + kBlock, m);
          for (Index i = i0; i < i1; ++i) {
            for (Index p = p0; p < p1; ++p) {
              const double av = ad[i * k + p];
              // smfl-lint: allow(float-eq) exact zero-skip: 0.0 adds nothing
              if (av == 0.0) continue;
              const double* brow = bd + p * m;
              double* crow = cd + i * m;
              ker.axpy(j1 - j0, av, brow + j0, crow + j0);
            }
          }
        }
      }
    }
  });
  return c;
}

Matrix MatMulAtB(const Matrix& a, const Matrix& b) {
  SMFL_CHECK_EQ(a.rows(), b.rows());
  const Index k = a.rows(), n = a.cols(), m = b.cols();
  Matrix c(n, m);
  double* cd = c.data();
  const double* ad = a.data();
  const double* bd = b.data();
  const simd::Kernels& ker = simd::Active();
  if (ker.tier != simd::Tier::kScalar) {
    SMFL_COUNTER_INC("la.simd.dispatch.matmul_atb");
  }
  // c[i][j] = sum_p a[p][i] * b[p][j]. Each chunk owns output rows
  // [r0, r1) and streams the rows of a and b once, so the per-element sum
  // stays in ascending-p order no matter how the rows are partitioned.
  parallel::ParallelFor(0, n, kAtBRowGrain, [&](Index r0, Index r1) {
    for (Index p = 0; p < k; ++p) {
      const double* arow = ad + p * n;
      const double* brow = bd + p * m;
      for (Index i = r0; i < r1; ++i) {
        const double av = arow[i];
        // smfl-lint: allow(float-eq) exact zero-skip: 0.0 adds nothing
        if (av == 0.0) continue;
        ker.axpy(m, av, brow, cd + i * m);
      }
    }
  });
  return c;
}

Matrix MatMulABt(const Matrix& a, const Matrix& b) {
  SMFL_CHECK_EQ(a.cols(), b.cols());
  const Index n = a.rows(), k = a.cols(), m = b.rows();
  Matrix c(n, m);
  double* cd = c.data();
  const double* ad = a.data();
  const double* bd = b.data();
  const simd::Kernels& ker = simd::Active();
  if (ker.tier != simd::Tier::kScalar) {
    SMFL_COUNTER_INC("la.simd.dispatch.matmul_abt");
  }
  // c[i][j] = dot(a.row(i), b.row(j)). Rows of b are packed into
  // kPanelWidth-column panels so each output element gets its own vector
  // lane with the ascending-p accumulation chain intact (simd.h contract);
  // the panel is re-packed per chunk, then amortized over the chunk's rows.
  parallel::ParallelFor(0, n, kDotRowGrain, [&](Index r0, Index r1) {
    std::vector<double> panel(
        static_cast<size_t>(simd::kPanelWidth * std::max<Index>(k, 1)));
    for (Index j0 = 0; j0 < m; j0 += simd::kPanelWidth) {
      const Index lanes = std::min(simd::kPanelWidth, m - j0);
      simd::PackRowPanel(bd + j0 * k, k, lanes, k, panel.data());
      for (Index i = r0; i < r1; ++i) {
        ker.dot_panel(k, ad + i * k, panel.data(), lanes, cd + i * m + j0);
      }
    }
  });
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  SMFL_CHECK(a.SameShape(b));
  Matrix c(a.rows(), a.cols());
  const double* ad = a.data();
  const double* bd = b.data();
  double* cd = c.data();
  for (Index i = 0; i < a.size(); ++i) cd[i] = ad[i] * bd[i];
  return c;
}

Matrix SafeDivide(const Matrix& num, const Matrix& den, double eps) {
  SMFL_CHECK(num.SameShape(den));
  Matrix c(num.rows(), num.cols());
  const double* nd = num.data();
  const double* dd = den.data();
  double* cd = c.data();
  for (Index i = 0; i < num.size(); ++i) {
    cd[i] = nd[i] / std::max(dd[i], eps);
  }
  return c;
}

double FrobeniusNormSquared(const Matrix& a) {
  double acc = 0.0;
  const double* d = a.data();
  for (Index i = 0; i < a.size(); ++i) acc += d[i] * d[i];
  return acc;
}

double FrobeniusNorm(const Matrix& a) {
  return std::sqrt(FrobeniusNormSquared(a));
}

double Trace(const Matrix& a) {
  SMFL_CHECK_EQ(a.rows(), a.cols());
  double acc = 0.0;
  for (Index i = 0; i < a.rows(); ++i) acc += a(i, i);
  return acc;
}

double TraceAtB(const Matrix& a, const Matrix& b) {
  SMFL_CHECK(a.SameShape(b));
  double acc = 0.0;
  const double* ad = a.data();
  const double* bd = b.data();
  for (Index i = 0; i < a.size(); ++i) acc += ad[i] * bd[i];
  return acc;
}

double Dot(const Vector& a, const Vector& b) {
  SMFL_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (Index i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  SMFL_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SMFL_CHECK(a.SameShape(b));
  double best = 0.0;
  const double* ad = a.data();
  const double* bd = b.data();
  for (Index i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(ad[i] - bd[i]));
  }
  return best;
}

void ClampMin(Matrix& a, double lo) {
  double* d = a.data();
  for (Index i = 0; i < a.size(); ++i) d[i] = std::max(d[i], lo);
}

Vector ColMeans(const Matrix& a) {
  Vector mu(a.cols());
  if (a.rows() == 0) return mu;
  for (Index i = 0; i < a.rows(); ++i) {
    auto row = a.Row(i);
    for (Index j = 0; j < a.cols(); ++j) mu[j] += row[j];
  }
  for (Index j = 0; j < a.cols(); ++j) mu[j] /= static_cast<double>(a.rows());
  return mu;
}

}  // namespace smfl::la
