// K-means clustering with k-means++ seeding.
//
// SMFL uses K-means over the spatial information SI to place the landmarks:
// the K cluster centers become the frozen first-L columns of V (§III-A).
// The clustering application (Fig 4b) also uses K-means on learned U rows.

#ifndef SMFL_CLUSTER_KMEANS_H_
#define SMFL_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/la/matrix.h"

namespace smfl::cluster {

using la::Index;
using la::Matrix;

struct KMeansOptions {
  Index k = 5;
  // Paper default t2 = 300 with early stop.
  int max_iterations = 300;
  // Stop when no assignment changes or center movement falls below this.
  double tolerance = 1e-9;
  uint64_t seed = 5;
};

struct KMeansResult {
  // K x dim cluster centers (the landmark matrix C when run on SI).
  Matrix centers;
  // Cluster id per input row.
  std::vector<Index> assignments;
  // Sum of squared distances to assigned centers (inertia).
  double inertia = 0.0;
  int iterations = 0;
};

// Lloyd's algorithm with k-means++ init. Handles k > number of distinct
// points by duplicating centers on existing points (empty clusters are
// re-seeded at the farthest point). Fails on empty input or k < 1.
Result<KMeansResult> KMeans(const Matrix& points, const KMeansOptions& options);

// Assigns each row of `points` to its nearest center (ties to lowest id).
std::vector<Index> AssignToCenters(const Matrix& points,
                                   const Matrix& centers);

}  // namespace smfl::cluster

#endif  // SMFL_CLUSTER_KMEANS_H_
