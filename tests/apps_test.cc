#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "src/apps/clustering_app.h"
#include "src/apps/route.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/spatial/metrics.h"

namespace smfl::apps {
namespace {

// ---------------------------------------------------------------- routes

Matrix GridSi(Index n) {
  Matrix si(n, 2);
  for (Index i = 0; i < n; ++i) {
    si(i, 0) = 45.0 + 0.01 * static_cast<double>(i);
    si(i, 1) = 130.0;
  }
  return si;
}

TEST(RouteTest, SampleRouteVisitsDistinctRows) {
  auto dataset = data::MakeVehicleLike(200, 3);
  Matrix si = dataset->table.SpatialInfo();
  auto route = SampleRoute(si, 20, 5);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->waypoints.size(), 20u);
  std::set<Index> seen(route->waypoints.begin(), route->waypoints.end());
  EXPECT_EQ(seen.size(), 20u);
}

TEST(RouteTest, GreedyWalkIsShort) {
  // On a line of points, the greedy nearest-neighbor walk from any start
  // must not be longer than twice the line length.
  Matrix si = GridSi(50);
  auto route = SampleRoute(si, 50, 7);
  ASSERT_TRUE(route.ok());
  double total = 0.0;
  for (size_t s = 1; s < route->waypoints.size(); ++s) {
    total += spatial::HaversineKm(si(route->waypoints[s - 1], 0),
                                  si(route->waypoints[s - 1], 1),
                                  si(route->waypoints[s], 0),
                                  si(route->waypoints[s], 1));
  }
  const double line_km =
      spatial::HaversineKm(si(0, 0), si(0, 1), si(49, 0), si(49, 1));
  EXPECT_LT(total, 2.0 * line_km + 1.0);
}

TEST(RouteTest, SampleRouteValidation) {
  Matrix si = GridSi(10);
  EXPECT_FALSE(SampleRoute(si, 1, 1).ok());
  EXPECT_FALSE(SampleRoute(si, 11, 1).ok());
  EXPECT_FALSE(SampleRoute(Matrix(), 2, 1).ok());
}

TEST(RouteTest, AccumulatedFuelKnownValue) {
  // Two points ~1.112 km apart with rates 2 and 4 -> ~3 L/km average.
  Matrix si{{45.0, 130.0}, {45.01, 130.0}};
  std::vector<double> rate{2.0, 4.0};
  Route route{{0, 1}};
  auto fuel = AccumulatedFuel(si, rate, route);
  ASSERT_TRUE(fuel.ok());
  const double km = spatial::HaversineKm(45.0, 130.0, 45.01, 130.0);
  EXPECT_NEAR(*fuel, km * 3.0, 1e-9);
}

TEST(RouteTest, AccumulatedFuelValidation) {
  Matrix si = GridSi(5);
  std::vector<double> rate(5, 1.0);
  EXPECT_FALSE(AccumulatedFuel(si, rate, Route{{0}}).ok());
  EXPECT_FALSE(AccumulatedFuel(si, {1.0}, Route{{0, 1}}).ok());
  EXPECT_FALSE(AccumulatedFuel(si, rate, Route{{0, 99}}).ok());
}

TEST(RouteTest, PerfectImputationHasZeroError) {
  auto dataset = data::MakeVehicleLike(100, 9);
  Matrix si = dataset->table.SpatialInfo();
  std::vector<double> fuel(100);
  for (Index i = 0; i < 100; ++i) {
    fuel[static_cast<size_t>(i)] = dataset->table.values()(i, 6);
  }
  std::vector<Route> routes;
  for (uint64_t s = 0; s < 3; ++s) {
    auto route = SampleRoute(si, 10, s);
    ASSERT_TRUE(route.ok());
    routes.push_back(*route);
  }
  auto err = MeanRouteFuelError(si, fuel, fuel, routes);
  ASSERT_TRUE(err.ok());
  EXPECT_DOUBLE_EQ(*err, 0.0);
}

TEST(RouteTest, WorseImputationLargerError) {
  auto dataset = data::MakeVehicleLike(150, 11);
  Matrix si = dataset->table.SpatialInfo();
  std::vector<double> truth(150), slightly_off(150), badly_off(150);
  for (Index i = 0; i < 150; ++i) {
    const double v = dataset->table.values()(i, 6);
    truth[static_cast<size_t>(i)] = v;
    slightly_off[static_cast<size_t>(i)] = v + 0.01;
    badly_off[static_cast<size_t>(i)] = v + 1.0;
  }
  std::vector<Route> routes;
  for (uint64_t s = 0; s < 5; ++s) {
    auto route = SampleRoute(si, 12, 100 + s);
    ASSERT_TRUE(route.ok());
    routes.push_back(*route);
  }
  auto small = MeanRouteFuelError(si, truth, slightly_off, routes);
  auto large = MeanRouteFuelError(si, truth, badly_off, routes);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(*small, *large);
}

TEST(RouteTest, PlanRoutePicksCheapest) {
  auto dataset = data::MakeVehicleLike(120, 33);
  Matrix si = dataset->table.SpatialInfo();
  std::vector<double> rate(120, 1.0);
  std::vector<apps::Route> candidates;
  for (uint64_t s = 0; s < 4; ++s) {
    auto route = apps::SampleRoute(si, 10 + static_cast<Index>(s) * 8,
                                   700 + s);
    ASSERT_TRUE(route.ok());
    candidates.push_back(*route);
  }
  auto plan = apps::PlanRoute(si, rate, candidates);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->costs.size(), 4u);
  for (double cost : plan->costs) {
    EXPECT_GE(cost, plan->costs[plan->chosen]);
  }
  // Empty candidate list rejected.
  EXPECT_FALSE(apps::PlanRoute(si, rate, {}).ok());
}

// ---------------------------------------------------------------- clustering

TEST(ClusteringAppTest, MethodNames) {
  EXPECT_STREQ(ClusterMethodName(ClusterMethod::kPca), "PCA");
  EXPECT_STREQ(ClusterMethodName(ClusterMethod::kSmfl), "SMFL");
  EXPECT_STREQ(ClusterMethodName(ClusterMethod::kSpectral), "Spectral");
}

TEST(ClusteringAppTest, AllMethodsProduceLabels) {
  auto dataset = data::MakeLakeLike(250, 13);
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Matrix truth_matrix = normalizer->Transform(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = 5;
  auto injection = data::InjectMissing(dataset->table, inject);
  ASSERT_TRUE(injection.ok());
  Matrix input = data::ApplyMask(truth_matrix, injection->observed);

  ClusterAppOptions options;
  options.num_clusters = 5;
  options.rank = 5;
  for (ClusterMethod method :
       {ClusterMethod::kPca, ClusterMethod::kNmf, ClusterMethod::kSmf,
        ClusterMethod::kSmfl, ClusterMethod::kSpectral}) {
    auto labels =
        ClusterIncomplete(method, input, injection->observed, 2, options);
    ASSERT_TRUE(labels.ok()) << ClusterMethodName(method);
    EXPECT_EQ(labels->size(), 250u);
    for (Index label : *labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, 5);
    }
  }
}

TEST(ClusteringAppTest, SmflBeatsChanceOnPlantedClusters) {
  auto dataset = data::MakeLakeLike(300, 17);
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Matrix truth_matrix = normalizer->Transform(dataset->table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.1;
  inject.seed = 9;
  auto injection = data::InjectMissing(dataset->table, inject);
  ASSERT_TRUE(injection.ok());
  Matrix input = data::ApplyMask(truth_matrix, injection->observed);

  ClusterAppOptions options;
  options.num_clusters = 5;
  options.rank = 5;
  auto acc = ClusteringAccuracyOnIncomplete(ClusterMethod::kSmfl, input,
                                            injection->observed, 2,
                                            dataset->cluster_labels, options);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.4);  // 5 planted clusters -> chance is 0.2
}

}  // namespace
}  // namespace smfl::apps
