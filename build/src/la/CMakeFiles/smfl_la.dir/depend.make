# Empty dependencies file for smfl_la.
# This may be replaced when dependencies are built.
