file(REMOVE_RECURSE
  "libsmfl_data.a"
)
