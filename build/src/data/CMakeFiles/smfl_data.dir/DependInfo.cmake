
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/smfl_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/smfl_data.dir/csv.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/smfl_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/smfl_data.dir/generators.cc.o.d"
  "/root/repo/src/data/inject.cc" "src/data/CMakeFiles/smfl_data.dir/inject.cc.o" "gcc" "src/data/CMakeFiles/smfl_data.dir/inject.cc.o.d"
  "/root/repo/src/data/mask.cc" "src/data/CMakeFiles/smfl_data.dir/mask.cc.o" "gcc" "src/data/CMakeFiles/smfl_data.dir/mask.cc.o.d"
  "/root/repo/src/data/normalize.cc" "src/data/CMakeFiles/smfl_data.dir/normalize.cc.o" "gcc" "src/data/CMakeFiles/smfl_data.dir/normalize.cc.o.d"
  "/root/repo/src/data/quantile_normalize.cc" "src/data/CMakeFiles/smfl_data.dir/quantile_normalize.cc.o" "gcc" "src/data/CMakeFiles/smfl_data.dir/quantile_normalize.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/smfl_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/smfl_data.dir/split.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/data/CMakeFiles/smfl_data.dir/stats.cc.o" "gcc" "src/data/CMakeFiles/smfl_data.dir/stats.cc.o.d"
  "/root/repo/src/data/table.cc" "src/data/CMakeFiles/smfl_data.dir/table.cc.o" "gcc" "src/data/CMakeFiles/smfl_data.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/smfl_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
