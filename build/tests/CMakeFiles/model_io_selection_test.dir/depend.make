# Empty dependencies file for model_io_selection_test.
# This may be replaced when dependencies are built.
