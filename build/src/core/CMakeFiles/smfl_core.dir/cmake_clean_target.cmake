file(REMOVE_RECURSE
  "libsmfl_core.a"
)
