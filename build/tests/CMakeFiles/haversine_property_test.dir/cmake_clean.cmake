file(REMOVE_RECURSE
  "CMakeFiles/haversine_property_test.dir/haversine_property_test.cc.o"
  "CMakeFiles/haversine_property_test.dir/haversine_property_test.cc.o.d"
  "haversine_property_test"
  "haversine_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haversine_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
