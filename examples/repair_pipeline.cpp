// Data repair with SMFL (the paper's repair task, Table VI).
//
// Cell errors are injected into an Economic-like dataset; an error detector
// (here: the injection oracle, standing in for a system like Raha) flags the
// dirty cells; each registered repairer replaces exactly those cells, and we
// compare repair RMS against ground truth.
//
//   ./build/examples/repair_pipeline

#include <cstdio>

#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/exp/metrics.h"
#include "src/repair/repairer.h"

using namespace smfl;
using la::Index;
using la::Matrix;

int main() {
  auto dataset = data::MakeEconomicLike(/*rows=*/1000, /*seed=*/9);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
  Matrix truth = normalizer->Transform(dataset->table.values());
  std::vector<std::string> names;
  for (Index j = 0; j < truth.cols(); ++j) {
    names.push_back("c" + std::to_string(j));
  }
  auto table = data::Table::Create(names, truth, 2);

  data::ErrorInjectionOptions inject;
  inject.error_rate = 0.1;
  inject.seed = 21;
  auto injection = data::InjectErrors(*table, inject);
  const double untouched =
      *exp::RmsOverMask(injection->dirty, truth, injection->dirty_cells);
  std::printf("%lld dirty cells injected; RMS if left dirty: %.4f\n\n",
              static_cast<long long>(injection->dirty_cells.Count()),
              untouched);

  std::printf("%-10s  %s\n", "method", "repair RMS");
  for (const std::string& name : repair::RegisteredRepairers()) {
    auto repairer = repair::MakeRepairer(name);
    if (!repairer.ok()) continue;
    auto repaired =
        (*repairer)->Repair(injection->dirty, injection->dirty_cells, 2);
    if (!repaired.ok()) {
      std::printf("%-10s  failed: %s\n", name.c_str(),
                  repaired.status().ToString().c_str());
      continue;
    }
    auto rms = exp::RmsOverMask(*repaired, truth, injection->dirty_cells);
    std::printf("%-10s  %.4f\n", name.c_str(), *rms);
  }
  return 0;
}
