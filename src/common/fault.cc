#include "src/common/fault.h"

#include "src/common/telemetry.h"

namespace smfl {

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.spec = spec;
  state.armed = true;
  state.hits = 0;
  state.fires = 0;
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : points_) state.armed = false;
  armed_count_.store(0, std::memory_order_relaxed);
}

void FaultRegistry::SeedRng(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.Seed(seed);
}

bool FaultRegistry::Fire(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return false;
  PointState& state = it->second;
  ++state.hits;
  const int eligible = state.hits - state.spec.skip;
  if (eligible <= 0) return false;
  if (state.spec.count >= 0 && state.fires >= state.spec.count) return false;
  if (state.spec.probability < 1.0 &&
      !rng_.Bernoulli(state.spec.probability)) {
    return false;
  }
  ++state.fires;
  // Surface injected failures in the metrics snapshot: one total plus a
  // per-point counter. Fires are rare, so the by-name registry lookup is
  // fine here (no static caching possible for a dynamic name).
  if (telemetry::Enabled()) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.GetCounter("fault.fires").Increment();
    registry.GetCounter("fault.fires." + point).Increment();
  }
  return true;
}

int FaultRegistry::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

int FaultRegistry::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace smfl
