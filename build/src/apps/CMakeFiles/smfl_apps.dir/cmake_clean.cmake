file(REMOVE_RECURSE
  "CMakeFiles/smfl_apps.dir/clustering_app.cc.o"
  "CMakeFiles/smfl_apps.dir/clustering_app.cc.o.d"
  "CMakeFiles/smfl_apps.dir/field_raster.cc.o"
  "CMakeFiles/smfl_apps.dir/field_raster.cc.o.d"
  "CMakeFiles/smfl_apps.dir/route.cc.o"
  "CMakeFiles/smfl_apps.dir/route.cc.o.d"
  "libsmfl_apps.a"
  "libsmfl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smfl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
