// Ablation: handling of rows with unobserved spatial information
// (DESIGN.md §4 deviation note).
//
// The paper mean-fills missing SI cells before building the similarity
// matrix D, wiring those rows to arbitrary map-center neighbors. This
// library instead isolates fully-unknown rows and attaches partially-known
// rows by partial-coordinate distance. The bench compares both graph
// constructions under the Table V setting (missing values in SI too),
// holding everything else fixed via FitSmflWithGraph.

#include "bench/bench_util.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/exp/metrics.h"
#include "src/core/smfl.h"

using namespace smfl;
using la::Index;
using la::Matrix;

int main() {
  exp::ReportTable table(
      {"Dataset", "MeanFillGraph", "IsolationGraph(shipped)"});
  for (const std::string& dataset_name : bench::PaperDatasets()) {
    auto prepared = bench::ValueOrDie(
        exp::PrepareDataset(dataset_name, exp::DefaultRowsFor(dataset_name)));
    std::vector<std::string> names;
    for (Index j = 0; j < prepared.truth.cols(); ++j) {
      names.push_back("c" + std::to_string(j));
    }
    auto tbl = bench::ValueOrDie(
        data::Table::Create(names, prepared.truth, 2));
    double mean_fill_rms = 0.0, isolation_rms = 0.0;
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
      data::MissingInjectionOptions inject;
      inject.missing_rate = 0.1;
      inject.include_spatial_cols = true;  // the Table V setting
      inject.seed = 31337 + static_cast<uint64_t>(t);
      auto injection = bench::ValueOrDie(data::InjectMissing(tbl, inject));
      Matrix input = data::ApplyMask(prepared.truth, injection.observed);
      const data::Mask psi = injection.observed.Complement();

      core::SmflOptions options;
      // (a) Paper-style graph: mean-fill SI, connect everyone.
      {
        Matrix si = input.Block(0, 0, input.rows(), 2);
        data::Mask si_mask(input.rows(), 2);
        for (Index i = 0; i < input.rows(); ++i) {
          for (Index j = 0; j < 2; ++j) {
            si_mask.Set(i, j, injection.observed.Contains(i, j));
          }
        }
        Matrix si_filled = data::FillWithColumnMeans(si, si_mask);
        auto graph = bench::ValueOrDie(spatial::NeighborGraph::Build(
            si_filled, options.num_neighbors));
        auto model = bench::ValueOrDie(core::FitSmflWithGraph(
            input, injection.observed, 2, graph, options));
        Matrix completed =
            data::CombineByMask(input, model.Reconstruct(),
                                injection.observed);
        mean_fill_rms += bench::ValueOrDie(
            exp::RmsOverMask(completed, prepared.truth, psi));
      }
      // (b) Shipped construction (isolation + partial-distance edges).
      {
        auto completed = bench::ValueOrDie(
            core::SmflImpute(input, injection.observed, 2, options));
        isolation_rms += bench::ValueOrDie(
            exp::RmsOverMask(completed, prepared.truth, psi));
      }
    }
    table.BeginRow(dataset_name);
    table.AddNumber(mean_fill_rms / trials);
    table.AddNumber(isolation_rms / trials);
  }
  table.Print(
      "Ablation: graph construction for rows with missing SI (Table V "
      "setting)");
  std::printf("%s", table.ToCsv().c_str());
  return 0;
}
