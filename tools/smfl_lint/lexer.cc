// Tokenizer for smfl_lint. See lint.h for the contract: comments and string
// contents are dropped (except `smfl-lint:` suppression comments, which are
// captured), preprocessor directives become single tokens, and multi-char
// operators (`::`, `==`, `!=`, ...) are lexed as single tokens so rules can
// match sequences like `std :: thread` without reassembling characters.

#include <cctype>
#include <cstddef>
#include <string>

#include "tools/smfl_lint/lint.h"

namespace smfl::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first so lexing is greedy.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",
};

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Parses a `smfl-lint: allow(rule[,rule...]) reason` directive out of a
// comment body. Returns true when the comment mentions smfl-lint at all
// (so malformed directives are still recorded and can be reported).
bool ParseSuppression(const std::string& comment, int line, bool own_line,
                      Suppression* out) {
  const size_t tag = comment.find("smfl-lint:");
  if (tag == std::string::npos) return false;
  out->rules.clear();
  out->reason.clear();
  out->line = line;
  out->own_line = own_line;
  out->used = false;
  size_t p = tag + std::string("smfl-lint:").size();
  while (p < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[p]))) {
    ++p;
  }
  if (comment.compare(p, 5, "allow") != 0) return true;  // malformed
  p += 5;
  if (p >= comment.size() || comment[p] != '(') return true;  // malformed
  const size_t close = comment.find(')', p);
  if (close == std::string::npos) return true;  // malformed
  std::string list = comment.substr(p + 1, close - p - 1);
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string rule = Trim(list.substr(start, comma - start));
    if (!rule.empty()) out->rules.insert(rule);
    start = comma + 1;
  }
  out->reason = Trim(comment.substr(close + 1));
  return true;
}

}  // namespace

bool IsFloatLiteral(const std::string& text) {
  if (text.empty() || !(IsDigit(text[0]) || text[0] == '.')) return false;
  // Hex literals are integers unless they are hex floats (which carry 'p');
  // the repo does not use hex floats, treat all 0x as integer.
  if (text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    return false;
  }
  bool has_digit = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (IsDigit(c)) {
      has_digit = true;
      continue;
    }
    if (c == '.') return has_digit || i + 1 < text.size();
    if ((c == 'e' || c == 'E') && has_digit) return true;
    if ((c == 'f' || c == 'F') && has_digit && i + 1 == text.size()) {
      return true;
    }
  }
  return false;
}

LexedFile Lex(const std::string& rel_path, const std::string& content) {
  LexedFile out;
  out.rel_path = rel_path;
  size_t i = 0;
  const size_t n = content.size();
  int line = 1;
  int last_code_line = 0;  // last line that emitted a token

  auto push = [&](Token::Kind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
    last_code_line = line;
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      const std::string body = content.substr(i + 2, end - i - 2);
      Suppression s;
      if (ParseSuppression(body, line, last_code_line != line, &s)) {
        out.suppressions.push_back(std::move(s));
      }
      i = end;
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int start_line = line;
      size_t end = content.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      const std::string body = content.substr(i + 2, end - i - 2);
      Suppression s;
      if (ParseSuppression(body, start_line, last_code_line != start_line,
                           &s)) {
        out.suppressions.push_back(std::move(s));
      }
      for (size_t j = i; j < end && j < n; ++j) {
        if (content[j] == '\n') ++line;
      }
      i = (end == n) ? n : end + 2;
      continue;
    }

    // Preprocessor directive: only whitespace may precede '#' on the line.
    if (c == '#' && last_code_line != line) {
      std::string text;
      while (i < n) {
        size_t end = content.find('\n', i);
        if (end == std::string::npos) end = n;
        std::string part = content.substr(i, end - i);
        const bool continued = !part.empty() && part.back() == '\\';
        if (continued) part.pop_back();
        text += part;
        i = (end == n) ? n : end + 1;
        if (end != n) ++line;
        if (!continued) break;
        text += ' ';
      }
      // A trailing // comment inside the directive can hold a suppression.
      const size_t slashes = text.find("//");
      if (slashes != std::string::npos) {
        Suppression s;
        if (ParseSuppression(text.substr(slashes + 2), line - 1, false, &s)) {
          out.suppressions.push_back(std::move(s));
        }
        text.resize(slashes);
      }
      // The directive token is attributed to its first line.
      out.tokens.push_back(Token{Token::Kind::kPreproc, std::move(text),
                                 line - 1 >= 1 ? line - 1 : 1});
      continue;
    }

    // Raw string literal: R"delim( ... )delim" (with optional prefixes).
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < n && content[p] != '(' && content[p] != '\n' &&
             delim.size() < 16) {
        delim += content[p++];
      }
      const std::string closer = ")" + delim + "\"";
      size_t end = content.find(closer, p);
      if (end == std::string::npos) end = n;
      for (size_t j = i; j < end && j < n; ++j) {
        if (content[j] == '\n') ++line;
      }
      push(Token::Kind::kString, "R\"...\"");
      i = (end == n) ? n : end + closer.size();
      continue;
    }

    // String / char literal (contents dropped; escapes honored).
    if (c == '"' || c == '\'') {
      // A '\'' directly after an identifier/number char is a digit separator
      // handled by the number lexer; here it is always a literal start.
      const char quote = c;
      size_t p = i + 1;
      while (p < n && content[p] != quote) {
        if (content[p] == '\\' && p + 1 < n) {
          p += 2;
        } else {
          if (content[p] == '\n') ++line;  // unterminated; stay robust
          ++p;
        }
      }
      push(Token::Kind::kString, quote == '"' ? "\"...\"" : "'...'");
      i = (p == n) ? n : p + 1;
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t p = i + 1;
      while (p < n && IsIdentChar(content[p])) ++p;
      push(Token::Kind::kIdent, content.substr(i, p - i));
      i = p;
      continue;
    }

    // Number (pp-number: digits, '.', exponents, suffixes, separators).
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(content[i + 1]))) {
      size_t p = i;
      while (p < n) {
        const char d = content[p];
        if (IsIdentChar(d) || d == '.') {
          ++p;
          continue;
        }
        if ((d == '+' || d == '-') && p > i) {
          const char prev = content[p - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++p;
            continue;
          }
        }
        if (d == '\'' && p + 1 < n && IsIdentChar(content[p + 1])) {
          p += 2;
          continue;
        }
        break;
      }
      push(Token::Kind::kNumber, content.substr(i, p - i));
      i = p;
      continue;
    }

    // Multi-char punctuator?
    bool matched = false;
    for (const char* op : kPuncts) {
      const size_t len = std::char_traits<char>::length(op);
      if (content.compare(i, len, op) == 0) {
        push(Token::Kind::kPunct, op);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;

    push(Token::Kind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace smfl::lint
