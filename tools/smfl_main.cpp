// The smfl command-line tool. All logic lives in src/cli/commands.* so the
// subcommands are unit-testable; this file only parses argv and prints.

#include <cstdio>

#include "src/cli/commands.h"

int main(int argc, char** argv) {
  auto flags = smfl::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  std::string output;
  smfl::Status status = smfl::cli::Run(*flags, &output);
  std::fputs(output.c_str(), stdout);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.message().c_str());
    return 1;
  }
  return 0;
}
