// Crash-recovery harness for durable checkpointing (docs/robustness.md):
//
//  * kill-mid-fit: forks the real `smfl` binary, SIGKILLs it right after a
//    checkpoint write (SMFL_CRASH_AFTER_CHECKPOINTS), resumes with
//    `--resume`, and asserts the final model file is byte-for-byte
//    identical to an uninterrupted run — across seeds and thread counts,
//  * corrupt-generation fallback: a flipped byte in the newest checkpoint
//    falls back to the previous generation and still reaches the
//    bitwise-identical model,
//  * corruption matrix: one flipped byte in EVERY section of a checkpoint
//    container is a clean DataError (CRC mismatch), never a wrong resume,
//  * checkpoint serialize/deserialize round-trips exactly (hex-encoded
//    IEEE-754 bit patterns, including denormals),
//  * rotation keeps `keep` generations; LoadLatest skips corrupt ones,
//  * the io.write.torn / io.write.fsync_fail / io.read.partial fault
//    points behave as the durability contract promises.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/durable_io.h"
#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/core/checkpoint.h"
#include "src/data/csv.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"
#include "src/la/ops.h"

namespace smfl::core {
namespace {

namespace fs = std::filesystem;
using data::Mask;
using la::Index;
using la::Matrix;

// ------------------------------------------------------------------ driver

struct RunResult {
  int exit_code = -1;   // valid when !killed
  bool killed = false;  // terminated by SIGKILL
};

// Forks and execs the real CLI binary (path baked in by CMake). With
// crash_after > 0 the child SIGKILLs itself right after that many durable
// checkpoint writes — a real process death at a known recovery point.
RunResult RunSmfl(const std::vector<std::string>& args, int crash_after = 0) {
  std::vector<std::string> full;
  full.emplace_back(SMFL_BIN_PATH);
  full.insert(full.end(), args.begin(), args.end());
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (crash_after > 0) {
      ::setenv("SMFL_CRASH_AFTER_CHECKPOINTS",
               std::to_string(crash_after).c_str(), 1);
    } else {
      ::unsetenv("SMFL_CRASH_AFTER_CHECKPOINTS");
    }
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::dup2(null_fd, STDERR_FILENO);
      ::close(null_fd);
    }
    std::vector<char*> argv;
    argv.reserve(full.size() + 1);
    for (std::string& a : full) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  RunResult result;
  int status = 0;
  if (pid < 0 || ::waitpid(pid, &status, 0) != pid) return result;
  if (WIFSIGNALED(status)) {
    result.killed = WTERMSIG(status) == SIGKILL;
  } else if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

// ----------------------------------------------------------------- fixture

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("smfl_crash_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()
                     ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string Path(const std::string& rel) const {
    return (root_ / rel).string();
  }

  // Deterministic small training CSV: 2 spatial + attribute columns with
  // ~10% of attribute cells missing.
  std::string MakeTrainingCsv(uint64_t seed = 5) {
    auto dataset = data::MakeLakeLike(60, seed);
    SMFL_CHECK(dataset.ok());
    data::MissingInjectionOptions inject;
    inject.missing_rate = 0.1;
    inject.seed = seed + 1;
    auto injection = data::InjectMissing(dataset->table, inject);
    SMFL_CHECK(injection.ok());
    const std::string path = Path("train.csv");
    SMFL_CHECK(data::WriteCsv(path, dataset->table, injection->observed).ok());
    return path;
  }

  static std::vector<std::string> FitArgs(const std::string& csv,
                                          const std::string& model,
                                          uint64_t seed, int threads) {
    return {"fit",
            "--in=" + csv,
            "--model=" + model,
            "--rank=4",
            "--neighbors=3",
            "--seed=" + std::to_string(seed),
            "--threads=" + std::to_string(threads)};
  }

  static std::string FileBytes(const std::string& path) {
    auto content = ReadFileToString(path);
    SMFL_CHECK(content.ok());
    return std::move(content).value();
  }

  static void FlipByteInFile(const std::string& path, size_t index) {
    std::string bytes = FileBytes(path);
    SMFL_CHECK(index < bytes.size());
    bytes[index] = static_cast<char>(bytes[index] ^ 0x01);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    SMFL_CHECK(out.is_open());
    out << bytes;
  }

  static std::vector<std::string> CheckpointFiles(const std::string& dir) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  fs::path root_;
};

// ----------------------------------------------- kill-mid-fit acceptance

TEST_F(CrashRecoveryTest, ResumeIsBitwiseIdenticalAcrossSeedsAndThreads) {
  const std::string csv = MakeTrainingCsv();
  for (const uint64_t seed : {7ULL, 23ULL, 101ULL}) {
    for (const int threads : {1, 4}) {
      const std::string tag =
          "s" + std::to_string(seed) + "_t" + std::to_string(threads);
      const std::string baseline_model = Path("baseline_" + tag + ".model");
      const std::string crashed_model = Path("crashed_" + tag + ".model");
      const std::string ckpt_dir = Path("ckpt_" + tag);

      // Uninterrupted reference run (no checkpointing involved).
      RunResult baseline =
          RunSmfl(FitArgs(csv, baseline_model, seed, threads));
      ASSERT_FALSE(baseline.killed) << tag;
      ASSERT_EQ(baseline.exit_code, 0) << tag;

      // Same fit, SIGKILLed right after the first checkpoint write: the
      // process dies mid-training and never writes a model file.
      auto crash_args = FitArgs(csv, crashed_model, seed, threads);
      crash_args.push_back("--checkpoint-dir=" + ckpt_dir);
      crash_args.push_back("--checkpoint-every=3");
      RunResult crashed = RunSmfl(crash_args, /*crash_after=*/1);
      ASSERT_TRUE(crashed.killed) << tag;
      ASSERT_FALSE(fs::exists(crashed_model)) << tag;
      ASSERT_FALSE(CheckpointFiles(ckpt_dir).empty()) << tag;

      // Resume replays the exact trajectory the uninterrupted run took.
      auto resume_args = crash_args;
      resume_args.push_back("--resume");
      RunResult resumed = RunSmfl(resume_args);
      ASSERT_FALSE(resumed.killed) << tag;
      ASSERT_EQ(resumed.exit_code, 0) << tag;
      EXPECT_EQ(FileBytes(crashed_model), FileBytes(baseline_model))
          << "resumed model differs from the uninterrupted run (" << tag
          << ")";
    }
  }
}

TEST_F(CrashRecoveryTest, CorruptNewestGenerationFallsBackToPrevious) {
  const std::string csv = MakeTrainingCsv();
  const uint64_t seed = 23;
  const std::string baseline_model = Path("baseline.model");
  const std::string crashed_model = Path("crashed.model");
  const std::string ckpt_dir = Path("ckpt");

  RunResult baseline = RunSmfl(FitArgs(csv, baseline_model, seed, 1));
  ASSERT_EQ(baseline.exit_code, 0);

  // Crash after TWO checkpoint writes so two generations exist on disk.
  auto crash_args = FitArgs(csv, crashed_model, seed, 1);
  crash_args.push_back("--checkpoint-dir=" + ckpt_dir);
  crash_args.push_back("--checkpoint-every=3");
  RunResult crashed = RunSmfl(crash_args, /*crash_after=*/2);
  ASSERT_TRUE(crashed.killed);
  auto generations = CheckpointFiles(ckpt_dir);
  ASSERT_EQ(generations.size(), 2u);

  // One flipped byte in the NEWEST generation: resume must detect it via
  // CRC, fall back to the older generation, and still reach the exact
  // final model (just replaying a few more iterations).
  const std::string& newest = generations.back();
  FlipByteInFile(newest, FileBytes(newest).size() / 2);

  auto resume_args = crash_args;
  resume_args.push_back("--resume");
  RunResult resumed = RunSmfl(resume_args);
  ASSERT_EQ(resumed.exit_code, 0);
  EXPECT_EQ(FileBytes(crashed_model), FileBytes(baseline_model));
}

TEST_F(CrashRecoveryTest, ResumeAgainstChangedOptionsIsRefused) {
  const std::string csv = MakeTrainingCsv();
  const std::string model = Path("m.model");
  const std::string ckpt_dir = Path("ckpt");

  auto crash_args = FitArgs(csv, model, 23, 1);
  crash_args.push_back("--checkpoint-dir=" + ckpt_dir);
  crash_args.push_back("--checkpoint-every=3");
  RunResult crashed = RunSmfl(crash_args, /*crash_after=*/1);
  ASSERT_TRUE(crashed.killed);

  // A different lambda changes the trajectory: the options fingerprint in
  // the checkpoint no longer matches and the resume must refuse rather
  // than produce a model that matches neither configuration.
  auto resume_args = FitArgs(csv, model, 23, 1);
  resume_args.push_back("--checkpoint-dir=" + ckpt_dir);
  resume_args.push_back("--checkpoint-every=3");
  resume_args.push_back("--lambda=0.9");
  resume_args.push_back("--resume");
  RunResult resumed = RunSmfl(resume_args);
  ASSERT_FALSE(resumed.killed);
  EXPECT_NE(resumed.exit_code, 0);
  EXPECT_FALSE(fs::exists(model));
}

// ------------------------------------------------ checkpoint round-trip

// A checkpoint with every field populated, including values decimal text
// would mangle: denormals, negative zero-adjacent magnitudes, irrationals.
FitCheckpoint MakeSyntheticCheckpoint() {
  FitCheckpoint cp;
  cp.seed = 0xdeadbeefcafeULL;
  cp.input_fingerprint = Fnv1a64("input-bytes");
  cp.options_fingerprint = Fnv1a64("options-bytes");
  cp.restart = 1;
  cp.attempt = 2;
  cp.retries_used = 1;
  cp.iteration = 17;
  cp.div_eps = 3.0e-12;
  cp.u = Matrix(3, 2);
  cp.v = Matrix(2, 4);
  cp.landmarks = Matrix(2, 2);
  for (Index i = 0; i < cp.u.rows(); ++i) {
    for (Index j = 0; j < cp.u.cols(); ++j) {
      cp.u(i, j) = 1.4142135623730951 * static_cast<double>(i + 1) -
                   static_cast<double>(j) / 3.0;
    }
  }
  for (Index i = 0; i < cp.v.rows(); ++i) {
    for (Index j = 0; j < cp.v.cols(); ++j) {
      cp.v(i, j) = 0.3333333333333333 * static_cast<double>(j + 1) +
                   static_cast<double>(i);
    }
  }
  cp.landmarks(0, 0) = 5e-324;  // smallest denormal
  cp.landmarks(0, 1) = -2.718281828459045;
  cp.landmarks(1, 0) = 1e300;
  cp.landmarks(1, 1) = 0.1;
  cp.spatial_cols = 2;
  cp.objective_trace = {9.5, 1.0 / 3.0, 0.1};
  cp.guard.div_eps = 1e-12;
  cp.guard.prev_objective = 0.25;
  cp.guard.checkpoint_objective = 0.5;
  cp.guard.checkpoint_iteration = 11;
  cp.guard.have_checkpoint = true;
  cp.guard.rebaseline = true;
  cp.guard.rollbacks = 3;
  cp.guard.recovery_attempts = 2;
  cp.guard.rng.s[0] = 0x0123456789abcdefULL;
  cp.guard.rng.s[1] = 0xfedcba9876543210ULL;
  cp.guard.rng.s[2] = 42;
  cp.guard.rng.s[3] = 7;
  cp.guard.rng.have_cached_normal = true;
  cp.guard.rng.cached_normal_bits = 0x3ff0000000000000ULL;
  cp.guard.checkpoint_u = cp.u;
  cp.guard.checkpoint_v = cp.v;
  cp.best_model = "opaque best-model bytes\nwith newlines\n";
  auto normalizer = data::MinMaxNormalizer::FromBounds(
      {0.0, -1.5, 2.0, 3.0}, {1.0, 2.5, 7.0, 4.0});
  SMFL_CHECK(normalizer.ok());
  cp.normalizer = std::move(normalizer).value();
  return cp;
}

void ExpectSameMatrix(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(la::MaxAbsDiff(a, b), 0.0) << what;
}

TEST(CheckpointSerializationTest, RoundTripIsExact) {
  const FitCheckpoint cp = MakeSyntheticCheckpoint();
  auto restored = DeserializeCheckpoint(SerializeCheckpoint(cp));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->seed, cp.seed);
  EXPECT_EQ(restored->input_fingerprint, cp.input_fingerprint);
  EXPECT_EQ(restored->options_fingerprint, cp.options_fingerprint);
  EXPECT_EQ(restored->restart, cp.restart);
  EXPECT_EQ(restored->attempt, cp.attempt);
  EXPECT_EQ(restored->retries_used, cp.retries_used);
  EXPECT_EQ(restored->iteration, cp.iteration);
  EXPECT_EQ(restored->div_eps, cp.div_eps);
  EXPECT_EQ(restored->spatial_cols, cp.spatial_cols);
  ExpectSameMatrix(restored->u, cp.u, "u");
  ExpectSameMatrix(restored->v, cp.v, "v");
  ExpectSameMatrix(restored->landmarks, cp.landmarks, "landmarks");
  ASSERT_EQ(restored->objective_trace.size(), cp.objective_trace.size());
  for (size_t i = 0; i < cp.objective_trace.size(); ++i) {
    EXPECT_EQ(restored->objective_trace[i], cp.objective_trace[i]) << i;
  }
  EXPECT_EQ(restored->guard.div_eps, cp.guard.div_eps);
  EXPECT_EQ(restored->guard.prev_objective, cp.guard.prev_objective);
  EXPECT_EQ(restored->guard.checkpoint_objective,
            cp.guard.checkpoint_objective);
  EXPECT_EQ(restored->guard.checkpoint_iteration,
            cp.guard.checkpoint_iteration);
  EXPECT_EQ(restored->guard.have_checkpoint, cp.guard.have_checkpoint);
  EXPECT_EQ(restored->guard.rebaseline, cp.guard.rebaseline);
  EXPECT_EQ(restored->guard.rollbacks, cp.guard.rollbacks);
  EXPECT_EQ(restored->guard.recovery_attempts, cp.guard.recovery_attempts);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(restored->guard.rng.s[i], cp.guard.rng.s[i]) << i;
  }
  EXPECT_EQ(restored->guard.rng.have_cached_normal,
            cp.guard.rng.have_cached_normal);
  EXPECT_EQ(restored->guard.rng.cached_normal_bits,
            cp.guard.rng.cached_normal_bits);
  ExpectSameMatrix(restored->guard.checkpoint_u, cp.guard.checkpoint_u,
                   "guard_u");
  ExpectSameMatrix(restored->guard.checkpoint_v, cp.guard.checkpoint_v,
                   "guard_v");
  EXPECT_EQ(restored->best_model, cp.best_model);
  ASSERT_TRUE(restored->normalizer.has_value());
  ASSERT_EQ(restored->normalizer->NumCols(), cp.normalizer->NumCols());
  for (Index j = 0; j < cp.normalizer->NumCols(); ++j) {
    EXPECT_EQ(restored->normalizer->ColMin(j), cp.normalizer->ColMin(j));
    EXPECT_EQ(restored->normalizer->ColMax(j), cp.normalizer->ColMax(j));
  }
}

// ------------------------------------------------- corruption matrix

// Payload byte ranges of each section in a durable container, computed by
// walking the same framing ParseSections reads.
struct SectionSpan {
  std::string name;
  size_t begin = 0;
  size_t length = 0;
};

std::vector<SectionSpan> WalkSectionSpans(const std::string& content) {
  std::vector<SectionSpan> spans;
  size_t pos = content.find('\n');
  SMFL_CHECK(pos != std::string::npos);
  std::istringstream header(content.substr(0, pos));
  std::string magic;
  int version = -1;
  long long count = -1;
  SMFL_CHECK(static_cast<bool>(header >> magic >> version >> count));
  ++pos;
  for (long long i = 0; i < count; ++i) {
    const size_t line_end = content.find('\n', pos);
    SMFL_CHECK(line_end != std::string::npos);
    std::istringstream line(content.substr(pos, line_end - pos));
    std::string tag, name, crc;
    long long length = -1;
    SMFL_CHECK(static_cast<bool>(line >> tag >> name >> length >> crc));
    spans.push_back(SectionSpan{name, line_end + 1,
                                static_cast<size_t>(length)});
    pos = line_end + 1 + static_cast<size_t>(length) + 1;
  }
  return spans;
}

TEST(CheckpointSerializationTest, FlippedByteInEverySectionIsADataError) {
  const std::string bytes = SerializeCheckpoint(MakeSyntheticCheckpoint());
  const auto spans = WalkSectionSpans(bytes);
  ASSERT_EQ(spans.size(), 10u);
  for (const SectionSpan& span : spans) {
    ASSERT_GT(span.length, 0u) << span.name;
    std::string corrupt = bytes;
    const size_t index = span.begin + span.length / 2;
    corrupt[index] = static_cast<char>(corrupt[index] ^ 0x01);
    auto result = DeserializeCheckpoint(corrupt);
    ASSERT_FALSE(result.ok()) << "section '" << span.name
                              << "' corruption went undetected";
    EXPECT_EQ(result.status().code(), StatusCode::kDataError) << span.name;
    EXPECT_NE(result.status().message().find("checksum mismatch"),
              std::string::npos)
        << span.name << ": " << result.status().message();
  }
  // A flipped byte in a section HEADER (not payload) is caught by the
  // framing instead of the checksum — still a clean DataError.
  std::string corrupt_header = bytes;
  const size_t header_byte = bytes.find('\n') + 1;
  corrupt_header[header_byte] =
      static_cast<char>(corrupt_header[header_byte] ^ 0x01);
  auto result = DeserializeCheckpoint(corrupt_header);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataError);
}

// ------------------------------------------- manager rotation / fallback

class CheckpointManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("smfl_ckpt_mgr_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()
                     ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CheckpointConfig Config(int every, int keep) const {
    CheckpointConfig config;
    config.dir = dir_;
    config.every = every;
    config.keep = keep;
    return config;
  }

  std::string dir_;
};

TEST_F(CheckpointManagerTest, ShouldCheckpointFollowsCadence) {
  CheckpointManager manager(Config(/*every=*/5, /*keep=*/3));
  EXPECT_FALSE(manager.ShouldCheckpoint(0));
  EXPECT_TRUE(manager.ShouldCheckpoint(4));
  EXPECT_FALSE(manager.ShouldCheckpoint(5));
  EXPECT_TRUE(manager.ShouldCheckpoint(9));
  CheckpointManager disabled(Config(/*every=*/0, /*keep=*/3));
  EXPECT_FALSE(disabled.ShouldCheckpoint(4));
}

TEST_F(CheckpointManagerTest, RotationKeepsNewestGenerations) {
  CheckpointManager manager(Config(/*every=*/1, /*keep=*/2));
  FitCheckpoint cp = MakeSyntheticCheckpoint();
  for (int i = 0; i < 4; ++i) {
    cp.iteration = i;
    ASSERT_TRUE(manager.Save(cp).ok()) << i;
  }
  EXPECT_EQ(manager.writes(), 4);
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    files.push_back(entry.path().filename().string());
  }
  std::sort(files.begin(), files.end());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "checkpoint-00000002.smfl");
  EXPECT_EQ(files[1], "checkpoint-00000003.smfl");
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->iteration, 3);
}

TEST_F(CheckpointManagerTest, LoadSkipsCorruptGenerations) {
  CheckpointManager manager(Config(/*every=*/1, /*keep=*/3));
  FitCheckpoint cp = MakeSyntheticCheckpoint();
  cp.iteration = 0;
  ASSERT_TRUE(manager.Save(cp).ok());
  cp.iteration = 1;
  ASSERT_TRUE(manager.Save(cp).ok());

  const std::string newest = dir_ + "/checkpoint-00000001.smfl";
  auto bytes = ReadFileToString(newest);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = std::move(bytes).value();
  corrupted[corrupted.size() / 2] =
      static_cast<char>(corrupted[corrupted.size() / 2] ^ 0x01);
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out << corrupted;
  }
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->iteration, 0);  // fell back to the older generation

  // With every generation corrupt, the failure is surfaced (DataError),
  // not a silent fresh start.
  const std::string oldest = dir_ + "/checkpoint-00000000.smfl";
  {
    std::ofstream out(oldest, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out << "smfl-durable garbage";
  }
  auto all_corrupt = manager.LoadLatest();
  ASSERT_FALSE(all_corrupt.ok());
  EXPECT_EQ(all_corrupt.status().code(), StatusCode::kDataError);
}

TEST_F(CheckpointManagerTest, EmptyDirectoryIsNotFound) {
  CheckpointManager manager(Config(/*every=*/1, /*keep=*/3));
  auto latest = manager.LoadLatest();
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointManagerTest, NumberingContinuesAfterLoadedGeneration) {
  {
    CheckpointManager writer(Config(/*every=*/1, /*keep=*/5));
    FitCheckpoint cp = MakeSyntheticCheckpoint();
    cp.iteration = 0;
    ASSERT_TRUE(writer.Save(cp).ok());
    cp.iteration = 1;
    ASSERT_TRUE(writer.Save(cp).ok());
  }
  // A fresh manager (a resumed process) must not renumber from zero and
  // clobber the generations the crashed process left behind.
  CheckpointManager resumed(Config(/*every=*/1, /*keep=*/5));
  auto latest = resumed.LoadLatest();
  ASSERT_TRUE(latest.ok());
  FitCheckpoint cp = std::move(latest).value();
  cp.iteration = 2;
  ASSERT_TRUE(resumed.Save(cp).ok());
  EXPECT_TRUE(fs::exists(dir_ + "/checkpoint-00000002.smfl"));
}

// ------------------------------------------------------ fault injection

TEST_F(CheckpointManagerTest, TornWriteIsSkippedAtLoad) {
  CheckpointManager manager(Config(/*every=*/1, /*keep=*/3));
  FitCheckpoint cp = MakeSyntheticCheckpoint();
  cp.iteration = 0;
  ASSERT_TRUE(manager.Save(cp).ok());
  {
    // The torn-write fault persists half the content and lets the rename
    // go through — the kernel-reordering crash window. The write call
    // itself cannot see it...
    ScopedFault fault("io.write.torn");
    cp.iteration = 1;
    ASSERT_TRUE(manager.Save(cp).ok());
  }
  // ...so detection falls to the reader: CRCs catch the torn generation
  // and the load falls back to the intact one.
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->iteration, 0);
}

TEST_F(CheckpointManagerTest, FsyncFailureIsAnIoErrorAndLeavesNoFile) {
  const std::string path = dir_ + "/out.bin";
  fs::create_directories(dir_);
  ScopedFault fault("io.write.fsync_fail");
  Status st = WriteFileDurable(path, "payload");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // Neither the final path nor the temp file may survive a failed write.
  EXPECT_TRUE(fs::is_empty(dir_));
}

TEST_F(CheckpointManagerTest, PartialReadIsDetected) {
  CheckpointManager manager(Config(/*every=*/1, /*keep=*/3));
  FitCheckpoint cp = MakeSyntheticCheckpoint();
  ASSERT_TRUE(manager.Save(cp).ok());
  ScopedFault fault("io.read.partial");
  auto latest = manager.LoadLatest();
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kDataError);
}

}  // namespace
}  // namespace smfl::core
