file(REMOVE_RECURSE
  "libsmfl_la.a"
)
