// Uniform grid index over 2-D spatial points.
//
// Complements the KD-tree: for the dense, bounded regions spatial data
// lives in, a grid gives O(1) expected-time radius queries and a simple
// k-NN via expanding ring search. Used by the route planner's candidate
// lookup and available as an alternative AllKnn backend.

#ifndef SMFL_SPATIAL_GRID_INDEX_H_
#define SMFL_SPATIAL_GRID_INDEX_H_

#include <vector>

#include "src/common/status.h"
#include "src/spatial/knn.h"

namespace smfl::spatial {

class GridIndex {
 public:
  // Builds over the first two columns of `points` (lat, lon). The cell
  // count scales with sqrt(n) per axis so expected occupancy is O(1).
  static Result<GridIndex> Build(const Matrix& points);

  // All rows within `radius` of (lat, lon), sorted by ascending distance.
  std::vector<Neighbor> RadiusQuery(double lat, double lon,
                                    double radius) const;

  // k nearest rows to (lat, lon) via expanding ring search; `exclude`
  // (usually the query's own row) skipped when >= 0.
  std::vector<Neighbor> Knn(double lat, double lon, Index k,
                            Index exclude = -1) const;

  Index size() const { return points_->rows(); }
  Index cells_per_axis() const { return cells_; }

 private:
  explicit GridIndex(const Matrix& points) : points_(&points) {}

  Index CellOf(double coord, double lo, double hi) const;
  const std::vector<Index>& Bucket(Index cx, Index cy) const;

  const Matrix* points_;
  Index cells_ = 1;
  double lat_lo_ = 0, lat_hi_ = 1, lon_lo_ = 0, lon_hi_ = 1;
  std::vector<std::vector<Index>> buckets_;  // cells_ x cells_, row-major
};

}  // namespace smfl::spatial

#endif  // SMFL_SPATIAL_GRID_INDEX_H_
