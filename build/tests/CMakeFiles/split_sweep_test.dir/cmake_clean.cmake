file(REMOVE_RECURSE
  "CMakeFiles/split_sweep_test.dir/split_sweep_test.cc.o"
  "CMakeFiles/split_sweep_test.dir/split_sweep_test.cc.o.d"
  "split_sweep_test"
  "split_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
