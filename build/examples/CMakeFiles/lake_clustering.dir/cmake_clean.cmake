file(REMOVE_RECURSE
  "CMakeFiles/lake_clustering.dir/lake_clustering.cpp.o"
  "CMakeFiles/lake_clustering.dir/lake_clustering.cpp.o.d"
  "lake_clustering"
  "lake_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lake_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
