// Vehicle route planning on imputed fuel-consumption data (the paper's
// §IV-B3 application, Fig 4a).
//
// A logistics planner wants the cheapest of several candidate routes, but
// 15% of the fuel-consumption-rate readings are missing. We impute them
// with SMFL, cost every route on the imputed map, and check that the
// chosen route matches the one the ground truth would pick.
//
//   ./build/examples/fuel_route_planning

#include <cstdio>
#include <vector>

#include "src/apps/route.h"
#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"

using namespace smfl;
using la::Index;
using la::Matrix;

int main() {
  // --- Fleet telemetry: locations + speed/torque/fuel columns.
  auto dataset = data::MakeVehicleLike(/*rows=*/1500, /*seed=*/3);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const data::Table& table = dataset->table;
  const Index fuel_col = table.NumCols() - 1;
  Matrix si = table.values().Block(0, 0, table.NumRows(), 2);

  // --- Sensors dropped 15% of the readings.
  auto normalizer = data::MinMaxNormalizer::Fit(table.values());
  Matrix truth = normalizer->Transform(table.values());
  data::MissingInjectionOptions inject;
  inject.missing_rate = 0.15;
  inject.seed = 99;
  auto injection = data::InjectMissing(table, inject);
  Matrix input = data::ApplyMask(truth, injection->observed);

  // --- Impute with SMFL.
  core::SmflOptions options;
  auto imputed = core::SmflImpute(input, injection->observed, 2, options);
  if (!imputed.ok()) {
    std::fprintf(stderr, "imputation failed: %s\n",
                 imputed.status().ToString().c_str());
    return 1;
  }

  // --- Fuel rates in L/km, truth vs imputed.
  std::vector<double> fuel_truth(static_cast<size_t>(table.NumRows()));
  std::vector<double> fuel_imputed(fuel_truth.size());
  for (Index i = 0; i < table.NumRows(); ++i) {
    fuel_truth[static_cast<size_t>(i)] = table.values()(i, fuel_col);
    fuel_imputed[static_cast<size_t>(i)] =
        normalizer->InverseTransformCell((*imputed)(i, fuel_col), fuel_col);
  }

  // --- Cost five candidate routes on both maps and plan with each.
  std::vector<apps::Route> candidates;
  for (uint64_t r = 0; r < 5; ++r) {
    auto route = apps::SampleRoute(si, 30, 1000 + r);
    if (route.ok()) candidates.push_back(*route);
  }
  auto truth_plan = apps::PlanRoute(si, fuel_truth, candidates);
  auto imputed_plan = apps::PlanRoute(si, fuel_imputed, candidates);
  if (!truth_plan.ok() || !imputed_plan.ok()) {
    std::fprintf(stderr, "route planning failed\n");
    return 1;
  }
  std::printf("route   truth fuel   imputed fuel   |error|\n");
  for (size_t r = 0; r < candidates.size(); ++r) {
    std::printf("%5zu   %10.2f   %12.2f   %7.2f\n", r,
                truth_plan->costs[r], imputed_plan->costs[r],
                std::abs(truth_plan->costs[r] - imputed_plan->costs[r]));
  }
  std::printf("cheapest route by ground truth: %zu\n", truth_plan->chosen);
  std::printf("cheapest route by imputed map:  %zu  (%s)\n",
              imputed_plan->chosen,
              truth_plan->chosen == imputed_plan->chosen ? "same choice"
                                                         : "different");
  return 0;
}
