// Executable form of the paper's Propositions 5 and 7: under the
// kMultiplicative update rules the SMFL (landmarks on) and SMF (landmarks
// off) objectives are non-increasing, across many random seeds and several
// (rank, lambda, p) combinations. The TrainingGuard is disabled here so a
// violation fails the test instead of being silently repaired.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/smfl.h"
#include "src/data/generators.h"
#include "src/data/inject.h"
#include "src/data/normalize.h"

namespace smfl::core {
namespace {

using data::Mask;

struct Combo {
  Index rank;
  double lambda;
  Index num_neighbors;
};

// Relative slack for masked-update floating-point wobble.
constexpr double kSlack = 1e-9;

void ExpectMonotoneTrace(const std::vector<double>& trace,
                         const std::string& label) {
  ASSERT_GE(trace.size(), 2u) << label;
  for (size_t i = 1; i < trace.size(); ++i) {
    ASSERT_TRUE(std::isfinite(trace[i])) << label << " iteration " << i;
    ASSERT_LE(trace[i],
              trace[i - 1] + kSlack * std::max(1.0, std::fabs(trace[i - 1])))
        << label << " increased at iteration " << i << ": " << trace[i - 1]
        << " -> " << trace[i];
  }
}

void RunPropertyFor(bool use_landmarks) {
  const Combo combos[] = {
      {2, 0.0, 2},   // no spatial term at all
      {4, 0.5, 3},   // the repository defaults
      {8, 2.0, 5},   // heavy regularization, wide graph
  };
  int fits = 0;
  for (const Combo& combo : combos) {
    for (uint64_t seed = 0; seed < 7; ++seed) {
      auto dataset = data::MakeVehicleLike(50, 100 + seed);
      ASSERT_TRUE(dataset.ok());
      auto normalizer = data::MinMaxNormalizer::Fit(dataset->table.values());
      Matrix truth = normalizer->Transform(dataset->table.values());
      data::MissingInjectionOptions inject;
      inject.missing_rate = 0.15;
      inject.preserve_complete_rows = 15;
      inject.seed = seed * 13 + 1;
      auto injection = data::InjectMissing(dataset->table, inject);
      ASSERT_TRUE(injection.ok());
      Matrix input = data::ApplyMask(truth, injection->observed);

      SmflOptions options;
      options.rank = combo.rank;
      options.lambda = combo.lambda;
      options.num_neighbors = combo.num_neighbors;
      options.use_landmarks = use_landmarks;
      options.update = UpdateMethod::kMultiplicative;
      options.max_iterations = 30;
      options.tolerance = 0.0;  // full trace, no early stop
      options.guard.enabled = false;
      options.seed = seed * 7919 + 3;
      auto model = FitSmfl(input, injection->observed, 2, options);
      ASSERT_TRUE(model.ok()) << model.status().ToString();
      ExpectMonotoneTrace(
          model->report.objective_trace,
          (use_landmarks ? std::string("SMFL") : std::string("SMF")) +
              " K=" + std::to_string(combo.rank) +
              " lambda=" + std::to_string(combo.lambda) +
              " p=" + std::to_string(combo.num_neighbors) +
              " seed=" + std::to_string(seed));
      ++fits;
    }
  }
  // 3 combos x 7 seeds = 21 independent fits per method (>= 20).
  EXPECT_GE(fits, 20);
}

TEST(SmflMonotonicityProperty, SmflObjectiveNonIncreasing) {
  RunPropertyFor(/*use_landmarks=*/true);
}

TEST(SmflMonotonicityProperty, SmfObjectiveNonIncreasing) {
  RunPropertyFor(/*use_landmarks=*/false);
}

}  // namespace
}  // namespace smfl::core
