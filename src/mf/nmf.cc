#include "src/mf/nmf.h"

#include <optional>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/data/observed_index.h"
#include "src/la/ops.h"

namespace smfl::mf {

Matrix NmfModel::Reconstruct() const { return la::MatMul(u, v); }

double MaskedReconstructionError(const Matrix& x, const Mask& observed,
                                 const Matrix& u, const Matrix& v) {
  return data::MaskedSquaredError(x, observed,
                                  data::MaskedReconstruct(u, v, observed));
}

namespace {

// R_Ω(U V) with the fused kernel, preferring the once-per-fit CSR index
// (`omega`, nullable); the unfused pre-optimization form stays reachable
// for tools/run_bench.sh baselines. All three forms are bitwise identical.
Matrix ReconstructMasked(const Matrix& u, const Matrix& v,
                         const Mask& observed,
                         const data::ObservedIndex* omega) {
  if (LegacyReconstructForBench()) {
    return data::ApplyMask(la::MatMul(u, v), observed);
  }
  if (omega != nullptr) {
    return data::MaskedReconstruct(u, v, *omega);
  }
  return data::MaskedReconstruct(u, v, observed);
}

}  // namespace

Result<NmfModel> FitNmf(const Matrix& x, const Mask& observed,
                        const NmfOptions& options) {
  parallel::ScopedParallelism scoped_threads(options.threads);
  const Index n = x.rows(), m = x.cols();
  if (n == 0 || m == 0) return Status::InvalidArgument("FitNmf: empty matrix");
  if (observed.rows() != n || observed.cols() != m) {
    return Status::InvalidArgument("FitNmf: mask shape mismatch");
  }
  if (options.rank <= 0) {
    return Status::InvalidArgument("FitNmf: rank must be positive");
  }
  if (x.HasNonFinite()) {
    return Status::NumericError("FitNmf: input contains NaN/Inf");
  }
  for (Index i = 0; i < x.rows(); ++i) {
    for (Index j = 0; j < x.cols(); ++j) {
      if (observed.Contains(i, j) && x(i, j) < 0.0) {
        return Status::InvalidArgument(
            "FitNmf: observed entries must be nonnegative (normalize first)");
      }
    }
  }
  const Index k = options.rank;
  Rng rng(options.seed);
  NmfModel model;
  model.u = Matrix(n, k);
  model.v = Matrix(k, m);
  for (Index i = 0; i < model.u.size(); ++i) {
    model.u.data()[i] = rng.Uniform(0.01, 1.0);
  }
  for (Index i = 0; i < model.v.size(); ++i) {
    model.v.data()[i] = rng.Uniform(0.01, 1.0);
  }

  const Matrix x_observed = data::ApplyMask(x, observed);
  // Ω in CSR form, built once per fit and reused by every reconstruction
  // and objective evaluation (observed_index.h).
  std::optional<data::ObservedIndex> omega_storage;
  if (data::ObservedIndexEnabled()) {
    omega_storage.emplace(data::ObservedIndex::FromMask(observed, x));
  }
  const data::ObservedIndex* omega =
      omega_storage.has_value() ? &omega_storage.value() : nullptr;
  FitReport& report = model.report;
  // R_Ω(UV) for the current iterates; the end-of-iteration objective
  // evaluation refreshes it and the next U update consumes it, so each
  // iteration pays two reconstructions instead of three.
  Matrix uv_masked = ReconstructMasked(model.u, model.v, observed, omega);
  const bool legacy_reconstruct = LegacyReconstructForBench();
  report.objective_trace.push_back(
      omega != nullptr ? data::MaskedSquaredError(x, *omega, uv_masked)
                       : data::MaskedSquaredError(x, observed, uv_masked));
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    report.iterations = iter + 1;
    // U <- U ⊙ (R_Ω(X) Vᵀ) / (R_Ω(U V) Vᵀ)
    if (legacy_reconstruct) {
      uv_masked = ReconstructMasked(model.u, model.v, observed, omega);
    }
    Matrix num_u = la::MatMulABt(x_observed, model.v);
    Matrix den_u = la::MatMulABt(uv_masked, model.v);
    model.u = la::Hadamard(model.u, la::SafeDivide(num_u, den_u, kDivEps));

    // V <- V ⊙ (Uᵀ R_Ω(X)) / (Uᵀ R_Ω(U V))
    uv_masked = ReconstructMasked(model.u, model.v, observed, omega);
    Matrix num_v = la::MatMulAtB(model.u, x_observed);
    Matrix den_v = la::MatMulAtB(model.u, uv_masked);
    model.v = la::Hadamard(model.v, la::SafeDivide(num_v, den_v, kDivEps));

    uv_masked = ReconstructMasked(model.u, model.v, observed, omega);
    report.objective_trace.push_back(
        omega != nullptr ? data::MaskedSquaredError(x, *omega, uv_masked)
                         : data::MaskedSquaredError(x, observed, uv_masked));
    if (RelativeImprovementBelow(report.objective_trace, options.tolerance)) {
      report.converged = true;
      break;
    }
  }
  if (model.u.HasNonFinite() || model.v.HasNonFinite()) {
    return Status::NumericError("FitNmf: factorization diverged");
  }
  return model;
}

Matrix ImputeWithModel(const Matrix& x, const Mask& observed,
                       const NmfModel& model) {
  return data::CombineByMask(x, model.Reconstruct(), observed);
}

}  // namespace smfl::mf
