#include "src/core/fold_in.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/common/fit_progress.h"
#include "src/common/parallel.h"
#include "src/common/telemetry.h"
#include "src/data/observed_index.h"
#include "src/la/ops.h"
#include "src/mf/factorization.h"

namespace smfl::core {

namespace {

// Grain of the per-row solve loop. Each row runs up to max_iterations
// multiplicative updates, so chunks stay coarse enough that scheduling
// overhead is noise while the static partition keeps results independent
// of the thread count (see common/parallel.h).
constexpr Index kRowGrain = 4;

// Landmark-kernel initialization of u over the row's observed spatial
// coordinates. Returns false when the kernel does not apply (no landmark
// columns, or every coordinate is missing), leaving u untouched.
bool InitFromLandmarks(const SmflModel& model, const double* row,
                       const uint8_t* usable, double sigma2, la::Vector& u) {
  const Index k = model.v.rows();
  const Index l = std::min(model.spatial_cols, model.landmarks.cols());
  if (model.landmarks.size() == 0 || l <= 0) return false;
  std::vector<Index> obs_si;
  for (Index j = 0; j < l; ++j) {
    if (usable[j]) obs_si.push_back(j);
  }
  if (obs_si.empty()) return false;
  double sum = 0.0;
  for (Index c = 0; c < k; ++c) {
    double d2 = 0.0;
    for (Index j : obs_si) {
      const double diff = row[j] - model.landmarks(c, j);
      d2 += diff * diff;
    }
    // Missing coordinates scale the partial distance up to the full-SI
    // magnitude so the kernel width stays comparable.
    d2 *= static_cast<double>(l) / static_cast<double>(obs_si.size());
    u[c] = std::exp(-d2 / (2.0 * sigma2)) + 1e-4;
    sum += u[c];
  }
  for (Index c = 0; c < k; ++c) u[c] /= sum;
  return true;
}

// Multiplicative updates of u restricted to the observed columns:
//   u_c <- u_c * num_c / (Σ_t (uV)_t v_ct)
// with the iteration-invariant numerator num_c = Σ_t x_t v_ct precomputed
// by the caller (one MatMulABt gemm covers a whole batch group). Every
// accumulation runs in the same ascending order as the gemm, so batched
// and row-at-a-time serving agree bitwise. Returns iterations run.
int SolveCoefficients(const Matrix& v_obs, const double* x_obs,
                      const double* num, const FoldInOptions& options,
                      la::Vector& u, std::vector<double>& recon) {
  const Index k = v_obs.rows();
  const Index nt = v_obs.cols();
  recon.resize(static_cast<size_t>(nt));
  double prev_err = std::numeric_limits<double>::infinity();
  int iterations = 0;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Current reconstruction on observed columns.
    double err = 0.0;
    for (Index t = 0; t < nt; ++t) {
      double acc = 0.0;
      for (Index c = 0; c < k; ++c) acc += u[c] * v_obs(c, t);
      recon[static_cast<size_t>(t)] = acc;
      const double d = x_obs[t] - acc;
      err += d * d;
    }
    if (prev_err - err < options.tolerance * std::max(prev_err, 1e-300)) {
      break;
    }
    prev_err = err;
    ++iterations;
    for (Index c = 0; c < k; ++c) {
      double den = 0.0;
      for (Index t = 0; t < nt; ++t) {
        den += recon[static_cast<size_t>(t)] * v_obs(c, t);
      }
      u[c] *= num[c] / std::max(den, mf::kDivEps);
    }
  }
  return iterations;
}

// Completed row: usable observed cells copied, everything else u·V.
void ReconstructRow(const SmflModel& model, const la::Vector& u,
                    const double* row, const uint8_t* usable, double* out) {
  const Index m = model.v.cols();
  const Index k = model.v.rows();
  for (Index j = 0; j < m; ++j) {
    if (usable[j]) {
      out[j] = row[j];
      continue;
    }
    double acc = 0.0;
    for (Index c = 0; c < k; ++c) acc += u[c] * model.v(c, j);
    out[j] = acc;
  }
}

// Rows sharing one observed-column pattern: their numerators are one gemm.
struct ObsGroup {
  std::vector<Index> obs;   // usable observed columns, ascending
  std::vector<Index> rows;  // batch row indices with this pattern
  Matrix v_obs;             // K x |obs| gather of V's columns
  Matrix x_obs;             // |rows| x |obs| observed values
  Matrix num;               // |rows| x K = MatMulABt(x_obs, v_obs)
};

}  // namespace

const char* FoldInTierName(FoldInTier tier) {
  switch (tier) {
    case FoldInTier::kLandmarkKernel:
      return "landmark-kernel";
    case FoldInTier::kUniformU:
      return "uniform-u";
    case FoldInTier::kColumnMean:
      return "column-mean";
  }
  return "unknown";
}

Index FoldInReport::CountTier(FoldInTier tier) const {
  Index count = 0;
  for (const FoldInRowOutcome& outcome : rows) {
    if (outcome.served_by == tier) ++count;
  }
  return count;
}

Index FoldInReport::DegradedCount() const {
  Index count = 0;
  for (const FoldInRowOutcome& outcome : rows) {
    if (!outcome.status.ok()) ++count;
  }
  return count;
}

std::string FoldInReport::ToString() const {
  std::string s = std::to_string(rows.size()) + " rows: ";
  s += std::to_string(CountTier(FoldInTier::kLandmarkKernel)) +
       " landmark-kernel, ";
  s += std::to_string(CountTier(FoldInTier::kUniformU)) + " uniform-u, ";
  s += std::to_string(CountTier(FoldInTier::kColumnMean)) + " column-mean (" +
       std::to_string(DegradedCount()) + " degraded)";
  return s;
}

double FoldInKernelWidth(const Matrix& landmarks) {
  const Index k = landmarks.rows();
  const Index l = landmarks.cols();
  double sum = 0.0;
  Index finite = 0;
  for (Index c = 0; c < k; ++c) {
    double best = std::numeric_limits<double>::infinity();
    for (Index c2 = 0; c2 < k; ++c2) {
      if (c2 == c) continue;
      best = std::min(best, la::SquaredDistance(landmarks.Row(c),
                                                landmarks.Row(c2)));
    }
    if (std::isfinite(best)) {
      sum += best;
      ++finite;
    }
  }
  if (finite == 0 || sum <= 0.0) {
    // K = 1 (or coincident landmarks): no pairwise spread to measure.
    // Landmarks live in normalized [0,1]^L, where the mean squared
    // distance between uniform points is L/6 — a usable spatial scale,
    // unlike the 1e-8 the degenerate average would produce.
    return std::max(static_cast<double>(l) / 6.0, 1e-2);
  }
  return std::max(sum / static_cast<double>(k), 1e-8);
}

Result<la::Vector> FoldInRow(const SmflModel& model, const la::Vector& row,
                             const std::vector<bool>& observed_row,
                             const FoldInOptions& options) {
  const Index m = model.v.cols();
  const Index k = model.v.rows();
  if (k == 0 || m == 0) {
    return Status::FailedPrecondition("FoldInRow: empty model");
  }
  if (row.size() != m ||
      static_cast<Index>(observed_row.size()) != m) {
    return Status::InvalidArgument("FoldInRow: row width mismatch");
  }
  std::vector<Index> obs;
  std::vector<uint8_t> usable(static_cast<size_t>(m), 0);
  for (Index j = 0; j < m; ++j) {
    if (observed_row[static_cast<size_t>(j)]) {
      if (row[j] < 0.0) {
        return Status::InvalidArgument(
            "FoldInRow: observed entries must be nonnegative");
      }
      if (!std::isfinite(row[j])) {
        return Status::NumericError("FoldInRow: non-finite observed entry");
      }
      obs.push_back(j);
      usable[static_cast<size_t>(j)] = 1;
    }
  }
  if (obs.empty()) {
    return Status::InvalidArgument("FoldInRow: no observed entries");
  }

  SMFL_COUNTER_INC("foldin.single_row_calls");

  // Same machinery as the batch path, on a group of one row, so the two
  // entry points are bitwise identical for valid rows.
  const Index nt = static_cast<Index>(obs.size());
  Matrix v_obs(k, nt);
  Matrix x_obs(1, nt);
  for (Index t = 0; t < nt; ++t) {
    for (Index c = 0; c < k; ++c) v_obs(c, t) = model.v(c, obs[t]);
    x_obs(0, t) = row[obs[t]];
  }
  const Matrix num = la::MatMulABt(x_obs, v_obs);

  la::Vector u(k, 1.0 / static_cast<double>(k));
  if (model.landmarks.size() > 0) {
    const double sigma2 = FoldInKernelWidth(model.landmarks);
    InitFromLandmarks(model, row.data(), usable.data(), sigma2, u);
  }
  std::vector<double> recon;
  SolveCoefficients(v_obs, x_obs.Row(0).data(), num.Row(0).data(), options,
                    u, recon);

  la::Vector completed(m);
  ReconstructRow(model, u, row.data(), usable.data(), completed.data());
  return completed;
}

Result<Matrix> FoldIn(const SmflModel& model, const Matrix& x,
                      const Mask& observed, const FoldInOptions& options,
                      FoldInReport* report) {
  const Index n = x.rows();
  const Index m = x.cols();
  const Index k = model.v.rows();
  if (k == 0 || model.v.cols() == 0) {
    return Status::FailedPrecondition("FoldIn: empty model");
  }
  if (observed.rows() != n || observed.cols() != m) {
    return Status::InvalidArgument("FoldIn: mask shape mismatch");
  }
  if (m != model.v.cols()) {
    return Status::InvalidArgument("FoldIn: column count mismatch");
  }
  Matrix out(n, m);
  std::vector<FoldInRowOutcome> outcomes(static_cast<size_t>(n));
  if (n == 0) {
    if (report) report->rows.clear();
    return out;
  }
  SMFL_TRACE_SPAN("foldin.batch");
  const bool batch_telemetry = telemetry::Enabled();
  const int64_t batch_t0 = batch_telemetry ? telemetry::NowMicros() : 0;

  // Per-row validation. Non-finite or negative observed cells are dropped
  // from that row's solve (and replaced by the reconstruction in the
  // output) instead of aborting the whole batch; the fault is recorded.
  std::vector<uint8_t> usable(static_cast<size_t>(n * m), 0);
  for (Index i = 0; i < n; ++i) {
    FoldInRowOutcome& outcome = outcomes[static_cast<size_t>(i)];
    outcome.row = i;
    Index observed_count = 0, dropped = 0, kept = 0;
    for (Index j = 0; j < m; ++j) {
      if (!observed.Contains(i, j)) continue;
      ++observed_count;
      const double v = x(i, j);
      if (!std::isfinite(v) || v < 0.0) {
        ++dropped;
        continue;
      }
      usable[static_cast<size_t>(i * m + j)] = 1;
      ++kept;
    }
    if (kept == 0) {
      outcome.served_by = FoldInTier::kColumnMean;
      outcome.status = Status::InvalidArgument(
          observed_count == 0
              ? "no observed entries; served by column-mean fallback"
              : "all observed entries non-finite or negative; served by "
                "column-mean fallback");
    } else if (dropped > 0) {
      outcome.status = Status::DataError(
          std::to_string(dropped) +
          " non-finite/negative observed cell(s) dropped from the solve");
    }
  }

  // Group solvable rows by usable-column pattern and fold each group's
  // iteration-invariant numerators into one gemm against the frozen V.
  // The CSR index over the usable cells serves both the grouping key (a
  // row's observed-column span, byte-viewed) and each group's column list
  // directly — no per-row rescans of the byte grid, and the key for a
  // sparse row is proportional to its observed count, not to m.
  const data::ObservedIndex usable_index =
      data::ObservedIndex::FromRowMajorBytes(n, m, usable.data());
  constexpr size_t kColumnMeanGroup = static_cast<size_t>(-1);
  std::unordered_map<std::string, size_t> group_of_pattern;
  std::vector<ObsGroup> groups;
  std::vector<size_t> row_group(static_cast<size_t>(n), kColumnMeanGroup);
  std::vector<Index> row_pos(static_cast<size_t>(n), 0);
  for (Index i = 0; i < n; ++i) {
    if (outcomes[static_cast<size_t>(i)].served_by ==
        FoldInTier::kColumnMean) {
      continue;
    }
    const std::span<const Index> row_cols = usable_index.RowCols(i);
    std::string pattern(reinterpret_cast<const char*>(row_cols.data()),
                        row_cols.size() * sizeof(Index));
    auto [it, inserted] =
        group_of_pattern.emplace(std::move(pattern), groups.size());
    if (inserted) {
      groups.emplace_back();
      ObsGroup& g = groups.back();
      g.obs.assign(row_cols.begin(), row_cols.end());
    }
    ObsGroup& g = groups[it->second];
    row_group[static_cast<size_t>(i)] = it->second;
    row_pos[static_cast<size_t>(i)] = static_cast<Index>(g.rows.size());
    g.rows.push_back(i);
  }
  for (ObsGroup& g : groups) {
    const Index nt = static_cast<Index>(g.obs.size());
    const Index nr = static_cast<Index>(g.rows.size());
    g.v_obs = Matrix(k, nt);
    for (Index t = 0; t < nt; ++t) {
      for (Index c = 0; c < k; ++c) g.v_obs(c, t) = model.v(c, g.obs[t]);
    }
    g.x_obs = Matrix(nr, nt);
    for (Index r = 0; r < nr; ++r) {
      for (Index t = 0; t < nt; ++t) {
        g.x_obs(r, t) = x(g.rows[static_cast<size_t>(r)], g.obs[t]);
      }
    }
    // num(r, c) = Σ_t x_obs(r, t) * v_obs(c, t), ascending t — the same
    // accumulation order as the scalar single-row loop.
    g.num = la::MatMulABt(g.x_obs, g.v_obs);
  }

  // Model-level precomputations shared by every row.
  const double sigma2 =
      model.landmarks.size() > 0 ? FoldInKernelWidth(model.landmarks) : 0.0;
  la::Vector mean_u = model.u.rows() > 0
                          ? la::ColMeans(model.u)
                          : la::Vector(k, 1.0 / static_cast<double>(k));

  // Per-row solves: independent rows, disjoint output regions, static
  // partition — bitwise identical at any thread count.
  parallel::ParallelFor(0, n, kRowGrain, [&](Index r0, Index r1) {
    std::vector<double> recon;
    // One enabled-check per chunk; per-row clock reads only when telemetry
    // is on, so the disabled serving path stays clock-free.
    const bool row_telemetry = telemetry::Enabled();
    for (Index i = r0; i < r1; ++i) {
      const int64_t row_t0 = row_telemetry ? telemetry::NowMicros() : 0;
      const uint8_t* urow = &usable[static_cast<size_t>(i * m)];
      const double* xrow = x.Row(i).data();
      double* orow = out.Row(i).data();
      FoldInRowOutcome& outcome = outcomes[static_cast<size_t>(i)];
      const size_t gi = row_group[static_cast<size_t>(i)];
      if (gi == kColumnMeanGroup) {
        // Column-mean tier: the model's average row, mean(U)·V.
        for (Index j = 0; j < m; ++j) {
          double acc = 0.0;
          for (Index c = 0; c < k; ++c) acc += mean_u[c] * model.v(c, j);
          orow[j] = acc;
        }
        continue;
      }
      const ObsGroup& g = groups[gi];
      la::Vector u(k, 1.0 / static_cast<double>(k));
      const bool kernel_init =
          sigma2 > 0.0 && InitFromLandmarks(model, xrow, urow, sigma2, u);
      outcome.served_by = kernel_init ? FoldInTier::kLandmarkKernel
                                      : FoldInTier::kUniformU;
      const Index pos = row_pos[static_cast<size_t>(i)];
      outcome.iterations = SolveCoefficients(
          g.v_obs, g.x_obs.Row(pos).data(), g.num.Row(pos).data(), options,
          u, recon);
      ReconstructRow(model, u, xrow, urow, orow);
      if (row_telemetry) {
        SMFL_HISTOGRAM_RECORD(
            "foldin.row_solve_us",
            static_cast<double>(telemetry::NowMicros() - row_t0));
        SMFL_HISTOGRAM_RECORD("foldin.row_iterations",
                              static_cast<double>(outcome.iterations));
      }
    }
  });

  // Serving-side counters mirroring FoldInReport, so a metrics snapshot
  // answers "which tier served the traffic" without the in-process report.
  if (batch_telemetry) {
    Index landmark = 0, uniform = 0, column_mean = 0, degraded = 0;
    for (const FoldInRowOutcome& outcome : outcomes) {
      switch (outcome.served_by) {
        case FoldInTier::kLandmarkKernel:
          ++landmark;
          break;
        case FoldInTier::kUniformU:
          ++uniform;
          break;
        case FoldInTier::kColumnMean:
          ++column_mean;
          break;
      }
      if (!outcome.status.ok()) ++degraded;
    }
    SMFL_COUNTER_INC("foldin.batches");
    SMFL_COUNTER_ADD("foldin.rows", n);
    // Serving-side /statusz progress (src/obs): always on, relaxed, never
    // read by numeric code.
    GlobalFitProgress().foldin_batches.fetch_add(1, std::memory_order_relaxed);
    GlobalFitProgress().foldin_rows.fetch_add(static_cast<int64_t>(n),
                                              std::memory_order_relaxed);
    GlobalFitProgress().updates.fetch_add(1, std::memory_order_relaxed);
    SMFL_COUNTER_ADD("foldin.tier.landmark_kernel", landmark);
    SMFL_COUNTER_ADD("foldin.tier.uniform_u", uniform);
    SMFL_COUNTER_ADD("foldin.tier.column_mean", column_mean);
    SMFL_COUNTER_ADD("foldin.degraded_rows", degraded);
    const int64_t elapsed_us = telemetry::NowMicros() - batch_t0;
    if (elapsed_us > 0) {
      SMFL_GAUGE_SET("foldin.rows_per_sec",
                     static_cast<double>(n) * 1e6 /
                         static_cast<double>(elapsed_us));
    }
  }

  if (report) report->rows = std::move(outcomes);
  return out;
}

}  // namespace smfl::core
