#include "src/apps/field_raster.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/durable_io.h"
#include "src/spatial/knn.h"

namespace smfl::apps {

double FieldRaster::CellLat(Index r) const {
  const double cell = (lat_hi - lat_lo) / static_cast<double>(grid.rows());
  return lat_lo + (static_cast<double>(r) + 0.5) * cell;
}

double FieldRaster::CellLon(Index c) const {
  const double cell = (lon_hi - lon_lo) / static_cast<double>(grid.cols());
  return lon_lo + (static_cast<double>(c) + 0.5) * cell;
}

Result<FieldRaster> RasterizeField(const Matrix& si,
                                   const std::vector<double>& values,
                                   const RasterOptions& options) {
  const Index n = si.rows();
  if (n == 0 || si.cols() < 2) {
    return Status::InvalidArgument("RasterizeField: need an N x 2 SI block");
  }
  if (static_cast<Index>(values.size()) != n) {
    return Status::InvalidArgument("RasterizeField: value count mismatch");
  }
  if (options.grid_rows < 1 || options.grid_cols < 1) {
    return Status::InvalidArgument("RasterizeField: bad grid size");
  }
  FieldRaster raster;
  raster.lat_lo = raster.lat_hi = si(0, 0);
  raster.lon_lo = raster.lon_hi = si(0, 1);
  for (Index i = 1; i < n; ++i) {
    raster.lat_lo = std::min(raster.lat_lo, si(i, 0));
    raster.lat_hi = std::max(raster.lat_hi, si(i, 0));
    raster.lon_lo = std::min(raster.lon_lo, si(i, 1));
    raster.lon_hi = std::max(raster.lon_hi, si(i, 1));
  }
  if (raster.lat_hi - raster.lat_lo < 1e-12) raster.lat_hi = raster.lat_lo + 1;
  if (raster.lon_hi - raster.lon_lo < 1e-12) raster.lon_hi = raster.lon_lo + 1;

  raster.grid = Matrix(options.grid_rows, options.grid_cols);
  Matrix counts(options.grid_rows, options.grid_cols);
  const double cell_lat = (raster.lat_hi - raster.lat_lo) /
                          static_cast<double>(options.grid_rows);
  const double cell_lon = (raster.lon_hi - raster.lon_lo) /
                          static_cast<double>(options.grid_cols);
  for (Index i = 0; i < n; ++i) {
    const Index r = std::clamp<Index>(
        static_cast<Index>((si(i, 0) - raster.lat_lo) / cell_lat), 0,
        options.grid_rows - 1);
    const Index c = std::clamp<Index>(
        static_cast<Index>((si(i, 1) - raster.lon_lo) / cell_lon), 0,
        options.grid_cols - 1);
    raster.grid(r, c) += values[static_cast<size_t>(i)];
    counts(r, c) += 1.0;
  }
  for (Index r = 0; r < options.grid_rows; ++r) {
    for (Index c = 0; c < options.grid_cols; ++c) {
      if (counts(r, c) > 0.0) raster.grid(r, c) /= counts(r, c);
    }
  }

  // Fill empty cells by inverse-distance weighting of the nearest
  // observations.
  const Index k = std::min<Index>(options.fill_neighbors, n);
  for (Index r = 0; r < options.grid_rows; ++r) {
    for (Index c = 0; c < options.grid_cols; ++c) {
      if (counts(r, c) > 0.0) continue;
      const std::vector<double> center = {raster.CellLat(r),
                                          raster.CellLon(c)};
      auto nn = spatial::BruteForceKnn(si, center, k);
      double wsum = 0.0, vsum = 0.0;
      for (const auto& neighbor : nn) {
        const double w = 1.0 / (neighbor.distance + 1e-9);
        wsum += w;
        vsum += w * values[static_cast<size_t>(neighbor.index)];
      }
      raster.grid(r, c) = wsum > 0.0 ? vsum / wsum : 0.0;
    }
  }
  return raster;
}

Status WriteRasterCsv(const FieldRaster& raster, const std::string& path) {
  // Rendered in memory, then atomically replaced (temp + fsync + rename).
  std::ostringstream out;
  out << "lat,lon,value\n";
  out.precision(10);
  for (Index r = 0; r < raster.grid.rows(); ++r) {
    for (Index c = 0; c < raster.grid.cols(); ++c) {
      out << raster.CellLat(r) << "," << raster.CellLon(c) << ","
          << raster.grid(r, c) << "\n";
    }
  }
  return WriteFileDurable(path, out.str());
}

}  // namespace smfl::apps
