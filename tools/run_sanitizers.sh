#!/usr/bin/env bash
# Build and run the tier-1 test suite under AddressSanitizer and
# UndefinedBehaviorSanitizer. Each sanitizer gets its own build tree so
# the instrumented objects never pollute the regular build/.
#
# Usage: tools/run_sanitizers.sh [address|undefined]
# With no argument both sanitizers run in sequence.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitizers=("${1:-address}" )
if [[ $# -eq 0 ]]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address|undefined) ;;
    *)
      echo "unknown sanitizer '$san' (want address or undefined)" >&2
      exit 2
      ;;
  esac

  build_dir="$repo_root/build-$san"
  echo "==> configuring $san sanitizer build in $build_dir"
  cmake -B "$build_dir" -S "$repo_root" -DSMFL_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "==> building ($san)"
  cmake --build "$build_dir" -j
  echo "==> running tier-1 tests ($san)"
  if [[ "$san" == "address" ]]; then
    ASAN_OPTIONS=detect_leaks=1 ctest --test-dir "$build_dir" \
        --output-on-failure -j
  else
    UBSAN_OPTIONS=print_stacktrace=1 ctest --test-dir "$build_dir" \
        --output-on-failure -j
  fi
  echo "==> $san: PASSED"
done

echo "all sanitizer runs passed"
