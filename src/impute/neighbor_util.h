// Shared neighbor machinery for the tuple-local imputers (kNN, kNNE, LOESS,
// IIM, DLM): distances over partially observed tuples and complete-row
// candidate pools.

#ifndef SMFL_IMPUTE_NEIGHBOR_UTIL_H_
#define SMFL_IMPUTE_NEIGHBOR_UTIL_H_

#include <vector>

#include "src/data/mask.h"

namespace smfl::impute {

using data::Mask;
using la::Index;
using la::Matrix;

// Euclidean distance between rows a and b of x restricted to the columns in
// `cols`; infinity if `cols` is empty.
double PartialRowDistance(const Matrix& x, Index a, Index b,
                          const std::vector<Index>& cols);

// Columns of row i that are observed.
std::vector<Index> ObservedColumns(const Mask& observed, Index i);

// Rows fully observed on every column in `cols` — valid donor tuples.
std::vector<Index> RowsCompleteOn(const Mask& observed,
                                  const std::vector<Index>& cols);

struct ScoredRow {
  Index row;
  double distance;
};

// The k candidates (from `candidates`, excluding `self`) nearest to row
// `self` of x under PartialRowDistance over `cols`; ascending by distance.
std::vector<ScoredRow> NearestAmong(const Matrix& x, Index self,
                                    const std::vector<Index>& candidates,
                                    const std::vector<Index>& cols, Index k);

}  // namespace smfl::impute

#endif  // SMFL_IMPUTE_NEIGHBOR_UTIL_H_
