// Simplified stand-ins for the Baran [32] and HoloClean [36] repair systems.
//
// Both originals are large standalone systems; these implementations keep
// the signal each system derives its corrections from (see DESIGN.md):
//
//  * BaranLikeRepairer — an ensemble of corrector models per dirty cell:
//    a value-context corrector (column median), a vicinity corrector
//    (average over the nearest clean tuples in attribute space), and a
//    domain corrector (densest-bin center of the column). Predictions are
//    averaged, mirroring Baran's combined corrector output.
//
//  * HolocleanLikeRepairer — probabilistic per-cell inference from
//    statistical signals: columns are discretized into bins; pairwise
//    conditional distributions P(bin_j | bin_k) are estimated from clean
//    cells; a dirty cell takes the expectation of its column's bin centers
//    weighted by the product of conditionals given the tuple's clean cells.
//
// Neither uses spatial locality — exactly why the paper's SMF/SMFL beat
// them on spatial data.

#ifndef SMFL_REPAIR_BASELINE_REPAIRERS_H_
#define SMFL_REPAIR_BASELINE_REPAIRERS_H_

#include "src/repair/repairer.h"

namespace smfl::repair {

struct BaranOptions {
  // Vicinity corrector neighborhood size.
  Index k = 10;
  // Histogram resolution of the domain corrector.
  Index bins = 16;
};

class BaranLikeRepairer : public Repairer {
 public:
  explicit BaranLikeRepairer(BaranOptions options = {}) : options_(options) {}
  std::string name() const override { return "Baran"; }
  Result<Matrix> Repair(const Matrix& dirty, const Mask& dirty_cells,
                        Index spatial_cols) const override;

 private:
  BaranOptions options_;
};

struct HolocleanOptions {
  // Histogram resolution for the statistical signals. Real HoloClean
  // treats cell values as categorical; for continuous data a coarse
  // discretization is the closest faithful analogue.
  Index bins = 8;
  // Dirichlet-style smoothing of the conditionals.
  double smoothing = 1.0;
};

class HolocleanLikeRepairer : public Repairer {
 public:
  explicit HolocleanLikeRepairer(HolocleanOptions options = {})
      : options_(options) {}
  std::string name() const override { return "HoloClean"; }
  Result<Matrix> Repair(const Matrix& dirty, const Mask& dirty_cells,
                        Index spatial_cols) const override;

 private:
  HolocleanOptions options_;
};

}  // namespace smfl::repair

#endif  // SMFL_REPAIR_BASELINE_REPAIRERS_H_
