// Dataset inspection tool: prints column statistics, spatial extent, and a
// statistical error-detection report for a CSV file or a built-in synthetic
// dataset.
//
//   ./build/examples/dataset_explorer --dataset=vehicle --rows=1000
//   ./build/examples/dataset_explorer --csv=path/to/data.csv --spatial=2

#include <cstdio>

#include "src/common/flags.h"
#include "src/data/csv.h"
#include "src/data/generators.h"
#include "src/data/normalize.h"
#include "src/data/stats.h"
#include "src/repair/detector.h"

using namespace smfl;
using la::Index;
using la::Matrix;

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_result;

  data::Table table;
  data::Mask observed;
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    data::CsvReadOptions read_options;
    read_options.spatial_cols =
        static_cast<Index>(*flags.GetInt("spatial", 2));
    auto csv = data::ReadCsv(csv_path, read_options);
    if (!csv.ok()) {
      std::fprintf(stderr, "%s\n", csv.status().ToString().c_str());
      return 1;
    }
    table = std::move(csv->table);
    observed = std::move(csv->observed);
  } else {
    const std::string name = flags.GetString("dataset", "lake");
    const Index rows = static_cast<Index>(*flags.GetInt("rows", 500));
    auto dataset = data::MakeDatasetByName(name, rows, 7);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    table = std::move(dataset->table);
    observed = data::Mask::AllSet(table.NumRows(), table.NumCols());
  }

  std::printf("%lld rows x %lld columns (%lld spatial)\n",
              static_cast<long long>(table.NumRows()),
              static_cast<long long>(table.NumCols()),
              static_cast<long long>(table.SpatialCols()));
  std::printf("observed cells: %lld of %lld\n\n",
              static_cast<long long>(observed.Count()),
              static_cast<long long>(table.NumRows() * table.NumCols()));

  auto stats = data::ComputeAllColumnStats(table.values(), observed);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              data::FormatStatsTable(table.column_names(), *stats).c_str());

  // Correlation of each attribute with the coordinates (how spatial is
  // this table?).
  if (table.SpatialCols() >= 2) {
    std::printf("attribute-vs-coordinate correlations:\n");
    for (Index j = table.SpatialCols(); j < table.NumCols(); ++j) {
      auto with_lat =
          data::ColumnCorrelation(table.values(), observed, 0, j);
      auto with_lon =
          data::ColumnCorrelation(table.values(), observed, 1, j);
      std::printf("  %-16s lat %+6.3f  lon %+6.3f\n",
                  table.column_names()[static_cast<size_t>(j)].c_str(),
                  with_lat.ok() ? *with_lat : 0.0,
                  with_lon.ok() ? *with_lon : 0.0);
    }
    std::printf("\n");
  }

  // Error-detection report on the normalized table.
  auto normalizer = data::MinMaxNormalizer::Fit(table.values(), observed);
  if (normalizer.ok()) {
    Matrix normalized = normalizer->Transform(table.values());
    auto detection =
        repair::DetectErrors(normalized, table.SpatialCols());
    if (detection.ok()) {
      std::printf(
          "error detector: %lld suspicious cells "
          "(outlier %lld, cross-column %lld, spatial %lld signals)\n",
          static_cast<long long>(detection->flagged.Count()),
          static_cast<long long>(detection->outlier_flags),
          static_cast<long long>(detection->surprise_flags),
          static_cast<long long>(detection->spatial_flags));
    }
  }
  return 0;
}
