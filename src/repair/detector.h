// Statistical error detection — a stand-in for the configuration-free
// detector (Raha [33]) the paper assumes supplies the dirty-cell set Ψ.
//
// Combines three signals per cell, each voting "suspicious":
//   1. Column outlier: robust z-score (median / MAD) beyond a threshold.
//   2. Pairwise surprise: the cell's bin is (nearly) never seen together
//      with the bins of the tuple's other attributes.
//   3. Spatial discordance: the value is far from the values of the
//      tuple's spatial nearest neighbors, in robust units of the local
//      spread (only meaningful for spatially smooth columns).
// A cell is flagged when at least `min_votes` signals fire. This yields an
// end-to-end repair pipeline (detect -> repair) without oracle masks; the
// detector's precision/recall is measured in tests and the
// bench_ablation_detector binary compares oracle vs detected masks.

#ifndef SMFL_REPAIR_DETECTOR_H_
#define SMFL_REPAIR_DETECTOR_H_

#include "src/common/status.h"
#include "src/data/mask.h"

namespace smfl::repair {

using data::Mask;
using la::Index;
using la::Matrix;

struct DetectorOptions {
  // Robust z-score threshold for the column-outlier signal.
  double z_threshold = 3.0;
  // Histogram resolution of the pairwise-surprise signal.
  Index bins = 8;
  // A (bin_j, bin_k) pair with joint count <= this is "surprising".
  double surprise_count = 2.0;
  // Fraction of the tuple's other columns that must be surprised.
  double surprise_fraction = 0.5;
  // Neighborhood size of the spatial signal.
  Index neighbors = 5;
  // Robust units of local spread beyond which a value is discordant.
  double spatial_threshold = 2.0;
  // Signals required to flag a cell (1..3). One vote is the default: the
  // three signals fire on largely disjoint error modes (gross outliers,
  // cross-column contradictions, spatial discordance), so requiring
  // agreement collapses recall on realistic in-domain errors.
  int min_votes = 1;
};

struct DetectionResult {
  // True = flagged dirty.
  Mask flagged;
  // Per-signal flag counts, for diagnostics.
  Index outlier_flags = 0;
  Index surprise_flags = 0;
  Index spatial_flags = 0;
};

// Scans `x` (normalized, first `spatial_cols` columns spatial; spatial
// columns themselves are scanned with signals 1 and 2 only).
Result<DetectionResult> DetectErrors(const Matrix& x, Index spatial_cols,
                                     const DetectorOptions& options = {});

// Precision/recall of a detector output against the injection oracle.
struct DetectionQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

DetectionQuality EvaluateDetection(const Mask& flagged, const Mask& truth);

}  // namespace smfl::repair

#endif  // SMFL_REPAIR_DETECTOR_H_
