// Distance metrics over spatial coordinates.

#ifndef SMFL_SPATIAL_METRICS_H_
#define SMFL_SPATIAL_METRICS_H_

#include <span>

#include "src/la/matrix.h"

namespace smfl::spatial {

using la::Index;
using la::Matrix;

// Euclidean distance between equal-length coordinate vectors.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

// Great-circle distance in kilometers between (lat, lon) points in degrees.
// Used by the route-planning application where physical distances matter.
double HaversineKm(double lat1, double lon1, double lat2, double lon2);

// Distance between rows i and j of a point matrix (Euclidean over all cols).
double RowDistance(const Matrix& points, Index i, Index j);

// Embeds (lat, lon) degree rows into 3-D unit-sphere coordinates. The
// Euclidean (chord) distance between embedded points is strictly monotone
// in great-circle distance, so KD-tree k-NN over the embedding returns the
// exact haversine nearest neighbors. Input must be N x 2.
Matrix EmbedLatLonOnSphere(const Matrix& lat_lon_degrees);

// Chord length (in unit-sphere units) corresponding to a great-circle
// distance of `km`; inverse of ChordToKm.
double KmToChord(double km);
double ChordToKm(double chord);

}  // namespace smfl::spatial

#endif  // SMFL_SPATIAL_METRICS_H_
