#include "src/cluster/hungarian.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace smfl::cluster {

Result<std::vector<Index>> SolveAssignment(const Matrix& cost) {
  if (cost.rows() != cost.cols()) {
    return Status::InvalidArgument("SolveAssignment: cost must be square");
  }
  if (cost.HasNonFinite()) {
    return Status::NumericError("SolveAssignment: non-finite costs");
  }
  const Index n = cost.rows();
  if (n == 0) return std::vector<Index>{};

  // Jonker–Volgenant-style shortest augmenting path formulation of the
  // Hungarian algorithm with potentials; 1-indexed internals.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(n) + 1, 0.0);
  std::vector<Index> p(static_cast<size_t>(n) + 1, 0);   // col -> row
  std::vector<Index> way(static_cast<size_t>(n) + 1, 0);

  for (Index i = 1; i <= n; ++i) {
    p[0] = i;
    Index j0 = 0;
    std::vector<double> minv(static_cast<size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<size_t>(n) + 1, 0);
    do {
      used[static_cast<size_t>(j0)] = 1;
      const Index i0 = p[static_cast<size_t>(j0)];
      double delta = kInf;
      Index j1 = 0;
      for (Index j = 1; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < minv[static_cast<size_t>(j)]) {
          minv[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (minv[static_cast<size_t>(j)] < delta) {
          delta = minv[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (Index j = 0; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(p[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          minv[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<size_t>(j0)] != 0);
    // Augment along the alternating path.
    do {
      const Index j1 = way[static_cast<size_t>(j0)];
      p[static_cast<size_t>(j0)] = p[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<Index> assignment(static_cast<size_t>(n), -1);
  for (Index j = 1; j <= n; ++j) {
    assignment[static_cast<size_t>(p[static_cast<size_t>(j)] - 1)] = j - 1;
  }
  return assignment;
}

Result<double> ClusteringAccuracy(const std::vector<Index>& truth,
                                  const std::vector<Index>& pred) {
  if (truth.size() != pred.size()) {
    return Status::InvalidArgument(
        "ClusteringAccuracy: label vectors differ in length");
  }
  if (truth.empty()) {
    return Status::InvalidArgument("ClusteringAccuracy: empty labels");
  }
  Index max_label = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0 || pred[i] < 0) {
      return Status::InvalidArgument(
          "ClusteringAccuracy: labels must be nonnegative");
    }
    max_label = std::max({max_label, truth[i], pred[i]});
  }
  const Index k = max_label + 1;
  // Co-occurrence counts; assignment maximizing agreement = minimizing
  // negated counts.
  Matrix cost(k, k);
  for (size_t i = 0; i < truth.size(); ++i) {
    cost(pred[i], truth[i]) -= 1.0;
  }
  ASSIGN_OR_RETURN(std::vector<Index> sigma, SolveAssignment(cost));
  Index agree = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (sigma[static_cast<size_t>(pred[i])] == truth[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(truth.size());
}

}  // namespace smfl::cluster
