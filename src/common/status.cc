#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace smfl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kDataError:
      return "Data error";
    case StatusCode::kNumericError:
      return "Numeric error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IO error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(state_->code);
  s += ": ";
  s += state_->message;
  return s;
}

Status& Status::WithContext(const std::string& context) {
  if (state_ != nullptr) {
    state_->message = context + ": " + state_->message;
  }
  return *this;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace smfl
