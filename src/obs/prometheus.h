// Prometheus text-exposition (version 0.0.4) serialization over the
// telemetry MetricsRegistry. Pure functions over a registry snapshot — no
// I/O, no global state — so the format is testable byte-for-byte
// (tests/prometheus_format_test.cc).
//
// Mapping from the repo's dot-separated metric names (docs/observability.md
// has the full table):
//   * dots and every other character outside [a-zA-Z0-9_:] become '_'
//     ("smfl.fit.iter" -> "smfl_fit_iter"); a leading digit gets a '_'
//     prefix.
//   * counters are suffixed `_total` per the Prometheus naming convention.
//   * histograms expand into cumulative `name_bucket{le="..."}` samples
//     (upper bucket edges are the registry's power-of-two boundaries, plus
//     the mandatory `le="+Inf"`), `name_sum`, and `name_count`, computed
//     from the exact per-bucket counts in Histogram::Snapshot — no
//     percentile interpolation is involved.
//   * every metric gets `# HELP` (carrying the original dotted name) and
//     `# TYPE` lines.

#ifndef SMFL_OBS_PROMETHEUS_H_
#define SMFL_OBS_PROMETHEUS_H_

#include <string>

#include "src/common/telemetry.h"

namespace smfl::obs {

// "smfl.fit.iter" -> "smfl_fit_iter"; never returns an empty or invalid
// Prometheus metric name for non-empty input.
std::string MangleMetricName(const std::string& name);

// Escapes a HELP-line value (backslash and newline, per the exposition
// format).
std::string EscapeHelpText(const std::string& text);

// Renders a full exposition page from a snapshot.
std::string RenderPrometheusText(
    const telemetry::MetricsRegistry::MetricsSnapshot& snapshot);

// Convenience: snapshot the global registry and render it.
std::string RenderGlobalPrometheusText();

// The Content-Type the exposition format mandates.
inline const char* PrometheusContentType() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

}  // namespace smfl::obs

#endif  // SMFL_OBS_PROMETHEUS_H_
